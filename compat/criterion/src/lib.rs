//! Offline stand-in for `criterion` (0.5 API subset).
//!
//! Runs each benchmark in a capped timing loop (a warm-up pass, then up
//! to `sample_size` samples or [`MAX_SAMPLE_TIME`] per benchmark,
//! whichever ends first) and prints mean/min per-iteration wall time.
//! No statistics, plots, or baselines — just enough to register and
//! execute `cargo bench` targets with `harness = false`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Hard cap on measurement time per benchmark, so full-suite
/// `cargo bench` runs stay tractable.
pub const MAX_SAMPLE_TIME: Duration = Duration::from_millis(500);

/// Re-export of [`std::hint::black_box`], criterion's optimization
/// barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id distinguished from its siblings by the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so `bench_function` accepts both
/// string names and explicit ids.
pub trait IntoBenchmarkId {
    /// Converts `self` into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean and min per-iteration time of the last `iter` call.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `routine`, first warming up once, then sampling it up to
    /// the configured sample count (bounded by [`MAX_SAMPLE_TIME`]).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, and a correctness check run
        let budget = Instant::now();
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut count = 0u32;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
            count += 1;
            if budget.elapsed() > MAX_SAMPLE_TIME {
                break;
            }
        }
        self.result = Some((total / count.max(1), min));
    }
}

fn run_one(group: Option<&str>, id: &BenchmarkId, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        result: None,
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label.clone(),
    };
    match b.result {
        Some((mean, min)) => println!("bench {label:<50} mean {mean:>12?}  min {min:>12?}"),
        None => println!("bench {label:<50} (no iter() call)"),
    }
}

/// The benchmark manager: entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(None, &id.into_benchmark_id(), self.sample_size, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time (accepted for API parity; the
    /// stub keeps its own [`MAX_SAMPLE_TIME`] cap).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(
            Some(&self.name),
            &id.into_benchmark_id(),
            self.sample_size,
            |b| f(b),
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            Some(&self.name),
            &id.into_benchmark_id(),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring
/// `criterion::criterion_main!`. Ignores harness CLI flags
/// (`--bench`, filters) that `cargo bench` forwards.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
