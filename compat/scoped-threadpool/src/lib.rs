//! Offline stand-in for the `scoped_threadpool` crate: a **persistent**
//! worker pool whose jobs may borrow from the caller's stack.
//!
//! [`Pool::new`] spawns its worker threads once; every
//! [`Pool::scoped`] call after that only sends boxed jobs down per-worker
//! channels and waits on a completion latch — no thread spawn/join per
//! call. This is the amortization the `homonym_core::exec::Pool` executor
//! rides: the sharded engines scatter one batch of shard ticks per global
//! round, and with scoped threads (the previous implementation) every
//! round paid thread creation; here the threads persist for the life of
//! the pool.
//!
//! Like the real crate, the soundness story for borrowed jobs is the
//! rendezvous: [`Pool::scoped`] does not return until every job submitted
//! through its [`Scope`] has finished running, so borrows with the
//! scope's lifetime are dead only after the last job is done. The one
//! `unsafe` block in this crate erases the job's lifetime to `'static`
//! on the strength of that guarantee.
//!
//! Deviation from the real crate (documented in compat/README.md): a
//! panicking job does not poison the pool — the panic payload is caught
//! on the worker, carried back, and re-raised from `scoped` (lowest
//! submission index first) after every job of the scope has completed,
//! so the original panic message survives and the workers stay usable.

use std::cell::Cell;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A boxed job after lifetime erasure, as shipped to a worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// What a worker receives: the job plus the latch of the scope it
/// belongs to, so completion (and any panic payload) is reported to the
/// right rendezvous.
struct Dispatch {
    index: usize,
    job: Job,
    latch: Arc<Latch>,
}

/// The per-scope rendezvous: counts completed jobs and collects panic
/// payloads, indexed by submission order.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    completed: usize,
    panics: Vec<(usize, Box<dyn std::any::Any + Send>)>,
}

impl Latch {
    fn new() -> Self {
        Latch {
            state: Mutex::new(LatchState {
                completed: 0,
                panics: Vec::new(),
            }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, index: usize, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.completed += 1;
        if let Some(payload) = panic {
            state.panics.push((index, payload));
        }
        self.done.notify_all();
    }

    /// Blocks until `submitted` jobs have completed, then returns the
    /// panic payload with the smallest submission index, if any.
    fn wait(&self, submitted: usize) -> Option<Box<dyn std::any::Any + Send>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.completed < submitted {
            state = self.done.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        state.panics.sort_by_key(|&(index, _)| index);
        if state.panics.is_empty() {
            None
        } else {
            Some(state.panics.remove(0).1)
        }
    }
}

/// A pool of persistent worker threads that can run borrowed closures
/// via [`Pool::scoped`].
///
/// # Example
///
/// ```
/// let mut pool = scoped_threadpool::Pool::new(2);
/// let mut data = vec![0u64; 4];
/// pool.scoped(|scope| {
///     for (i, slot) in data.iter_mut().enumerate() {
///         scope.execute(move || *slot = i as u64 * 10);
///     }
/// });
/// assert_eq!(data, vec![0, 10, 20, 30]);
/// ```
pub struct Pool {
    /// One channel per worker; jobs are dealt round-robin by submission
    /// index, so work placement is a pure function of (submission order,
    /// worker count) — reproducible, though unobservable in results.
    senders: Vec<Sender<Dispatch>>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns a pool of `threads` persistent workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: u32) -> Pool {
        assert!(threads > 0, "a pool needs at least one worker");
        let mut senders = Vec::with_capacity(threads as usize);
        let mut handles = Vec::with_capacity(threads as usize);
        for _ in 0..threads {
            let (tx, rx) = channel::<Dispatch>();
            senders.push(tx);
            handles.push(std::thread::spawn(move || {
                while let Ok(Dispatch { index, job, latch }) = rx.recv() {
                    let outcome = catch_unwind(AssertUnwindSafe(job));
                    latch.complete(index, outcome.err());
                }
            }));
        }
        Pool { senders, handles }
    }

    /// The number of worker threads.
    pub fn thread_count(&self) -> u32 {
        self.senders.len() as u32
    }

    /// Runs `f` with a [`Scope`] whose
    /// [`execute`](Scope::execute)d jobs may borrow anything that
    /// outlives the `scoped` call; blocks until every submitted job has
    /// finished before returning — **even if `f` itself panics** (the
    /// panic is caught, the rendezvous completes, then the panic is
    /// re-raised; unwinding past running jobs would let workers touch
    /// the caller's dying stack frames). If any job panicked, the first
    /// panic (by submission order) is re-raised here with its original
    /// payload.
    pub fn scoped<'pool, 'scope, F, R>(&'pool mut self, f: F) -> R
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let scope = Scope {
            pool: &*self,
            latch: Arc::new(Latch::new()),
            submitted: Cell::new(0),
            _marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // The rendezvous: no borrow handed to a job may be touched by a
        // worker after this wait returns. This MUST run before any
        // unwinding continues — it is what the `unsafe` lifetime
        // erasure in `execute` rests on.
        let job_panic = scope.latch.wait(scope.submitted.get());
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = job_panic {
                    resume_unwind(payload);
                }
                value
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.senders.clear(); // close the channels; workers drain and exit
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The job-submission handle passed to the closure of [`Pool::scoped`].
pub struct Scope<'pool, 'scope> {
    pool: &'pool Pool,
    latch: Arc<Latch>,
    submitted: Cell<usize>,
    /// Invariant in `'scope`, like the real crate, so the borrow checker
    /// cannot shrink the scope lifetime under the submitted jobs.
    _marker: PhantomData<Cell<&'scope mut ()>>,
}

impl<'pool, 'scope> Scope<'pool, 'scope> {
    /// Submits a job to the pool. The job may borrow data alive for
    /// `'scope`; it is guaranteed to have finished by the time the
    /// enclosing [`Pool::scoped`] call returns.
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let index = self.submitted.get();
        self.submitted.set(index + 1);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: the job only borrows data that outlives 'scope, and
        // `Pool::scoped` blocks on the latch until every submitted job
        // has completed before it returns — so the erased borrows are
        // never used after they die. This is the same join-before-return
        // argument the real `scoped_threadpool` (and crossbeam's scoped
        // threads) rest on.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        let worker = index % self.pool.senders.len();
        self.pool.senders[worker]
            .send(Dispatch {
                index,
                job,
                latch: Arc::clone(&self.latch),
            })
            .expect("pool workers outlive every scope");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_mutate_borrowed_slots() {
        let mut pool = Pool::new(3);
        let mut data = vec![0u64; 10];
        pool.scoped(|scope| {
            for (i, slot) in data.iter_mut().enumerate() {
                scope.execute(move || *slot = i as u64 + 1);
            }
        });
        assert_eq!(data, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn workers_persist_across_scopes() {
        let mut pool = Pool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.scoped(|scope| {
                for _ in 0..4 {
                    scope.execute(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 200);
        assert_eq!(pool.thread_count(), 2);
    }

    #[test]
    fn empty_scope_returns_immediately() {
        let mut pool = Pool::new(1);
        let out = pool.scoped(|_| 7);
        assert_eq!(out, 7);
    }

    #[test]
    fn panic_payload_is_reraised_and_pool_survives() {
        let mut pool = Pool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.execute(|| {});
                scope.execute(|| panic!("job bug"));
                scope.execute(|| {});
            });
        }));
        let payload = result.expect_err("the job panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("panic payload is a message");
        assert!(message.contains("job bug"), "lost message: {message:?}");

        // The pool is still usable after a panicking scope.
        let done = AtomicUsize::new(0);
        pool.scoped(|scope| {
            scope.execute(|| {
                done.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn closure_panic_still_waits_for_submitted_jobs() {
        // A panic in the scoped closure itself must not unwind past
        // running jobs (their borrows die with the caller's frames):
        // the job below must have fully completed by the time `scoped`
        // re-raises the closure's panic.
        let mut pool = Pool::new(2);
        let mut slot = 0u64;
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.execute(|| {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    slot = 7;
                });
                panic!("closure bug");
            });
        }));
        let payload = result.expect_err("the closure panic must propagate");
        assert_eq!(*payload.downcast_ref::<&str>().unwrap(), "closure bug");
        assert_eq!(slot, 7, "the job must have finished before the unwind");
    }

    #[test]
    fn first_panic_by_submission_order_wins() {
        let mut pool = Pool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.execute(|| panic!("first"));
                scope.execute(|| panic!("second"));
            });
        }));
        let payload = result.expect_err("panic expected");
        let message = payload.downcast_ref::<&str>().expect("str payload");
        assert_eq!(*message, "first");
    }
}
