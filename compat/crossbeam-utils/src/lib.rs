//! Offline stand-in for `crossbeam-utils` (0.8 API subset): scoped
//! threads, backed by `std::thread::scope`.
//!
//! Implements the surface the `homonym-core` pool executor uses:
//! [`thread::scope`], [`thread::Scope::spawn`], and
//! [`thread::ScopedJoinHandle::join`]. The one behavioural deviation from
//! the registry crate: if a spawned thread panics and its handle was never
//! joined, [`thread::scope`] *panics* at scope exit (the `std` behaviour)
//! instead of returning `Err` — so the `Ok` this shim always returns keeps
//! call sites source-compatible with the real crate without a
//! `catch_unwind` dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod thread {
    //! Scoped threads: spawn borrowing threads that are guaranteed to be
    //! joined before the scope returns.

    /// The result of joining a scoped thread: `Err` carries the panic
    /// payload, exactly as `std::thread::Result` does.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope for spawning borrowing threads, handed to the closure of
    /// [`scope`] (and to every spawned thread's closure, so workers can
    /// themselves spawn siblings).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// An owned handle to one scoped thread; joining returns the thread's
    /// result (or its panic payload).
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish; `Err` carries its panic
        /// payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from outside the scope; it is
        /// joined (at the latest) when the scope ends. As in crossbeam,
        /// the closure receives the scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope in which threads borrowing non-`'static` data can
    /// be spawned; every spawned thread is joined before this returns.
    ///
    /// Always returns `Ok` — an unjoined panicked thread re-panics here
    /// (see the crate docs for the deviation from the registry crate).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u32, 2, 3, 4];
            let mut results = vec![0u32; 2];
            let (left, right) = results.split_at_mut(1);
            scope(|s| {
                let h0 = s.spawn(|_| data[..2].iter().sum::<u32>());
                let h1 = s.spawn(|_| data[2..].iter().sum::<u32>());
                left[0] = h0.join().expect("no panic");
                right[0] = h1.join().expect("no panic");
            })
            .expect("scope completes");
            assert_eq!(results, vec![3, 7]);
        }

        #[test]
        fn workers_can_spawn_siblings() {
            let flag = std::sync::atomic::AtomicBool::new(false);
            scope(|s| {
                s.spawn(|s2| {
                    s2.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
                });
            })
            .expect("scope completes");
            assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
        }

        #[test]
        fn join_surfaces_panics_as_err() {
            scope(|s| {
                let h = s.spawn(|_| panic!("worker bug"));
                assert!(h.join().is_err());
            })
            .expect("joined panic does not poison the scope");
        }
    }
}
