//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements exactly the surface this workspace uses: a seedable
//! [`rngs::StdRng`] (SplitMix64 core — deterministic, not
//! cryptographic), [`Rng::gen_range`] over integer ranges,
//! [`Rng::gen_bool`], and [`Rng::gen`] for primitives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of 64-bit randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types constructible from a seed (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling of a value "uniformly at random" for primitive types,
/// mirroring `rand`'s `Standard` distribution.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly, mirroring `rand`'s
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of a primitive type (the `Standard` distribution).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: SplitMix64.
    ///
    /// Statistically sound for simulation workloads; **not**
    /// cryptographically secure (neither is the stream-compatible with
    /// the real `StdRng` — seeds produce different sequences).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u16 = rng.gen_range(1..=4);
            assert!((1..=4).contains(&y));
            let z: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
