//! Offline stand-in for `proptest` (1.x API subset).
//!
//! Implements random-input property testing with the `proptest!` macro,
//! `Strategy` combinators (`prop_map`, `prop_flat_map`), integer-range
//! and tuple strategies, `Just`, `any::<bool>()`, and the
//! `collection::{vec, btree_set, btree_map}` strategies — everything
//! this workspace's property tests use.
//!
//! Deliberate simplifications relative to real proptest:
//!
//! * **no shrinking** — a failing case panics with the generated inputs
//!   left to the assertion message;
//! * **deterministic seeding** — every test runs the same fixed-seed
//!   sequence, so failures always reproduce;
//! * `prop_assume!` skips the case rather than tracking a rejection
//!   quota.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Per-test configuration (only `cases` is supported).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic RNG driving generation.
pub mod test_runner {
    /// SplitMix64 generator with a fixed default seed, so every run of
    /// a property test explores the same sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator used by `proptest!`.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x853C_49E6_748F_EA9B,
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `lo..=hi` (inclusive).
        ///
        /// # Panics
        ///
        /// Panics if `lo > hi`.
        pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo <= hi, "empty range {lo}..={hi}");
            let span = (hi - lo) as u128 + 1;
            lo + (self.next_u64() as u128 % span) as u64
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from every generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let lo = self.start as i128;
                    let hi = self.end as i128 - 1;
                    (lo + rng.below(0, (hi - lo) as u64) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    (lo + rng.below(0, (hi - lo) as u64) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            rng.below(self.lo as u64, self.hi as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// `Vec` strategy; see [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates a `Vec` of `size.into()` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// `BTreeSet` strategy; see [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            // Duplicates collapse, so the set may come out smaller than
            // `target` — same contract as real proptest under a tight
            // element domain.
            (0..target).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates a `BTreeSet` of up to `size.into()` elements.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// `BTreeMap` strategy; see [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            (0..target)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }

    /// Generates a `BTreeMap` of up to `size.into()` entries.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

/// The [`Arbitrary`](arbitrary::Arbitrary) trait and [`any`](arbitrary::any).
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Skips the current case when `cond` is false (the stub's analogue of
/// proptest's rejection).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return;
        }
    };
}

/// Asserts within a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// item becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for _case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    (|| $body)();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges, tuples, flat-map and collections compose.
        #[test]
        fn generated_values_respect_their_strategies(
            (t, xs) in (1usize..=3).prop_flat_map(|t| {
                (Just(t), crate::collection::vec(0u16..10, t..=t + 2))
            }),
            flag in any::<bool>(),
            set in crate::collection::btree_set(0u32..5, 0..4),
        ) {
            prop_assume!(flag); // exercises the skip path on ~half the cases
            prop_assert!(flag);
            prop_assert!((1..=3).contains(&t));
            prop_assert!(xs.len() >= t && xs.len() <= t + 2);
            prop_assert!(xs.iter().all(|&x| x < 10));
            prop_assert!(set.len() < 4);
        }
    }

    #[test]
    fn deterministic_rng_repeats() {
        let mut a = crate::test_runner::TestRng::deterministic();
        let mut b = crate::test_runner::TestRng::deterministic();
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
