//! Offline stand-in for `crossbeam-channel` (0.5 API subset), backed by
//! `std::sync::mpsc`.
//!
//! Implements the surface the runtime crate uses: [`bounded`] /
//! [`unbounded`] constructors, a cloneable [`Sender`], and blocking
//! [`Receiver::recv`]. (`select!` and cloneable receivers are not
//! provided.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::mpsc;

/// Error returned by [`Sender::send`] when the receiver is gone; owns
/// the unsent message.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Like crossbeam: `Debug` regardless of `T`, eliding the message.
impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when all senders are gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// All senders are gone and the buffer is drained.
    Disconnected,
}

enum Tx<T> {
    Bounded(mpsc::SyncSender<T>),
    Unbounded(mpsc::Sender<T>),
}

impl<T> Clone for Tx<T> {
    fn clone(&self) -> Self {
        match self {
            Tx::Bounded(tx) => Tx::Bounded(tx.clone()),
            Tx::Unbounded(tx) => Tx::Unbounded(tx.clone()),
        }
    }
}

/// The sending half of a channel. Cloneable, like crossbeam's.
pub struct Sender<T>(Tx<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Sends `msg`, blocking while a bounded channel is full. Fails only
    /// when the receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        match &self.0 {
            Tx::Bounded(tx) => tx.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
            Tx::Unbounded(tx) => tx.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
        }
    }
}

/// The receiving half of a channel.
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Receiver<T> {
    /// Blocks until a message arrives, or fails once every sender is
    /// dropped and the buffer is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv().map_err(|mpsc::RecvError| RecvError)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// A blocking iterator over received messages, ending when the
    /// channel disconnects.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.0.iter()
    }
}

/// Creates a channel holding at most `cap` in-flight messages
/// (`cap = 0` is a rendezvous channel, as in crossbeam).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (Sender(Tx::Bounded(tx)), Receiver(rx))
}

/// Creates a channel with an unbounded buffer.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(Tx::Unbounded(tx)), Receiver(rx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bounded_round_trip_across_threads() {
        let (tx, rx) = bounded::<u32>(2);
        let tx2 = tx.clone();
        let h = thread::spawn(move || {
            for i in 0..10 {
                tx2.send(i).unwrap();
            }
        });
        let got: Vec<u32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        h.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }
}
