//! Umbrella crate for the **Byzantine agreement with homonyms** workspace
//! (Delporte-Gallet, Fauconnier, Guerraoui, Kermarrec, Ruppert, Tran-The —
//! PODC 2011).
//!
//! This crate re-exports the workspace members under stable module names and
//! hosts the runnable examples (`examples/`) and the cross-crate integration
//! tests (`tests/`).
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `homonym-core` | model types, Table 1 bounds, BA spec |
//! | [`classic`] | `homonym-classic` | unique-identifier baselines (EIG, Phase-King) |
//! | [`sync`] | `homonym-sync` | the synchronous T(A) transformer (Fig. 3) |
//! | [`psync`] | `homonym-psync` | partially synchronous protocols (Figs. 5–7) |
//! | [`sim`] | `homonym-sim` | deterministic simulator, adversaries, harness |
//! | [`runtime`] | `homonym-runtime` | threaded actor runtime |
//! | [`delay`] | `homonym-delay` | delay-based partial synchrony (DLS model equivalence) |
//! | [`lower_bounds`] | `homonym-lowerbounds` | executable impossibility scenarios |
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`, or:
//!
//! ```
//! use homonyms::core::{bounds, SystemConfig};
//!
//! let cfg = SystemConfig::builder(7, 4, 1).build().unwrap();
//! assert!(bounds::solvable(&cfg)); // synchronous: ℓ > 3t
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use homonym_classic as classic;
pub use homonym_core as core;
pub use homonym_delay as delay;
pub use homonym_lowerbounds as lower_bounds;
pub use homonym_psync as psync;
pub use homonym_runtime as runtime;
pub use homonym_sim as sim;
pub use homonym_sync as sync;

/// The types most programs need, in one import.
///
/// ```
/// use homonyms::prelude::*;
///
/// let cfg = SystemConfig::builder(4, 4, 1)
///     .synchrony(Synchrony::PartiallySynchronous)
///     .build()
///     .unwrap();
/// let factory = AgreementFactory::new(4, 4, 1, Domain::binary());
/// let mut sim = Simulation::builder(cfg, IdAssignment::unique(4), vec![true; 4])
///     .build_with(&factory);
/// assert!(sim.run(200).verdict.all_hold());
/// ```
pub mod prelude {
    pub use homonym_classic::{Eig, PhaseKing, UniqueRunner};
    pub use homonym_core::{
        bounds, ByzPower, Counting, Domain, Executor, Id, IdAssignment, Inbox, Pid, Pool, Protocol,
        ProtocolFactory, Recipients, Round, Sequential, Synchrony, SystemConfig,
    };
    pub use homonym_delay::{DelayCluster, DelayReport};
    pub use homonym_psync::{
        AgreementFactory, HomonymAgreement, RestrictedAgreement, RestrictedFactory,
    };
    pub use homonym_runtime::{Cluster, ShardedCluster};
    pub use homonym_sim::{
        RandomUntilGst, RunReport, ShardId, ShardReport, ShardSpec, ShardedSimulation, ShotSpec,
        Simulation,
    };
    pub use homonym_sync::{Transformed, TransformedFactory};
}
