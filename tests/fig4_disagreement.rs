//! Experiment E5 — the Figure 4 partition construction in detail.
//!
//! Beyond the boundary sweep in `table1_psync_boundary`, these tests pin
//! down the *mechanics* the proof relies on: replay fidelity (each side's
//! processes are fed byte-for-byte what their α/β counterparts received),
//! the exact split-brain outcome, and the role of multi-send (the
//! identifier-1 stack is impersonated by a single Byzantine process).

use homonyms::core::{Domain, Synchrony, SystemConfig};
use homonyms::lower_bounds::fig4;
use homonyms::psync::AgreementFactory;

fn psync_cfg(n: usize, ell: usize, t: usize) -> SystemConfig {
    SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid parameters")
}

#[test]
fn headline_split_brain_is_exact() {
    let cfg = psync_cfg(5, 4, 1);
    let factory = AgreementFactory::new(5, 4, 1, Domain::binary());
    let outcome = fig4::run(&factory, cfg, 8 * 14);
    match &outcome {
        fig4::Fig4Outcome::Partitioned {
            zero_side,
            one_side,
            replay_faithful,
            ..
        } => {
            assert!(replay_faithful, "sides must be indistinguishable from α/β");
            assert_eq!(zero_side.len(), 2, "0-side holds identifiers 3 and 4");
            assert_eq!(one_side.len(), 2, "1-side holds identifiers 2 and 4");
            assert!(zero_side.values().all(|d| *d == Some(false)), "{outcome:?}");
            assert!(one_side.values().all(|d| *d == Some(true)), "{outcome:?}");
        }
        other => panic!("expected a partitioned run, got {other:?}"),
    }
    assert!(outcome.split_brain());
}

#[test]
fn padded_system_still_splits() {
    // n = 8 > 2ℓ − 3t = 7: one padding process must stay invisible while
    // the contradiction forms.
    let cfg = psync_cfg(8, 5, 1);
    let factory = AgreementFactory::new(8, 5, 1, Domain::binary());
    let outcome = fig4::run(&factory, cfg, 8 * 14);
    assert!(outcome.violation_exhibited(), "{outcome:?}");
}

#[test]
fn two_fault_band() {
    // t = 2: ℓ = 7 > 3t = 6, and 2ℓ = 14 ≤ n + 3t = 14 for n = 8.
    let cfg = psync_cfg(8, 7, 2);
    let factory = AgreementFactory::new(8, 7, 2, Domain::binary());
    let outcome = fig4::run(&factory, cfg, 8 * 16);
    assert!(outcome.violation_exhibited(), "{outcome:?}");
}

#[test]
fn finitely_many_drops_only() {
    // The construction is legal in the basic partially synchronous model:
    // the partition heals at max(rα, rβ) + 1, after which nothing is
    // dropped. Healing time must be finite and reported.
    let cfg = psync_cfg(5, 4, 1);
    let factory = AgreementFactory::new(5, 4, 1, Domain::binary());
    match fig4::run(&factory, cfg, 8 * 14) {
        fig4::Fig4Outcome::Partitioned { healed_at, .. } => {
            assert!(healed_at > 0);
            assert!(healed_at <= 8 * 14);
        }
        other => panic!("expected a partitioned run, got {other:?}"),
    }
}
