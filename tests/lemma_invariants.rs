//! Experiment E16 — the paper’s safety lemmas checked on **every round**
//! of adversarial executions, not just on final outcomes.
//!
//! * Lemma 8: all `⟨ack v, ph⟩` sent by correct processes in a phase
//!   carry one value (the vote superround's whole purpose).
//! * Lemma 10: once a quorum of identifiers acked `(v, ph)`, every correct
//!   acker keeps a `(v, ph' ≥ ph)` lock at all later phase ends.
//! * Lemma 11: at the end of any phase after stabilization, all correct
//!   lock sets agree on a single value.
//! * Lemma 32/34/35/36: the Figure 7 counterparts (witness quorums), plus
//!   the at-most-one-lock-pair invariant.
//!
//! A protocol bug that never happens to produce disagreeing decisions in
//! these schedules would still trip these checks.

use std::collections::{BTreeMap, BTreeSet};

use homonyms::core::{
    ByzPower, Counting, Domain, Id, IdAssignment, Pid, Round, Synchrony, SystemConfig,
};
use homonyms::psync::invariants::{
    ack_values_by_phase, distinct_locked_values, phase_acks_unique, retains_acked_lock,
};
use homonyms::psync::{AgreementFactory, HomonymAgreement, RestrictedAgreement, RestrictedFactory};
use homonyms::sim::adversary::{Adversary, CloneSpammer, Equivocator, ReplayFuzzer, StaleReplayer};
use homonyms::sim::{RandomUntilGst, Simulation};

type Locks = BTreeSet<(bool, u64)>;

/// Per-phase-end snapshots of every correct process's lock set.
struct LockHistory {
    /// `snapshots[k]` = locks at the end of phase `k`.
    snapshots: Vec<BTreeMap<Pid, Locks>>,
}

fn psync_cfg(n: usize, ell: usize, t: usize) -> SystemConfig {
    SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid parameters")
}

fn restricted_cfg(n: usize, ell: usize, t: usize) -> SystemConfig {
    SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .counting(Counting::Numerate)
        .byz_power(ByzPower::Restricted)
        .build()
        .expect("valid parameters")
}

/// Steps a Figure 5 run to completion, snapshotting locks at phase ends,
/// then asserts Lemmas 8, 10 and 11 against the trace and the snapshots.
#[allow(clippy::too_many_arguments)]
fn check_fig5_lemmas(
    n: usize,
    ell: usize,
    t: usize,
    assignment: IdAssignment,
    inputs: Vec<bool>,
    byz: Vec<Pid>,
    adversary: impl Adversary<<HomonymAgreement<bool> as homonyms::core::Protocol>::Msg> + 'static,
    gst: u64,
    horizon: u64,
    drop_seed: u64,
) {
    let cfg = psync_cfg(n, ell, t);
    let factory = AgreementFactory::new(n, ell, t, Domain::binary());
    let mut sim = Simulation::builder(cfg, assignment.clone(), inputs)
        .byzantine(byz.clone(), adversary)
        .drops(RandomUntilGst::new(Round::new(gst), 0.3, drop_seed))
        .record_trace(true)
        .build_with(&factory);

    let mut history = LockHistory {
        snapshots: Vec::new(),
    };
    for r in 0..horizon {
        sim.step();
        if r % 8 == 7 {
            history.snapshots.push(
                sim.processes()
                    .map(|(pid, p)| (pid, p.locks().clone()))
                    .collect(),
            );
        }
    }
    let report = sim.report();
    assert!(
        report.verdict.all_hold(),
        "run must decide cleanly before lemma checks mean anything: {:?}",
        report.verdict
    );

    // --- Lemma 11: single locked value at phase ends after GST. ---
    let first_clean_phase = (gst / 8 + 1) as usize;
    for (k, snapshot) in history.snapshots.iter().enumerate().skip(first_clean_phase) {
        let distinct = distinct_locked_values(snapshot.values());
        assert!(
            distinct.len() <= 1,
            "phase {k}: correct processes lock different values: {distinct:?}"
        );
    }

    // --- Lemma 8: per-phase ack values from correct processes. ---
    let trace = sim.trace().expect("trace was recorded");
    let byz_set: BTreeSet<Pid> = byz.iter().copied().collect();
    let mut correct_acks: Vec<(bool, u64)> = Vec::new();
    // (value, phase) → identifiers that acked it (any sender).
    let mut ack_ids: BTreeMap<(bool, u64), BTreeSet<Id>> = BTreeMap::new();
    // (value, phase) → correct processes that acked it.
    let mut ack_senders: BTreeMap<(bool, u64), BTreeSet<Pid>> = BTreeMap::new();
    for d in trace.deliveries() {
        for (&v, ph) in d.msg.acks() {
            ack_ids.entry((v, ph)).or_default().insert(d.src_id);
            if !byz_set.contains(&d.from) {
                correct_acks.push((v, ph));
                ack_senders.entry((v, ph)).or_default().insert(d.from);
            }
        }
    }
    let by_phase = ack_values_by_phase(correct_acks);
    assert!(
        phase_acks_unique(&by_phase).is_empty(),
        "Lemma 8 violated in phases {:?}",
        phase_acks_unique(&by_phase)
    );

    // --- Lemma 10: quorum-acked values stay locked by their ackers. ---
    let quorum = ell - t;
    for ((v, ph), ids) in &ack_ids {
        if ids.len() < quorum {
            continue; // premise unmet
        }
        for &p in ack_senders.get(&(*v, *ph)).into_iter().flatten() {
            for (k, snapshot) in history.snapshots.iter().enumerate() {
                if (k as u64) < *ph {
                    continue;
                }
                let locks = &snapshot[&p];
                assert!(
                    retains_acked_lock(locks, v, *ph),
                    "Lemma 10: {p} acked ({v}, {ph}) under a quorum but holds {locks:?} \
                     at end of phase {k}"
                );
            }
        }
    }
}

#[test]
fn fig5_lemmas_hold_under_replay_fuzzing() {
    let (n, ell, t) = (5, 5, 1);
    check_fig5_lemmas(
        n,
        ell,
        t,
        IdAssignment::unique(n),
        vec![true, false, true, false, true],
        vec![Pid::new(4)],
        ReplayFuzzer::new(21, 2),
        16,
        16 + 8 * (ell as u64 + 2) + 24,
        5,
    );
}

#[test]
fn fig5_lemmas_hold_under_equivocation() {
    let (n, ell, t) = (5, 5, 1);
    let factory = AgreementFactory::new(n, ell, t, Domain::binary());
    let assignment = IdAssignment::unique(n);
    let byz: BTreeSet<Pid> = [Pid::new(2)].into();
    let split: BTreeSet<Pid> = [Pid::new(0), Pid::new(1)].into();
    let adversary = Equivocator::new(&factory, &assignment, &byz, false, true, split);
    check_fig5_lemmas(
        n,
        ell,
        t,
        assignment,
        vec![false, true, true, true, false],
        vec![Pid::new(2)],
        adversary,
        16,
        16 + 8 * (ell as u64 + 2) + 24,
        9,
    );
}

#[test]
fn fig5_lemmas_hold_with_homonym_groups_and_clone_spam() {
    // n = 6, ℓ = 5, t = 1: identifier 1 is a correct homonym pair; the
    // Byzantine process spams clone personas (multi-send allowed in the
    // unrestricted model).
    let (n, ell, t) = (6, 5, 1);
    let factory = AgreementFactory::new(n, ell, t, Domain::binary());
    let assignment = IdAssignment::stacked(ell, n).expect("ℓ ≤ n");
    let byz: BTreeSet<Pid> = [Pid::new(5)].into();
    let adversary = CloneSpammer::new(&factory, &assignment, &byz, &[false, true]);
    check_fig5_lemmas(
        n,
        ell,
        t,
        assignment,
        vec![true, true, false, false, true, false],
        vec![Pid::new(5)],
        adversary,
        16,
        16 + 8 * (ell as u64 + 2) + 32,
        13,
    );
}

#[test]
fn fig5_lemmas_hold_under_stale_replay() {
    let (n, ell, t) = (4, 4, 1);
    check_fig5_lemmas(
        n,
        ell,
        t,
        IdAssignment::unique(n),
        vec![true, false, false, true],
        vec![Pid::new(3)],
        StaleReplayer::new(3, 4),
        8,
        8 + 8 * (ell as u64 + 2) + 24,
        17,
    );
}

/// Figure 7 counterpart: Lemma 32 (per-phase ack uniqueness), Lemma 34
/// (at most one lock pair), Lemma 36 (post-GST lock coherence).
#[allow(clippy::too_many_arguments)]
fn check_fig7_lemmas(
    n: usize,
    ell: usize,
    t: usize,
    inputs: Vec<bool>,
    byz: Vec<Pid>,
    adversary: impl Adversary<<RestrictedAgreement<bool> as homonyms::core::Protocol>::Msg> + 'static,
    gst: u64,
    horizon: u64,
    drop_seed: u64,
) {
    let cfg = restricted_cfg(n, ell, t);
    let factory = RestrictedFactory::new(n, ell, t, Domain::binary());
    let assignment = IdAssignment::round_robin(ell, n).expect("ℓ ≤ n");
    let mut sim = Simulation::builder(cfg, assignment, inputs)
        .byzantine(byz.clone(), adversary)
        .drops(RandomUntilGst::new(Round::new(gst), 0.3, drop_seed))
        .record_trace(true)
        .build_with(&factory);

    let mut snapshots: Vec<BTreeMap<Pid, Locks>> = Vec::new();
    for r in 0..horizon {
        sim.step();
        if r % 8 == 7 {
            let snapshot: BTreeMap<Pid, Locks> = sim
                .processes()
                .map(|(pid, p)| (pid, p.locks().clone()))
                .collect();
            // Lemma 34: at most one pair per process, at every phase end.
            for (pid, locks) in &snapshot {
                assert!(
                    locks.len() <= 1,
                    "Lemma 34: {pid} holds {} lock pairs: {locks:?}",
                    locks.len()
                );
            }
            snapshots.push(snapshot);
        }
    }
    let report = sim.report();
    assert!(report.verdict.all_hold(), "{:?}", report.verdict);

    // Lemma 36: post-GST coherence.
    let first_clean_phase = (gst / 8 + 1) as usize;
    for (k, snapshot) in snapshots.iter().enumerate().skip(first_clean_phase) {
        let distinct = distinct_locked_values(snapshot.values());
        assert!(
            distinct.len() <= 1,
            "phase {k}: correct processes lock different values: {distinct:?}"
        );
    }

    // Lemma 32: per-phase ack uniqueness among correct senders.
    let trace = sim.trace().expect("trace was recorded");
    let byz_set: BTreeSet<Pid> = byz.iter().copied().collect();
    let correct_acks: Vec<(bool, u64)> = trace
        .deliveries()
        .iter()
        .filter(|d| !byz_set.contains(&d.from))
        .flat_map(|d| {
            d.msg
                .acks()
                .into_iter()
                .map(|(&v, ph)| (v, ph))
                .collect::<Vec<_>>()
        })
        .collect();
    let by_phase = ack_values_by_phase(correct_acks);
    assert!(
        phase_acks_unique(&by_phase).is_empty(),
        "Lemma 32 violated in phases {:?}",
        phase_acks_unique(&by_phase)
    );
}

#[test]
fn fig7_lemmas_hold_under_replay_fuzzing() {
    let (n, ell, t) = (5, 2, 1);
    check_fig7_lemmas(
        n,
        ell,
        t,
        vec![true, false, false, true, true],
        vec![Pid::new(2)],
        ReplayFuzzer::new(33, 2),
        16,
        16 + 8 * (ell as u64 + 2) + 32,
        7,
    );
}

#[test]
fn fig7_lemmas_hold_under_stale_replay() {
    let (n, ell, t) = (4, 2, 1);
    check_fig7_lemmas(
        n,
        ell,
        t,
        vec![false, true, false, true],
        vec![Pid::new(1)],
        StaleReplayer::new(2, 3),
        8,
        8 + 8 * (ell as u64 + 2) + 32,
        11,
    );
}

#[test]
fn fig7_lemmas_hold_at_the_liveness_edge() {
    // ℓ = t + 1 = 2 with n = 7: the minimum identifier budget the model
    // allows. All lemmas must hold; liveness comes from identifier 2's
    // being all-correct.
    let (n, ell, t) = (7, 2, 2);
    check_fig7_lemmas(
        n,
        ell,
        t,
        vec![true, true, false, false, true, false, true],
        vec![Pid::new(0), Pid::new(2)],
        ReplayFuzzer::new(41, 1),
        8,
        8 + 8 * (ell as u64 + 4) + 48,
        3,
    );
}
