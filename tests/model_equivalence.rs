//! Experiment E14 — the paper's Section 2 model-equivalence claim, made
//! executable: the two delay-based partially synchronous models of
//! Dwork–Lynch–Stockmeyer (delivery times *eventually bounded by a known
//! constant*; delivery times *always bounded by an unknown constant*)
//! simulate the basic lossy-round model, so the Figure 5 and Figure 7
//! protocols decide on them unchanged, with a finite lossy prefix playing
//! the role of the basic model's dropped messages.

use homonyms::core::{
    ByzPower, Counting, Domain, IdAssignment, Pid, Round, Synchrony, SystemConfig,
};
use homonyms::delay::{
    AlwaysBounded, DelayCluster, DoublingPacing, EventuallyBounded, FixedPacing, Instant,
    LinkTargeted,
};
use homonyms::psync::{AgreementFactory, RestrictedFactory};
use homonyms::sim::adversary::{ReplayFuzzer, Silent};
use homonyms::sim::Simulation;

fn psync_cfg(n: usize, ell: usize, t: usize) -> SystemConfig {
    SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid parameters")
}

fn restricted_cfg(n: usize, ell: usize, t: usize) -> SystemConfig {
    SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .counting(Counting::Numerate)
        .byz_power(ByzPower::Restricted)
        .build()
        .expect("valid parameters")
}

#[test]
fn known_bound_model_runs_figure5_unchanged() {
    // Known Δ = 2, calm from tick 40; rounds of exactly Δ ticks. The
    // pre-calm chaos loses messages (the basic model's drops); the Figure
    // 5 protocol rides it out and decides.
    let (n, ell, t) = (5, 5, 1);
    let cfg = psync_cfg(n, ell, t);
    let factory = AgreementFactory::new(n, ell, t, Domain::binary());
    let mut cluster = DelayCluster::builder(
        cfg,
        IdAssignment::unique(n),
        vec![true, false, true, false, true],
    )
    .byzantine([Pid::new(4)], ReplayFuzzer::new(17, 2))
    .model(EventuallyBounded::new(2, 40, 60, 23))
    .pacing(FixedPacing::new(2))
    .build();
    let report = cluster.run(&factory, 600);
    assert!(report.verdict.all_hold(), "{:?}", report.verdict);
    let clean = report.clean_from().expect("lateness must cease after calm");
    // Calm tick 40 / 2-tick rounds: round 22 is safely past the chaos.
    assert!(clean.index() <= 22, "clean from {clean}");
}

#[test]
fn unknown_bound_model_runs_figure5_unchanged() {
    // Unknown Δ = 5 against doubling pacing: early rounds lose traffic,
    // the guess-and-double schedule eventually outlasts Δ, and the
    // protocol decides. The pacing never reads Δ.
    let (n, ell, t) = (5, 5, 1);
    let cfg = psync_cfg(n, ell, t);
    let factory = AgreementFactory::new(n, ell, t, Domain::binary());
    let pacing = DoublingPacing::new(1, 8);
    let mut cluster = DelayCluster::builder(
        cfg,
        IdAssignment::unique(n),
        vec![false, false, true, true, false],
    )
    .byzantine([Pid::new(0)], Silent)
    .model(AlwaysBounded::between(2, 5, 31))
    .pacing(pacing)
    .build();
    let report = cluster.run(&factory, 400);
    assert!(report.verdict.all_hold(), "{:?}", report.verdict);
    assert!(report.late > 0, "short early rounds must lose messages");
    report.clean_from().expect("doubling must outrun the bound");
}

#[test]
fn homonym_assignment_survives_delay_network() {
    // n = 6, ℓ = 5, t = 1 (2ℓ = 10 > n + 3t = 9): one identifier is
    // shared by two correct processes. Stacked assignment, known-bound
    // delays.
    let (n, ell, t) = (6, 5, 1);
    let cfg = psync_cfg(n, ell, t);
    let factory = AgreementFactory::new(n, ell, t, Domain::binary());
    let assignment = IdAssignment::stacked(ell, n).expect("ℓ ≤ n");
    let mut cluster =
        DelayCluster::builder(cfg, assignment, vec![true, true, false, false, true, false])
            .byzantine([Pid::new(5)], ReplayFuzzer::new(5, 1))
            .model(EventuallyBounded::new(3, 30, 45, 41))
            .pacing(FixedPacing::new(3))
            .build();
    let report = cluster.run(&factory, 800);
    assert!(report.verdict.all_hold(), "{:?}", report.verdict);
}

#[test]
fn restricted_figure7_runs_on_both_delay_models() {
    // ℓ = t + 1 = 2 identifiers for 5 processes — far below the
    // unrestricted bound — and the Figure 7 protocol still decides on
    // either delay model, because the delay network enforces the same
    // restricted clamp as the lock-step engine.
    let (n, ell, t) = (5, 2, 1);
    let inputs = vec![true, false, false, true, true];
    let assignment = IdAssignment::round_robin(ell, n).expect("ℓ ≤ n");

    let factory = RestrictedFactory::new(n, ell, t, Domain::binary());
    let mut known = DelayCluster::builder(
        restricted_cfg(n, ell, t),
        assignment.clone(),
        inputs.clone(),
    )
    .byzantine([Pid::new(2)], ReplayFuzzer::new(29, 1))
    .model(EventuallyBounded::new(2, 24, 40, 7))
    .pacing(FixedPacing::new(2))
    .build();
    let report = known.run(&factory, 600);
    assert!(
        report.verdict.all_hold(),
        "known-bound: {:?}",
        report.verdict
    );

    let mut unknown = DelayCluster::builder(restricted_cfg(n, ell, t), assignment, inputs)
        .byzantine([Pid::new(2)], Silent)
        .model(AlwaysBounded::between(1, 4, 11))
        .pacing(DoublingPacing::new(1, 6))
        .build();
    let report = unknown.run(&factory, 400);
    assert!(
        report.verdict.all_hold(),
        "unknown-bound: {:?}",
        report.verdict
    );
}

#[test]
fn instant_delays_reproduce_the_lockstep_simulator_exactly() {
    // With 1-tick delays and 1-tick rounds the delay world *is* the
    // lock-step world: same decisions, same decision rounds, same message
    // counts, for the full Figure 5 protocol.
    let (n, ell, t) = (4, 4, 1);
    let cfg = psync_cfg(n, ell, t);
    let factory = AgreementFactory::new(n, ell, t, Domain::binary());
    let inputs = vec![true, false, false, true];

    let mut delay = DelayCluster::builder(cfg, IdAssignment::unique(n), inputs.clone())
        .byzantine([Pid::new(3)], ReplayFuzzer::new(3, 2))
        .model(Instant)
        .pacing(FixedPacing::new(1))
        .build();
    let dr = delay.run(&factory, 200);

    let mut sim = Simulation::builder(cfg, IdAssignment::unique(n), inputs)
        .byzantine([Pid::new(3)], ReplayFuzzer::new(3, 2))
        .build_with(&factory);
    let sr = sim.run(200);

    assert_eq!(dr.outcome.decisions, sr.outcome.decisions);
    assert_eq!(dr.rounds, sr.rounds);
    assert_eq!(dr.messages_sent, sr.messages_sent);
    assert_eq!(dr.late, 0);
    assert_eq!(dr.clean_from(), Some(Round::ZERO));
}

#[test]
fn worst_case_isolation_delays_but_does_not_break_agreement() {
    // The adversarial scheduler stalls every link touching p0 until tick
    // 48 — a delay-world partition. Once calm, the broadcast relay and
    // the decide relay catch p0 up, and all properties hold.
    let (n, ell, t) = (5, 5, 1);
    let cfg = psync_cfg(n, ell, t);
    let factory = AgreementFactory::new(n, ell, t, Domain::binary());
    let calm = 48;
    let mut cluster = DelayCluster::builder(
        cfg,
        IdAssignment::unique(n),
        vec![false, true, true, false, true],
    )
    .byzantine([Pid::new(4)], Silent)
    .model(LinkTargeted::isolating([Pid::new(0)], n, 10_000, 2, calm))
    .pacing(FixedPacing::new(2))
    .build();
    let report = cluster.run(&factory, 800);
    assert!(report.verdict.all_hold(), "{:?}", report.verdict);
    assert!(
        report.late + report.unarrived > 0,
        "the stall must cost something"
    );
    // p0 cannot decide before the stall lifts.
    let (_, p0_round) = report.outcome.decisions[&Pid::new(0)];
    assert!(
        p0_round.index() * 2 >= calm,
        "p0 decided at round {p0_round} while isolated until tick {calm}"
    );
}

#[test]
fn decision_happens_after_the_network_stabilizes_under_heavy_chaos() {
    // With pre-calm delays up to 50 ticks against 2-tick rounds, no phase
    // can complete before calm: the decision round must come after it.
    let (n, ell, t) = (4, 4, 1);
    let cfg = psync_cfg(n, ell, t);
    let factory = AgreementFactory::new(n, ell, t, Domain::binary());
    let calm_tick = 64;
    let mut cluster =
        DelayCluster::builder(cfg, IdAssignment::unique(n), vec![true, false, true, false])
            .model(EventuallyBounded::new(2, calm_tick, 50, 19))
            .pacing(FixedPacing::new(2))
            .build();
    let report = cluster.run(&factory, 800);
    assert!(report.verdict.all_hold(), "{:?}", report.verdict);
    let decided = report
        .outcome
        .last_decision_round()
        .expect("all decided")
        .index();
    assert!(
        decided * 2 >= calm_tick / 2,
        "decision at round {decided} is implausibly early for calm tick {calm_tick}"
    );
    assert!(report.late > 0, "chaos must actually have lost messages");
}
