//! Experiment E3 — Table 1, restricted-Byzantine row: with numerate
//! processes, solvable ⟺ `ℓ > t` (both synchrony models); with innumerate
//! processes the restriction does not help at all.

use homonyms::core::{
    bounds, ByzPower, Counting, Domain, IdAssignment, Pid, Synchrony, SystemConfig,
};
use homonyms::lower_bounds::{clones, search};
use homonyms::psync::RestrictedFactory;
use homonyms::sim::harness::{run_standard_suite, SuiteParams};

fn restricted_cfg(n: usize, ell: usize, t: usize, synchrony: Synchrony) -> SystemConfig {
    SystemConfig::builder(n, ell, t)
        .synchrony(synchrony)
        .counting(Counting::Numerate)
        .byz_power(ByzPower::Restricted)
        .build()
        .expect("valid parameters")
}

fn assert_solvable_cell(n: usize, ell: usize, t: usize, synchrony: Synchrony) {
    let cfg = restricted_cfg(n, ell, t, synchrony);
    assert!(
        bounds::solvable(&cfg),
        "precondition: ({n},{ell},{t}) solvable"
    );
    let factory = RestrictedFactory::new(n, ell, t, Domain::binary());
    let domain = Domain::binary();
    let gst = if synchrony == Synchrony::PartiallySynchronous {
        10
    } else {
        0
    };
    let assignment = IdAssignment::stacked(ell, n).expect("ℓ ≤ n");
    let params = SuiteParams {
        cfg,
        assignment: &assignment,
        domain: &domain,
        horizon: gst + factory.round_bound() + 24,
        gst,
        seed: 31,
    };
    let result = run_standard_suite(&factory, &params);
    assert!(
        result.all_hold(),
        "({n},{ell},{t},{synchrony:?}) failed: {:?}",
        result
            .failures()
            .iter()
            .map(|f| (&f.name, f.report.verdict.to_string()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn t_plus_1_identifiers_suffice_synchronous() {
    // ℓ = t + 1 = 2 with n = 4: far below 3t + 1 = 4.
    assert_solvable_cell(4, 2, 1, Synchrony::Synchronous);
}

#[test]
fn t_plus_1_identifiers_suffice_partially_synchronous() {
    // The same cell in partial synchrony — and also below (n + 3t)/2.
    assert_solvable_cell(4, 2, 1, Synchrony::PartiallySynchronous);
}

#[test]
fn t2_needs_three_identifiers() {
    assert_solvable_cell(7, 3, 2, Synchrony::PartiallySynchronous);
}

#[test]
fn ell_le_t_is_adversary_controlled() {
    // ℓ = 1 = t: Lemma 21's multivalent initial configuration — the
    // Byzantine persona alone steers the decision.
    let factory = RestrictedFactory::new(4, 1, 1, Domain::binary());
    let assignment = IdAssignment::anonymous(4);
    let report = search::multivalence_demo(
        &factory,
        &assignment,
        &[false, true, true, false],
        Pid::new(3),
        &[false, true],
        8 * 5,
    );
    assert!(report.multivalent(), "{report:?}");
    // And the predicate agrees the cell is unsolvable.
    let cfg = restricted_cfg(4, 1, 1, Synchrony::Synchronous);
    assert!(!bounds::solvable(&cfg));
}

#[test]
fn restriction_useless_for_innumerate_processes() {
    // Theorems 19/20: the Figure 7 protocol's counting is load-bearing —
    // under innumerate delivery the same system starves.
    let report = clones::innumerate_starvation(4, 2, 1, 8 * 6);
    assert!(report.counting_is_essential(), "{report:?}");
    // Table 1 for innumerate+restricted follows the unrestricted bounds.
    let cfg = SystemConfig::builder(4, 2, 1)
        .counting(Counting::Innumerate)
        .byz_power(ByzPower::Restricted)
        .build()
        .unwrap();
    assert!(!bounds::solvable(&cfg)); // ℓ = 2 ≤ 3t = 3
}

#[test]
fn clone_lockstep_reduction_invariant() {
    // The mechanism behind Theorem 19: homonym clones with equal inputs
    // stay in lockstep against group-uniform restricted adversaries.
    let factory = RestrictedFactory::new(6, 3, 1, Domain::binary());
    let report = clones::lockstep_report(&factory, 6, 3, 1, true, false, 8 * 4);
    assert_eq!(report.clones.len(), 4); // n − ℓ + 1
    assert!(report.in_lockstep(), "{report:?}");
}

#[test]
fn bounded_search_clean_on_solvable_cell() {
    let factory = RestrictedFactory::new(4, 2, 1, Domain::binary());
    let assignment = IdAssignment::round_robin(2, 4).expect("ℓ ≤ n");
    let result = search::exhaustive_search(
        &factory,
        &assignment,
        &[false, true, false, true],
        Pid::new(3),
        12,
        3_000,
    );
    assert!(!result.violated(), "{result:?}");
}
