//! Regression for the `Simulation::run` / `Simulation::run_exact`
//! boundary: `run` stops at the first round after which every correct
//! process has decided, while `run_exact` keeps stepping the full horizon
//! with decided processes still participating (as the paper's algorithms
//! prescribe). The per-round message counts below are the observed
//! behaviour of `T(EIG)` at (n = 5, ℓ = 4, t = 1) — pinned so a future
//! engine change that silently alters either stopping rule fails here.

use homonyms::core::{Domain, IdAssignment, SystemConfig};
use homonyms::sim::Simulation;
use homonyms::sync::TransformedFactory;

fn t_eig_sim() -> (
    Simulation<homonyms::sync::Transformed<homonyms::classic::Eig<bool>>>,
    u64,
) {
    let factory = TransformedFactory::new(homonyms::classic::Eig::new(4, 1, Domain::binary()), 1);
    let bound = factory.round_bound();
    let cfg = SystemConfig::builder(5, 4, 1).build().unwrap();
    let sim = Simulation::builder(cfg, IdAssignment::stacked(4, 5).unwrap(), vec![true; 5])
        .build_with(&factory);
    (sim, bound)
}

#[test]
fn run_stops_at_first_all_decided_round() {
    let (mut sim, bound) = t_eig_sim();
    let report = sim.run(bound + 9);
    assert!(report.verdict.all_hold(), "{}", report.verdict);
    let decided = report.all_decided_round.expect("all decided").index();
    // `run` executes the deciding round and then stops: rounds == r + 1.
    assert_eq!(report.rounds, decided + 1);
    assert!(
        report.rounds < bound + 9,
        "stopped well before the horizon ({} < {})",
        report.rounds,
        bound + 9
    );
    // Observed: everyone decides in round 7 (T(EIG)'s three-superround
    // schedule over EIG's t + 1 = 2 levels), so `run` executes exactly 8
    // rounds, each a full 5 × 4 = 20-message broadcast.
    assert_eq!(decided, 7);
    assert_eq!(sim.per_round_sent(), &[20; 8]);
    assert_eq!(report.messages_sent, 8 * 20);
}

#[test]
fn run_exact_keeps_stepping_after_decisions() {
    let horizon = 12u64;
    let (mut sim_run, _) = t_eig_sim();
    let stopped = sim_run.run(horizon);
    let (mut sim_exact, _) = t_eig_sim();
    let exact = sim_exact.run_exact(horizon);

    // Same decisions either way — the extra rounds change nothing.
    assert_eq!(stopped.outcome.decisions, exact.outcome.decisions);
    assert_eq!(stopped.all_decided_round, exact.all_decided_round);

    // But `run_exact` executes the full horizon...
    assert_eq!(exact.rounds, horizon);
    assert!(stopped.rounds < exact.rounds);
    // ...and the per-round counts agree on the shared prefix, with the
    // decided processes *still broadcasting* in rounds 8..12 (observed:
    // a constant 20 messages per round, before and after the decision).
    let prefix = sim_run.per_round_sent();
    let full = sim_exact.per_round_sent();
    assert_eq!(full.len() as u64, horizon);
    assert_eq!(&full[..prefix.len()], prefix);
    assert_eq!(full, &[20; 12]);
    assert_eq!(exact.messages_sent - stopped.messages_sent, 4 * 20);
}
