//! Experiment E12 — the threaded runtime and the deterministic simulator
//! execute the same automata with identical semantics: same decisions,
//! same decision rounds, same message counts, for every protocol family.

use homonyms::classic::{Eig, UniqueRunner};
use homonyms::core::{
    ByzPower, Counting, Domain, FnFactory, IdAssignment, Pid, ProtocolFactory, Round, Synchrony,
    SystemConfig, WireDecode, WireEncode,
};
use homonyms::psync::{AgreementFactory, RestrictedFactory};
use homonyms::runtime::Cluster;
use homonyms::sim::adversary::Silent;
use homonyms::sim::{RandomUntilGst, Simulation};
use homonyms::sync::TransformedFactory;

fn assert_parity<F, P>(
    factory: &F,
    cfg: SystemConfig,
    assignment: IdAssignment,
    inputs: Vec<bool>,
    byz: Vec<Pid>,
    gst: u64,
    horizon: u64,
) where
    P: homonyms::core::Protocol<Value = bool> + Send + 'static,
    P::Msg: WireEncode + WireDecode,
    F: ProtocolFactory<P = P>,
{
    let threaded = Cluster::new(cfg, assignment.clone(), inputs.clone())
        .byzantine(byz.clone(), Silent)
        .drops(RandomUntilGst::new(Round::new(gst), 0.3, 5))
        .run(factory, horizon);
    let mut sim = Simulation::builder(cfg, assignment, inputs)
        .byzantine(byz, Silent)
        .drops(RandomUntilGst::new(Round::new(gst), 0.3, 5))
        .build_with(factory);
    let simulated = sim.run(horizon);

    assert_eq!(threaded.outcome.decisions, simulated.outcome.decisions);
    assert_eq!(threaded.rounds, simulated.rounds);
    assert_eq!(threaded.messages_sent, simulated.messages_sent);
    assert_eq!(threaded.messages_dropped, simulated.messages_dropped);
    assert!(threaded.verdict.all_hold(), "{}", threaded.verdict);
}

#[test]
fn parity_eig_baseline() {
    let cfg = SystemConfig::builder(4, 4, 1).build().unwrap();
    let domain = Domain::binary();
    let factory = FnFactory::new(move |id, input| {
        UniqueRunner::new(Eig::new(4, 1, domain.clone()), id, input)
    });
    assert_parity(
        &factory,
        cfg,
        IdAssignment::unique(4),
        vec![true, false, true, false],
        vec![Pid::new(3)],
        0,
        12,
    );
}

#[test]
fn parity_transformer() {
    let cfg = SystemConfig::builder(6, 4, 1).build().unwrap();
    let factory = TransformedFactory::new(Eig::new(4, 1, Domain::binary()), 1);
    assert_parity(
        &factory,
        cfg,
        IdAssignment::stacked(4, 6).unwrap(),
        vec![true, true, false, false, true, false],
        vec![Pid::new(5)],
        0,
        factory.round_bound() + 9,
    );
}

#[test]
fn parity_psync_agreement_with_drops() {
    let cfg = SystemConfig::builder(4, 4, 1)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .unwrap();
    let factory = AgreementFactory::new(4, 4, 1, Domain::binary());
    assert_parity(
        &factory,
        cfg,
        IdAssignment::unique(4),
        vec![false, true, true, false],
        vec![Pid::new(2)],
        8,
        8 + factory.round_bound() + 24,
    );
}

#[test]
fn parity_restricted_agreement() {
    let cfg = SystemConfig::builder(4, 2, 1)
        .synchrony(Synchrony::PartiallySynchronous)
        .counting(Counting::Numerate)
        .byz_power(ByzPower::Restricted)
        .build()
        .unwrap();
    let factory = RestrictedFactory::new(4, 2, 1, Domain::binary());
    assert_parity(
        &factory,
        cfg,
        IdAssignment::round_robin(2, 4).unwrap(),
        vec![true, true, false, true],
        vec![Pid::new(3)],
        6,
        6 + factory.round_bound() + 24,
    );
}
