//! Property tests for the delivery fabric: `Inbox::collect_shared` must be
//! observationally identical to `Inbox::collect` under both counting
//! models, whatever the delivery multiset — including when many shared
//! envelopes alias one `Arc` allocation, which is exactly how the engine
//! fans out a broadcast.

use std::sync::Arc;

use homonyms::core::{Counting, Deliveries, Envelope, Id, Inbox, Pid, SharedEnvelope};
use proptest::prelude::*;

/// A delivery list strategy: up to 64 envelopes over 4 identifiers and a
/// tiny payload alphabet, so duplicate `(id, payload)` pairs (the
/// interesting case for multiplicities) are common.
fn deliveries() -> impl Strategy<Value = Vec<(u16, u8)>> {
    proptest::collection::vec((1u16..=4, 0u8..=5), 0..=64)
}

fn owned(raw: &[(u16, u8)]) -> Vec<Envelope<u8>> {
    raw.iter()
        .map(|&(src, msg)| Envelope {
            src: Id::new(src),
            msg,
        })
        .collect()
}

fn shared(raw: &[(u16, u8)]) -> Vec<SharedEnvelope<u8>> {
    raw.iter()
        .map(|&(src, msg)| SharedEnvelope::new(Id::new(src), msg))
        .collect()
}

/// Shared envelopes where equal payloads alias one allocation, as the
/// engine produces when one broadcast fans out to every recipient.
fn aliased(raw: &[(u16, u8)]) -> Vec<SharedEnvelope<u8>> {
    let pool: Vec<Arc<u8>> = (0u8..=5).map(Arc::new).collect();
    raw.iter()
        .map(|&(src, msg)| SharedEnvelope::shared(Id::new(src), Arc::clone(&pool[msg as usize])))
        .collect()
}

proptest! {
    #[test]
    fn collect_shared_equals_collect(raw in deliveries(), innumerate in any::<bool>()) {
        let counting = if innumerate {
            Counting::Innumerate
        } else {
            Counting::Numerate
        };
        let from_owned = Inbox::collect(owned(&raw), counting);
        let from_shared = Inbox::collect_shared(shared(&raw), counting);
        let from_aliased = Inbox::collect_shared(aliased(&raw), counting);
        prop_assert_eq!(&from_owned, &from_shared);
        prop_assert_eq!(&from_owned, &from_aliased);
        // Observational equality, not just structural: every query agrees.
        prop_assert_eq!(from_owned.total(), from_shared.total());
        prop_assert_eq!(from_owned.len(), from_shared.len());
        for (id, msg, count) in from_owned.iter() {
            prop_assert_eq!(from_shared.count(id, msg), count);
            prop_assert!(from_aliased.contains(id, msg));
        }
        let owned_flat: Vec<_> = from_owned.iter().map(|(i, m, c)| (i, *m, c)).collect();
        let shared_flat: Vec<_> = from_shared.iter().map(|(i, m, c)| (i, *m, c)).collect();
        prop_assert_eq!(owned_flat, shared_flat, "canonical iteration order agrees");
    }

    #[test]
    fn deliveries_buckets_equal_direct_collection(raw in deliveries(), innumerate in any::<bool>()) {
        let counting = if innumerate {
            Counting::Innumerate
        } else {
            Counting::Numerate
        };
        // Round-robin the deliveries over 3 recipients through the dense
        // buckets, and compare each drained inbox against collecting that
        // recipient's slice directly.
        let n = 3usize;
        let mut buckets: Deliveries<u8> = Deliveries::new(n);
        let mut per_recipient: Vec<Vec<Envelope<u8>>> = vec![Vec::new(); n];
        for (k, env) in shared(&raw).into_iter().enumerate() {
            let to = k % n;
            per_recipient[to].push(Envelope {
                src: env.src,
                msg: *env.msg,
            });
            buckets.push(Pid::new(to), env);
        }
        for (to, expected) in per_recipient.into_iter().enumerate() {
            let drained = buckets.take_inbox(Pid::new(to), counting);
            prop_assert_eq!(drained, Inbox::collect(expected, counting));
        }
    }
}
