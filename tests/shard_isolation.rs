//! Shard isolation: interleaving K agreement instances over one shared
//! delivery plane is **unobservable**. For random shard counts, sizes,
//! Byzantine sets, shot queues and inputs, every shard's per-shot
//! decisions, message counters, and full delivery trace are byte-identical
//! to running that shot alone in a fresh [`Simulation`].
//!
//! The second half pins the same property for the *executor*: fanning the
//! tick across a worker pool ([`Pool`]) at any worker count yields
//! byte-identical sharded traces, decisions, and per-shot report counters
//! to the [`Sequential`] schedule.

use std::fmt::Write as _;

use homonyms::classic::{Eig, UniqueRunner};
use homonyms::core::exec::{Executor, Pool, Sequential};
use homonyms::core::{Domain, FnFactory, IdAssignment, Pid, ProtocolFactory, SystemConfig};
use homonyms::sim::adversary::Silent;
use homonyms::sim::{
    ShardReport, ShardSpec, ShardedSimulation, ShardedTrace, ShotSpec, Simulation, Trace,
};
use proptest::prelude::*;

/// One random shard: size `n`, an optional Byzantine process, and 1–3
/// shots of random binary inputs.
#[derive(Clone, Debug)]
struct RandomShard {
    n: usize,
    byz: Option<Pid>,
    shots: Vec<Vec<bool>>,
}

fn shard_strategy() -> impl Strategy<Value = RandomShard> {
    (4usize..=6).prop_flat_map(|n| {
        (
            Just(n),
            // `n` encodes "no Byzantine process"; anything below names one.
            0usize..=n,
            proptest::collection::vec(proptest::collection::vec(any::<bool>(), n..=n), 1..=3),
        )
            .prop_map(|(n, byz_raw, shots)| RandomShard {
                n,
                byz: (byz_raw < n).then(|| Pid::new(byz_raw)),
                shots,
            })
    })
}

/// Unique-identifier EIG tolerating one fault — the workhorse synchronous
/// agreement for n ≥ 4.
fn eig_factory(n: usize) -> impl ProtocolFactory<P = UniqueRunner<Eig<bool>>> + Clone + 'static {
    let domain = Domain::binary();
    FnFactory::new(move |id, input| UniqueRunner::new(Eig::new(n, 1, domain.clone()), id, input))
}

fn cfg(n: usize) -> SystemConfig {
    SystemConfig::builder(n, n, 1).build().unwrap()
}

/// Canonical byte-stable rendering of a trace (the `fabric_golden`
/// format): one line per attempted delivery, in recording order.
fn trace_dump<M: homonyms::core::Message>(trace: &Trace<M>) -> String {
    let mut s = String::new();
    for d in trace.deliveries() {
        let _ = writeln!(
            s,
            "{}|{}|{}|{}|{:?}|{}",
            d.round, d.from, d.src_id, d.to, d.msg, d.dropped
        );
    }
    s
}

const HORIZON: u64 = 12;

/// Builds the sharded scheduler for a shard set on the given executor
/// (trace and wire-bit accounting on, so the comparison covers both).
fn build_sharded<E: Executor>(
    exec: E,
    shards: &[RandomShard],
) -> ShardedSimulation<UniqueRunner<Eig<bool>>, E> {
    let mut sharded = ShardedSimulation::with_executor(exec)
        .record_trace(true)
        .measure_bits(true);
    for shard in shards {
        let mut spec = ShardSpec::new(cfg(shard.n), IdAssignment::unique(shard.n));
        for inputs in &shard.shots {
            let mut shot = ShotSpec::new(inputs.clone()).horizon(HORIZON);
            if let Some(byz) = shard.byz {
                shot = shot.byzantine([byz], Silent);
            }
            spec = spec.shot(shot);
        }
        sharded.add_shard(spec, eig_factory(shard.n));
    }
    sharded
}

/// Canonical byte-stable rendering of a sharded trace (the
/// `fabric_golden` format): shard and shot tags plus the per-delivery
/// line, in global routing order.
fn sharded_trace_dump<M: homonyms::core::Message>(trace: &ShardedTrace<M>) -> String {
    let mut s = String::new();
    for e in trace.entries() {
        let d = &e.delivery;
        let _ = writeln!(
            s,
            "{}|{}|{}|{}|{}|{}|{:?}|{}",
            e.shard, e.shot, d.round, d.from, d.src_id, d.to, d.msg, d.dropped
        );
    }
    s
}

/// Canonical rendering of every observable of a sharded run's reports:
/// per-shot decisions, verdicts, round/message/bit counters, and
/// scheduling ticks.
fn report_dump(reports: &[ShardReport<bool>]) -> String {
    let mut s = String::new();
    for report in reports {
        for shot in &report.shots {
            let _ = writeln!(
                s,
                "{}#{}: decisions={:?} verdict={} rounds={} decided={:?} sent={} delivered={} \
                 dropped={} bits={:?} ticks={}..{}",
                shot.shard,
                shot.shot,
                shot.report.outcome.decisions,
                shot.report.verdict,
                shot.report.rounds,
                shot.report.all_decided_round,
                shot.report.messages_sent,
                shot.report.messages_delivered,
                shot.report.messages_dropped,
                shot.bits_sent,
                shot.started_tick,
                shot.finished_tick,
            );
        }
    }
    s
}

/// Runs a shard set under `exec` and returns every observable as one
/// byte-stable pair (trace dump, report dump).
fn observables<E: Executor>(exec: E, shards: &[RandomShard]) -> (String, String) {
    let mut sharded = build_sharded(exec, shards);
    let reports = sharded.run(64 * HORIZON);
    assert!(sharded.all_idle(), "every queue drains within the budget");
    (
        sharded_trace_dump(sharded.trace().unwrap()),
        report_dump(&reports),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sharded_shots_equal_solo_runs(shards in proptest::collection::vec(shard_strategy(), 1..=4)) {
        // The sharded run: all shards interleaved over one plane.
        let mut sharded = ShardedSimulation::new().record_trace(true);
        for shard in &shards {
            let mut spec = ShardSpec::new(cfg(shard.n), IdAssignment::unique(shard.n));
            for inputs in &shard.shots {
                let mut shot = ShotSpec::new(inputs.clone()).horizon(HORIZON);
                if let Some(byz) = shard.byz {
                    shot = shot.byzantine([byz], Silent);
                }
                spec = spec.shot(shot);
            }
            sharded.add_shard(spec, eig_factory(shard.n));
        }
        let reports = sharded.run(64 * HORIZON);
        prop_assert!(sharded.all_idle(), "every queue drains within the budget");
        let sharded_trace = sharded.trace().unwrap();

        // Each shot, replayed alone in a fresh single-shot simulation,
        // must be observationally identical.
        for (s, shard) in shards.iter().enumerate() {
            prop_assert_eq!(reports[s].shots.len(), shard.shots.len());
            for (q, inputs) in shard.shots.iter().enumerate() {
                let factory = eig_factory(shard.n);
                let mut builder = Simulation::builder(
                    cfg(shard.n),
                    IdAssignment::unique(shard.n),
                    inputs.clone(),
                )
                .record_trace(true);
                if let Some(byz) = shard.byz {
                    builder = builder.byzantine([byz], Silent);
                }
                let mut solo = builder.build_with(&factory);
                let solo_report = solo.run(HORIZON);

                let shot = &reports[s].shots[q];
                let label = format!("shard {s} shot {q}");
                prop_assert_eq!(
                    format!("{:?}", &shot.report.outcome.decisions),
                    format!("{:?}", &solo_report.outcome.decisions),
                    "decisions diverge at {}",
                    &label
                );
                prop_assert_eq!(shot.report.rounds, solo_report.rounds, "rounds at {}", &label);
                prop_assert_eq!(
                    shot.report.all_decided_round,
                    solo_report.all_decided_round,
                    "decision round at {}",
                    &label
                );
                prop_assert_eq!(
                    shot.report.messages_sent,
                    solo_report.messages_sent,
                    "sent at {}",
                    &label
                );
                prop_assert_eq!(
                    shot.report.messages_delivered,
                    solo_report.messages_delivered,
                    "delivered at {}",
                    &label
                );
                prop_assert_eq!(
                    shot.report.messages_dropped,
                    solo_report.messages_dropped,
                    "dropped at {}",
                    &label
                );

                // Byte-identical traces: the extracted shard/shot slice of
                // the interleaved trace equals the solo trace.
                let extracted =
                    sharded_trace.shard_shot_trace(homonyms::sim::ShardId::new(s), q);
                prop_assert_eq!(
                    trace_dump(&extracted),
                    trace_dump(solo.trace().unwrap()),
                    "trace diverges at {}",
                    &label
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The executor is unobservable: fanning the tick across a worker
    /// pool yields byte-identical traces, decisions, and per-shot report
    /// counters to the sequential schedule, at every worker count —
    /// including pools larger than the shard set.
    #[test]
    fn pool_executor_is_byte_identical_to_sequential(
        shards in proptest::collection::vec(shard_strategy(), 1..=4)
    ) {
        let (seq_trace, seq_reports) = observables(Sequential, &shards);
        for workers in [1usize, 2, 4, 7] {
            let (pool_trace, pool_reports) = observables(Pool::new(workers), &shards);
            prop_assert_eq!(
                &pool_trace,
                &seq_trace,
                "trace diverges at {} workers",
                workers
            );
            prop_assert_eq!(
                &pool_reports,
                &seq_reports,
                "reports diverge at {} workers",
                workers
            );
        }
    }
}

/// Fixed-scenario variant for CI's worker-count matrix: the worker count
/// comes from `POOL_WORKERS` (default 4), so the workflow can smoke-test
/// w = 1 vs w = 4 as separate jobs without recompiling the proptest.
#[test]
fn pool_workers_from_env_match_sequential() {
    let workers: usize = std::env::var("POOL_WORKERS")
        .ok()
        .and_then(|w| w.parse().ok())
        .unwrap_or(4);
    let shards: Vec<RandomShard> = (0..4)
        .map(|k| RandomShard {
            n: 4 + (k % 3),
            byz: (k % 2 == 0).then(|| Pid::new(k % 4)),
            shots: (0..=k % 3)
                .map(|q| (0..4 + (k % 3)).map(|i| (i + q + k) % 2 == 0).collect())
                .collect(),
        })
        .collect();
    let (seq_trace, seq_reports) = observables(Sequential, &shards);
    let (pool_trace, pool_reports) = observables(Pool::new(workers), &shards);
    assert_eq!(pool_trace, seq_trace, "trace diverges at {workers} workers");
    assert_eq!(
        pool_reports, seq_reports,
        "reports diverge at {workers} workers"
    );
    assert!(!seq_trace.is_empty() && !seq_reports.is_empty());
}
