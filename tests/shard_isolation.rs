//! Shard isolation: interleaving K agreement instances over one shared
//! delivery plane is **unobservable**. For random shard counts, sizes,
//! Byzantine sets, shot queues and inputs, every shard's per-shot
//! decisions, message counters, and full delivery trace are byte-identical
//! to running that shot alone in a fresh [`Simulation`].

use std::fmt::Write as _;

use homonyms::classic::{Eig, UniqueRunner};
use homonyms::core::{Domain, FnFactory, IdAssignment, Pid, ProtocolFactory, SystemConfig};
use homonyms::sim::adversary::Silent;
use homonyms::sim::{ShardSpec, ShardedSimulation, ShotSpec, Simulation, Trace};
use proptest::prelude::*;

/// One random shard: size `n`, an optional Byzantine process, and 1–3
/// shots of random binary inputs.
#[derive(Clone, Debug)]
struct RandomShard {
    n: usize,
    byz: Option<Pid>,
    shots: Vec<Vec<bool>>,
}

fn shard_strategy() -> impl Strategy<Value = RandomShard> {
    (4usize..=6).prop_flat_map(|n| {
        (
            Just(n),
            // `n` encodes "no Byzantine process"; anything below names one.
            0usize..=n,
            proptest::collection::vec(proptest::collection::vec(any::<bool>(), n..=n), 1..=3),
        )
            .prop_map(|(n, byz_raw, shots)| RandomShard {
                n,
                byz: (byz_raw < n).then(|| Pid::new(byz_raw)),
                shots,
            })
    })
}

/// Unique-identifier EIG tolerating one fault — the workhorse synchronous
/// agreement for n ≥ 4.
fn eig_factory(n: usize) -> impl ProtocolFactory<P = UniqueRunner<Eig<bool>>> + Clone + 'static {
    let domain = Domain::binary();
    FnFactory::new(move |id, input| UniqueRunner::new(Eig::new(n, 1, domain.clone()), id, input))
}

fn cfg(n: usize) -> SystemConfig {
    SystemConfig::builder(n, n, 1).build().unwrap()
}

/// Canonical byte-stable rendering of a trace (the `fabric_golden`
/// format): one line per attempted delivery, in recording order.
fn trace_dump<M: homonyms::core::Message>(trace: &Trace<M>) -> String {
    let mut s = String::new();
    for d in trace.deliveries() {
        let _ = writeln!(
            s,
            "{}|{}|{}|{}|{:?}|{}",
            d.round, d.from, d.src_id, d.to, d.msg, d.dropped
        );
    }
    s
}

const HORIZON: u64 = 12;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sharded_shots_equal_solo_runs(shards in proptest::collection::vec(shard_strategy(), 1..=4)) {
        // The sharded run: all shards interleaved over one plane.
        let mut sharded = ShardedSimulation::new().record_trace(true);
        for shard in &shards {
            let mut spec = ShardSpec::new(cfg(shard.n), IdAssignment::unique(shard.n));
            for inputs in &shard.shots {
                let mut shot = ShotSpec::new(inputs.clone()).horizon(HORIZON);
                if let Some(byz) = shard.byz {
                    shot = shot.byzantine([byz], Silent);
                }
                spec = spec.shot(shot);
            }
            sharded.add_shard(spec, eig_factory(shard.n));
        }
        let reports = sharded.run(64 * HORIZON);
        prop_assert!(sharded.all_idle(), "every queue drains within the budget");
        let sharded_trace = sharded.trace().unwrap();

        // Each shot, replayed alone in a fresh single-shot simulation,
        // must be observationally identical.
        for (s, shard) in shards.iter().enumerate() {
            prop_assert_eq!(reports[s].shots.len(), shard.shots.len());
            for (q, inputs) in shard.shots.iter().enumerate() {
                let factory = eig_factory(shard.n);
                let mut builder = Simulation::builder(
                    cfg(shard.n),
                    IdAssignment::unique(shard.n),
                    inputs.clone(),
                )
                .record_trace(true);
                if let Some(byz) = shard.byz {
                    builder = builder.byzantine([byz], Silent);
                }
                let mut solo = builder.build_with(&factory);
                let solo_report = solo.run(HORIZON);

                let shot = &reports[s].shots[q];
                let label = format!("shard {s} shot {q}");
                prop_assert_eq!(
                    format!("{:?}", &shot.report.outcome.decisions),
                    format!("{:?}", &solo_report.outcome.decisions),
                    "decisions diverge at {}",
                    &label
                );
                prop_assert_eq!(shot.report.rounds, solo_report.rounds, "rounds at {}", &label);
                prop_assert_eq!(
                    shot.report.all_decided_round,
                    solo_report.all_decided_round,
                    "decision round at {}",
                    &label
                );
                prop_assert_eq!(
                    shot.report.messages_sent,
                    solo_report.messages_sent,
                    "sent at {}",
                    &label
                );
                prop_assert_eq!(
                    shot.report.messages_delivered,
                    solo_report.messages_delivered,
                    "delivered at {}",
                    &label
                );
                prop_assert_eq!(
                    shot.report.messages_dropped,
                    solo_report.messages_dropped,
                    "dropped at {}",
                    &label
                );

                // Byte-identical traces: the extracted shard/shot slice of
                // the interleaved trace equals the solo trace.
                let extracted =
                    sharded_trace.shard_shot_trace(homonyms::sim::ShardId::new(s), q);
                prop_assert_eq!(
                    trace_dump(&extracted),
                    trace_dump(solo.trace().unwrap()),
                    "trace diverges at {}",
                    &label
                );
            }
        }
    }
}
