//! Property-based tests (proptest) over the core invariants:
//! randomized adversaries, assignments, inputs, and drop schedules on
//! solvable configurations must never produce a violation; executions are
//! deterministic given the seed; quorum arithmetic matches Lemma 7.

use std::collections::BTreeSet;

use homonyms::classic::Eig;
use homonyms::core::{
    bounds, ByzPower, Counting, Domain, Id, IdAssignment, Pid, ProperSet, Round, Synchrony,
    SystemConfig,
};
use homonyms::psync::{AgreementFactory, RestrictedFactory};
use homonyms::sim::adversary::{
    Adversary, CloneSpammer, CrashAt, Equivocator, Mimic, ReplayFuzzer, Silent,
};
use homonyms::sim::{RandomUntilGst, Simulation};
use homonyms::sync::TransformedFactory;
use proptest::prelude::*;

/// Picks one of the six standard strategies for a Figure 5 run.
fn fig5_adversary(
    kind: u8,
    factory: &AgreementFactory<bool>,
    assignment: &IdAssignment,
    byz: &BTreeSet<Pid>,
    seed: u64,
    horizon: u64,
) -> Box<dyn Adversary<<homonyms::psync::HomonymAgreement<bool> as homonyms::core::Protocol>::Msg>>
{
    let byz_inputs: Vec<(Pid, bool)> = byz.iter().map(|&p| (p, p.index() % 2 == 0)).collect();
    let split: BTreeSet<Pid> = Pid::all(assignment.n())
        .filter(|p| p.index() % 2 == 0)
        .collect();
    match kind % 6 {
        0 => Box::new(Silent),
        1 => Box::new(Mimic::new(factory, assignment, &byz_inputs)),
        2 => Box::new(CrashAt::new(
            Round::new(horizon / 2),
            Mimic::new(factory, assignment, &byz_inputs),
        )),
        3 => Box::new(Equivocator::new(
            factory, assignment, byz, false, true, split,
        )),
        4 => Box::new(CloneSpammer::new(factory, assignment, byz, &[false, true])),
        _ => Box::new(ReplayFuzzer::new(seed, 3)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// T(EIG) on the solvable cell (n ∈ 4..8, ℓ = 4, t = 1): random
    /// inputs, random Byzantine placement, random strategy — all three
    /// properties always hold.
    #[test]
    fn transformer_always_correct_on_solvable_cell(
        n in 4usize..8,
        inputs in proptest::collection::vec(any::<bool>(), 8),
        byz_index in 0usize..8,
        kind in 0u8..6,
        seed in 0u64..1_000,
    ) {
        let (ell, t) = (4usize, 1usize);
        let cfg = SystemConfig::builder(n, ell, t).build().unwrap();
        prop_assume!(bounds::solvable(&cfg));
        let assignment = IdAssignment::stacked(ell, n).unwrap();
        let factory = TransformedFactory::new(Eig::new(ell, t, Domain::binary()), t);
        let byz = Pid::new(byz_index % n);
        let byz_set: BTreeSet<Pid> = [byz].into();
        let horizon = factory.round_bound() + 9;
        let byz_inputs = vec![(byz, true)];
        let split: BTreeSet<Pid> = Pid::all(n).filter(|p| p.index() % 2 == 0).collect();
        let adversary: Box<dyn Adversary<_>> = match kind {
            0 => Box::new(Silent),
            1 => Box::new(Mimic::new(&factory, &assignment, &byz_inputs)),
            2 => Box::new(CrashAt::new(Round::new(4), Mimic::new(&factory, &assignment, &byz_inputs))),
            3 => Box::new(Equivocator::new(&factory, &assignment, &byz_set, false, true, split)),
            4 => Box::new(CloneSpammer::new(&factory, &assignment, &byz_set, &[false, true])),
            _ => Box::new(ReplayFuzzer::new(seed, 3)),
        };
        struct B<M>(Box<dyn Adversary<M>>);
        impl<M: homonyms::core::Message> Adversary<M> for B<M> {
            fn send(&mut self, ctx: &homonyms::sim::AdvCtx<'_>) -> Vec<homonyms::sim::Emission<M>> { self.0.send(ctx) }
            fn receive(&mut self, round: Round, inboxes: &std::collections::BTreeMap<Pid, homonyms::core::Inbox<M>>) { self.0.receive(round, inboxes); }
        }
        let mut sim = Simulation::builder(cfg, assignment, inputs[..n].to_vec())
            .byzantine([byz], B(adversary))
            .build_with(&factory);
        let report = sim.run(horizon);
        prop_assert!(report.verdict.all_hold(), "{}", report.verdict);
    }

    /// Figure 5 on (4, 4, 1): random GST, drop seed, inputs, strategy.
    #[test]
    fn psync_agreement_always_correct_on_solvable_cell(
        inputs in proptest::collection::vec(any::<bool>(), 4),
        byz_index in 0usize..4,
        kind in 0u8..6,
        gst in 0u64..16,
        seed in 0u64..1_000,
    ) {
        let cfg = SystemConfig::builder(4, 4, 1)
            .synchrony(Synchrony::PartiallySynchronous)
            .build()
            .unwrap();
        let assignment = IdAssignment::unique(4);
        let factory = AgreementFactory::new(4, 4, 1, Domain::binary());
        let byz = Pid::new(byz_index);
        let byz_set: BTreeSet<Pid> = [byz].into();
        let horizon = gst + factory.round_bound() + 24;
        let adversary = fig5_adversary(kind, &factory, &assignment, &byz_set, seed, horizon);
        struct B<M>(Box<dyn Adversary<M>>);
        impl<M: homonyms::core::Message> Adversary<M> for B<M> {
            fn send(&mut self, ctx: &homonyms::sim::AdvCtx<'_>) -> Vec<homonyms::sim::Emission<M>> { self.0.send(ctx) }
            fn receive(&mut self, round: Round, inboxes: &std::collections::BTreeMap<Pid, homonyms::core::Inbox<M>>) { self.0.receive(round, inboxes); }
        }
        let mut sim = Simulation::builder(cfg, assignment, inputs)
            .byzantine([byz], B(adversary))
            .drops(RandomUntilGst::new(Round::new(gst), 0.3, seed))
            .build_with(&factory);
        let report = sim.run(horizon);
        prop_assert!(report.verdict.all_hold(), "{}", report.verdict);
    }

    /// Figure 7 (restricted, numerate) on (4, 2, 1): random everything.
    #[test]
    fn restricted_agreement_always_correct_on_solvable_cell(
        inputs in proptest::collection::vec(any::<bool>(), 4),
        byz_index in 0usize..4,
        mimic_input in any::<bool>(),
        gst in 0u64..12,
        seed in 0u64..1_000,
    ) {
        let cfg = SystemConfig::builder(4, 2, 1)
            .synchrony(Synchrony::PartiallySynchronous)
            .counting(Counting::Numerate)
            .byz_power(ByzPower::Restricted)
            .build()
            .unwrap();
        let assignment = IdAssignment::round_robin(2, 4).unwrap();
        let factory = RestrictedFactory::new(4, 2, 1, Domain::binary());
        let byz = Pid::new(byz_index);
        let horizon = gst + factory.round_bound() + 24;
        let adversary = Mimic::new(&factory, &assignment, &[(byz, mimic_input)]);
        let mut sim = Simulation::builder(cfg, assignment, inputs)
            .byzantine([byz], adversary)
            .drops(RandomUntilGst::new(Round::new(gst), 0.25, seed))
            .build_with(&factory);
        let report = sim.run(horizon);
        prop_assert!(report.verdict.all_hold(), "{}", report.verdict);
    }

    /// Same seed ⇒ identical execution (decisions, rounds, messages).
    #[test]
    fn executions_are_deterministic(seed in 0u64..500, gst in 0u64..10) {
        let run = || {
            let cfg = SystemConfig::builder(4, 4, 1)
                .synchrony(Synchrony::PartiallySynchronous)
                .build()
                .unwrap();
            let factory = AgreementFactory::new(4, 4, 1, Domain::binary());
            let mut sim = Simulation::builder(
                cfg,
                IdAssignment::unique(4),
                vec![true, false, false, true],
            )
            .byzantine([Pid::new(1)], ReplayFuzzer::new(seed, 2))
            .drops(RandomUntilGst::new(Round::new(gst), 0.4, seed))
            .build_with(&factory);
            let report = sim.run(gst + factory.round_bound() + 24);
            (
                report.outcome.decisions,
                report.rounds,
                report.messages_sent,
                report.messages_dropped,
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Lemma 7 arithmetic ⟺ the partially synchronous Table 1 condition.
    #[test]
    fn lemma7_matches_condition(n in 1usize..40, ell in 1usize..40, t in 0usize..12) {
        prop_assume!(ell <= n && t < n);
        let expected = 2 * ell > n + 3 * t;
        prop_assert_eq!(bounds::lemma7_holds(n, ell, t), expected);
    }

    /// Proper sets only ever grow, and never leave the domain.
    #[test]
    fn proper_sets_grow_monotonically(
        updates in proptest::collection::vec(
            proptest::collection::vec((1u16..6, proptest::collection::btree_set(0u32..4, 0..4)), 0..5),
            0..6,
        ),
        t in 0usize..3,
    ) {
        let domain = Domain::range(4);
        let mut proper = ProperSet::new(1u32);
        let mut previous: BTreeSet<u32> = proper.as_set().clone();
        for round in updates {
            let views: Vec<(Id, &BTreeSet<u32>)> =
                round.iter().map(|(i, s)| (Id::new(*i), s)).collect();
            proper.update_by_identifiers(&views, t, &domain);
            let current = proper.as_set().clone();
            prop_assert!(current.is_superset(&previous), "proper set shrank");
            prop_assert!(current.iter().all(|v| domain.contains(v)));
            previous = current;
        }
    }

    /// Inbox semantics: innumerate is the multiplicity-1 projection of
    /// numerate; identifier counting agrees between the two.
    #[test]
    fn inbox_innumerate_is_a_projection(
        deliveries in proptest::collection::vec((1u16..5, 0u8..4), 0..20),
    ) {
        use homonyms::core::{Envelope, Inbox};
        let envs: Vec<Envelope<u8>> = deliveries
            .iter()
            .map(|&(i, m)| Envelope { src: Id::new(i), msg: m })
            .collect();
        let numerate = Inbox::collect(envs.clone(), Counting::Numerate);
        let innumerate = Inbox::collect(envs, Counting::Innumerate);
        for (id, msg, count) in numerate.iter() {
            prop_assert!(count >= 1);
            prop_assert_eq!(innumerate.count(id, msg), 1);
        }
        prop_assert_eq!(
            numerate.ids_where(|m| *m == 0).collect::<Vec<_>>(),
            innumerate.ids_where(|m| *m == 0).collect::<Vec<_>>()
        );
        prop_assert!(numerate.count_where(|m| *m == 0) >= innumerate.count_where(|m| *m == 0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two independent renderings of Lemma 7's precondition — the
    /// arithmetic in `core::bounds` (derived from the quorum-overlap
    /// algebra) and the plain restatement in `psync::invariants` — agree
    /// everywhere (for ℓ ≤ n, where assignments exist).
    #[test]
    fn lemma7_predicates_agree(n in 1usize..40, ell in 1usize..40, t in 0usize..12) {
        prop_assume!(ell <= n);
        prop_assert_eq!(
            homonyms::core::bounds::lemma7_holds(n, ell, t),
            homonyms::psync::invariants::lemma7_applies(n, ell, t),
            "n={} ell={} t={}", n, ell, t
        );
    }
}
