//! Scenario schedules end to end: replay determinism, executor
//! independence of churned sharded runs, and the full
//! breach → shrink → hex-replay loop the fuzz campaign relies on.
//!
//! Three properties:
//!
//! 1. **Replay determinism** — drawing and running the same scenario
//!    seed twice yields byte-identical verdicts, reports, and trace
//!    digests; serializing the schedule through its hex replay line
//!    changes nothing.
//! 2. **Executor independence** — a schedule's shard-churn events
//!    (`ShardAbort` / `ShardEnqueue`), compiled to a [`ChurnPlan`] and
//!    run on [`Sequential`] and [`Pool`] executors, produce
//!    byte-identical sharded traces and per-shot reports.
//! 3. **Shrinker soundness** — a deliberately injected invariant
//!    violation (Byzantine count pushed past `t` mid-run) is caught as
//!    a [`ScenarioVerdict::Breach`], shrunk to a minimal one-event
//!    schedule, and that schedule replays to the identical verdict and
//!    digest from its hex line.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use homonyms::classic::{Eig, UniqueRunner};
use homonyms::core::exec::{Executor, Pool, Sequential};
use homonyms::core::scenario::{sub_seed, DropSpec, Schedule, ScheduleEvent, StrategyKind};
use homonyms::core::{Domain, FnFactory, IdAssignment, Pid, ProtocolFactory, Round, SystemConfig};
use homonyms::sim::scenario::{
    run_scenario, schedule_churn_plan, shrink, trace_digest, Scenario, ScenarioVerdict,
};
use homonyms::sim::{ShardSpec, ShardedSimulation, ShardedTrace, ShotSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Unique-identifier EIG tolerating one fault.
fn eig_factory(n: usize) -> impl ProtocolFactory<P = UniqueRunner<Eig<bool>>> + Clone + 'static {
    let domain = Domain::binary();
    FnFactory::new(move |id, input| UniqueRunner::new(Eig::new(n, 1, domain.clone()), id, input))
}

fn cfg(n: usize) -> SystemConfig {
    SystemConfig::builder(n, n, 1).build().unwrap()
}

/// Canonical byte-stable rendering of a sharded trace: the
/// `fabric_golden` delivery line prefixed with shard and shot indices.
fn sharded_dump<M: homonyms::core::Message>(trace: &ShardedTrace<M>) -> String {
    let mut s = String::new();
    for e in trace.entries() {
        let d = &e.delivery;
        let _ = writeln!(
            s,
            "{}/{}|{}|{}|{}|{}|{:?}|{}",
            e.shard, e.shot, d.round, d.from, d.src_id, d.to, d.msg, d.dropped
        );
    }
    s
}

/// FNV-1a over a dump string (the `fabric_golden` digest).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deliberately over-budget scenario: `t = 1`, clean start, and a
/// schedule that turns **two** processes Byzantine at round 1 (plus
/// `noise` decorative events the shrinker should strip).
fn over_budget_scenario(noise: bool) -> Scenario {
    let n = 4;
    let mut schedule = Schedule::new(0xBAD_5EED, Round::ZERO, Round::new(12));
    if noise {
        schedule.push(
            Round::ZERO,
            ScheduleEvent::SetDrops {
                policy: DropSpec::None,
            },
        );
        schedule.push(
            Round::ZERO,
            ScheduleEvent::SwitchStrategy {
                strategy: StrategyKind::Silent,
            },
        );
        schedule.push(
            Round::new(2),
            ScheduleEvent::SetTopology {
                cut: BTreeSet::new(),
            },
        );
    }
    schedule.push(
        Round::new(1),
        ScheduleEvent::TurnByzantine {
            pids: [Pid::new(0), Pid::new(1)].into_iter().collect(),
        },
    );
    schedule.normalize();
    Scenario {
        cfg: cfg(n),
        assignment: IdAssignment::unique(n),
        inputs: vec![true, false, true, true],
        init_byz: BTreeSet::new(),
        init_strategy: StrategyKind::Silent,
        init_drops: DropSpec::None,
        schedule,
    }
}

/// The acceptance loop in one test: the injected violation is caught,
/// shrunk to the single offending event, and the minimal schedule
/// replays to the identical verdict and digest from its hex line.
#[test]
fn injected_violation_is_caught_shrunk_and_replayed() {
    let factory = eig_factory(4);
    let scenario = over_budget_scenario(true);
    let rep = run_scenario(&scenario, &factory);
    let ScenarioVerdict::Breach { round, ref reason } = rep.verdict else {
        panic!("expected a budget breach, got {:?}", rep.verdict);
    };
    assert_eq!(round, Round::new(1));
    assert!(reason.contains("budget"), "unexpected reason: {reason}");

    // Shrink: the three noise events go, the offending one stays.
    let min = shrink(&scenario, &factory, &rep.verdict);
    assert_eq!(min.schedule.events.len(), 1, "minimal counterexample");
    assert!(matches!(
        min.schedule.events[0].event,
        ScheduleEvent::TurnByzantine { .. }
    ));

    // Replay the minimal schedule from its serialized hex line.
    let hex = min.schedule.to_hex();
    let mut replayed = over_budget_scenario(true);
    replayed.schedule = Schedule::from_hex(&hex).expect("replay line decodes");
    let a = run_scenario(&min, &factory);
    let b = run_scenario(&replayed, &factory);
    assert_eq!(a.verdict, rep.verdict);
    assert_eq!(a.verdict, b.verdict);
    assert_eq!(a.trace_digest, b.trace_digest);
}

/// Builds a churned sharded run on the given executor from one shared
/// schedule, and returns `(trace digest, reports rendered via Debug)`.
fn churned_run<E: Executor>(exec: E, schedule: &Schedule, shots: &[Vec<bool>]) -> (u64, String) {
    const N: usize = 4;
    let mut sharded: ShardedSimulation<UniqueRunner<Eig<bool>>, E> =
        ShardedSimulation::with_executor(exec)
            .record_trace(true)
            .measure_bits(true);
    for inputs in shots {
        let spec = ShardSpec::new(cfg(N), IdAssignment::unique(N))
            .shot(ShotSpec::new(inputs.clone()).horizon(12));
        sharded.add_shard(spec, eig_factory(N));
    }
    let plan = schedule_churn_plan(schedule, |_, inputs| {
        ShotSpec::new(inputs.to_vec()).horizon(12)
    });
    let reports = sharded.run_churned(plan, 64);
    let digest = fnv1a(sharded_dump(sharded.trace().expect("trace on")).as_bytes());
    (digest, format!("{reports:?}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite: same seed → byte-identical verdicts, reports, and
    /// trace digests on replay, including through the hex line.
    #[test]
    fn drawn_schedules_replay_deterministically(seed in any::<u64>()) {
        let factory = eig_factory(5);
        let scenario = Scenario::draw(seed, cfg(5), 10);
        let a = run_scenario(&scenario, &factory);
        let b = run_scenario(&scenario, &factory);
        prop_assert_eq!(&a.verdict, &b.verdict);
        prop_assert_eq!(a.trace_digest, b.trace_digest);
        prop_assert_eq!(format!("{:?}", a.report), format!("{:?}", b.report));

        let mut swapped = Scenario::draw(seed, cfg(5), 10);
        swapped.schedule =
            Schedule::from_hex(&scenario.schedule.to_hex()).expect("hex round-trip");
        let c = run_scenario(&swapped, &factory);
        prop_assert_eq!(&a.verdict, &c.verdict);
        prop_assert_eq!(a.trace_digest, c.trace_digest);
    }

    /// Satellite: a schedule's shard-churn events run identically on
    /// the [`Sequential`] and [`Pool`] executors — same sharded trace
    /// digest, same per-shot reports.
    #[test]
    fn churned_schedules_are_executor_independent(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(sub_seed(seed, 0x5AD));
        let draw_inputs =
            |rng: &mut StdRng| -> Vec<bool> { (0..4).map(|_| rng.gen_bool(0.5)).collect() };
        let shots = vec![draw_inputs(&mut rng), draw_inputs(&mut rng)];

        let mut schedule = Schedule::new(seed, Round::ZERO, Round::new(40));
        schedule.push(
            Round::new(rng.gen_range(1..6u64)),
            ScheduleEvent::ShardEnqueue { shard: 1, inputs: draw_inputs(&mut rng) },
        );
        schedule.push(
            Round::new(rng.gen_range(1..6u64)),
            ScheduleEvent::ShardAbort { shard: 0 },
        );
        schedule.push(
            Round::new(rng.gen_range(6..12u64)),
            ScheduleEvent::ShardEnqueue { shard: 0, inputs: draw_inputs(&mut rng) },
        );
        schedule.normalize();

        let (seq_digest, seq_reports) = churned_run(Sequential, &schedule, &shots);
        let (pool_digest, pool_reports) = churned_run(Pool::new(3), &schedule, &shots);
        prop_assert_eq!(seq_digest, pool_digest);
        prop_assert_eq!(seq_reports, pool_reports);
    }

    /// Satellite: whatever the shrinker returns still fails, with the
    /// exact verdict it was asked to preserve.
    #[test]
    fn shrinker_output_refails_with_the_same_verdict(seed in any::<u64>()) {
        let factory = eig_factory(5);
        // A drawn scenario (whose own events are within budget) plus an
        // injected over-budget defection: turn two fresh processes at
        // round 1 against t = 1.
        let mut scenario = Scenario::draw(seed, cfg(5), 10);
        let fresh: BTreeSet<Pid> = (0..5)
            .map(Pid::new)
            .filter(|p| !scenario.init_byz.contains(p))
            .take(2)
            .collect();
        scenario
            .schedule
            .push(Round::new(1), ScheduleEvent::TurnByzantine { pids: fresh });
        scenario.schedule.normalize();

        let rep = run_scenario(&scenario, &factory);
        prop_assert!(
            matches!(rep.verdict, ScenarioVerdict::Breach { .. }),
            "expected breach, got {:?}",
            rep.verdict
        );

        let min = shrink(&scenario, &factory, &rep.verdict);
        prop_assert!(min.schedule.events.len() <= scenario.schedule.events.len());
        prop_assert!(!min.schedule.events.is_empty());
        let re = run_scenario(&min, &factory);
        prop_assert_eq!(re.verdict, rep.verdict);
    }
}

/// The digest helper starts from the FNV-1a offset basis (empty trace)
/// — pins the digest algorithm the replay-line artifacts rely on.
#[test]
fn trace_digest_of_an_empty_trace_is_the_fnv_basis() {
    let trace: homonyms::sim::Trace<u32> = homonyms::sim::Trace::new();
    assert_eq!(trace_digest(&trace), 0xcbf2_9ce4_8422_2325);
    assert_eq!(trace_digest(&trace), fnv1a(b""));
}
