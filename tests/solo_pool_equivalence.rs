//! Intra-instance executor equivalence for the single-shot engine: fanning
//! ONE agreement instance's tick across a worker pool — chunked sends,
//! planned routes, chunked deliver/receive — is **unobservable**. For
//! random sizes (including odd `n` straddling chunk boundaries), random
//! pre-GST drop schedules, and randomized Byzantine strategies, the full
//! delivery trace, the decisions, and every `RunReport` counter are
//! byte-identical between [`Sequential`] and [`Pool`] at every tested
//! worker count.

use std::fmt::Write as _;

use homonyms::core::exec::{Executor, Pool, Sequential};
use homonyms::core::{Domain, Pid, Round, Synchrony, SystemConfig};
use homonyms::core::{IdAssignment, Message};
use homonyms::psync::AgreementFactory;
use homonyms::sim::adversary::{Adversary, CloneSpammer, Flooder, ReplayFuzzer, Silent};
use homonyms::sim::{RandomUntilGst, Simulation, Trace};
use proptest::prelude::*;

/// One random solo scenario: size, identifier multiplicity, an optional
/// Byzantine process with a randomized strategy, and a random pre-GST
/// drop schedule.
#[derive(Clone, Debug)]
struct RandomSolo {
    n: usize,
    ell: usize,
    byz: Option<Pid>,
    adversary: u8,
    seed: u64,
    gst: u64,
    drop_pct: u8,
}

fn solo_strategy() -> impl Strategy<Value = RandomSolo> {
    (4usize..=9).prop_flat_map(|n| {
        // The psync agreement needs ℓ > (n + 3t)/2 with t = 1.
        let lo = (n + 3) / 2 + 1;
        (
            Just(n),
            lo..=n,
            // `n` encodes "no Byzantine process"; anything below names one.
            0usize..=n,
            0u8..=2,
            any::<u64>(),
            0u64..8,
            0u8..=50,
        )
            .prop_map(
                |(n, ell, byz_raw, adversary, seed, gst, drop_pct)| RandomSolo {
                    n,
                    ell,
                    byz: (byz_raw < n).then(|| Pid::new(byz_raw)),
                    adversary,
                    seed,
                    gst,
                    drop_pct,
                },
            )
    })
}

/// Canonical byte-stable rendering of a trace (the `fabric_golden`
/// format): one line per attempted delivery, in recording order.
fn trace_dump<M: Message>(trace: &Trace<M>) -> String {
    let mut s = String::new();
    for d in trace.deliveries() {
        let _ = writeln!(
            s,
            "{}|{}|{}|{}|{:?}|{}",
            d.round, d.from, d.src_id, d.to, d.msg, d.dropped
        );
    }
    s
}

/// Runs one scenario under `exec` and returns every observable as one
/// byte-stable string: the trace dump, the decisions, and the full
/// `RunReport` (rounds, decision round, verdict, message and state-bit
/// counters).
fn observables<E: Executor>(exec: E, solo: &RandomSolo) -> String {
    let cfg = SystemConfig::builder(solo.n, solo.ell, 1)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid parameters");
    let factory = AgreementFactory::new(solo.n, solo.ell, 1, Domain::binary());
    let assignment = IdAssignment::stacked(solo.ell, solo.n).expect("ℓ ≤ n");
    let inputs = (0..solo.n)
        .map(|k| (k as u64 + solo.seed) % 2 == 0)
        .collect();
    let mut builder = Simulation::builder(cfg, assignment.clone(), inputs)
        .record_trace(true)
        .executor(exec);
    if let Some(byz) = solo.byz {
        let byz_set: std::collections::BTreeSet<Pid> = [byz].into_iter().collect();
        let adversary: Box<dyn Adversary<_>> = match solo.adversary {
            0 => Box::new(Silent),
            1 => Box::new(ReplayFuzzer::new(solo.seed, 1 + (solo.seed % 3) as usize)),
            _ => Box::new(CloneSpammer::new(
                &factory,
                &assignment,
                &byz_set,
                Domain::binary().values(),
            )),
        };
        builder = builder.byzantine(byz_set, adversary);
    }
    if solo.drop_pct > 0 {
        builder = builder.drops(RandomUntilGst::new(
            Round::new(solo.gst),
            f64::from(solo.drop_pct) / 100.0,
            solo.seed,
        ));
    }
    let mut sim = builder.build_with(&factory);
    let report = sim.run_exact(solo.gst + factory.round_bound() + 4);
    format!(
        "trace:\n{}\ndecisions={:?}\nverdict={} rounds={} decided={:?} sent={} delivered={} \
         dropped={} state_bits={} peak_state_bits={}",
        trace_dump(sim.trace().expect("trace enabled")),
        sim.decisions(),
        report.verdict,
        report.rounds,
        report.all_decided_round,
        report.messages_sent,
        report.messages_delivered,
        report.messages_dropped,
        report.state_bits,
        report.peak_state_bits,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The executor is unobservable for a single instance: pools of 1, 2,
    /// 3, and 7 workers (straddling and exceeding `n`, odd chunk
    /// boundaries included) reproduce the sequential run's trace,
    /// decisions, and every counter, byte for byte.
    #[test]
    fn solo_pool_is_byte_identical_to_sequential(solo in solo_strategy()) {
        let seq = observables(Sequential, &solo);
        for workers in [1usize, 2, 3, 7] {
            let pooled = observables(Pool::new(workers), &solo);
            prop_assert_eq!(
                &pooled,
                &seq,
                "observables diverge at {} workers for {:?}",
                workers,
                &solo
            );
        }
    }
}

/// `Flooder` exercises the restricted-clamp path under chunked ticks: a
/// deterministic multi-emission adversary whose duplicate wires must be
/// clamped identically at every worker count.
#[test]
fn flooding_adversary_is_executor_invariant() {
    let solo = RandomSolo {
        n: 7,
        ell: 6,
        byz: Some(Pid::new(2)),
        adversary: 0,
        seed: 11,
        gst: 3,
        drop_pct: 20,
    };
    let cfg = SystemConfig::builder(solo.n, solo.ell, 1)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid parameters");
    let factory = AgreementFactory::new(solo.n, solo.ell, 1, Domain::binary());
    let assignment = IdAssignment::stacked(solo.ell, solo.n).expect("ℓ ≤ n");
    let run = |workers: Option<usize>| {
        let inputs = (0..solo.n).map(|k| k % 2 == 0).collect();
        let builder = Simulation::builder(cfg, assignment.clone(), inputs)
            .record_trace(true)
            .byzantine([Pid::new(2)], Flooder::new(3))
            .drops(RandomUntilGst::new(Round::new(solo.gst), 0.2, solo.seed));
        let (trace, decisions) = match workers {
            None => {
                let mut sim = builder.build_with(&factory);
                sim.run_exact(24);
                (
                    trace_dump(sim.trace().unwrap()),
                    format!("{:?}", sim.decisions()),
                )
            }
            Some(w) => {
                let mut sim = builder.executor(Pool::new(w)).build_with(&factory);
                sim.run_exact(24);
                (
                    trace_dump(sim.trace().unwrap()),
                    format!("{:?}", sim.decisions()),
                )
            }
        };
        (trace, decisions)
    };
    let seq = run(None);
    for w in [1usize, 2, 3, 7] {
        assert_eq!(run(Some(w)), seq, "flooder run diverged at {w} workers");
    }
}
