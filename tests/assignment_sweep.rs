//! Experiment E20 — closing the assignment quantifier exhaustively.
//!
//! The paper's solvability statements hold "regardless of the way the n
//! processes are assigned the ℓ identifiers" (Section 2). The grid suites
//! sample assignment *shapes* (stacked, balanced, random); at small scale
//! we can do better and sweep **every** surjective assignment:
//!
//! * Figure 7 at `(n = 4, ℓ = 2, t = 1)`: all 14 assignments × all
//!   Byzantine placements, against an equivocating adversary.
//! * Figure 5 at `(n = 5, ℓ = 4, t = 1)` — wait, `2·4 = 8 ≤ 5 + 3`:
//!   that cell is unsolvable; the solvable small cell with a genuine
//!   homonym is `(n = 5, ℓ = 5)` (unique only) — so the exhaustive sweep
//!   for Figure 5 runs `(n = 6, ℓ = 5, t = 1)` restricted to its 1800
//!   assignments' canonical representatives: too many to run at full
//!   depth, so we sweep all assignments at a lighter adversary.
//! * `T(EIG)` at `(n = 5, ℓ = 4, t = 1)` (synchronous, `ℓ > 3t`): all
//!   240 surjective assignments under a clone-spamming Byzantine process.

use std::collections::BTreeSet;

use homonyms::core::{
    ByzPower, Counting, Domain, IdAssignment, Pid, Round, Synchrony, SystemConfig,
};
use homonyms::psync::RestrictedFactory;
use homonyms::sim::adversary::{CloneSpammer, Equivocator};
use homonyms::sim::{RandomUntilGst, Simulation};
use homonyms::sync::TransformedFactory;

#[test]
fn fig7_survives_every_assignment_at_4_2_1() {
    let (n, ell, t) = (4, 2, 1);
    let cfg = SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .counting(Counting::Numerate)
        .byz_power(ByzPower::Restricted)
        .build()
        .expect("valid parameters");
    let factory = RestrictedFactory::new(n, ell, t, Domain::binary());
    let gst = 8;
    let horizon = gst + factory.round_bound() + 24;

    let assignments = IdAssignment::enumerate_all(ell, n);
    assert_eq!(assignments.len(), 14, "2^4 - 2 surjections");
    for assignment in &assignments {
        for byz_idx in 0..n {
            let byz = Pid::new(byz_idx);
            let byz_set: BTreeSet<Pid> = [byz].into();
            let split: BTreeSet<Pid> = Pid::all(n).filter(|p| p.index() % 2 == 0).collect();
            let adversary = Equivocator::new(&factory, assignment, &byz_set, false, true, split);
            let mut sim =
                Simulation::builder(cfg, assignment.clone(), vec![true, false, true, false])
                    .byzantine([byz], adversary)
                    .drops(RandomUntilGst::new(Round::new(gst), 0.3, byz_idx as u64))
                    .build_with(&factory);
            let report = sim.run(horizon);
            assert!(
                report.verdict.all_hold(),
                "assignment {:?}, byz {byz}: {}",
                assignment.as_slice(),
                report.verdict
            );
        }
    }
}

#[test]
fn t_eig_survives_every_assignment_at_5_4_1() {
    let (n, ell, t) = (5, 4, 1);
    let cfg = SystemConfig::builder(n, ell, t)
        .build()
        .expect("valid parameters");
    let factory = TransformedFactory::new(homonyms::classic::Eig::new(ell, t, Domain::binary()), t);
    let horizon = factory.round_bound() + 9;

    let assignments = IdAssignment::enumerate_all(ell, n);
    assert_eq!(assignments.len(), 240, "surjections of 5 onto 4");
    for assignment in &assignments {
        // Place the Byzantine process inside the (unique) homonym group —
        // the hardest placement for the transformer's group simulation.
        let sizes = assignment.group_sizes();
        let stacked_id = sizes
            .iter()
            .find(|(_, &size)| size > 1)
            .map(|(&id, _)| id)
            .expect("n > ℓ forces one homonym group");
        let byz = assignment.group(stacked_id)[0];
        let byz_set: BTreeSet<Pid> = [byz].into();
        let adversary = CloneSpammer::new(&factory, assignment, &byz_set, &[false, true]);
        let mut sim = Simulation::builder(
            cfg,
            assignment.clone(),
            vec![true, false, true, true, false],
        )
        .byzantine([byz], adversary)
        .build_with(&factory);
        let report = sim.run(horizon);
        assert!(
            report.verdict.all_hold(),
            "assignment {:?}, byz {byz}: {}",
            assignment.as_slice(),
            report.verdict
        );
    }
}

#[test]
fn fig5_survives_every_assignment_at_6_5_1() {
    // 2ℓ = 10 > n + 3t = 9 — the smallest genuinely homonymous solvable
    // Figure 5 cell. 1800 assignments: run each against the equivocator
    // with the Byzantine process in the homonym group.
    let (n, ell, t) = (6, 5, 1);
    let cfg = SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid parameters");
    let factory = homonyms::psync::AgreementFactory::new(n, ell, t, Domain::binary());
    let gst = 4;
    let horizon = gst + factory.round_bound() + 24;

    let assignments = IdAssignment::enumerate_all(ell, n);
    assert_eq!(assignments.len(), 1800, "surjections of 6 onto 5");
    for (k, assignment) in assignments.iter().enumerate() {
        let sizes = assignment.group_sizes();
        let stacked_id = sizes
            .iter()
            .find(|(_, &size)| size > 1)
            .map(|(&id, _)| id)
            .expect("n > ℓ forces one homonym group");
        let byz = assignment.group(stacked_id)[0];
        let byz_set: BTreeSet<Pid> = [byz].into();
        let split: BTreeSet<Pid> = Pid::all(n).filter(|p| p.index() < n / 2).collect();
        let adversary = Equivocator::new(&factory, assignment, &byz_set, false, true, split);
        let mut sim = Simulation::builder(
            cfg,
            assignment.clone(),
            vec![true, false, true, false, true, false],
        )
        .byzantine([byz], adversary)
        .drops(RandomUntilGst::new(Round::new(gst), 0.2, k as u64))
        .build_with(&factory);
        let report = sim.run(horizon);
        assert!(
            report.verdict.all_hold(),
            "assignment {:?}, byz {byz}: {}",
            assignment.as_slice(),
            report.verdict
        );
    }
}
