//! Experiment E17 — the multi-send **restriction is load-bearing**.
//!
//! Section 5's headline: with numerate processes and Byzantine senders
//! restricted to one message per recipient per round, `ℓ > t` identifiers
//! suffice — far below the unrestricted bounds (`ℓ > 3t` synchronous,
//! `2ℓ > n + 3t` partially synchronous). The other direction must hold
//! too: hand multi-send back to the adversary and the very same Figure 7
//! protocol *must* fail once `ℓ` is below the unrestricted bound, because
//! the impossibility constructions apply to every algorithm.
//!
//! * In the restricted model at `ℓ = 3t = 3`, Figure 7 survives the full
//!   adversary suite (the engine clamps multi-send — that is the model).
//! * In the unrestricted model, the Figure 1 ring (whose imagined
//!   Byzantine processes need multi-send to explain whole stacks) forces
//!   a view violation on Figure 7 at the same `ℓ = 3t`.
//! * In the unrestricted partially synchronous model, the Figure 4
//!   partition forces split-brain on Figure 7 at `3t < ℓ ≤ (n + 3t)/2`.

use homonyms::core::{ByzPower, Counting, Domain, IdAssignment, Synchrony, SystemConfig};
use homonyms::lower_bounds::{fig1, fig4};
use homonyms::psync::RestrictedFactory;
use homonyms::sim::harness::{run_standard_suite, SuiteParams};

#[test]
fn fig7_survives_restricted_adversaries_at_ell_3t() {
    // n = 4, ℓ = 3, t = 1: ℓ ≤ 3t, yet with restricted Byzantine senders
    // and numerate processes this is comfortably above the ℓ > t bound.
    let (n, ell, t) = (4, 3, 1);
    let cfg = SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .counting(Counting::Numerate)
        .byz_power(ByzPower::Restricted)
        .build()
        .expect("valid parameters");
    let factory = RestrictedFactory::new(n, ell, t, Domain::binary());
    let assignment = IdAssignment::stacked(ell, n).expect("ℓ ≤ n");
    let domain = Domain::binary();
    let gst = 8;
    let suite = run_standard_suite(
        &factory,
        &SuiteParams {
            cfg,
            assignment: &assignment,
            domain: &domain,
            horizon: gst + factory.round_bound() + 24,
            gst,
            seed: 7,
        },
    );
    assert!(
        suite.all_hold(),
        "restricted model must be safe at ℓ = 3t: {:?}",
        suite.failures().iter().map(|f| &f.name).collect::<Vec<_>>()
    );
}

#[test]
fn fig7_falls_to_the_ring_once_multisend_is_allowed() {
    // The Proposition 1 ring applies to *any* algorithm for ℓ = 3t — its
    // per-view "explanation" attributes a whole stack of identical
    // processes to one Byzantine process, which only an unrestricted
    // (multi-send) Byzantine process can imitate. Running Figure 7 inside
    // it must therefore break some view's claim, even though the same
    // protocol just survived the restricted suite above.
    let (n, t) = (4, 1);
    let sys = fig1::build(n, t);
    let factory = RestrictedFactory::new(n, 3 * t, t, Domain::binary());
    let report = fig1::run(&factory, &sys, factory.round_bound() + 16);
    assert!(
        report.views_legal,
        "every cross-view message must be explainable"
    );
    assert!(
        report.contradiction_exhibited(),
        "some view must violate its claim: {:?}",
        report.verdicts
    );
}

#[test]
fn fig7_split_brains_under_the_partition_once_multisend_is_allowed() {
    // n = 5, ℓ = 4, t = 1: 3t < ℓ and 2ℓ = 8 ≤ n + 3t = 8 — inside the
    // unrestricted-impossibility band, while ℓ = 4 > t = 1 keeps the
    // restricted model solvable. The Figure 4 replay (Byzantine B₁ must
    // send several messages per recipient per round) drives Figure 7 into
    // disagreement.
    let (n, ell, t) = (5, 4, 1);
    let cfg = SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .counting(Counting::Numerate)
        .byz_power(ByzPower::Unrestricted)
        .build()
        .expect("valid parameters");
    let factory = RestrictedFactory::new(n, ell, t, Domain::binary());
    let outcome = fig4::run(&factory, cfg, 8 * 16);
    assert!(
        outcome.violation_exhibited(),
        "the partition must break the protocol: {outcome:?}"
    );
}
