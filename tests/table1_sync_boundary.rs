//! Experiment E1 — Table 1, synchronous column: solvable ⟺ `ℓ > 3t`.
//!
//! Solvable cells run `T(EIG)` against the full standard adversary suite
//! (input patterns × Byzantine placements × six strategies) and must
//! satisfy all three properties in every scenario. Cells at the unsolvable
//! boundary (`ℓ = 3t`) are driven into a violation by the Figure 1 ring
//! construction.

use homonyms::classic::{Eig, PhaseKing};
use homonyms::core::{bounds, Domain, IdAssignment, SystemConfig};
use homonyms::lower_bounds::fig1;
use homonyms::sim::harness::{run_standard_suite, SuiteParams};
use homonyms::sync::TransformedFactory;

fn sync_cfg(n: usize, ell: usize, t: usize) -> SystemConfig {
    SystemConfig::builder(n, ell, t)
        .build()
        .expect("valid parameters")
}

fn assert_solvable_cell(n: usize, ell: usize, t: usize) {
    let cfg = sync_cfg(n, ell, t);
    assert!(
        bounds::solvable(&cfg),
        "precondition: ({n},{ell},{t}) solvable"
    );
    let factory = TransformedFactory::new(Eig::new(ell, t, Domain::binary()), t);
    let domain = Domain::binary();
    for assignment in [
        IdAssignment::stacked(ell, n).expect("ℓ ≤ n"),
        IdAssignment::round_robin(ell, n).expect("ℓ ≤ n"),
    ] {
        let params = SuiteParams {
            cfg,
            assignment: &assignment,
            domain: &domain,
            horizon: factory.round_bound() + 9,
            gst: 0,
            seed: 2026,
        };
        let result = run_standard_suite(&factory, &params);
        assert!(
            result.all_hold(),
            "({n},{ell},{t}) with {assignment:?} failed: {:?}",
            result
                .failures()
                .iter()
                .map(|f| (&f.name, f.report.verdict.to_string()))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn solvable_cells_survive_the_suite_t1() {
    // t = 1: ℓ = 4 = 3t + 1 is the boundary-solvable cell.
    for n in [4, 5, 7] {
        assert_solvable_cell(n, 4, 1);
    }
    // More identifiers only help.
    assert_solvable_cell(6, 5, 1);
}

#[test]
fn solvable_cells_survive_the_suite_t2() {
    // t = 2: ℓ = 7 = 3t + 1.
    assert_solvable_cell(8, 7, 2);
}

#[test]
fn boundary_unsolvable_cells_violate_via_fig1() {
    // ℓ = 3t: the ring forces a violation on T(EIG) for every n.
    for (n, t) in [(4, 1), (5, 1), (7, 2)] {
        let algo = Eig::new_unchecked(3 * t, t, Domain::binary());
        let factory = TransformedFactory::new(algo, t);
        let sys = fig1::build(n, t);
        let report = fig1::run(&factory, &sys, factory.round_bound() + 9);
        assert!(report.views_legal, "({n},{t}): the wiring must be legal");
        assert!(
            report.contradiction_exhibited(),
            "({n},{t}): some view must fail, got {:?}",
            report.verdicts
        );
    }
}

#[test]
fn fig1_also_breaks_phase_king_transformer() {
    // The argument is algorithm-agnostic: T(PhaseKing) fails the ring too.
    // (Phase-King wants ℓ > 4t; at ℓ = 3t it is doubly out of range, which
    // is fine — the ring only needs *a* deterministic algorithm.)
    let t = 1;
    let algo = PhaseKing::new_unchecked(3 * t, t, Domain::binary());
    let factory = TransformedFactory::new(algo, t);
    let sys = fig1::build(5, t);
    let report = fig1::run(&factory, &sys, factory.round_bound() + 9);
    assert!(report.contradiction_exhibited(), "{:?}", report.verdicts);
}

#[test]
fn grid_matches_table1_predicate() {
    // The harness's own grid enumeration agrees with Table 1 cell by cell.
    use homonyms::core::{ByzPower, Counting, Synchrony};
    let cells = bounds::boundary_grid(
        Synchrony::Synchronous,
        Counting::Innumerate,
        ByzPower::Unrestricted,
        &[1, 2, 3],
        3,
    );
    for cell in cells {
        assert_eq!(cell.solvable, bounds::solvable(&cell.cfg));
        assert_eq!(cell.solvable, cell.cfg.ell > 3 * cell.cfg.t);
    }
}
