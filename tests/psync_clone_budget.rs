//! The Figure 5 bundle path's clone budget: in a steady-state round — no
//! `⟨init⟩` due, no direct items, echo set and proper set unchanged —
//! the protocol performs **zero** deep clones of payload values, on both
//! the send side (the cached bundle is re-shared through the fabric) and
//! the receive side (pointer-identical echo sets are skipped, evidence
//! updates are no-ops, proper-set inserts are guarded).
//!
//! The probe value type counts its `Clone` invocations; the network is
//! driven by hand through `send_shared`/`Inbox::collect_shared` — the
//! exact seam the engines use — so every observed clone is the
//! protocol's own.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use homonyms::core::{
    Counting, Domain, Id, Inbox, Protocol, Round, SharedEnvelope, WireEncode, Writer,
};
use homonyms::psync::{Bundle, HomonymAgreement};

static CLONES: AtomicU64 = AtomicU64::new(0);

/// The clone counter is process-global, so the tests must not overlap
/// (the harness runs `#[test]`s on multiple threads by default); each
/// test holds this lock for its whole measurement.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Counted(u8);

impl Clone for Counted {
    fn clone(&self) -> Self {
        CLONES.fetch_add(1, Ordering::Relaxed);
        Counted(self.0)
    }
}

impl WireEncode for Counted {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
}

/// A full-delivery synchronous network of `n = ℓ = 4`, `t = 1` Figure 5
/// processes over `Counted` values, driven through the shared-handle
/// seam. Returns the number of `Counted` clones observed in each round
/// (sends + deliveries + receives of all processes).
fn clones_per_round(rounds: u64) -> Vec<u64> {
    let n = 4usize;
    let domain = Domain::new(vec![Counted(0), Counted(1)]);
    let mut procs: Vec<HomonymAgreement<Counted>> = (0..n)
        .map(|k| {
            HomonymAgreement::new(
                n,
                n,
                1,
                domain.clone(),
                Id::from_index(k),
                Counted(k as u8 % 2),
            )
        })
        .collect();

    let mut per_round = Vec::new();
    for r in 0..rounds {
        let round = Round::new(r);
        let before = CLONES.load(Ordering::Relaxed);
        let outs: Vec<Arc<Bundle<Counted>>> = procs
            .iter_mut()
            .map(|p| p.send_shared(round).remove(0).1)
            .collect();
        let inboxes: Vec<Inbox<Bundle<Counted>>> = (0..n)
            .map(|_| {
                Inbox::collect_shared(
                    outs.iter()
                        .enumerate()
                        .map(|(j, b)| SharedEnvelope::shared(Id::from_index(j), Arc::clone(b))),
                    Counting::Innumerate,
                )
            })
            .collect();
        for (p, inbox) in procs.iter_mut().zip(&inboxes) {
            p.receive(round, inbox);
        }
        per_round.push(CLONES.load(Ordering::Relaxed) - before);
    }
    assert!(
        procs.iter().all(|p| p.decision().is_some()),
        "the clean run must decide"
    );
    per_round
}

#[test]
fn steady_state_rounds_clone_zero_payloads() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Run three full phases. Rounds with w = 3 (the round after the
    // leader's lock went out and before the vote superround) are the
    // steady state: every process re-sends its standing bundle and
    // re-receives sets it already counted.
    let per_round = clones_per_round(8 * 3);
    let mut steady = Vec::new();
    for (r, &clones) in per_round.iter().enumerate() {
        if r % 8 == 3 && r >= 8 {
            steady.push((r, clones));
        }
    }
    assert!(!steady.is_empty());
    for (r, clones) in steady {
        assert_eq!(
            clones, 0,
            "steady-state round {r} deep-cloned {clones} payload values \
             (per-round profile: {per_round:?})"
        );
    }
}

#[test]
fn whole_run_clone_budget_is_bounded() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Not just the steady rounds: the whole 3-phase run's clone count
    // must stay far below one-per-(echo × receiver × round), the
    // pre-interning cost shape. 24 rounds × 4 procs with dozens of
    // standing echoes would exceed 10k clones on the old path; the
    // interned path pays only for genuine state changes.
    let per_round = clones_per_round(8 * 3);
    let total: u64 = per_round.iter().sum();
    assert!(
        total < 600,
        "whole-run clone budget blown: {total} ({per_round:?})"
    );
}
