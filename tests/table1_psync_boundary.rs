//! Experiment E2 — Table 1, partially synchronous column:
//! solvable ⟺ `2ℓ > n + 3t`.
//!
//! Solvable cells run the Figure 5 protocol against the standard adversary
//! suite under lossy pre-stabilization networks. Unsolvable cells in the
//! `3t < ℓ ≤ (n + 3t)/2` band are driven into split-brain by the Figure 4
//! partition construction.

use homonyms::core::{bounds, Domain, IdAssignment, Synchrony, SystemConfig};
use homonyms::lower_bounds::fig4;
use homonyms::psync::AgreementFactory;
use homonyms::sim::harness::{run_standard_suite, SuiteParams};

fn psync_cfg(n: usize, ell: usize, t: usize) -> SystemConfig {
    SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid parameters")
}

fn assert_solvable_cell(n: usize, ell: usize, t: usize) {
    let cfg = psync_cfg(n, ell, t);
    assert!(
        bounds::solvable(&cfg),
        "precondition: ({n},{ell},{t}) solvable"
    );
    let factory = AgreementFactory::new(n, ell, t, Domain::binary());
    let domain = Domain::binary();
    let gst = 12;
    let assignment = IdAssignment::stacked(ell, n).expect("ℓ ≤ n");
    let params = SuiteParams {
        cfg,
        assignment: &assignment,
        domain: &domain,
        horizon: gst + factory.round_bound() + 24,
        gst,
        seed: 77,
    };
    let result = run_standard_suite(&factory, &params);
    assert!(
        result.all_hold(),
        "({n},{ell},{t}) failed: {:?}",
        result
            .failures()
            .iter()
            .map(|f| (&f.name, f.report.verdict.to_string()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn solvable_cell_n4_ell4_t1() {
    // The boundary-solvable half of the headline pair.
    assert_solvable_cell(4, 4, 1);
}

#[test]
fn solvable_cell_n5_ell5_t1() {
    // One more identifier fixes n = 5 (2ℓ = 10 > 8).
    assert_solvable_cell(5, 5, 1);
}

#[test]
fn solvable_cell_with_homonyms_n7_ell6_t1() {
    // 2ℓ = 12 > 10, with a two-process homonym group.
    assert_solvable_cell(7, 6, 1);
}

#[test]
fn unsolvable_band_splits_via_fig4() {
    // 3t < ℓ ≤ (n + 3t)/2: the partition construction must break the
    // protocol. Includes the headline (5, 4, 1) and a padded case
    // (8, 5, 1) where n > 2ℓ − 3t.
    for (n, ell, t) in [(5, 4, 1), (7, 5, 1), (8, 5, 1)] {
        let cfg = psync_cfg(n, ell, t);
        assert!(
            !bounds::solvable(&cfg),
            "precondition: ({n},{ell},{t}) unsolvable"
        );
        let factory = AgreementFactory::new(n, ell, t, Domain::binary());
        let outcome = fig4::run(&factory, cfg, 8 * 14);
        assert!(
            outcome.violation_exhibited(),
            "({n},{ell},{t}): {outcome:?}"
        );
    }
}

#[test]
fn psync_needs_strictly_more_identifiers_than_sync() {
    // The model-comparison surprise: for every n > 3t + 1, the partially
    // synchronous minimum exceeds the synchronous minimum.
    for t in 1..4usize {
        for n in (3 * t + 2)..(3 * t + 9) {
            let sync = SystemConfig::builder(n, 1, t).build().unwrap();
            let psync = SystemConfig::builder(n, 1, t)
                .synchrony(Synchrony::PartiallySynchronous)
                .build()
                .unwrap();
            let sync_min = bounds::min_solvable_ell(&sync);
            let psync_min = bounds::min_solvable_ell(&psync);
            if let (Some(s), Some(p)) = (sync_min, psync_min) {
                assert!(p > s, "n={n}, t={t}: psync min {p} vs sync min {s}");
            }
        }
    }
}
