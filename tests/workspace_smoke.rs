//! Workspace smoke test: tiny end-to-end agreement runs driven purely
//! through the umbrella crate's prelude, proving the re-export surface
//! (`homonyms::prelude`) is sufficient to configure, run, and check a
//! protocol without naming any member crate directly.

use homonyms::prelude::*;

/// One synchronous `T(EIG)` run at `n = 4, t = 1, ℓ = 4`: solvable
/// (`ℓ > 3t`), every correct process decides, and the three BA
/// properties hold.
#[test]
fn synchronous_agreement_via_prelude_only() {
    let cfg = SystemConfig::builder(4, 4, 1)
        .build()
        .expect("n = 4, ℓ = 4, t = 1 is a valid synchronous system");
    assert!(bounds::solvable(&cfg), "synchronous: ℓ = 4 > 3t = 3");

    let factory = TransformedFactory::new(Eig::new(4, 1, Domain::binary()), 1);
    let mut sim = Simulation::builder(cfg, IdAssignment::unique(4), vec![true, true, false, true])
        .build_with(&factory);
    let report: RunReport<bool> = sim.run(50);

    assert!(
        report.verdict.all_hold(),
        "clean run must satisfy BA: {:?}",
        report.verdict
    );
    assert_eq!(report.outcome.decisions.len(), 4, "all four decide");
    let decided: Vec<bool> = report.outcome.decisions.values().map(|&(v, _)| v).collect();
    assert!(
        decided.windows(2).all(|w| w[0] == w[1]),
        "agreement: {decided:?}"
    );
}

/// The same configuration through the threaded runtime re-export: the
/// cluster must reach the identical decision set as the simulator.
#[test]
fn threaded_cluster_matches_simulator_via_prelude() {
    let cfg = SystemConfig::builder(4, 4, 1).build().unwrap();
    let inputs = vec![true, true, false, true];

    let factory = TransformedFactory::new(Eig::new(4, 1, Domain::binary()), 1);
    let mut sim =
        Simulation::builder(cfg, IdAssignment::unique(4), inputs.clone()).build_with(&factory);
    let simulated = sim.run(50);

    let threaded = Cluster::new(cfg, IdAssignment::unique(4), inputs).run(&factory, 50);

    assert!(threaded.verdict.all_hold());
    assert_eq!(threaded.outcome.decisions, simulated.outcome.decisions);
}
