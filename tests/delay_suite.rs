//! Experiment E14 (hardening) — the full standard adversary grid
//! (`input patterns × Byzantine placements × 8 strategies`), replayed on
//! the **delay substrate** instead of lock-step rounds: the Table 1
//! upper-bound cells must survive unchanged when partial synchrony comes
//! from delivery delays rather than scripted drops.

use homonyms::core::{ByzPower, Counting, Domain, IdAssignment, Synchrony, SystemConfig};
use homonyms::delay::{run_delay_suite, DelaySuiteParams};
use homonyms::psync::{AgreementFactory, RestrictedFactory};

fn psync_cfg(n: usize, ell: usize, t: usize) -> SystemConfig {
    SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid parameters")
}

fn restricted_cfg(n: usize, ell: usize, t: usize) -> SystemConfig {
    SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .counting(Counting::Numerate)
        .byz_power(ByzPower::Restricted)
        .build()
        .expect("valid parameters")
}

#[test]
fn figure5_survives_the_full_grid_on_the_delay_substrate() {
    let (n, ell, t) = (5, 5, 1);
    let cfg = psync_cfg(n, ell, t);
    let factory = AgreementFactory::new(n, ell, t, Domain::binary());
    let assignment = IdAssignment::unique(n);
    let domain = Domain::binary();
    let suite = run_delay_suite(
        &factory,
        &DelaySuiteParams {
            cfg,
            assignment: &assignment,
            domain: &domain,
            delta: 2,
            calm_tick: 24,
            slack: factory.round_bound() + 24,
            seed: 11,
        },
    );
    assert!(
        suite.all_hold(),
        "failures: {:?}",
        suite.failures().iter().map(|f| &f.name).collect::<Vec<_>>()
    );
    assert!(
        suite.all_stabilized(),
        "every scenario's lateness must die out"
    );
    assert!(suite.results.len() >= 24, "the grid must be non-trivial");
}

#[test]
fn figure5_survives_the_grid_with_homonym_groups() {
    // n = 6, ℓ = 5: a correct homonym pair shares identifier 1.
    let (n, ell, t) = (6, 5, 1);
    let cfg = psync_cfg(n, ell, t);
    let factory = AgreementFactory::new(n, ell, t, Domain::binary());
    let assignment = IdAssignment::stacked(ell, n).expect("ℓ ≤ n");
    let domain = Domain::binary();
    let suite = run_delay_suite(
        &factory,
        &DelaySuiteParams {
            cfg,
            assignment: &assignment,
            domain: &domain,
            delta: 2,
            calm_tick: 20,
            slack: factory.round_bound() + 32,
            seed: 23,
        },
    );
    assert!(
        suite.all_hold(),
        "failures: {:?}",
        suite.failures().iter().map(|f| &f.name).collect::<Vec<_>>()
    );
}

#[test]
fn figure7_survives_the_full_grid_on_the_delay_substrate() {
    let (n, ell, t) = (5, 2, 1);
    let cfg = restricted_cfg(n, ell, t);
    let factory = RestrictedFactory::new(n, ell, t, Domain::binary());
    let assignment = IdAssignment::round_robin(ell, n).expect("ℓ ≤ n");
    let domain = Domain::binary();
    let suite = run_delay_suite(
        &factory,
        &DelaySuiteParams {
            cfg,
            assignment: &assignment,
            domain: &domain,
            delta: 2,
            calm_tick: 24,
            slack: factory.round_bound() + 32,
            seed: 31,
        },
    );
    assert!(
        suite.all_hold(),
        "failures: {:?}",
        suite.failures().iter().map(|f| &f.name).collect::<Vec<_>>()
    );
    assert!(suite.all_stabilized());
}
