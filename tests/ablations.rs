//! Ablation experiments: remove each of the paper's design novelties and
//! show the exact failure it was protecting against.
//!
//! * **T(A)'s deciding rounds** (Figure 3, lines 6–9): "useful for correct
//!   processes that belong to a group with a Byzantine process". Without
//!   them, a process trusts `decide(s)` on its own simulated state — and a
//!   Byzantine homonym can swap a poisoned, pre-decided state into the
//!   group's selection round, making its correct group-mate output the
//!   wrong value.
//! * **Figure 5's vote superround** is ablated at the component level in
//!   `homonym-psync` (see `ablation_without_votes_breaks_lemma8`); here we
//!   confirm the ablated variant still passes clean end-to-end runs, i.e.
//!   the ablation is only observable under attack.

use homonyms::classic::{Eig, SyncBa};
use homonyms::core::{Domain, Id, IdAssignment, Pid, Round, SystemConfig};
use homonyms::psync::AgreementFactory;
use homonyms::sim::adversary::Scripted;
use homonyms::sim::{ByzTarget, Emission, Simulation};
use homonyms::sync::{TransformedFactory, TransformerMsg};

/// The adversary of the decide-relay ablation: a Byzantine homonym that
/// injects, in every selection round, an `A`-state that has *already
/// decided the wrong value*. The poisoned state is minimal in the
/// deterministic state order (its root holds the smallest value), so its
/// correct group-mate adopts it — and in the ablated transformer, which
/// trusts `decide(s)` on its own state, that group-mate instantly
/// "decides" the poison.
fn state_poisoner(
    horizon: u64,
) -> Scripted<<homonyms::sync::Transformed<Eig<bool>> as homonyms::core::Protocol>::Msg> {
    let algo = Eig::new(4, 1, Domain::binary());
    // Run A privately in silence until it decides the default value.
    let mut poisoned = algo.init(Id::new(1), false);
    for ba_round in 1..=algo.round_bound() {
        poisoned = algo.transition(&poisoned, ba_round, &std::collections::BTreeMap::new());
    }
    assert_eq!(algo.decide(&poisoned), Some(false));
    Scripted::new((0..horizon).filter(|r| r % 3 == 0).map(|r| {
        (
            Round::new(r),
            Emission::new(
                Pid::new(1),
                ByzTarget::All,
                TransformerMsg::State(poisoned.clone()),
            ),
        )
    }))
}

fn run_transformer(
    factory: &TransformedFactory<Eig<bool>>,
    horizon: u64,
) -> homonyms::sim::RunReport<bool> {
    let cfg = SystemConfig::builder(5, 4, 1).build().unwrap();
    // Group 1 = {p0 correct, p1 Byzantine}: the hijackable pair.
    let assignment = IdAssignment::new(
        4,
        vec![Id::new(1), Id::new(1), Id::new(2), Id::new(3), Id::new(4)],
    )
    .unwrap();
    let mut sim = Simulation::builder(cfg, assignment, vec![true; 5])
        .byzantine([Pid::new(1)], state_poisoner(horizon))
        .build_with(factory);
    sim.run(horizon)
}

#[test]
fn decide_relay_rescues_the_hijacked_homonym() {
    let factory = TransformedFactory::new(Eig::new(4, 1, Domain::binary()), 1);
    let report = run_transformer(&factory, factory.round_bound() + 9);
    assert!(
        report.verdict.all_hold(),
        "with the deciding rounds, even the hijacked process decides: {}",
        report.verdict
    );
    assert!(report.outcome.decisions.contains_key(&Pid::new(0)));
}

#[test]
fn without_decide_relay_the_hijacked_homonym_decides_the_poison() {
    let factory =
        TransformedFactory::ablated_without_decide_relay(Eig::new(4, 1, Domain::binary()), 1);
    let report = run_transformer(&factory, factory.round_bound() + 9);
    // All correct processes proposed `true`, yet the hijacked homonym p0
    // adopted the poisoned pre-decided state and output `false`: a
    // validity violation the deciding rounds exist to prevent.
    assert!(
        !report.verdict.validity.holds(),
        "the ablated transformer must mis-decide the hijacked process: {}",
        report.verdict
    );
    assert_eq!(
        report.outcome.decisions.get(&Pid::new(0)).map(|&(v, _)| v),
        Some(false),
        "p0 is the victim"
    );
    // The sole-identifier processes still decide the proposed value.
    for p in [2, 3, 4] {
        assert_eq!(
            report.outcome.decisions.get(&Pid::new(p)).map(|&(v, _)| v),
            Some(true)
        );
    }
}

#[test]
fn ablated_transformer_fine_without_byzantine_groupmates() {
    // The ablation only bites when a Byzantine process shares a group:
    // with the Byzantine process on a sole identifier, everyone decides.
    let factory =
        TransformedFactory::ablated_without_decide_relay(Eig::new(4, 1, Domain::binary()), 1);
    let cfg = SystemConfig::builder(5, 4, 1).build().unwrap();
    let assignment = IdAssignment::new(
        4,
        vec![Id::new(1), Id::new(1), Id::new(2), Id::new(3), Id::new(4)],
    )
    .unwrap();
    // Byzantine process on identifier 4 (pid 4), silent.
    let mut sim = Simulation::builder(cfg, assignment, vec![true; 5])
        .byzantine([Pid::new(4)], homonyms::sim::adversary::Silent)
        .build_with(&factory);
    let report = sim.run(factory.round_bound() + 9);
    assert!(report.verdict.all_hold(), "{}", report.verdict);
}

#[test]
fn ablated_fig5_decides_on_clean_runs_end_to_end() {
    let factory = AgreementFactory::ablated_without_votes(4, 4, 1, Domain::binary());
    let cfg = SystemConfig::builder(4, 4, 1)
        .synchrony(homonyms::core::Synchrony::PartiallySynchronous)
        .build()
        .unwrap();
    let mut sim =
        Simulation::builder(cfg, IdAssignment::unique(4), vec![true; 4]).build_with(&factory);
    let report = sim.run(factory.round_bound() + 24);
    assert!(report.verdict.all_hold(), "{}", report.verdict);
}
