//! Property tests for the delay substrate (E14): across random bounds,
//! calm points, pacing and inputs, the two delay-based models keep
//! simulating the basic partially synchronous model — the Figure 5
//! protocol decides, and lateness always dies out.

use homonyms::core::{Domain, IdAssignment, Round, Synchrony, SystemConfig};
use homonyms::delay::{
    AlwaysBounded, DelayCluster, DoublingPacing, EventuallyBounded, FixedPacing, Instant,
    RoundPacing,
};
use homonyms::psync::AgreementFactory;
use homonyms::sim::Simulation;
use proptest::prelude::*;

fn psync_cfg(n: usize, ell: usize, t: usize) -> SystemConfig {
    SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid parameters")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Known-bound model: whenever the pacing's fixed round length covers
    /// the calm-phase bound, Figure 5 decides and lateness ends.
    #[test]
    fn known_bound_always_decides(
        delta in 1u64..4,
        slack in 0u64..3,
        calm in 0u64..40,
        seed in 0u64..1_000,
        inputs in proptest::collection::vec(any::<bool>(), 4),
    ) {
        let (n, ell, t) = (4, 4, 1);
        let factory = AgreementFactory::new(n, ell, t, Domain::binary());
        let pacing = FixedPacing::new(delta + slack);
        let mut cluster = DelayCluster::builder(psync_cfg(n, ell, t), IdAssignment::unique(n), inputs)
            .model(EventuallyBounded::new(delta, calm, 10 * delta + 20, seed))
            .pacing(pacing)
            .build();
        let report = cluster.run(&factory, calm / (delta + slack).max(1) + factory.round_bound() + 40);
        prop_assert!(report.verdict.all_hold(), "{:?}", report.verdict);
        prop_assert!(report.clean_from().is_some(), "lateness must die out");
    }

    /// Unknown-bound model: guess-and-double pacing outruns any bound the
    /// adversary picks, without ever being told it.
    #[test]
    fn unknown_bound_always_decides(
        delta in 1u64..7,
        every in 2u64..6,
        seed in 0u64..1_000,
        inputs in proptest::collection::vec(any::<bool>(), 4),
    ) {
        let (n, ell, t) = (4, 4, 1);
        let factory = AgreementFactory::new(n, ell, t, Domain::binary());
        let pacing = DoublingPacing::new(1, every);
        let catch_up = pacing
            .outlasts(delta, 200)
            .expect("doubling reaches any bound")
            .index();
        let mut cluster = DelayCluster::builder(psync_cfg(n, ell, t), IdAssignment::unique(n), inputs)
            .model(AlwaysBounded::new(delta, seed))
            .pacing(pacing)
            .build();
        let report = cluster.run(&factory, catch_up + factory.round_bound() + 40);
        prop_assert!(report.verdict.all_hold(), "{:?}", report.verdict);
        prop_assert!(report.clean_from().is_some(), "lateness must die out");
    }

    /// Degenerate delays: the delay world collapses to the lock-step
    /// simulator, decision for decision, for every input vector.
    #[test]
    fn instant_delays_equal_lockstep(
        inputs in proptest::collection::vec(any::<bool>(), 5),
    ) {
        let (n, ell, t) = (5, 5, 1);
        let factory = AgreementFactory::new(n, ell, t, Domain::binary());
        let mut cluster = DelayCluster::builder(
            psync_cfg(n, ell, t),
            IdAssignment::unique(n),
            inputs.clone(),
        )
        .model(Instant)
        .pacing(FixedPacing::new(1))
        .build();
        let dr = cluster.run(&factory, 200);

        let mut sim = Simulation::builder(psync_cfg(n, ell, t), IdAssignment::unique(n), inputs)
            .build_with(&factory);
        let sr = sim.run(200);

        prop_assert_eq!(&dr.outcome.decisions, &sr.outcome.decisions);
        prop_assert_eq!(dr.rounds, sr.rounds);
        prop_assert_eq!(dr.late, 0);
        prop_assert_eq!(dr.clean_from(), Some(Round::ZERO));
    }
}
