//! Experiment E11 — the headline: with `t = 1` and `ℓ = 4` identifiers,
//! partially synchronous agreement works for 4 processes but adding a
//! fifth *correct* process makes it impossible.

use homonyms::core::{bounds, Domain, IdAssignment, Synchrony, SystemConfig};
use homonyms::lower_bounds::fig4;
use homonyms::psync::AgreementFactory;
use homonyms::sim::harness::{run_standard_suite, SuiteParams};

fn cfg(n: usize) -> SystemConfig {
    SystemConfig::builder(n, 4, 1)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid parameters")
}

#[test]
fn four_processes_survive_everything_we_throw() {
    let cfg = cfg(4);
    assert!(bounds::solvable(&cfg));
    let factory = AgreementFactory::new(4, 4, 1, Domain::binary());
    let domain = Domain::binary();
    let assignment = IdAssignment::unique(4);
    let gst = 12;
    let params = SuiteParams {
        cfg,
        assignment: &assignment,
        domain: &domain,
        horizon: gst + factory.round_bound() + 24,
        gst,
        seed: 11,
    };
    let result = run_standard_suite(&factory, &params);
    assert!(
        result.all_hold(),
        "{:?}",
        result
            .failures()
            .iter()
            .map(|f| (&f.name, f.report.verdict.to_string()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn five_processes_split_brain() {
    let cfg = cfg(5);
    assert!(!bounds::solvable(&cfg));
    let factory = AgreementFactory::new(5, 4, 1, Domain::binary());
    let outcome = fig4::run(&factory, cfg, 8 * 14);
    assert!(outcome.split_brain(), "{outcome:?}");
}

#[test]
fn the_predicate_is_monotone_in_ell_but_not_in_n() {
    // Fixing n and t, more identifiers never hurt.
    for ell in 1..=5usize {
        let c = SystemConfig::builder(5, ell, 1)
            .synchrony(Synchrony::PartiallySynchronous)
            .build()
            .unwrap();
        if bounds::solvable(&c) {
            for bigger in ell..=5 {
                let c2 = SystemConfig::builder(5, bigger, 1)
                    .synchrony(Synchrony::PartiallySynchronous)
                    .build()
                    .unwrap();
                assert!(bounds::solvable(&c2));
            }
        }
    }
    // Fixing ℓ and t, more processes CAN hurt: the headline pair.
    assert!(bounds::solvable(&cfg(4)));
    assert!(!bounds::solvable(&cfg(5)));
}
