//! Crash–recovery parity: crashing any process at any round boundary and
//! durably recovering it in place (journal replay into a fresh automaton)
//! is **unobservable** — decisions (value AND round), message counters,
//! and verdicts are identical to the uninterrupted run, for every
//! protocol family, under both the [`Sequential`] and [`Pool`] executors,
//! in the lock-step simulator, the sharded engines, the threaded cluster,
//! and on [`HeightChain`] multi-height ledgers.
//!
//! Also covered: amnesiac rejoins share the `|faulty| ≤ t` budget with
//! Byzantine processes (over budget → typed rejection), and injected
//! journal corruption (torn tails, truncation, bit flips) is always
//! surfaced as a typed error — recovery never silently decodes garbage.

use std::collections::BTreeMap;
use std::sync::Arc;

use homonyms::classic::{Eig, UniqueRunner};
use homonyms::core::exec::{Executor, Pool, Sequential};
use homonyms::core::journal::{self, Fault, FileWal, Journal};
use homonyms::core::{
    Domain, FnFactory, HeightChainFactory, Id, IdAssignment, Pid, Protocol, ProtocolFactory,
    RecoveryMode, Round, Synchrony, SystemConfig, WireDecode, WireEncode,
};
use homonyms::psync::{AgreementFactory, BoundedAgreementFactory};
use homonyms::runtime::{Cluster, ShardedCluster};
use homonyms::sim::adversary::Silent;
use homonyms::sim::{
    ChurnError, ChurnOp, ChurnPlan, RandomUntilGst, ShardSpec, ShardedSimulation, ShotSpec,
    Simulation,
};
use homonyms::sync::TransformedFactory;
use proptest::prelude::*;

/// One parity scenario: which correct process crashes, at which round
/// boundary, and how often snapshots are cut (0 = journal-only).
#[derive(Clone, Copy, Debug)]
struct CrashPlan {
    victim: Pid,
    at: u64,
    snapshot_every: u64,
}

/// Runs one simulation; `crash` (if any) crashes the victim at the given
/// round boundary and durably recovers it in the same boundary (zero
/// gap). Returns the decisions (value and round) plus the sent counter.
#[allow(clippy::too_many_arguments)]
fn run_solo<F, P, E>(
    factory: &F,
    cfg: SystemConfig,
    assignment: IdAssignment,
    inputs: Vec<P::Value>,
    byz: Vec<Pid>,
    gst: u64,
    horizon: u64,
    crash: Option<CrashPlan>,
    exec: E,
) -> (BTreeMap<Pid, (P::Value, Round)>, u64)
where
    P: Protocol + Send + 'static,
    P::Msg: WireEncode + WireDecode,
    F: ProtocolFactory<P = P>,
    E: Executor,
{
    let mut builder = Simulation::builder(cfg, assignment, inputs)
        .executor(exec)
        .byzantine(byz, Silent)
        .drops(RandomUntilGst::new(Round::new(gst), 0.3, 7));
    if let Some(plan) = crash {
        builder = builder.durable(plan.snapshot_every);
    }
    let mut sim = builder.build_with(factory);
    while sim.round().index() < horizon && !sim.all_decided() {
        if let Some(plan) = crash {
            if sim.round().index() == plan.at {
                sim.crash(plan.victim).expect("victim is live and correct");
                sim.recover_with(factory, plan.victim, RecoveryMode::Durable)
                    .expect("durable journal replays");
            }
        }
        sim.step();
    }
    (sim.decisions().clone(), sim.report().messages_sent)
}

/// Asserts the crash/recover run is byte-identical to the golden run
/// under both executors.
#[allow(clippy::too_many_arguments)]
fn assert_recovery_parity<F, P>(
    factory: &F,
    cfg: SystemConfig,
    assignment: IdAssignment,
    inputs: Vec<P::Value>,
    byz: Vec<Pid>,
    gst: u64,
    horizon: u64,
    plan: CrashPlan,
) where
    P: Protocol + Send + 'static,
    P::Msg: WireEncode + WireDecode,
    P::Value: std::fmt::Debug + PartialEq,
    F: ProtocolFactory<P = P>,
{
    let golden = run_solo(
        factory,
        cfg,
        assignment.clone(),
        inputs.clone(),
        byz.clone(),
        gst,
        horizon,
        None,
        Sequential,
    );
    let seq = run_solo(
        factory,
        cfg,
        assignment.clone(),
        inputs.clone(),
        byz.clone(),
        gst,
        horizon,
        Some(plan),
        Sequential,
    );
    assert_eq!(golden.0, seq.0, "decisions diverged (Sequential, {plan:?})");
    assert_eq!(golden.1, seq.1, "sent diverged (Sequential, {plan:?})");
    let pooled = run_solo(
        factory,
        cfg,
        assignment,
        inputs,
        byz,
        gst,
        horizon,
        Some(plan),
        Pool::new(4),
    );
    assert_eq!(golden.0, pooled.0, "decisions diverged (Pool, {plan:?})");
    assert_eq!(golden.1, pooled.1, "sent diverged (Pool, {plan:?})");
}

fn eig_factory(
    ell: usize,
    t: usize,
) -> impl ProtocolFactory<P = UniqueRunner<Eig<bool>>> + Clone + 'static {
    let domain = Domain::binary();
    FnFactory::new(move |id, input| UniqueRunner::new(Eig::new(ell, t, domain.clone()), id, input))
}

fn sync_cfg(n: usize, ell: usize, t: usize) -> SystemConfig {
    SystemConfig::builder(n, ell, t).build().unwrap()
}

fn psync_cfg(n: usize, ell: usize, t: usize) -> SystemConfig {
    SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Classic EIG (unique identifiers): any victim, any crash round,
    /// journal-only and snapshotted recovery, with a Byzantine process.
    #[test]
    fn classic_recovery_parity(victim in 0usize..3, at in 0u64..6, snap in 0u64..3) {
        let plan = CrashPlan { victim: Pid::new(victim), at, snapshot_every: snap };
        assert_recovery_parity(
            &eig_factory(4, 1),
            sync_cfg(4, 4, 1),
            IdAssignment::unique(4),
            vec![true, false, true, false],
            vec![Pid::new(3)],
            0,
            12,
            plan,
        );
    }

    /// The T(EIG) transformer (homonymous, ℓ < n) under the sync model.
    #[test]
    fn sync_transformer_recovery_parity(victim in 0usize..5, at in 0u64..8) {
        let factory = TransformedFactory::new(Eig::new(4, 1, Domain::binary()), 1);
        let horizon = factory.round_bound() + 9;
        let plan = CrashPlan { victim: Pid::new(victim), at, snapshot_every: 0 };
        assert_recovery_parity(
            &factory,
            sync_cfg(6, 4, 1),
            IdAssignment::stacked(4, 6).unwrap(),
            vec![true, true, false, false, true, false],
            vec![Pid::new(5)],
            0,
            horizon,
            plan,
        );
    }

    /// The faithful partially synchronous agreement, with pre-GST drops.
    #[test]
    fn psync_faithful_recovery_parity(victim in 0usize..2, at in 0u64..14) {
        let factory = AgreementFactory::new(4, 4, 1, Domain::binary());
        let horizon = 8 + factory.round_bound() + 24;
        let plan = CrashPlan { victim: Pid::new(victim), at, snapshot_every: 0 };
        assert_recovery_parity(
            &factory,
            psync_cfg(4, 4, 1),
            IdAssignment::unique(4),
            vec![false, true, true, false],
            vec![Pid::new(2)],
            8,
            horizon,
            plan,
        );
    }

    /// The bounded-state agreement (flat-memory windows), same model.
    #[test]
    fn psync_bounded_recovery_parity(victim in 0usize..2, at in 0u64..14) {
        let factory = BoundedAgreementFactory::new(4, 4, 1, Domain::binary());
        let horizon = 8 + factory.round_bound() + 24;
        let plan = CrashPlan { victim: Pid::new(victim), at, snapshot_every: 0 };
        assert_recovery_parity(
            &factory,
            psync_cfg(4, 4, 1),
            IdAssignment::unique(4),
            vec![false, true, true, false],
            vec![Pid::new(3)],
            8,
            horizon,
            plan,
        );
    }

    /// Multi-height ledgers: a crash mid-chain recovers across height
    /// boundaries (the journal spans every height executed so far).
    #[test]
    fn height_chain_recovery_parity(victim in 0usize..4, at in 0u64..20) {
        let inner = AgreementFactory::new(4, 4, 1, Domain::binary());
        let budget = inner.round_bound() + 8;
        let factory = HeightChainFactory::new(inner, budget, 2, 1);
        let horizon = factory.round_bound() + 8;
        let plan = CrashPlan { victim: Pid::new(victim), at, snapshot_every: 0 };
        assert_recovery_parity(
            &factory,
            psync_cfg(4, 4, 1),
            IdAssignment::unique(4),
            vec![false, true, true, false],
            vec![],
            0,
            horizon,
            plan,
        );
    }

    /// Injected corruption is always surfaced: the recovered records are
    /// a byte-exact prefix of what was written (never garbage), and a
    /// bit flip is always reported as typed damage.
    #[test]
    fn injected_corruption_is_always_detected(seed in any::<u64>(), entries in 1usize..6) {
        let path = std::env::temp_dir().join(format!(
            "homonym_wal_{}_{seed:016x}.wal",
            std::process::id()
        ));
        let mut wal = FileWal::create(&path).expect("create WAL");
        let mut originals: Vec<Vec<u8>> = Vec::new();
        for r in 0..entries {
            let payload = journal::encode_deliveries_entry(
                Round::new(r as u64),
                &[(Id::new(1), Arc::new(seed ^ r as u64))],
            );
            wal.append(&payload).expect("append");
            originals.push(payload);
        }
        wal.sync().expect("sync");
        let fault = Fault::draw(seed, wal.synced_len());
        wal.inject(&fault).expect("inject");
        let rec = wal.recover();
        // Never garbage: whatever survives is a byte-exact prefix.
        prop_assert!(rec.records.len() <= originals.len());
        prop_assert_eq!(&rec.records[..], &originals[..rec.records.len()]);
        match fault {
            // A flipped bit always trips the header check or a CRC.
            Fault::BitFlip { .. } => prop_assert!(rec.damage.is_some()),
            // Removed bytes either tear a record (typed damage) or cut
            // cleanly at a record boundary (a strictly shorter log).
            Fault::TornTail { .. } | Fault::Truncate { .. } => {
                prop_assert!(rec.damage.is_some() || rec.records.len() < originals.len());
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// A corrupt file-backed WAL yields a typed `RecoveryFailed`, and the
/// engine state is unchanged (the pid stays crashed).
#[test]
fn corrupt_wal_fails_recovery_with_typed_error() {
    let factory = eig_factory(4, 1);
    let mut sim = Simulation::builder(
        sync_cfg(4, 4, 1),
        IdAssignment::unique(4),
        vec![true, false, true, false],
    )
    .durable(0)
    .build_with(&factory);

    let path = std::env::temp_dir().join(format!("homonym_corrupt_{}.wal", std::process::id()));
    let mut wal = FileWal::create(&path).expect("create WAL");
    wal.append(&journal::encode_deliveries_entry::<u64>(Round::ZERO, &[]))
        .expect("append");
    wal.sync().expect("sync");
    wal.inject(&Fault::BitFlip { offset: 6, bit: 3 })
        .expect("inject");
    sim.install_journal(Pid::new(1), Box::new(wal));

    sim.step();
    sim.crash(Pid::new(1)).expect("crash");
    let err = sim
        .recover_with(&factory, Pid::new(1), RecoveryMode::Durable)
        .unwrap_err();
    assert!(
        matches!(err, ChurnError::RecoveryFailed(_)),
        "expected RecoveryFailed, got {err:?}"
    );
    assert!(sim.crashed().contains(&Pid::new(1)), "pid stays crashed");
    let _ = std::fs::remove_file(&path);
}

/// A crash between append and fsync loses exactly the un-synced tail:
/// recovery replays the durable prefix without damage.
#[test]
fn wal_crash_between_write_and_fsync_keeps_durable_prefix() {
    let path = std::env::temp_dir().join(format!("homonym_torn_{}.wal", std::process::id()));
    let mut wal = FileWal::create(&path).expect("create WAL");
    let synced = journal::encode_deliveries_entry(Round::ZERO, &[(Id::new(1), Arc::new(7u64))]);
    wal.append(&synced).expect("append");
    wal.sync().expect("sync");
    let unsynced = journal::encode_deliveries_entry(Round::new(1), &[(Id::new(2), Arc::new(9u64))]);
    wal.append(&unsynced).expect("append");
    wal.crash(0xC0FFEE).expect("power loss");
    let rec = wal.recover();
    assert!(!rec.records.is_empty(), "durable prefix survives");
    assert_eq!(rec.records[0], synced);
    // A torn half-record of the un-synced tail is damage, never a record.
    if rec.records.len() > 1 {
        assert_eq!(rec.records[1], unsynced);
    }
    let _ = std::fs::remove_file(&path);
}

/// Crashed-amnesiac and Byzantine processes share one `|faulty| ≤ t`
/// budget: with the budget spent on a Byzantine process, an amnesiac
/// rejoin is rejected with a typed error.
#[test]
fn amnesiac_rejoin_shares_fault_budget_with_byzantine() {
    let factory = eig_factory(4, 1);
    let mut sim = Simulation::builder(
        sync_cfg(4, 4, 1),
        IdAssignment::unique(4),
        vec![true, false, true, false],
    )
    .byzantine([Pid::new(3)], Silent)
    .build_with(&factory);
    sim.step();
    sim.crash(Pid::new(0)).expect("crash");
    let err = sim
        .recover_with(&factory, Pid::new(0), RecoveryMode::Amnesiac)
        .unwrap_err();
    assert!(
        matches!(err, ChurnError::BudgetExceeded { would_be: 2, t: 1 }),
        "expected BudgetExceeded, got {err:?}"
    );

    // With budget available the rejoin succeeds and consumes it: turning
    // another process Byzantine afterwards must then be rejected.
    let mut sim = Simulation::builder(
        sync_cfg(4, 4, 1),
        IdAssignment::unique(4),
        vec![true, false, true, false],
    )
    .build_with(&factory);
    sim.step();
    sim.crash(Pid::new(0)).expect("crash");
    sim.recover_with(&factory, Pid::new(0), RecoveryMode::Amnesiac)
        .expect("budget available");
    assert!(sim.amnesiac().contains(&Pid::new(0)));
    let err = sim
        .try_turn_byzantine(&[Pid::new(2)].into_iter().collect())
        .unwrap_err();
    assert!(
        matches!(err, ChurnError::BudgetExceeded { would_be: 2, t: 1 }),
        "joint budget must count the amnesiac rejoiner, got {err:?}"
    );
}

/// Zero-gap crash/recover parity across the sharded engines: the churned
/// sharded simulator, the churned sharded cluster, and the untouched
/// golden run all report identical shots.
#[test]
fn sharded_zero_gap_recovery_parity() {
    let cfg = sync_cfg(4, 4, 1);
    let horizon = 12u64;
    let spec = || {
        ShardSpec::new(cfg, IdAssignment::unique(4))
            .durable()
            .shot(ShotSpec::new(vec![true, false, true, false]).horizon(horizon))
            .shot(
                ShotSpec::new(vec![false, false, true, true])
                    .byzantine([Pid::new(3)], Silent)
                    .horizon(horizon),
            )
    };
    let plan = || {
        let mut p: ChurnPlan<UniqueRunner<Eig<bool>>> = ChurnPlan::new();
        p.at(
            3,
            ChurnOp::Crash(homonyms::sim::ShardId::new(0), Pid::new(1)),
        );
        p.at(
            3,
            ChurnOp::Recover(
                homonyms::sim::ShardId::new(0),
                Pid::new(1),
                RecoveryMode::Durable,
            ),
        );
        p
    };

    let mut golden = ShardedSimulation::new();
    golden.add_shard(spec(), eig_factory(4, 1));
    let golden = golden.run(8 * horizon);

    let mut churned = ShardedSimulation::new();
    churned.add_shard(spec(), eig_factory(4, 1));
    let churned = churned.run_churned(plan(), 8 * horizon);

    let cluster = {
        let mut c = ShardedCluster::new().churn(plan());
        c.add_shard(spec(), eig_factory(4, 1));
        c.run(8 * horizon)
    };

    for reports in [&churned, &cluster] {
        assert_eq!(golden.len(), reports.len());
        for (a, b) in golden.iter().zip(reports.iter()) {
            assert_eq!(a.shots.len(), b.shots.len());
            for (x, y) in a.shots.iter().zip(&b.shots) {
                assert_eq!(
                    x.report.outcome.decisions, y.report.outcome.decisions,
                    "decisions diverge at {} shot {}",
                    a.shard, x.shot
                );
                assert_eq!(x.report.messages_sent, y.report.messages_sent);
                assert_eq!(x.report.all_decided_round, y.report.all_decided_round);
            }
        }
    }
}

/// Zero-gap crash/recover parity in the threaded single-shot cluster:
/// byte-identical to the lock-step simulator's golden run.
#[test]
fn threaded_cluster_zero_gap_recovery_parity() {
    let factory = eig_factory(4, 1);
    let cfg = sync_cfg(4, 4, 1);
    let inputs = vec![true, false, true, false];

    let mut sim = Simulation::builder(cfg, IdAssignment::unique(4), inputs.clone())
        .byzantine([Pid::new(3)], Silent)
        .build_with(&factory);
    let golden = sim.run(12);

    let threaded = Cluster::new(cfg, IdAssignment::unique(4), inputs)
        .byzantine([Pid::new(3)], Silent)
        .crash_at(2, Pid::new(1))
        .recover_at(2, Pid::new(1), RecoveryMode::Durable)
        .run(&factory, 12);

    assert_eq!(golden.outcome.decisions, threaded.outcome.decisions);
    assert_eq!(golden.rounds, threaded.rounds);
    assert_eq!(golden.messages_sent, threaded.messages_sent);
    assert!(threaded.verdict.all_hold(), "{}", threaded.verdict);
}

/// A gapped durable recovery (the victim misses rounds while down) still
/// terminates with a passing verdict: replay brings it back consistent,
/// and the rounds it missed are ordinary message loss.
#[test]
fn gapped_durable_recovery_still_agrees() {
    let factory = AgreementFactory::new(4, 4, 1, Domain::binary());
    let horizon = 8 + factory.round_bound() + 24;
    let mut sim = Simulation::builder(
        psync_cfg(4, 4, 1),
        IdAssignment::unique(4),
        vec![false, true, true, false],
    )
    .durable(0)
    .build_with(&factory);
    while sim.round().index() < horizon && !sim.all_decided() {
        if sim.round().index() == 2 {
            sim.crash(Pid::new(1)).expect("crash");
        }
        if sim.round().index() == 5 {
            sim.recover_with(&factory, Pid::new(1), RecoveryMode::Durable)
                .expect("recover");
        }
        sim.step();
    }
    let report = sim.report();
    assert!(report.verdict.all_hold(), "{}", report.verdict);
    assert!(sim.decisions().contains_key(&Pid::new(1)));
}
