//! Golden equivalence for the Arc-shared delivery fabric: the refactored
//! engine must reproduce, byte for byte, the traces and decisions the seed
//! (deep-clone-per-recipient) engine produced on the `fig1_violation` and
//! `fig4_disagreement` scenarios.
//!
//! The `GOLDEN_*` hashes below were harvested from the seed engine (commit
//! `be73ae0`) by running these exact functions before the fabric refactor;
//! run with `--nocapture` to see the recomputed values.

use std::fmt::Write as _;

use homonyms::classic::Eig;
use homonyms::core::{Domain, Synchrony, SystemConfig};
use homonyms::core::{IdAssignment, Pid, Round};
use homonyms::lower_bounds::{fig1, fig4};
use homonyms::psync::AgreementFactory;
use homonyms::sim::adversary::CloneSpammer;
use homonyms::sim::{RandomUntilGst, Simulation, Trace};
use homonyms::sync::TransformedFactory;

/// FNV-1a, so the golden values are stable one-liners rather than
/// megabyte dumps checked into the tree.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Canonical, byte-stable rendering of a full trace: one line per
/// attempted delivery, in recording order. `{:?}` on the payload prints
/// identically whether the trace stores `M` (seed engine) or `Arc<M>`
/// (fabric engine), which is exactly the equivalence under test.
fn trace_dump<M: homonyms::core::Message>(trace: &Trace<M>) -> String {
    let mut s = String::new();
    for d in trace.deliveries() {
        let _ = writeln!(
            s,
            "{}|{}|{}|{}|{:?}|{}",
            d.round, d.from, d.src_id, d.to, d.msg, d.dropped
        );
    }
    s
}

/// The fig1_violation scenario: the ring construction for (n=4, t=1) run
/// under T(EIG), with the full delivery trace recorded.
fn fig1_scenario_digest() -> (u64, u64) {
    let sys = fig1::build(4, 1);
    let factory = TransformedFactory::new(Eig::new_unchecked(3, 1, Domain::binary()), 1);
    let cfg = SystemConfig::builder(sys.assignment.n(), 3, 0)
        .build()
        .expect("ring configuration is valid");
    let mut sim = Simulation::builder(cfg, sys.assignment.clone(), sys.inputs.clone())
        .topology(sys.topology.clone())
        .record_trace(true)
        .build_with(&factory);
    sim.run_exact(factory.round_bound() + 9);
    let decisions = format!("{:?}", sim.decisions());
    let trace = trace_dump(sim.trace().expect("trace enabled"));
    (fnv1a(trace.as_bytes()), fnv1a(decisions.as_bytes()))
}

/// The fig4_disagreement scenario: the full partition construction for the
/// headline cell (n=5, ℓ=4, t=1) — reference runs α/β, trace replay, the
/// partition drop schedule, and the split-brain outcome.
fn fig4_scenario_digest() -> u64 {
    let cfg = SystemConfig::builder(5, 4, 1)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid parameters");
    let factory = AgreementFactory::new(5, 4, 1, Domain::binary());
    let outcome = fig4::run(&factory, cfg, 8 * 14);
    fnv1a(format!("{outcome:?}").as_bytes())
}

/// A lossy adversarial run with the trace on: random drops before GST plus
/// a clone-spamming Byzantine process, so the dump covers the dropped flag
/// and adversary emissions too.
fn lossy_adversarial_digest() -> (u64, u64) {
    let cfg = SystemConfig::builder(5, 4, 1)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid parameters");
    let factory = AgreementFactory::new(5, 4, 1, Domain::binary());
    let assignment = IdAssignment::stacked(4, 5).expect("ℓ ≤ n");
    let byz: std::collections::BTreeSet<Pid> = [Pid::new(0)].into_iter().collect();
    let adversary = CloneSpammer::new(&factory, &assignment, &byz, Domain::binary().values());
    let inputs = (0..5).map(|k| k % 2 == 0).collect();
    let mut sim = Simulation::builder(cfg, assignment, inputs)
        .byzantine(byz, adversary)
        .drops(RandomUntilGst::new(Round::new(6), 0.3, 42))
        .record_trace(true)
        .build_with(&factory);
    sim.run_exact(24);
    let decisions = format!("{:?}", sim.decisions());
    let trace = trace_dump(sim.trace().expect("trace enabled"));
    (fnv1a(trace.as_bytes()), fnv1a(decisions.as_bytes()))
}

const GOLDEN_FIG1_TRACE: u64 = 0x8341f2eca062d52e;
const GOLDEN_FIG1_DECISIONS: u64 = 0x8e752f7d79333a10;
const GOLDEN_FIG4_OUTCOME: u64 = 0x1f894c47d257ba9a;
const GOLDEN_LOSSY_TRACE: u64 = 0xd726c8ffe7267484;
const GOLDEN_LOSSY_DECISIONS: u64 = 0x91f6ae649ee5d7aa;

#[test]
fn fig1_trace_and_decisions_match_seed_engine() {
    let (trace, decisions) = fig1_scenario_digest();
    println!("fig1 trace={trace:#018x} decisions={decisions:#018x}");
    assert_eq!(trace, GOLDEN_FIG1_TRACE, "fig1 trace diverged from seed");
    assert_eq!(
        decisions, GOLDEN_FIG1_DECISIONS,
        "fig1 decisions diverged from seed"
    );
}

#[test]
fn fig4_outcome_matches_seed_engine() {
    let outcome = fig4_scenario_digest();
    println!("fig4 outcome={outcome:#018x}");
    assert_eq!(outcome, GOLDEN_FIG4_OUTCOME, "fig4 outcome diverged");
}

#[test]
fn lossy_adversarial_trace_matches_seed_engine() {
    let (trace, decisions) = lossy_adversarial_digest();
    println!("lossy trace={trace:#018x} decisions={decisions:#018x}");
    assert_eq!(trace, GOLDEN_LOSSY_TRACE, "lossy trace diverged");
    assert_eq!(
        decisions, GOLDEN_LOSSY_DECISIONS,
        "lossy decisions diverged"
    );
}
