//! Golden equivalence for the Arc-shared delivery fabric: the refactored
//! engine must reproduce, byte for byte, the traces and decisions the seed
//! (deep-clone-per-recipient) engine produced on the `fig1_violation` and
//! `fig4_disagreement` scenarios.
//!
//! The `GOLDEN_*` hashes below were harvested from the seed engine (commit
//! `be73ae0`) by running these exact functions before the fabric refactor;
//! run with `--nocapture` to see the recomputed values.

use std::fmt::Write as _;

use homonyms::classic::Eig;
use homonyms::core::{Domain, Executor, Pool, Sequential, Synchrony, SystemConfig};
use homonyms::core::{IdAssignment, Pid, Round};
use homonyms::lower_bounds::{fig1, fig4};
use homonyms::psync::AgreementFactory;
use homonyms::sim::adversary::CloneSpammer;
use homonyms::sim::{
    RandomUntilGst, ShardSpec, ShardedSimulation, ShardedTrace, ShotSpec, Simulation, Trace,
};
use homonyms::sync::TransformedFactory;

/// FNV-1a, so the golden values are stable one-liners rather than
/// megabyte dumps checked into the tree.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Canonical, byte-stable rendering of a full trace: one line per
/// attempted delivery, in recording order. `{:?}` on the payload prints
/// identically whether the trace stores `M` (seed engine) or `Arc<M>`
/// (fabric engine), which is exactly the equivalence under test.
fn trace_dump<M: homonyms::core::Message>(trace: &Trace<M>) -> String {
    let mut s = String::new();
    for d in trace.deliveries() {
        let _ = writeln!(
            s,
            "{}|{}|{}|{}|{:?}|{}",
            d.round, d.from, d.src_id, d.to, d.msg, d.dropped
        );
    }
    s
}

/// The fig1_violation scenario: the ring construction for (n=4, t=1) run
/// under T(EIG), with the full delivery trace recorded.
fn fig1_scenario_digest<E: Executor>(exec: E) -> (u64, u64) {
    let sys = fig1::build(4, 1);
    let factory = TransformedFactory::new(Eig::new_unchecked(3, 1, Domain::binary()), 1);
    let cfg = SystemConfig::builder(sys.assignment.n(), 3, 0)
        .build()
        .expect("ring configuration is valid");
    let mut sim = Simulation::builder(cfg, sys.assignment.clone(), sys.inputs.clone())
        .topology(sys.topology.clone())
        .record_trace(true)
        .executor(exec)
        .build_with(&factory);
    sim.run_exact(factory.round_bound() + 9);
    let decisions = format!("{:?}", sim.decisions());
    let trace = trace_dump(sim.trace().expect("trace enabled"));
    (fnv1a(trace.as_bytes()), fnv1a(decisions.as_bytes()))
}

/// The fig4_disagreement scenario: the full partition construction for the
/// headline cell (n=5, ℓ=4, t=1) — reference runs α/β, trace replay, the
/// partition drop schedule, and the split-brain outcome.
fn fig4_scenario_digest<E: Executor + Clone>(exec: E) -> u64 {
    let cfg = SystemConfig::builder(5, 4, 1)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid parameters");
    let factory = AgreementFactory::new(5, 4, 1, Domain::binary());
    let outcome = fig4::run_with(&factory, cfg, 8 * 14, exec);
    fnv1a(format!("{outcome:?}").as_bytes())
}

/// A lossy adversarial run with the trace on: random drops before GST plus
/// a clone-spamming Byzantine process, so the dump covers the dropped flag
/// and adversary emissions too.
fn lossy_adversarial_digest<E: Executor>(exec: E) -> (u64, u64) {
    let cfg = SystemConfig::builder(5, 4, 1)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid parameters");
    let factory = AgreementFactory::new(5, 4, 1, Domain::binary());
    let assignment = IdAssignment::stacked(4, 5).expect("ℓ ≤ n");
    let byz: std::collections::BTreeSet<Pid> = [Pid::new(0)].into_iter().collect();
    let adversary = CloneSpammer::new(&factory, &assignment, &byz, Domain::binary().values());
    let inputs = (0..5).map(|k| k % 2 == 0).collect();
    let mut sim = Simulation::builder(cfg, assignment, inputs)
        .byzantine(byz, adversary)
        .drops(RandomUntilGst::new(Round::new(6), 0.3, 42))
        .record_trace(true)
        .executor(exec)
        .build_with(&factory);
    sim.run_exact(24);
    let decisions = format!("{:?}", sim.decisions());
    let trace = trace_dump(sim.trace().expect("trace enabled"));
    (fnv1a(trace.as_bytes()), fnv1a(decisions.as_bytes()))
}

/// Canonical rendering of a sharded trace: the single-shot format
/// prefixed with the shard and shot tags, in global routing order — so a
/// reordering of deliveries *across* shards changes the digest even when
/// every per-shard projection is unchanged.
fn sharded_trace_dump<M: homonyms::core::Message>(trace: &ShardedTrace<M>) -> String {
    let mut s = String::new();
    for e in trace.entries() {
        let d = &e.delivery;
        let _ = writeln!(
            s,
            "{}|{}|{}|{}|{}|{}|{:?}|{}",
            e.shard, e.shot, d.round, d.from, d.src_id, d.to, d.msg, d.dropped
        );
    }
    s
}

/// The pinned 3-shard multi-shot scenario: three Figure 5 shards (clean
/// multi-shot, clone-spammed + lossy, lossy under a round-robin
/// assignment) interleaved over one plane, stepped on the given
/// executor. The digest covers the global interleaving order, so future
/// fabric changes cannot silently reorder shard deliveries — and running
/// the same scenario under a worker pool must reproduce the *sequential*
/// digest bit for bit.
fn sharded_3shard_digest<E: homonyms::core::Executor>(exec: E) -> (u64, u64) {
    let cfg = SystemConfig::builder(5, 4, 1)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid parameters");
    let factory = || AgreementFactory::new(5, 4, 1, Domain::binary());
    let horizon = factory().round_bound() + 24;
    let mut sharded = ShardedSimulation::with_executor(exec).record_trace(true);

    // Shard 0: two clean shots back to back (the pipelining path).
    let stacked = IdAssignment::stacked(4, 5).expect("ℓ ≤ n");
    sharded.add_shard(
        ShardSpec::new(cfg, stacked.clone())
            .shot(ShotSpec::new(vec![true, false, true, false, true]).horizon(horizon))
            .shot(ShotSpec::new(vec![false, false, true, true, false]).horizon(horizon)),
        factory(),
    );

    // Shard 1: a clone-spamming Byzantine process plus pre-GST drops.
    let byz: std::collections::BTreeSet<Pid> = [Pid::new(0)].into_iter().collect();
    let adversary = CloneSpammer::new(&factory(), &stacked, &byz, Domain::binary().values());
    sharded.add_shard(
        ShardSpec::new(cfg, stacked).shot(
            ShotSpec::new((0..5).map(|k| k % 2 == 0).collect())
                .byzantine(byz, adversary)
                .drops(RandomUntilGst::new(Round::new(6), 0.3, 42))
                .horizon(6 + horizon),
        ),
        factory(),
    );

    // Shard 2: lossy under the round-robin assignment.
    sharded.add_shard(
        ShardSpec::new(cfg, IdAssignment::round_robin(4, 5).expect("ℓ ≤ n")).shot(
            ShotSpec::new(vec![true, true, false, false, false])
                .drops(RandomUntilGst::new(Round::new(4), 0.25, 7))
                .horizon(4 + horizon),
        ),
        factory(),
    );

    let reports = sharded.run(8 * horizon);
    let decisions = format!(
        "{:?}",
        reports
            .iter()
            .map(|r| r
                .shots
                .iter()
                .map(|s| (s.shot, s.report.outcome.decisions.clone()))
                .collect::<Vec<_>>())
            .collect::<Vec<_>>()
    );
    let trace = sharded_trace_dump(sharded.trace().expect("trace enabled"));
    (fnv1a(trace.as_bytes()), fnv1a(decisions.as_bytes()))
}

const GOLDEN_FIG1_TRACE: u64 = 0x8341f2eca062d52e;
const GOLDEN_FIG1_DECISIONS: u64 = 0x8e752f7d79333a10;
const GOLDEN_FIG4_OUTCOME: u64 = 0x1f894c47d257ba9a;
const GOLDEN_LOSSY_TRACE: u64 = 0xd726c8ffe7267484;
const GOLDEN_LOSSY_DECISIONS: u64 = 0x91f6ae649ee5d7aa;
// Harvested from the first ShardedSimulation implementation (this PR);
// pins the global shard-interleaving order, not just per-shard content.
const GOLDEN_SHARDED_TRACE: u64 = 0xf5f19511c2cb9ebf;
const GOLDEN_SHARDED_DECISIONS: u64 = 0xa390bd4beac04866;

#[test]
fn fig1_trace_and_decisions_match_seed_engine() {
    let (trace, decisions) = fig1_scenario_digest(Sequential);
    println!("fig1 trace={trace:#018x} decisions={decisions:#018x}");
    assert_eq!(trace, GOLDEN_FIG1_TRACE, "fig1 trace diverged from seed");
    assert_eq!(
        decisions, GOLDEN_FIG1_DECISIONS,
        "fig1 decisions diverged from seed"
    );
}

#[test]
fn fig4_outcome_matches_seed_engine() {
    let outcome = fig4_scenario_digest(Sequential);
    println!("fig4 outcome={outcome:#018x}");
    assert_eq!(outcome, GOLDEN_FIG4_OUTCOME, "fig4 outcome diverged");
}

#[test]
fn sharded_3shard_interleaving_is_pinned() {
    let (trace, decisions) = sharded_3shard_digest(Sequential);
    println!("sharded trace={trace:#018x} decisions={decisions:#018x}");
    assert_eq!(
        trace, GOLDEN_SHARDED_TRACE,
        "sharded delivery interleaving diverged"
    );
    assert_eq!(
        decisions, GOLDEN_SHARDED_DECISIONS,
        "sharded decisions diverged"
    );
}

#[test]
fn sharded_3shard_interleaving_is_pinned_under_pool_executor() {
    // Same scenario, fanned across a worker pool (pool larger than the
    // shard set, so some workers idle): the SAME sequential golden
    // digests must come out — the executor is unobservable.
    let (trace, decisions) = sharded_3shard_digest(Pool::new(3));
    println!("pooled  trace={trace:#018x} decisions={decisions:#018x}");
    assert_eq!(
        trace, GOLDEN_SHARDED_TRACE,
        "pool executor reordered sharded deliveries"
    );
    assert_eq!(
        decisions, GOLDEN_SHARDED_DECISIONS,
        "pool executor changed sharded decisions"
    );
}

#[test]
fn lossy_adversarial_trace_matches_seed_engine() {
    let (trace, decisions) = lossy_adversarial_digest(Sequential);
    println!("lossy trace={trace:#018x} decisions={decisions:#018x}");
    assert_eq!(trace, GOLDEN_LOSSY_TRACE, "lossy trace diverged");
    assert_eq!(
        decisions, GOLDEN_LOSSY_DECISIONS,
        "lossy decisions diverged"
    );
}

#[test]
fn solo_golden_digests_are_pinned_at_every_pool_width() {
    // The intra-instance chunked tick: the same single-instance golden
    // scenarios, fanned across pools of 1, 2, 3, and 7 workers (worker
    // counts straddling and exceeding n, including odd chunk
    // boundaries). Every width must reproduce the SEQUENTIAL golden
    // digests bit for bit — the executor is unobservable.
    for w in [1usize, 2, 3, 7] {
        let (trace, decisions) = fig1_scenario_digest(Pool::new(w));
        assert_eq!(
            trace, GOLDEN_FIG1_TRACE,
            "fig1 trace diverged at {w} workers"
        );
        assert_eq!(
            decisions, GOLDEN_FIG1_DECISIONS,
            "fig1 decisions diverged at {w} workers"
        );

        let outcome = fig4_scenario_digest(Pool::new(w));
        assert_eq!(
            outcome, GOLDEN_FIG4_OUTCOME,
            "fig4 outcome diverged at {w} workers"
        );

        let (trace, decisions) = lossy_adversarial_digest(Pool::new(w));
        assert_eq!(
            trace, GOLDEN_LOSSY_TRACE,
            "lossy trace diverged at {w} workers"
        );
        assert_eq!(
            decisions, GOLDEN_LOSSY_DECISIONS,
            "lossy decisions diverged at {w} workers"
        );
    }
}

#[test]
fn sharded_golden_digests_are_pinned_at_every_pool_width() {
    // The sharded engine's flattened (shard, chunk) fan-out at the same
    // widths: big shards split internally, yet the global interleaving
    // digest is unchanged.
    for w in [1usize, 2, 3, 7] {
        let (trace, decisions) = sharded_3shard_digest(Pool::new(w));
        assert_eq!(
            trace, GOLDEN_SHARDED_TRACE,
            "sharded trace diverged at {w} workers"
        );
        assert_eq!(
            decisions, GOLDEN_SHARDED_DECISIONS,
            "sharded decisions diverged at {w} workers"
        );
    }
}
