//! Shape assertions for the cost claims in EXPERIMENTS.md (E6–E9): not
//! absolute numbers, but the relationships the paper's constructions
//! imply. If an implementation change breaks one of these, the benches'
//! narrative is stale.

use homonyms::classic::{Eig, SyncBa, UniqueRunner};
use homonyms::core::{Domain, FnFactory, IdAssignment, Synchrony, SystemConfig};
use homonyms::psync::{AgreementFactory, RestrictedFactory};
use homonyms::sim::{RandomUntilGst, Simulation};
use homonyms::sync::TransformedFactory;

fn run_t_eig(n: usize, ell: usize, t: usize) -> homonyms::sim::RunReport<bool> {
    let factory = TransformedFactory::new(Eig::new(ell, t, Domain::binary()), t);
    let cfg = SystemConfig::builder(n, ell, t).build().unwrap();
    let mut sim = Simulation::builder(cfg, IdAssignment::stacked(ell, n).unwrap(), vec![true; n])
        .build_with(&factory);
    sim.run(factory.round_bound() + 9)
}

#[test]
fn transformer_rounds_are_three_per_simulated_round_plus_relay() {
    // Raw EIG: t + 1 rounds. T(EIG): the deciding round of the phase after
    // the (t + 1)-th simulated round carries the decision, i.e. round
    // 3(t + 1) + 1 zero-based at the earliest; in no case more than one
    // full phase later.
    for (ell, t) in [(4usize, 1usize), (7, 2)] {
        let eig_rounds = t as u64 + 1;
        for n in [ell, ell + 4] {
            let report = run_t_eig(n, ell, t);
            assert!(report.verdict.all_hold());
            let decided = report.all_decided_round.unwrap().index();
            assert!(
                decided >= 3 * eig_rounds,
                "cannot beat the 3× simulation: {decided} vs {}",
                3 * eig_rounds
            );
            assert!(
                decided <= 3 * (eig_rounds + 1) + 1,
                "must not exceed one phase of relay slack: {decided}"
            );
        }
    }
}

#[test]
fn transformer_rounds_do_not_depend_on_n() {
    // The group simulation makes n irrelevant to latency (it only adds
    // message volume).
    let r1 = run_t_eig(4, 4, 1).all_decided_round.unwrap();
    let r2 = run_t_eig(10, 4, 1).all_decided_round.unwrap();
    assert_eq!(r1, r2);
}

#[test]
fn message_volume_scales_quadratically_in_n() {
    // Fixed rounds, all-to-all bundles: messages ≈ rounds · n(n − 1).
    let m4 = run_t_eig(4, 4, 1).messages_sent as f64 / (4.0 * 3.0);
    let m10 = run_t_eig(10, 4, 1).messages_sent as f64 / (10.0 * 9.0);
    let ratio = m10 / m4;
    assert!(
        (0.8..=1.2).contains(&ratio),
        "normalized per-pair volume should be n-invariant, got ratio {ratio}"
    );
}

#[test]
fn raw_eig_beats_the_transformer_in_rounds() {
    let domain = Domain::binary();
    let factory = FnFactory::new(move |id, input| {
        UniqueRunner::new(Eig::new(4, 1, domain.clone()), id, input)
    });
    let cfg = SystemConfig::builder(4, 4, 1).build().unwrap();
    let mut sim =
        Simulation::builder(cfg, IdAssignment::unique(4), vec![true; 4]).build_with(&factory);
    let raw = sim.run(10);
    let transformed = run_t_eig(4, 4, 1);
    assert!(
        raw.all_decided_round.unwrap() < transformed.all_decided_round.unwrap(),
        "the simulation overhead must be visible"
    );
}

#[test]
fn fig5_latency_tracks_gst_with_constant_tail() {
    // All-decided-round ≈ gst + c for a constant c (within one phase).
    let run = |gst: u64| {
        let factory = AgreementFactory::new(4, 4, 1, Domain::binary());
        let cfg = SystemConfig::builder(4, 4, 1)
            .synchrony(Synchrony::PartiallySynchronous)
            .build()
            .unwrap();
        let mut sim = Simulation::builder(cfg, IdAssignment::unique(4), vec![true; 4])
            .drops(RandomUntilGst::new(homonyms::core::Round::new(gst), 0.3, 5))
            .build_with(&factory);
        let report = sim.run(gst + factory.round_bound() + 24);
        assert!(report.verdict.all_hold());
        report.all_decided_round.unwrap().index()
    };
    let at_0 = run(0);
    let at_16 = run(16);
    let at_32 = run(32);
    assert!(
        at_16 >= at_0 && at_32 >= at_16,
        "latency is monotone in gst"
    );
    // The tail after stabilization stays within two phases.
    assert!(at_16 - 16 <= at_0 + 16, "{at_16} vs {at_0}");
    assert!(at_32 <= 32 + at_0 + 16, "{at_32} vs {at_0}");
}

#[test]
fn fig7_decides_faster_and_with_fewer_identifiers_than_fig5() {
    // Same n, t, same drop schedule; each protocol at its minimum ℓ.
    let (n, t, gst) = (7usize, 2usize, 8u64);
    let ell5 = (n + 3 * t) / 2 + 1;
    let ell7 = t + 1;
    assert!(ell7 < ell5);

    let fig5 = {
        let factory = AgreementFactory::new(n, ell5, t, Domain::binary());
        let cfg = SystemConfig::builder(n, ell5, t)
            .synchrony(Synchrony::PartiallySynchronous)
            .build()
            .unwrap();
        let mut sim =
            Simulation::builder(cfg, IdAssignment::stacked(ell5, n).unwrap(), vec![true; n])
                .drops(RandomUntilGst::new(homonyms::core::Round::new(gst), 0.3, 9))
                .build_with(&factory);
        sim.run(gst + factory.round_bound() + 24)
    };
    let fig7 = {
        let factory = RestrictedFactory::new(n, ell7, t, Domain::binary());
        let cfg = SystemConfig::builder(n, ell7, t)
            .synchrony(Synchrony::PartiallySynchronous)
            .counting(homonyms::core::Counting::Numerate)
            .byz_power(homonyms::core::ByzPower::Restricted)
            .build()
            .unwrap();
        let mut sim =
            Simulation::builder(cfg, IdAssignment::stacked(ell7, n).unwrap(), vec![true; n])
                .drops(RandomUntilGst::new(homonyms::core::Round::new(gst), 0.3, 9))
                .build_with(&factory);
        sim.run(gst + factory.round_bound() + 24)
    };
    assert!(fig5.verdict.all_hold());
    assert!(fig7.verdict.all_hold());
    // The shape from E9: with everyone a potential leader earlier in the
    // rotation and no decide-relay detour, Figure 7 lands no later.
    assert!(
        fig7.all_decided_round.unwrap() <= fig5.all_decided_round.unwrap(),
        "{:?} vs {:?}",
        fig7.all_decided_round,
        fig5.all_decided_round
    );
}

#[test]
fn eig_message_size_is_the_price_of_n_gt_3t() {
    // EIG's round-r message has O(ℓ^(r-1)) entries: measure the level
    // growth that motivates using it only for small ℓ.
    let algo = Eig::new(7, 2, Domain::binary());
    let mut s = algo.init(homonyms::core::Id::new(1), true);
    let mut sizes = Vec::new();
    for r in 1..=3u64 {
        sizes.push(algo.message(&s, r).len());
        // Feed a full round of honest messages from all identifiers.
        let honest: std::collections::BTreeMap<homonyms::core::Id, _> = homonyms::core::Id::all(7)
            .map(|id| {
                let peer = algo.init(id, id.get() % 2 == 0);
                (id, algo.message(&peer, r))
            })
            .collect();
        s = algo.transition(&s, r, &honest);
    }
    assert_eq!(sizes[0], 1, "round 1 sends the root");
    assert!(sizes[1] >= 6, "round 2 relays level-1 entries: {sizes:?}");
}

#[test]
fn delay_ticks_scale_linearly_with_delta_at_fixed_rounds() {
    // E14 shape: with FixedPacing(Δ) the round count is Δ-independent
    // (the protocol sees identical inboxes), so wall-clock ticks scale
    // exactly linearly in Δ.
    use homonyms::delay::{DelayCluster, EventuallyBounded, FixedPacing};
    let run = |delta: u64| {
        let cfg = SystemConfig::builder(4, 4, 1)
            .synchrony(Synchrony::PartiallySynchronous)
            .build()
            .unwrap();
        let factory = AgreementFactory::new(4, 4, 1, Domain::binary());
        let mut cluster =
            DelayCluster::builder(cfg, IdAssignment::unique(4), vec![true, false, true, false])
                // Calm from tick 0: a pure Δ-scaling measurement.
                .model(EventuallyBounded::new(delta, 0, delta, 7))
                .pacing(FixedPacing::new(delta))
                .build();
        let report = cluster.run(&factory, 200);
        assert!(report.verdict.all_hold());
        (report.rounds, report.ticks)
    };
    let (r1, t1) = run(1);
    let (r3, t3) = run(3);
    assert_eq!(r1, r3, "round count must not depend on Δ");
    assert_eq!(t3, 3 * t1, "ticks must scale linearly with Δ");
}

#[test]
fn doubling_pacing_pays_at_most_a_constant_factor_over_the_known_bound() {
    // E14 shape: guess-and-double burns at most a geometric sum of
    // too-short rounds, so its tick cost stays within a small factor of
    // the omniscient FixedPacing(Δ) run.
    use homonyms::delay::{AlwaysBounded, DelayCluster, DoublingPacing, FixedPacing};
    let delta = 4u64;
    let cfg = SystemConfig::builder(4, 4, 1)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .unwrap();
    let factory = AgreementFactory::new(4, 4, 1, Domain::binary());
    let inputs = vec![true, false, true, false];

    let mut known = DelayCluster::builder(cfg, IdAssignment::unique(4), inputs.clone())
        .model(AlwaysBounded::new(delta, 5))
        .pacing(FixedPacing::new(delta))
        .build();
    let known_report = known.run(&factory, 400);
    assert!(known_report.verdict.all_hold());

    let mut blind = DelayCluster::builder(cfg, IdAssignment::unique(4), inputs)
        .model(AlwaysBounded::new(delta, 5))
        .pacing(DoublingPacing::new(1, 4))
        .build();
    let blind_report = blind.run(&factory, 400);
    assert!(blind_report.verdict.all_hold());

    assert!(
        blind_report.ticks <= 6 * known_report.ticks,
        "guess-and-double cost {} vs omniscient {}",
        blind_report.ticks,
        known_report.ticks
    );
}
