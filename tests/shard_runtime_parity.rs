//! Sharded cross-engine parity: the threaded [`ShardedCluster`] and the
//! deterministic [`ShardedSimulation`] drive the same multi-shot shard
//! schedule with identical semantics — same per-shard decisions, decision
//! rounds, message counts, and scheduling ticks — for every protocol
//! family, mirroring the single-shot coverage of `runtime_parity.rs` and
//! including the Figure 1 ring scenario of `fabric_golden.rs`.

use homonyms::classic::{Eig, UniqueRunner};
use homonyms::core::{
    Domain, FnFactory, IdAssignment, Pid, Protocol, ProtocolFactory, Round, SystemConfig,
    WireDecode, WireEncode,
};
use homonyms::lower_bounds::fig1;
use homonyms::psync::{AgreementFactory, RestrictedFactory};
use homonyms::runtime::ShardedCluster;
use homonyms::sim::adversary::Silent;
use homonyms::sim::{RandomUntilGst, ShardReport, ShardSpec, ShardedSimulation, ShotSpec};

/// Runs the same shard specs through both engines and asserts the
/// per-shot reports agree on everything observable.
fn assert_sharded_parity<P, F, S>(specs: impl Fn() -> Vec<(ShardSpec<P>, F)>, max_ticks: u64) -> S
where
    P: Protocol + Send + 'static,
    P::Value: Send,
    P::Msg: WireEncode + WireDecode,
    F: ProtocolFactory<P = P> + Send + 'static,
    S: FromIterator<ShardReport<P::Value>>,
{
    let mut sim = ShardedSimulation::new();
    for (spec, factory) in specs() {
        sim.add_shard(spec, factory);
    }
    let simulated = sim.run(max_ticks);

    let mut cluster = ShardedCluster::new();
    for (spec, factory) in specs() {
        cluster.add_shard(spec, factory);
    }
    let threaded = cluster.run(max_ticks);

    assert_eq!(simulated.len(), threaded.len());
    for (a, b) in simulated.iter().zip(&threaded) {
        assert_eq!(a.shots.len(), b.shots.len(), "shot count of {}", a.shard);
        for (x, y) in a.shots.iter().zip(&b.shots) {
            let label = format!("{} shot {}", a.shard, x.shot);
            assert_eq!(
                x.report.outcome.decisions, y.report.outcome.decisions,
                "decisions diverge at {label}"
            );
            assert_eq!(x.report.rounds, y.report.rounds, "rounds at {label}");
            assert_eq!(
                x.report.all_decided_round, y.report.all_decided_round,
                "decision round at {label}"
            );
            assert_eq!(
                x.report.messages_sent, y.report.messages_sent,
                "sent at {label}"
            );
            assert_eq!(
                x.report.messages_delivered, y.report.messages_delivered,
                "delivered at {label}"
            );
            assert_eq!(
                x.report.messages_dropped, y.report.messages_dropped,
                "dropped at {label}"
            );
            assert_eq!(x.started_tick, y.started_tick, "start tick at {label}");
            assert_eq!(x.finished_tick, y.finished_tick, "finish tick at {label}");
        }
    }
    simulated.into_iter().collect()
}

fn eig_factory(
    ell: usize,
    t: usize,
) -> impl ProtocolFactory<P = UniqueRunner<Eig<bool>>> + Clone + 'static {
    let domain = Domain::binary();
    FnFactory::new(move |id, input| UniqueRunner::new(Eig::new(ell, t, domain.clone()), id, input))
}

#[test]
fn parity_eig_multi_shot_shards() {
    let cfg = SystemConfig::builder(4, 4, 1).build().unwrap();
    let specs = || {
        (0..3usize)
            .map(|s| {
                let inputs: Vec<bool> = (0..4).map(|i| (i + s) % 2 == 0).collect();
                let spec = ShardSpec::new(cfg, IdAssignment::unique(4))
                    .shot(ShotSpec::new(inputs.clone()).horizon(12))
                    .shot(
                        ShotSpec::new(inputs)
                            .byzantine([Pid::new(3)], Silent)
                            .horizon(12),
                    );
                (spec, eig_factory(4, 1))
            })
            .collect()
    };
    let reports: Vec<_> = assert_sharded_parity(specs, 64);
    assert!(reports.iter().all(|r| r.decided_shots() == 2));
}

#[test]
fn parity_fig1_ring_scenario() {
    // The Figure 1 ring construction (the fabric_golden scenario): a
    // sparse topology where agreement is *violated* — both engines must
    // agree on exactly how, shot after shot.
    let sys = fig1::build(4, 1);
    let factory =
        || homonyms::sync::TransformedFactory::new(Eig::new_unchecked(3, 1, Domain::binary()), 1);
    let horizon = factory().round_bound() + 9;
    let cfg = SystemConfig::builder(sys.assignment.n(), 3, 0)
        .build()
        .expect("ring configuration is valid");
    let specs = || {
        vec![(
            ShardSpec::new(cfg, sys.assignment.clone())
                .topology(sys.topology.clone())
                .shot(ShotSpec::new(sys.inputs.clone()).horizon(horizon))
                .shot(ShotSpec::new(sys.inputs.clone()).horizon(horizon)),
            factory(),
        )]
    };
    let reports: Vec<_> = assert_sharded_parity(specs, 4 * horizon);
    // Determinism across shots too: the ring does the same thing twice.
    let decisions: Vec<_> = reports[0]
        .shots
        .iter()
        .map(|s| format!("{:?}", s.report.outcome.decisions))
        .collect();
    assert_eq!(decisions[0], decisions[1]);
}

#[test]
fn parity_psync_agreement_with_drops() {
    let cfg = SystemConfig::builder(4, 4, 1)
        .synchrony(homonyms::core::Synchrony::PartiallySynchronous)
        .build()
        .unwrap();
    let factory = || AgreementFactory::new(4, 4, 1, Domain::binary());
    let horizon = 8 + factory().round_bound() + 24;
    let specs = || {
        (0..2usize)
            .map(|s| {
                let spec = ShardSpec::new(cfg, IdAssignment::unique(4))
                    .shot(
                        ShotSpec::new(vec![false, true, true, false])
                            .byzantine([Pid::new(2)], Silent)
                            .drops(RandomUntilGst::new(Round::new(8), 0.3, 5 + s as u64))
                            .horizon(horizon),
                    )
                    .shot(
                        ShotSpec::new(vec![true, true, false, false])
                            .drops(RandomUntilGst::new(Round::new(4), 0.2, 11 + s as u64))
                            .horizon(horizon),
                    );
                (spec, factory())
            })
            .collect()
    };
    let reports: Vec<_> = assert_sharded_parity(specs, 8 * horizon);
    assert!(reports.iter().all(|r| r.decided_shots() == 2));
}

#[test]
fn parity_restricted_agreement() {
    let cfg = SystemConfig::builder(4, 2, 1)
        .synchrony(homonyms::core::Synchrony::PartiallySynchronous)
        .counting(homonyms::core::Counting::Numerate)
        .byz_power(homonyms::core::ByzPower::Restricted)
        .build()
        .unwrap();
    let factory = || RestrictedFactory::new(4, 2, 1, Domain::binary());
    let horizon = 6 + factory().round_bound() + 24;
    let specs = || {
        vec![(
            ShardSpec::new(cfg, IdAssignment::round_robin(2, 4).unwrap())
                .shot(
                    ShotSpec::new(vec![true, true, false, true])
                        .byzantine([Pid::new(3)], Silent)
                        .drops(RandomUntilGst::new(Round::new(6), 0.3, 5))
                        .horizon(horizon),
                )
                .shot(ShotSpec::new(vec![false, true, false, true]).horizon(horizon)),
            factory(),
        )]
    };
    let reports: Vec<_> = assert_sharded_parity(specs, 8 * horizon);
    assert_eq!(reports[0].decided_shots(), 2);
}
