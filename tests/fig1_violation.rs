//! Experiment E4 — the Figure 1 ring construction in detail: `ℓ = 3t`
//! makes synchronous agreement impossible for *any* algorithm, numerate or
//! not.

use homonyms::classic::{Eig, PhaseKing};
use homonyms::core::{Domain, Id, Pid};
use homonyms::lower_bounds::fig1;
use homonyms::sync::TransformedFactory;

#[test]
fn ring_size_and_views() {
    for (n, t) in [(4, 1), (5, 1), (8, 2)] {
        let sys = fig1::build(n, t);
        // 2(n − t) processes in total.
        assert_eq!(sys.assignment.n(), 2 * (n - t));
        assert_eq!(sys.assignment.ell(), 3 * t);
        // Two stacks of n − 3t + 1 processes: identifiers 1 and t + 1.
        assert_eq!(
            sys.views
                .iter()
                .map(|v| v.members.len())
                .collect::<Vec<_>>(),
            vec![n - t; 3]
        );
    }
}

#[test]
fn stacks_are_where_the_proof_puts_them() {
    let sys = fig1::build(6, 1);
    let stack = 6 - 3 + 1;
    // X stack: identifier 1, input 0.
    let g1 = sys.assignment.group(Id::new(1));
    assert_eq!(g1.len(), stack);
    for p in &g1 {
        assert!(!sys.inputs[p.index()], "X stack has input 0");
    }
    // Y stack: identifier t + 1 = 2 with input 1 (plus the X singleton of
    // identifier 2 with input 0).
    let g2 = sys.assignment.group(Id::new(2));
    let y_members: Vec<Pid> = g2
        .iter()
        .filter(|p| sys.inputs[p.index()])
        .copied()
        .collect();
    assert_eq!(y_members.len(), stack);
}

#[test]
fn multiple_algorithms_all_fail_the_ring() {
    // The argument quantifies over algorithms; we can only sample, but the
    // sample is diverse: two different A's under T(·).
    let t = 1;
    let n = 5;
    let sys = fig1::build(n, t);

    let eig = TransformedFactory::new(Eig::new_unchecked(3 * t, t, Domain::binary()), t);
    let report = fig1::run(&eig, &sys, eig.round_bound() + 9);
    assert!(report.views_legal);
    assert!(
        report.contradiction_exhibited(),
        "T(EIG): {:?}",
        report.verdicts
    );

    let pk = TransformedFactory::new(PhaseKing::new_unchecked(3 * t, t, Domain::binary()), t);
    let report = fig1::run(&pk, &sys, pk.round_bound() + 9);
    assert!(report.views_legal);
    assert!(
        report.contradiction_exhibited(),
        "T(PhaseKing): {:?}",
        report.verdicts
    );
}

#[test]
fn failing_view_is_identified() {
    let t = 1;
    let sys = fig1::build(4, t);
    let factory = TransformedFactory::new(Eig::new_unchecked(3, 1, Domain::binary()), 1);
    let report = fig1::run(&factory, &sys, factory.round_bound() + 9);
    let (name, verdict) = report.failing_view().expect("some view must fail");
    assert!(["I", "II", "III"].contains(&name));
    assert!(!verdict.holds());
    // The display form is useful for the experiment report.
    assert!(!verdict.to_string().is_empty());
}

#[test]
fn larger_fault_budget() {
    let t = 2;
    let n = 7;
    let sys = fig1::build(n, t);
    let factory = TransformedFactory::new(Eig::new_unchecked(3 * t, t, Domain::binary()), t);
    let report = fig1::run(&factory, &sys, factory.round_bound() + 12);
    assert!(report.views_legal);
    assert!(report.contradiction_exhibited(), "{:?}", report.verdicts);
}
