//! Debugging a lossy run with the trace timeline.
//!
//! Recorded traces power the Figure 4 replay construction, but they are
//! also the everyday debugging tool for protocols on this engine: the
//! timeline shows at a glance where the drop schedule bit, which
//! identifiers went quiet, and when the network stabilized — here on a
//! Figure 5 run with a crashing Byzantine process and 40% loss before
//! round 10.
//!
//! Run with: `cargo run --example timeline_debug`

use homonyms::core::{Domain, IdAssignment, Pid, Round, Synchrony, SystemConfig};
use homonyms::psync::AgreementFactory;
use homonyms::sim::adversary::{CrashAt, ReplayFuzzer};
use homonyms::sim::{RandomUntilGst, Simulation};

fn main() {
    let (n, ell, t) = (4, 4, 1);
    let cfg = SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid parameters");
    let factory = AgreementFactory::new(n, ell, t, Domain::binary());
    let gst = 10;

    let mut sim = Simulation::builder(cfg, IdAssignment::unique(n), vec![true, false, true, false])
        .byzantine(
            [Pid::new(3)],
            CrashAt::new(Round::new(14), ReplayFuzzer::new(5, 2)),
        )
        .drops(RandomUntilGst::new(Round::new(gst), 0.4, 42))
        .record_trace(true)
        .build_with(&factory);
    let report = sim.run(gst + factory.round_bound() + 16);

    println!("verdict: {}\n", report.verdict);
    for (pid, (value, round)) in &report.outcome.decisions {
        println!("{pid} decided {value} in {round}");
    }

    let trace = sim.trace().expect("trace was recorded");
    println!("\n{}", trace.render_timeline());
    println!(
        "Read it: drops land only before r{gst}; identifier 4 (the Byzantine\n\
         process) goes quiet after its crash at r14; traffic continues after\n\
         decisions because the paper's algorithms keep participating."
    );
    assert!(report.verdict.all_hold());
}
