//! The paper's privacy motivation: users identified only by their domain.
//!
//! "Users of a distributed protocol might use only their domain names as
//! identifiers. Thus, others will see that some user within the domain is
//! participating, but will not know exactly which one. If several users
//! within the same domain participate in the protocol, they will behave as
//! homonyms."
//!
//! Nine users from seven domains vote yes/no on a proposal over a
//! partially synchronous network (messages are lost until the network
//! stabilizes), with one compromised user equivocating. The Figure 5
//! protocol reaches agreement because `2ℓ = 14 > n + 3t = 12`. Note how
//! tight that is: with six domains (`2ℓ = 12`) the same nine users could
//! not tolerate even one compromised account — homonym slack is expensive
//! in partial synchrony (Theorem 13).
//!
//! Run with: `cargo run --example domain_names`

use homonyms::core::{bounds, Domain, Id, IdAssignment, Round, Synchrony, SystemConfig};
use homonyms::psync::AgreementFactory;
use homonyms::sim::adversary::Equivocator;
use homonyms::sim::{RandomUntilGst, Simulation};

fn main() {
    // Nine users; domains (identifiers) with their member counts:
    //   rennes.example   — 2 users      (homonyms)
    //   paris.example    — 2 users      (homonyms)
    //   lausanne.example — 1 user
    //   toronto.example  — 1 user
    //   york.example     — 1 user
    //   delhi.example    — 1 user
    //   kyoto.example    — 1 user
    let domains = [
        ("rennes.example", 2),
        ("paris.example", 2),
        ("lausanne.example", 1),
        ("toronto.example", 1),
        ("york.example", 1),
        ("delhi.example", 1),
        ("kyoto.example", 1),
    ];
    let n: usize = domains.iter().map(|&(_, k)| k).sum();
    let ell = domains.len();
    let t = 1;

    let cfg = SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid parameters");
    println!("{n} users across {ell} domains, tolerating {t} compromised user");
    println!(
        "partially synchronous bound 2ℓ > n + 3t: 2·{ell} = {} > {} — solvable: {}",
        2 * ell,
        n + 3 * t,
        bounds::solvable(&cfg)
    );
    assert!(bounds::solvable(&cfg));

    let mut ids = Vec::new();
    for (k, &(_, members)) in domains.iter().enumerate() {
        for _ in 0..members {
            ids.push(Id::from_index(k));
        }
    }
    let assignment = IdAssignment::new(ell, ids).expect("every domain participates");

    // Votes: the two rennes users disagree with each other — homonyms with
    // different inputs, the exact hazard Section 4.2 opens with.
    let votes = vec![true, false, true, true, false, true, false, true, true];

    // One paris user is compromised (pid 2) and equivocates: it shows half
    // the system a yes-voter and the other half a no-voter.
    let factory = AgreementFactory::new(n, ell, t, Domain::binary());
    let byz = homonyms::core::Pid::new(2);
    let byz_set: std::collections::BTreeSet<_> = [byz].into();
    let split = (0..n)
        .filter(|k| k % 2 == 0)
        .map(homonyms::core::Pid::new)
        .collect();
    let adversary = Equivocator::new(&factory, &assignment, &byz_set, true, false, split);

    // The network loses 30% of messages for the first 12 rounds.
    let gst = 12;
    let mut sim = Simulation::builder(cfg, assignment, votes)
        .byzantine([byz], adversary)
        .drops(RandomUntilGst::new(Round::new(gst), 0.3, 7))
        .build_with(&factory);

    let report = sim.run(gst + factory.round_bound() + 16);
    println!(
        "messages: {} sent, {} lost pre-stabilization",
        report.messages_sent, report.messages_dropped
    );
    for (pid, (value, round)) in &report.outcome.decisions {
        let domain = domains[sim_domain_index(pid.index(), &domains)].0;
        println!("  user {pid} ({domain}) decided {value} in {round}");
    }
    println!("verdict: {}", report.verdict);
    assert!(report.verdict.all_hold());
}

fn sim_domain_index(mut user: usize, domains: &[(&str, usize)]) -> usize {
    for (k, &(_, members)) in domains.iter().enumerate() {
        if user < members {
            return k;
        }
        user -= members;
    }
    domains.len() - 1
}
