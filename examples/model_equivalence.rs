//! The Section 2 model-equivalence claim, live: the basic lossy-round
//! model, the *known-bound-eventually* delay model, and the
//! *unknown-bound-always* delay model all run the same Figure 5 protocol
//! to the same decisions.
//!
//! The paper builds everything on the basic partially synchronous model —
//! lock-step rounds in which finitely many messages may be lost — and
//! notes that the two delay-based models of Dwork–Lynch–Stockmeyer can
//! simulate it (and vice versa), so the `2ℓ > n + 3t` characterization
//! transfers. This example runs all three substrates side by side and
//! prints, for each, the decisions and where the lossy prefix ended.
//!
//! Run with: `cargo run --example model_equivalence`

use homonyms::core::{Domain, IdAssignment, Pid, Round, Synchrony, SystemConfig};
use homonyms::delay::{
    AlwaysBounded, DelayCluster, DoublingPacing, EventuallyBounded, FixedPacing,
};
use homonyms::psync::AgreementFactory;
use homonyms::sim::adversary::ReplayFuzzer;
use homonyms::sim::{RandomUntilGst, Simulation};

fn main() {
    let (n, ell, t) = (5, 5, 1);
    let cfg = SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid parameters");
    let factory = AgreementFactory::new(n, ell, t, Domain::binary());
    let inputs = vec![true, false, true, false, true];
    let byz = Pid::new(4);

    println!(
        "n = {n}, ℓ = {ell}, t = {t}:  2ℓ = {} > n + 3t = {}\n",
        2 * ell,
        n + 3 * t
    );

    // ---- Substrate 1: the basic lossy-round model. ----
    println!("[basic rounds]     lock-step rounds, 30% loss before round 12");
    let mut sim = Simulation::builder(cfg, IdAssignment::unique(n), inputs.clone())
        .byzantine([byz], ReplayFuzzer::new(17, 2))
        .drops(RandomUntilGst::new(Round::new(12), 0.3, 7))
        .build_with(&factory);
    let report = sim.run(12 + factory.round_bound() + 16);
    for (pid, (value, round)) in &report.outcome.decisions {
        println!("  {pid} decided {value} in {round}");
    }
    println!(
        "  dropped {} messages; verdict: {}\n",
        report.messages_dropped, report.verdict
    );
    assert!(report.verdict.all_hold());

    // ---- Substrate 2: delays eventually bounded by a KNOWN constant. ----
    println!("[known Δ = 2]      chaotic delays until tick 40, then ≤ 2 ticks; rounds of 2 ticks");
    let mut cluster = DelayCluster::builder(cfg, IdAssignment::unique(n), inputs.clone())
        .byzantine([byz], ReplayFuzzer::new(17, 2))
        .model(EventuallyBounded::new(2, 40, 60, 23))
        .pacing(FixedPacing::new(2))
        .build();
    let report = cluster.run(&factory, 600);
    for (pid, (value, round)) in &report.outcome.decisions {
        println!("  {pid} decided {value} in {round}");
    }
    println!(
        "  {} late + {} unarrived = {} simulated drops; loss-free from {}; verdict: {}\n",
        report.late,
        report.unarrived,
        report.dropped(),
        report
            .clean_from()
            .map_or("never".to_string(), |r| r.to_string()),
        report.verdict
    );
    assert!(report.verdict.all_hold());

    // ---- Substrate 3: delays always bounded by an UNKNOWN constant. ----
    println!("[unknown Δ]        delays 2–5 ticks from the start; rounds double every 8");
    let mut cluster = DelayCluster::builder(cfg, IdAssignment::unique(n), inputs)
        .byzantine([byz], ReplayFuzzer::new(17, 2))
        .model(AlwaysBounded::between(2, 5, 31))
        .pacing(DoublingPacing::new(1, 8))
        .build();
    let report = cluster.run(&factory, 400);
    for (pid, (value, round)) in &report.outcome.decisions {
        println!("  {pid} decided {value} in {round}");
    }
    println!(
        "  {} late + {} unarrived = {} simulated drops; loss-free from {}; verdict: {}",
        report.late,
        report.unarrived,
        report.dropped(),
        report
            .clean_from()
            .map_or("never".to_string(), |r| r.to_string()),
        report.verdict
    );
    assert!(report.verdict.all_hold());

    println!("\nSame protocol, three timing models, agreement every time.");
}
