//! The same protocol automata, on real OS threads.
//!
//! Every other example drives protocols through the deterministic
//! simulator; here the Figure 7 restricted-agreement protocol runs on the
//! threaded actor runtime — one thread per process, channels for messages,
//! a coordinator enforcing the round structure — and reaches the same
//! decision. With restricted Byzantine processes and numerate receivers,
//! `ℓ = t + 1 = 2` identifiers suffice for six processes (Theorem 15),
//! far below the `2ℓ > n + 3t` demanded of unrestricted adversaries.
//!
//! Run with: `cargo run --example threaded_cluster`

use homonyms::core::{
    bounds, ByzPower, Counting, Domain, IdAssignment, Pid, Round, Synchrony, SystemConfig,
};
use homonyms::psync::RestrictedFactory;
use homonyms::runtime::Cluster;
use homonyms::sim::adversary::Mimic;
use homonyms::sim::RandomUntilGst;

fn main() {
    let (n, ell, t) = (6, 2, 1);
    let cfg = SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .counting(Counting::Numerate)
        .byz_power(ByzPower::Restricted)
        .build()
        .expect("valid parameters");
    println!(
        "n = {n}, ℓ = {ell}, t = {t} (restricted Byzantine, numerate): solvable = {}",
        bounds::solvable(&cfg)
    );
    assert!(bounds::solvable(&cfg));

    let assignment = IdAssignment::round_robin(ell, n).expect("ℓ ≤ n");
    let factory = RestrictedFactory::new(n, ell, t, Domain::binary());

    // Process 5 is Byzantine but merely runs the protocol with its own
    // agenda (input true while the correct majority says false); the
    // engine would clamp any multi-send it attempted.
    let byz = Pid::new(5);
    let adversary = Mimic::new(&factory, &assignment, &[(byz, true)]);

    let gst = 8;
    let report = Cluster::new(
        cfg,
        assignment,
        vec![false, false, false, false, true, true],
    )
    .byzantine([byz], adversary)
    .drops(RandomUntilGst::new(Round::new(gst), 0.25, 99))
    .run(&factory, gst + factory.round_bound() + 16);

    println!(
        "ran {} rounds on {} threads; {} messages sent, {} dropped pre-stabilization",
        report.rounds,
        n - 1,
        report.messages_sent,
        report.messages_dropped
    );
    for (pid, (value, round)) in &report.outcome.decisions {
        println!("  {pid} decided {value} in {round}");
    }
    println!("verdict: {}", report.verdict);
    assert!(report.verdict.all_hold());
}
