//! Section 5's practical setting: faulty-but-not-malicious processes.
//!
//! > In some settings, it is reasonable to assume that Byzantine processes
//! > are simply malfunctioning ordinary processes sending incorrect
//! > messages, and not malicious processes with the additional power to
//! > generate and send more messages than correct processes can.
//!
//! Under that assumption (*restricted* Byzantine senders) plus numerate
//! processes, `t + 1` identifiers suffice — a dramatic drop from the
//! `2ℓ > n + 3t` needed against fully malicious processes. This example
//! runs a 10-process cluster that shares just **2** identifiers (think: two
//! NAT gateways, two departments, two cloud regions) with one
//! malfunctioning process, under three malfunction shapes:
//!
//! * a crash (silent from round 5),
//! * a babbling replay of stale messages,
//! * a garbled-state fuzzer.
//!
//! All three runs decide. The same identifier budget against a *malicious*
//! multi-sender is hopeless (`2ℓ = 4 ≤ n + 3t = 13`) — see
//! `tests/restriction_boundary.rs` for that direction.
//!
//! Run with: `cargo run --example restricted_malfunction`

use homonyms::core::{
    ByzPower, Counting, Domain, IdAssignment, Pid, Round, Synchrony, SystemConfig,
};
use homonyms::psync::RestrictedFactory;
use homonyms::sim::adversary::{Adversary, CrashAt, ReplayFuzzer, Silent, StaleReplayer};
use homonyms::sim::{RandomUntilGst, Simulation};

fn run_one(
    name: &str,
    adversary: impl Adversary<<homonyms::psync::RestrictedAgreement<bool> as homonyms::core::Protocol>::Msg>
        + 'static,
) {
    let (n, ell, t) = (10, 2, 1);
    let cfg = SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .counting(Counting::Numerate)
        .byz_power(ByzPower::Restricted)
        .build()
        .expect("valid parameters");
    let factory = RestrictedFactory::new(n, ell, t, Domain::binary());
    let assignment = IdAssignment::round_robin(ell, n).expect("ℓ ≤ n");
    let inputs: Vec<bool> = (0..n).map(|k| k % 3 == 0).collect();
    let gst = 8;

    let mut sim = Simulation::builder(cfg, assignment, inputs)
        .byzantine([Pid::new(7)], adversary)
        .drops(RandomUntilGst::new(Round::new(gst), 0.25, 11))
        .build_with(&factory);
    let report = sim.run(gst + factory.round_bound() + 32);

    let decided: Vec<String> = report
        .outcome
        .decisions
        .iter()
        .map(|(pid, (v, r))| format!("{pid}→{v}@{r}"))
        .collect();
    println!("[{name}]");
    println!("  decisions: {}", decided.join("  "));
    println!("  verdict:   {}\n", report.verdict);
    assert!(report.verdict.all_hold());
}

fn main() {
    println!(
        "10 processes, 2 identifiers (= t + 1), 1 malfunctioning process,\n\
         restricted senders + numerate receivers — the Figure 7 protocol:\n"
    );
    run_one("crash at round 5", CrashAt::new(Round::new(5), Silent));
    run_one(
        "stale babbler (replays 2 rounds late)",
        StaleReplayer::new(2, 3),
    );
    run_one("garbling fuzzer", ReplayFuzzer::new(97, 2));
    println!(
        "Against a *malicious* multi-sender this identifier budget is\n\
         impossible (2ℓ = 4 ≤ n + 3t = 13): run the restriction_boundary\n\
         tests to watch the same protocol fail once multi-send is allowed."
    );
}
