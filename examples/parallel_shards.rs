//! A mixed agreement fleet on the parallel tick executor.
//!
//! Four shards — two synchronous `T(EIG)` instances (one with a silent
//! Byzantine process) and two partially synchronous Figure 5 instances
//! (one losing messages before stabilization) — run through **one**
//! shared delivery plane, each tick fanned across a four-worker
//! [`Pool`]. The two protocol families have different message types, so
//! a small enum protocol wraps them; each shard keeps its own
//! `SystemConfig`, so the synchronous and partially synchronous models
//! coexist in the same scheduler.
//!
//! The pool's schedule is unobservable: the same fleet re-run on the
//! [`Sequential`] executor decides identically, which the example
//! asserts at the end.
//!
//! Run with: `cargo run --example parallel_shards`

use homonyms::classic::Eig;
use homonyms::core::exec::{Executor, Pool, Sequential};
use homonyms::core::Pid;
use homonyms::core::{
    Counting, Domain, Envelope, FnFactory, Id, IdAssignment, Inbox, Message, Protocol,
    ProtocolFactory, Recipients, Round, Synchrony, SystemConfig, WireEncode, Writer,
};
use homonyms::psync::{AgreementFactory, Bundle, HomonymAgreement};
use homonyms::sim::adversary::Silent;
use homonyms::sim::{RandomUntilGst, ShardReport, ShardSpec, ShardedSimulation, ShotSpec};
use homonyms::sync::{Transformed, TransformedFactory, TransformerMsgOf};

/// One wire message of the mixed fleet: each shard speaks only its own
/// variant (shards never share slots, so the other variant is never
/// seen — the enum exists to give the scheduler a single message type).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum MixedMsg {
    Sync(TransformerMsgOf<Eig<bool>>),
    Psync(Bundle<bool>),
}

impl WireEncode for MixedMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            MixedMsg::Sync(m) => {
                w.put_u8(0);
                m.encode(w);
            }
            MixedMsg::Psync(m) => {
                w.put_u8(1);
                m.encode(w);
            }
        }
    }
}

/// A process of the mixed fleet: a `T(EIG)` automaton or a Figure 5 one
/// (boxed — the Figure 5 state dwarfs the EIG tree, and the fleet holds
/// many of each).
enum MixedProtocol {
    Sync(Box<Transformed<Eig<bool>>>),
    Psync(Box<HomonymAgreement<bool>>),
}

/// Projects an inbox of mixed messages onto one variant (cloning the
/// projected payloads — fine for an example; a zero-copy fleet would
/// share one message type across its shards).
fn project<N: Message>(
    inbox: &Inbox<MixedMsg>,
    select: impl Fn(&MixedMsg) -> Option<&N>,
) -> Inbox<N> {
    Inbox::collect(
        inbox.iter().flat_map(|(id, msg, count)| {
            select(msg).into_iter().flat_map(move |inner| {
                (0..count).map(move |_| Envelope {
                    src: id,
                    msg: inner.clone(),
                })
            })
        }),
        Counting::Numerate, // multiplicities were already collapsed upstream
    )
}

impl Protocol for MixedProtocol {
    type Msg = MixedMsg;
    type Value = bool;

    fn id(&self) -> Id {
        match self {
            MixedProtocol::Sync(p) => p.id(),
            MixedProtocol::Psync(p) => p.id(),
        }
    }

    fn send(&mut self, round: Round) -> Vec<(Recipients, MixedMsg)> {
        match self {
            MixedProtocol::Sync(p) => p
                .send(round)
                .into_iter()
                .map(|(to, m)| (to, MixedMsg::Sync(m)))
                .collect(),
            MixedProtocol::Psync(p) => p
                .send(round)
                .into_iter()
                .map(|(to, m)| (to, MixedMsg::Psync(m)))
                .collect(),
        }
    }

    fn receive(&mut self, round: Round, inbox: &Inbox<MixedMsg>) {
        match self {
            MixedProtocol::Sync(p) => p.receive(
                round,
                &project(inbox, |m| match m {
                    MixedMsg::Sync(inner) => Some(inner),
                    MixedMsg::Psync(_) => None,
                }),
            ),
            MixedProtocol::Psync(p) => p.receive(
                round,
                &project(inbox, |m| match m {
                    MixedMsg::Psync(inner) => Some(inner),
                    MixedMsg::Sync(_) => None,
                }),
            ),
        }
    }

    fn decision(&self) -> Option<bool> {
        match self {
            MixedProtocol::Sync(p) => p.decision(),
            MixedProtocol::Psync(p) => p.decision(),
        }
    }
}

/// Builds the four-shard fleet on the given executor: two T(EIG) shards
/// (n = 6, ℓ = 4, t = 1; one Byzantine-silent), two Figure 5 shards
/// (n = 4, ℓ = 4, t = 1; one lossy before GST), two shots each.
fn build_fleet<E: Executor>(exec: E) -> ShardedSimulation<MixedProtocol, E> {
    let sync_cfg = SystemConfig::builder(6, 4, 1).build().expect("valid");
    let psync_cfg = SystemConfig::builder(4, 4, 1)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid");
    let sync_horizon =
        TransformedFactory::new(Eig::new(4, 1, Domain::binary()), 1).round_bound() + 9;
    let psync_horizon = AgreementFactory::new(4, 4, 1, Domain::binary()).round_bound() + 24;

    let sync_factory = || {
        FnFactory::new(move |id, input| {
            MixedProtocol::Sync(Box::new(
                TransformedFactory::new(Eig::new(4, 1, Domain::binary()), 1).spawn(id, input),
            ))
        })
    };
    let psync_factory = || {
        FnFactory::new(move |id, input| {
            MixedProtocol::Psync(Box::new(
                AgreementFactory::new(4, 4, 1, Domain::binary()).spawn(id, input),
            ))
        })
    };

    let mut fleet = ShardedSimulation::with_executor(exec).measure_bits(true);

    // Shard 0: clean synchronous T(EIG), two pipelined shots.
    fleet.add_shard(
        ShardSpec::new(sync_cfg, IdAssignment::stacked(4, 6).expect("ℓ ≤ n"))
            .shot(ShotSpec::new(vec![true, false, true, false, true, false]).horizon(sync_horizon))
            .shot(ShotSpec::new(vec![false; 6]).horizon(sync_horizon)),
        sync_factory(),
    );

    // Shard 1: T(EIG) with a silent Byzantine process.
    fleet.add_shard(
        ShardSpec::new(sync_cfg, IdAssignment::stacked(4, 6).expect("ℓ ≤ n")).shot(
            ShotSpec::new(vec![true; 6])
                .byzantine([Pid::new(5)], Silent)
                .horizon(sync_horizon),
        ),
        sync_factory(),
    );

    // Shard 2: clean partially synchronous Figure 5, two shots.
    fleet.add_shard(
        ShardSpec::new(psync_cfg, IdAssignment::unique(4))
            .shot(ShotSpec::new(vec![true, true, false, false]).horizon(psync_horizon))
            .shot(ShotSpec::new(vec![false, true, true, true]).horizon(psync_horizon)),
        psync_factory(),
    );

    // Shard 3: Figure 5 under pre-stabilization message loss.
    fleet.add_shard(
        ShardSpec::new(psync_cfg, IdAssignment::unique(4)).shot(
            ShotSpec::new(vec![true, false, false, true])
                .drops(RandomUntilGst::new(Round::new(6), 0.3, 11))
                .horizon(6 + psync_horizon),
        ),
        psync_factory(),
    );

    fleet
}

fn decisions(reports: &[ShardReport<bool>]) -> Vec<Vec<bool>> {
    reports
        .iter()
        .map(|r| {
            r.shots
                .iter()
                .flat_map(|s| s.report.outcome.decisions.values().map(|&(v, _)| v))
                .collect()
        })
        .collect()
}

fn main() {
    let mut fleet = build_fleet(Pool::new(4));
    let reports = fleet.run(512);
    assert!(fleet.all_idle(), "every shard drains its shot queue");

    println!(
        "mixed fleet on Pool(4): {} shards over one plane\n",
        reports.len()
    );
    for report in &reports {
        for shot in &report.shots {
            assert!(shot.report.verdict.all_hold(), "{}", shot.report.verdict);
            println!(
                "  {} shot {}: decided {:?} in {} rounds (ticks {}..{}, {} msgs, ~{} wire bits)",
                shot.shard,
                shot.shot,
                shot.report
                    .outcome
                    .decisions
                    .values()
                    .next()
                    .map(|&(v, _)| v),
                shot.report.rounds,
                shot.started_tick,
                shot.finished_tick,
                shot.report.messages_sent,
                shot.bits_sent.unwrap_or(0),
            );
        }
    }

    // The executor is unobservable: the sequential fleet decides
    // identically, shot for shot.
    let mut sequential = build_fleet(Sequential);
    let sequential_reports = sequential.run(512);
    assert_eq!(decisions(&reports), decisions(&sequential_reports));
    println!("\nsequential re-run decides identically — the pool schedule is unobservable");
}
