//! The paper's DHT motivation: identifier collisions in Pastry/Chord-style
//! overlays.
//!
//! "Assuming in systems such as Pastry or Chord that all processes have
//! unique (unforgeable) identifiers might be too strong an assumption in
//! practice. We may wish to design protocols that still work if, by a rare
//! coincidence, two processes are assigned the same identifier. This
//! approach is also useful if security is breached and a malicious process
//! can forge the identifier of a correct process."
//!
//! Eight overlay nodes draw 160-bit-style node IDs; two of them collide.
//! On top of that, an attacker who stole a correct node's key runs under
//! that node's identifier — a *malicious homonym*. A protocol designed for
//! unique identifiers would be in undefined territory; `T(EIG)` is
//! designed for exactly this and stays correct because the number of
//! distinct identifiers (7) still exceeds `3t = 3`.
//!
//! Run with: `cargo run --example sybil_collision`

use homonyms::classic::Eig;
use homonyms::core::{bounds, Domain, Id, IdAssignment, Pid, SystemConfig};
use homonyms::sim::adversary::CloneSpammer;
use homonyms::sim::Simulation;
use homonyms::sync::TransformedFactory;

fn main() {
    // Eight nodes; hash-derived node IDs, with a birthday collision between
    // nodes 2 and 5, and node 7 (the attacker) holding a stolen copy of
    // node 6's identity.
    let node_ids = [
        "4f2a", "91c3", "b7e0", "dd42", "0a11", "b7e0", "77f5", "77f5",
    ];
    // Distinct identifiers, in first-appearance order.
    let mut distinct: Vec<&str> = Vec::new();
    for id in node_ids {
        if !distinct.contains(&id) {
            distinct.push(id);
        }
    }
    let ell = distinct.len();
    let n = node_ids.len();
    let t = 1;

    let cfg = SystemConfig::builder(n, ell, t)
        .build()
        .expect("valid parameters");
    println!("{n} overlay nodes, {ell} distinct node IDs after collisions");
    println!(
        "ℓ = {ell} > 3t = {} — solvable: {}",
        3 * t,
        bounds::solvable(&cfg)
    );
    assert!(bounds::solvable(&cfg));

    let ids: Vec<Id> = node_ids
        .iter()
        .map(|id| Id::from_index(distinct.iter().position(|d| d == id).expect("present")))
        .collect();
    let assignment = IdAssignment::new(ell, ids).expect("all identifiers in use");

    // The nodes vote on whether to accept a routing-table update.
    let inputs = vec![true, true, false, true, true, false, true, true];

    // The attacker (node 7) impersonates a whole stack of clones of the
    // stolen identity, spamming both a yes-persona and a no-persona —
    // the unrestricted multi-send power.
    let factory = TransformedFactory::new(Eig::new(ell, t, Domain::binary()), t);
    let byz = Pid::new(7);
    let byz_set: std::collections::BTreeSet<_> = [byz].into();
    let adversary = CloneSpammer::new(&factory, &assignment, &byz_set, &[false, true]);

    let mut sim = Simulation::builder(cfg, assignment.clone(), inputs)
        .byzantine([byz], adversary)
        .build_with(&factory);
    let report = sim.run(factory.round_bound() + 6);

    for (pid, (value, round)) in &report.outcome.decisions {
        let label = node_ids[pid.index()];
        let homonyms = assignment.group(assignment.id_of(*pid)).len();
        let note = if homonyms > 1 { " (shared ID)" } else { "" };
        println!("  node {pid} [{label}]{note} decided {value} in {round}");
    }
    println!("verdict: {}", report.verdict);
    assert!(report.verdict.all_hold());
}
