//! Quickstart: Byzantine agreement among homonyms in a few lines.
//!
//! Seven processes share four identifiers (so three identifiers have
//! homonym pairs), one process is Byzantine, and the synchronous `T(EIG)`
//! algorithm still reaches agreement — because `ℓ = 4 > 3t = 3`, the
//! paper's Theorem 3 threshold.
//!
//! Run with: `cargo run --example quickstart`

use homonyms::classic::Eig;
use homonyms::core::{bounds, Domain, IdAssignment, Pid, SystemConfig};
use homonyms::sim::adversary::ReplayFuzzer;
use homonyms::sim::Simulation;
use homonyms::sync::TransformedFactory;

fn main() {
    // A system of n = 7 processes using ℓ = 4 identifiers, tolerating
    // t = 1 Byzantine process.
    let cfg = SystemConfig::builder(7, 4, 1)
        .build()
        .expect("valid parameters");
    println!("system: n = {}, ℓ = {}, t = {}", cfg.n, cfg.ell, cfg.t);
    println!("Table 1 says solvable: {}", bounds::solvable(&cfg));

    // Identifier 1 is held by 4 processes (the worst-case packing); the
    // others are unique.
    let assignment = IdAssignment::stacked(4, 7).expect("ℓ ≤ n");

    // T(A) with A = EIG for 4 unique-identifier processes.
    let factory = TransformedFactory::new(Eig::new(4, 1, Domain::binary()), 1);

    // Process 6 is Byzantine and replays garbage at random targets.
    let mut sim = Simulation::builder(cfg, assignment, vec![true; 7])
        .byzantine([Pid::new(6)], ReplayFuzzer::new(42, 3))
        .build_with(&factory);

    let report = sim.run(factory.round_bound() + 6);
    for (pid, (value, round)) in &report.outcome.decisions {
        println!("  {pid} decided {value} in {round}");
    }
    println!("verdict: {}", report.verdict);
    assert!(report.verdict.all_hold());
}
