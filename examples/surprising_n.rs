//! The paper's headline surprise: **adding correct processes can make
//! agreement impossible**.
//!
//! With `t = 1` Byzantine process and `ℓ = 4` identifiers, partially
//! synchronous Byzantine agreement is solvable for `n = 4` processes but
//! **not** for `n = 5` — the bound is `2ℓ > n + 3t`, so a larger `n`
//! (more correct processes!) pushes a fixed identifier budget below the
//! threshold. Nothing like this happens in the classical `ℓ = n` model.
//!
//! This example shows both sides concretely:
//!
//! * `n = 4`: the Figure 5 protocol survives an equivocating Byzantine
//!   process and heavy message loss;
//! * `n = 5`: the Figure 4 partition construction drives the very same
//!   protocol into split-brain — the 0-side decides 0, the 1-side
//!   decides 1.
//!
//! Run with: `cargo run --example surprising_n`

use homonyms::core::{bounds, Domain, IdAssignment, Round, Synchrony, SystemConfig};
use homonyms::lower_bounds::fig4;
use homonyms::psync::AgreementFactory;
use homonyms::sim::adversary::Equivocator;
use homonyms::sim::{RandomUntilGst, Simulation};

fn psync_cfg(n: usize) -> SystemConfig {
    SystemConfig::builder(n, 4, 1)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid parameters")
}

fn main() {
    println!("t = 1 Byzantine process, ℓ = 4 identifiers\n");

    // ---- n = 4: solvable, and the protocol delivers. ----
    let cfg = psync_cfg(4);
    println!(
        "n = 4: 2ℓ = 8 > n + 3t = 7 — Table 1 says solvable: {}",
        bounds::solvable(&cfg)
    );
    let factory = AgreementFactory::new(4, 4, 1, Domain::binary());
    let assignment = IdAssignment::unique(4);
    let byz = homonyms::core::Pid::new(3);
    let byz_set: std::collections::BTreeSet<_> = [byz].into();
    let split = [homonyms::core::Pid::new(0), homonyms::core::Pid::new(2)].into();
    let adversary = Equivocator::new(&factory, &assignment, &byz_set, false, true, split);
    let gst = 10;
    let mut sim = Simulation::builder(cfg, assignment, vec![false, true, false, true])
        .byzantine([byz], adversary)
        .drops(RandomUntilGst::new(Round::new(gst), 0.3, 3))
        .build_with(&factory);
    let report = sim.run(gst + factory.round_bound() + 16);
    for (pid, (value, round)) in &report.outcome.decisions {
        println!("  {pid} decided {value} in {round}");
    }
    println!("  verdict: {}\n", report.verdict);
    assert!(report.verdict.all_hold());

    // ---- n = 5: one MORE correct process, and agreement is impossible. ----
    let cfg = psync_cfg(5);
    println!(
        "n = 5: 2ℓ = 8 > n + 3t = 8 is FALSE — Table 1 says solvable: {}",
        bounds::solvable(&cfg)
    );
    println!("  running the Figure 4 partition construction against the same protocol…");
    let factory = AgreementFactory::new(5, 4, 1, Domain::binary());
    let outcome = fig4::run(&factory, cfg, 8 * 12);
    match &outcome {
        fig4::Fig4Outcome::Partitioned {
            zero_side,
            one_side,
            healed_at,
            replay_faithful,
        } => {
            println!("  replay faithful to α/β: {replay_faithful}");
            for (pid, d) in zero_side {
                println!("  0-side {pid} decided {d:?}");
            }
            for (pid, d) in one_side {
                println!("  1-side {pid} decided {d:?}");
            }
            println!("  (partition would have healed at round {healed_at} — too late)");
        }
        fig4::Fig4Outcome::ReferenceStalled { which, horizon } => {
            println!("  reference execution {which} stalled within {horizon} rounds");
        }
    }
    assert!(outcome.violation_exhibited());
    println!(
        "  split-brain (0-side decided 0 AND 1-side decided 1): {}",
        outcome.split_brain()
    );
}
