//! Per-message delivery-delay models.

use homonym_core::Pid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Assigns a delivery delay, in ticks, to every message handed to the
/// network.
///
/// The two non-trivial implementations are the two partially synchronous
/// timing models of Dwork, Lynch and Stockmeyer that the paper's Section 2
/// declares interchangeable with the basic lossy-round model:
/// [`EventuallyBounded`] (known bound, holds eventually) and
/// [`AlwaysBounded`] (unknown bound, holds always).
///
/// Delays must be at least 1 tick: a message sent at the start of a round
/// can at best arrive during that same round.
pub trait DelayModel: Send {
    /// The delay for a message handed to the network at `tick`, flowing
    /// `from → to`. Must be at least 1.
    fn delay(&mut self, tick: u64, from: Pid, to: Pid) -> u64;

    /// A tick from which the model guarantees its bound, if it guarantees
    /// one. Diagnostics only: pacing policies must never read this (the
    /// unknown-constant model is unknown precisely to them).
    fn calm_tick(&self) -> Option<u64>;

    /// The delay bound that holds from [`calm_tick`](Self::calm_tick)
    /// onward, if any. Diagnostics only.
    fn bound(&self) -> Option<u64>;
}

/// Every message takes exactly one tick: the synchronous control model,
/// used for parity tests against the lock-step simulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Instant;

impl DelayModel for Instant {
    fn delay(&mut self, _tick: u64, _from: Pid, _to: Pid) -> u64 {
        1
    }

    fn calm_tick(&self) -> Option<u64> {
        Some(0)
    }

    fn bound(&self) -> Option<u64> {
        Some(1)
    }
}

/// Delivery times eventually bounded by a **known** constant.
///
/// Before an (unknown to the processes) calm tick, delays are chaotic:
/// uniform in `[1, pre_max]`, with `pre_max` typically much larger than
/// any round. From the calm tick onward, delays are uniform in
/// `[1, delta]`. Pairing this model with [`FixedPacing`] of duration
/// `≥ delta` yields the basic partially synchronous model: the finitely
/// many pre-calm messages that outlive their round are the basic model's
/// finitely many drops.
///
/// [`FixedPacing`]: crate::FixedPacing
#[derive(Clone, Debug)]
pub struct EventuallyBounded {
    delta: u64,
    calm_at: u64,
    pre_max: u64,
    rng: StdRng,
}

impl EventuallyBounded {
    /// Delays uniform in `[1, delta]` from tick `calm_at` on, and uniform
    /// in `[1, pre_max]` before it. Randomness is seeded for reproducible
    /// executions.
    ///
    /// # Panics
    ///
    /// Panics if `delta == 0` or `pre_max < delta`.
    pub fn new(delta: u64, calm_at: u64, pre_max: u64, seed: u64) -> Self {
        assert!(delta >= 1, "delays are at least one tick");
        assert!(pre_max >= delta, "pre-calm chaos includes the calm range");
        EventuallyBounded {
            delta,
            calm_at,
            pre_max,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The known bound `Δ`.
    pub fn delta(&self) -> u64 {
        self.delta
    }
}

impl DelayModel for EventuallyBounded {
    fn delay(&mut self, tick: u64, _from: Pid, _to: Pid) -> u64 {
        if tick >= self.calm_at {
            self.rng.gen_range(1..=self.delta)
        } else {
            self.rng.gen_range(1..=self.pre_max)
        }
    }

    fn calm_tick(&self) -> Option<u64> {
        Some(self.calm_at)
    }

    fn bound(&self) -> Option<u64> {
        Some(self.delta)
    }
}

/// Delivery times always bounded by an **unknown** constant.
///
/// Delays are uniform in `[1, delta]` from the very first tick — but
/// `delta` is not available to the processes, so no fixed round length is
/// safe a priori. Pairing this model with [`DoublingPacing`] yields the
/// basic partially synchronous model: rounds grow until they outlast
/// `delta`, after which no message is ever late, and the finitely many
/// earlier late messages are the basic model's drops.
///
/// [`DoublingPacing`]: crate::DoublingPacing
#[derive(Clone, Debug)]
pub struct AlwaysBounded {
    lo: u64,
    delta: u64,
    rng: StdRng,
}

impl AlwaysBounded {
    /// Delays uniform in `[1, delta]`, seeded for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if `delta == 0`.
    pub fn new(delta: u64, seed: u64) -> Self {
        AlwaysBounded::between(1, delta, seed)
    }

    /// Delays uniform in `[lo, delta]` — a floor models links that are
    /// never fast, which stresses pacing policies whose early rounds are
    /// shorter than any delivery.
    ///
    /// # Panics
    ///
    /// Panics if `lo == 0` or `lo > delta`.
    pub fn between(lo: u64, delta: u64, seed: u64) -> Self {
        assert!(delta >= 1 && lo >= 1, "delays are at least one tick");
        assert!(lo <= delta, "empty delay range");
        AlwaysBounded {
            lo,
            delta,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The bound `Δ` (the *test* may read it; the pacing may not).
    pub fn delta(&self) -> u64 {
        self.delta
    }
}

impl DelayModel for AlwaysBounded {
    fn delay(&mut self, _tick: u64, _from: Pid, _to: Pid) -> u64 {
        self.rng.gen_range(self.lo..=self.delta)
    }

    fn calm_tick(&self) -> Option<u64> {
        Some(0)
    }

    fn bound(&self) -> Option<u64> {
        Some(self.delta)
    }
}

/// Adversarially targeted delays: the scheduler stalls a chosen set of
/// directed links until a calm tick, and behaves uniformly afterwards.
///
/// This is the delay-world rendering of the partition/isolation drop
/// policies: before calm, messages on targeted links take `slow` ticks
/// (pick `slow` much larger than any round to starve the link); all other
/// traffic, and all traffic after calm, takes at most `fast` ticks.
/// Unlike the random models this one is a *worst-case* scheduler — the
/// DLS adversary gets to pick which links are slow, not a coin.
#[derive(Clone, Debug)]
pub struct LinkTargeted {
    slow_links: std::collections::BTreeSet<(Pid, Pid)>,
    slow: u64,
    fast: u64,
    calm_at: u64,
}

impl LinkTargeted {
    /// Messages on `slow_links` (directed `(from, to)` pairs) take `slow`
    /// ticks before tick `calm_at`; everything else takes `fast` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `fast == 0` or `slow < fast`.
    pub fn new(
        slow_links: impl IntoIterator<Item = (Pid, Pid)>,
        slow: u64,
        fast: u64,
        calm_at: u64,
    ) -> Self {
        assert!(fast >= 1, "delays are at least one tick");
        assert!(slow >= fast, "slow links cannot be faster than fast ones");
        LinkTargeted {
            slow_links: slow_links.into_iter().collect(),
            slow,
            fast,
            calm_at,
        }
    }

    /// Stalls every link *into and out of* each process in `isolated` —
    /// the delay-world `IsolateUntil`.
    pub fn isolating(
        isolated: impl IntoIterator<Item = Pid>,
        n: usize,
        slow: u64,
        fast: u64,
        calm_at: u64,
    ) -> Self {
        let isolated: std::collections::BTreeSet<Pid> = isolated.into_iter().collect();
        let mut slow_links = std::collections::BTreeSet::new();
        for &p in &isolated {
            for q in Pid::all(n) {
                if q != p {
                    slow_links.insert((p, q));
                    slow_links.insert((q, p));
                }
            }
        }
        LinkTargeted {
            slow_links,
            slow,
            fast,
            calm_at,
        }
    }
}

impl DelayModel for LinkTargeted {
    fn delay(&mut self, tick: u64, from: Pid, to: Pid) -> u64 {
        if tick < self.calm_at && self.slow_links.contains(&(from, to)) {
            self.slow
        } else {
            self.fast
        }
    }

    fn calm_tick(&self) -> Option<u64> {
        Some(self.calm_at)
    }

    fn bound(&self) -> Option<u64> {
        Some(self.fast)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_is_one_tick() {
        let mut m = Instant;
        assert_eq!(m.delay(0, Pid::new(0), Pid::new(1)), 1);
        assert_eq!(m.delay(99, Pid::new(1), Pid::new(0)), 1);
        assert_eq!(m.bound(), Some(1));
    }

    #[test]
    fn eventually_bounded_respects_bound_after_calm() {
        let mut m = EventuallyBounded::new(3, 50, 100, 7);
        for tick in 50..500 {
            let d = m.delay(tick, Pid::new(0), Pid::new(1));
            assert!((1..=3).contains(&d), "post-calm delay {d} out of range");
        }
    }

    #[test]
    fn eventually_bounded_chaos_before_calm_exceeds_bound_sometimes() {
        let mut m = EventuallyBounded::new(2, 1_000, 64, 11);
        let max = (0..200)
            .map(|tick| m.delay(tick, Pid::new(0), Pid::new(1)))
            .max()
            .unwrap();
        assert!(max > 2, "pre-calm chaos should exceed the calm bound");
    }

    #[test]
    fn always_bounded_never_exceeds_delta() {
        let mut m = AlwaysBounded::new(5, 3);
        for tick in 0..500 {
            let d = m.delay(tick, Pid::new(0), Pid::new(1));
            assert!((1..=5).contains(&d));
        }
        assert_eq!(m.calm_tick(), Some(0));
    }

    #[test]
    fn models_are_deterministic_per_seed() {
        let sample = |seed| {
            let mut m = AlwaysBounded::new(9, seed);
            (0..32)
                .map(|t| m.delay(t, Pid::new(0), Pid::new(1)))
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(42), sample(42));
        assert_ne!(sample(42), sample(43));
    }

    #[test]
    #[should_panic(expected = "at least one tick")]
    fn zero_delta_rejected() {
        let _ = AlwaysBounded::new(0, 1);
    }

    #[test]
    fn targeted_links_stall_until_calm() {
        let mut m = LinkTargeted::new([(Pid::new(0), Pid::new(1))], 100, 2, 50);
        assert_eq!(m.delay(0, Pid::new(0), Pid::new(1)), 100);
        assert_eq!(
            m.delay(0, Pid::new(1), Pid::new(0)),
            2,
            "only the directed link stalls"
        );
        assert_eq!(
            m.delay(50, Pid::new(0), Pid::new(1)),
            2,
            "calm ends the stall"
        );
    }

    #[test]
    fn isolation_covers_both_directions() {
        let mut m = LinkTargeted::isolating([Pid::new(2)], 4, 99, 1, 10);
        assert_eq!(m.delay(0, Pid::new(2), Pid::new(0)), 99);
        assert_eq!(m.delay(0, Pid::new(0), Pid::new(2)), 99);
        assert_eq!(
            m.delay(0, Pid::new(0), Pid::new(1)),
            1,
            "bystander links unaffected"
        );
        assert_eq!(m.delay(10, Pid::new(2), Pid::new(0)), 1);
    }

    #[test]
    #[should_panic(expected = "cannot be faster")]
    fn inverted_targeted_delays_rejected() {
        let _ = LinkTargeted::new([], 1, 2, 0);
    }
}
