//! The discrete-event driver: basic lossy rounds simulated over a delay
//! network.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use homonym_core::codec::{WireDecode, WireEncode};
use homonym_core::journal::{self, Journal, MemJournal};
use homonym_core::spec::{self, Outcome, Verdict};
use homonym_core::IdAssignment;
use homonym_core::{
    ByzPower, Deliveries, FrameInterner, Id, Inbox, Pid, Protocol, ProtocolFactory, RecoveryMode,
    Round, SharedEnvelope, SystemConfig,
};
use homonym_sim::adversary::{AdvCtx, Adversary, Silent};
use homonym_sim::shards::wire_bits;

use crate::model::{DelayModel, Instant};
use crate::net::{Flight, InFlight};
use crate::pacing::{FixedPacing, RoundPacing};

/// The report of one delay-world execution.
///
/// Everything [`homonym_sim::RunReport`] reports, plus the timing facts
/// that make the model-equivalence argument observable: how many messages
/// missed their round (`late`), how many never arrived before the run
/// ended (`unarrived`), and the last round whose inbox lost a message
/// (`last_lossy_round`).
#[derive(Clone, Debug)]
pub struct DelayReport<V> {
    /// Inputs and decisions of the correct processes.
    pub outcome: Outcome<V>,
    /// The three-property verdict.
    pub verdict: Verdict<V>,
    /// Rounds executed.
    pub rounds: u64,
    /// Wall-clock ticks elapsed.
    pub ticks: u64,
    /// Non-self messages handed to the network.
    pub messages_sent: u64,
    /// Exact wire bits of the non-self messages, measured by encoding
    /// each emission once through the frame codec — `Some` only when the
    /// run was built with [`DelayClusterBuilder::measure_bits`]. See
    /// [`wire_bits`].
    pub bits_sent: Option<u64>,
    /// Non-self messages that arrived within their round.
    pub delivered_on_time: u64,
    /// Messages that arrived after their round closed (the basic model's
    /// drops).
    pub late: u64,
    /// Messages still in flight when the run ended (also drops).
    pub unarrived: u64,
    /// Messages that arrived while their recipient was crashed (drops —
    /// a down process has no inbox).
    pub crash_dropped: u64,
    /// The last round whose inbox missed at least one message, if any.
    pub last_lossy_round: Option<Round>,
    /// Sum of [`Protocol::state_bits`] across the correct processes after
    /// the last round (0 when the protocol is not instrumented).
    pub state_bits: u64,
    /// Largest per-round [`DelayReport::state_bits`] sample over the run.
    pub peak_state_bits: u64,
}

impl<V> DelayReport<V> {
    /// Total messages the simulated basic-model execution dropped.
    pub fn dropped(&self) -> u64 {
        self.late + self.unarrived + self.crash_dropped
    }

    /// The first round from which every executed round was loss-free —
    /// the `T` of the paper's basic model, as realized by this execution.
    ///
    /// Returns `None` if lateness persisted into the final executed round
    /// (no clean suffix was demonstrated).
    pub fn clean_from(&self) -> Option<Round> {
        match self.last_lossy_round {
            None => Some(Round::ZERO),
            Some(last) if last.index() + 1 < self.rounds => Some(last.next()),
            Some(_) => None,
        }
    }
}

/// One scheduled crash/recover event of a delay-world run.
enum DelayChurn {
    Crash(Pid),
    Recover(Pid, RecoveryMode),
}

/// Builder for [`DelayCluster`]; see [`DelayCluster::builder`].
pub struct DelayClusterBuilder<P: Protocol> {
    cfg: SystemConfig,
    assignment: IdAssignment,
    inputs: Vec<P::Value>,
    byz: BTreeSet<Pid>,
    adversary: Box<dyn Adversary<P::Msg>>,
    model: Box<dyn DelayModel>,
    pacing: Box<dyn RoundPacing>,
    measure_bits: bool,
    churn: BTreeMap<u64, Vec<DelayChurn>>,
}

impl<P: Protocol> DelayClusterBuilder<P> {
    /// Declares the Byzantine processes and the strategy controlling them.
    /// Byzantine traffic crosses the same delay network as correct
    /// traffic.
    ///
    /// # Panics
    ///
    /// Panics if more than `t` processes are declared Byzantine or any is
    /// out of range.
    pub fn byzantine(
        mut self,
        byz: impl IntoIterator<Item = Pid>,
        adversary: impl Adversary<P::Msg> + 'static,
    ) -> Self {
        self.byz = byz.into_iter().collect();
        assert!(
            self.byz.len() <= self.cfg.t,
            "{} byzantine processes exceed t = {}",
            self.byz.len(),
            self.cfg.t
        );
        assert!(
            self.byz.iter().all(|p| p.index() < self.cfg.n),
            "byzantine pid out of range"
        );
        self.adversary = Box::new(adversary);
        self
    }

    /// Installs the delay model (default: [`Instant`]).
    pub fn model(mut self, model: impl DelayModel + 'static) -> Self {
        self.model = Box::new(model);
        self
    }

    /// Installs the round pacing (default: [`FixedPacing`] of 1 tick).
    pub fn pacing(mut self, pacing: impl RoundPacing + 'static) -> Self {
        self.pacing = Box::new(pacing);
        self
    }

    /// Measures exact wire bits per run (off by default) — see
    /// [`wire_bits`].
    pub fn measure_bits(mut self, on: bool) -> Self {
        self.measure_bits = on;
        self
    }

    /// Schedules a crash of `pid` at the start of `round`: it stops
    /// sending, in-flight messages addressed to it drop, and the
    /// coordinator's journal for it becomes its only surviving state.
    pub fn crash_at(mut self, round: u64, pid: Pid) -> Self {
        self.churn
            .entry(round)
            .or_default()
            .push(DelayChurn::Crash(pid));
        self
    }

    /// Schedules a recovery of `pid` at the start of `round` — durable
    /// (journal replay into a fresh automaton, byte-identical state) or
    /// amnesiac (fresh spawn consuming the shared `t` fault budget).
    pub fn recover_at(mut self, round: u64, pid: Pid, mode: RecoveryMode) -> Self {
        self.churn
            .entry(round)
            .or_default()
            .push(DelayChurn::Recover(pid, mode));
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if the configuration, assignment and inputs disagree on `n`
    /// or `ℓ`.
    pub fn build(self) -> DelayCluster<P> {
        self.cfg.validate().expect("invalid system configuration");
        assert_eq!(
            self.assignment.n(),
            self.cfg.n,
            "assignment covers n processes"
        );
        assert_eq!(
            self.assignment.ell(),
            self.cfg.ell,
            "assignment uses ell identifiers"
        );
        assert_eq!(self.inputs.len(), self.cfg.n, "one input per process");
        for events in self.churn.values() {
            for ev in events {
                let pid = match ev {
                    DelayChurn::Crash(pid) | DelayChurn::Recover(pid, _) => *pid,
                };
                assert!(pid.index() < self.cfg.n, "churn pid out of range");
                assert!(!self.byz.contains(&pid), "cannot crash a byzantine pid");
            }
        }
        DelayCluster {
            cfg: self.cfg,
            assignment: self.assignment,
            inputs: self.inputs,
            byz: self.byz,
            adversary: self.adversary,
            model: self.model,
            pacing: self.pacing,
            measure_bits: self.measure_bits,
            churn: self.churn,
        }
    }
}

/// A deterministic execution of homonym protocols over a delay network.
///
/// Rounds are simulated: all processes share the pacing schedule, send at
/// a round's opening tick, and close the round `duration` ticks later,
/// treating whatever arrived by then as the round's inbox. A message that
/// misses its round is discarded — it becomes one of the finitely many
/// drops the basic partially synchronous model allows.
///
/// # Example
///
/// ```
/// use homonym_core::{Domain, IdAssignment, SystemConfig, Synchrony};
/// use homonym_delay::{DelayCluster, EventuallyBounded, FixedPacing};
/// use homonym_psync::AgreementFactory;
///
/// let cfg = SystemConfig::builder(4, 4, 1)
///     .synchrony(Synchrony::PartiallySynchronous)
///     .build()
///     .unwrap();
/// let factory = AgreementFactory::new(4, 4, 1, Domain::binary());
/// // Known bound Δ = 2 that only holds from tick 30 on; rounds of 2 ticks.
/// let report = DelayCluster::builder(cfg, IdAssignment::unique(4), vec![true; 4])
///     .model(EventuallyBounded::new(2, 30, 40, 9))
///     .pacing(FixedPacing::new(2))
///     .build()
///     .run(&factory, 400);
/// assert!(report.verdict.all_hold());
/// ```
pub struct DelayCluster<P: Protocol> {
    cfg: SystemConfig,
    assignment: IdAssignment,
    inputs: Vec<P::Value>,
    byz: BTreeSet<Pid>,
    adversary: Box<dyn Adversary<P::Msg>>,
    model: Box<dyn DelayModel>,
    pacing: Box<dyn RoundPacing>,
    measure_bits: bool,
    churn: BTreeMap<u64, Vec<DelayChurn>>,
}

impl<P: Protocol> DelayCluster<P> {
    /// Starts building a delay-world run of `cfg` under `assignment`,
    /// where process `i` proposes `inputs[i]`. Defaults: no Byzantine
    /// processes, [`Instant`] delays, [`FixedPacing`] of 1 tick (which
    /// together replicate the lock-step simulator exactly).
    pub fn builder(
        cfg: SystemConfig,
        assignment: IdAssignment,
        inputs: Vec<P::Value>,
    ) -> DelayClusterBuilder<P> {
        DelayClusterBuilder {
            cfg,
            assignment,
            inputs,
            byz: BTreeSet::new(),
            adversary: Box::new(Silent),
            model: Box::new(Instant),
            pacing: Box::new(FixedPacing::new(1)),
            measure_bits: false,
            churn: BTreeMap::new(),
        }
    }

    /// Runs until every correct process decides or `max_rounds` rounds
    /// have executed, then reports.
    ///
    /// # Panics
    ///
    /// Panics on the same contract violations as the lock-step simulator:
    /// a correct process addressing a recipient twice in one round, the
    /// adversary emitting from a correct process, or a decision changing.
    pub fn run<F>(&mut self, factory: &F, max_rounds: u64) -> DelayReport<P::Value>
    where
        F: ProtocolFactory<P = P>,
        P::Msg: WireEncode + WireDecode,
    {
        let n = self.cfg.n;
        let mut procs: BTreeMap<Pid, P> = self
            .assignment
            .iter()
            .filter(|(pid, _)| !self.byz.contains(pid))
            .map(|(pid, id)| (pid, factory.spawn(id, self.inputs[pid.index()].clone())))
            .collect();
        let correct_count = procs.len();
        let mut correct_inputs: BTreeMap<Pid, P::Value> = procs
            .keys()
            .map(|&pid| (pid, self.inputs[pid.index()].clone()))
            .collect();

        // Crash-recovery state: coordinator-held journals (one per
        // correct process, only when a crash is scheduled), the crashed
        // set, and the amnesiac rejoiners who left the accounting.
        let mut churn = std::mem::take(&mut self.churn);
        let mut journals: Option<BTreeMap<Pid, MemJournal>> =
            (!churn.is_empty()).then(|| procs.keys().map(|&p| (p, MemJournal::new())).collect());
        let mut crashed: BTreeSet<Pid> = BTreeSet::new();
        let mut amnesiac: BTreeSet<Pid> = BTreeSet::new();
        let mut journal_scratch: Vec<Vec<(Id, Arc<P::Msg>)>> = Vec::new();
        let mut crash_dropped = 0u64;

        let mut net: InFlight<P::Msg> = InFlight::new();
        // Per-round routing buckets on the shared delivery fabric, reused
        // across rounds.
        let mut deliveries: Deliveries<P::Msg> = Deliveries::new(n);
        let mut decisions: BTreeMap<Pid, (P::Value, Round)> = BTreeMap::new();
        let mut tick = 0u64;
        let mut round = Round::ZERO;
        // One frame token per distinct payload, stable across the run, so
        // receiving inboxes deduplicate by token instead of deep walks.
        let mut frames: FrameInterner<P::Msg> = FrameInterner::new();
        let mut messages_sent = 0u64;
        let mut bits_sent = 0u64;
        let mut delivered_on_time = 0u64;
        let mut late = 0u64;
        let mut state_bits = 0u64;
        let mut peak_state_bits = 0u64;
        let mut last_lossy_round: Option<Round> = None;
        let mark_lossy = |last: &mut Option<Round>, r: Round| {
            *last = Some(last.map_or(r, |prev: Round| prev.max(r)));
        };

        while round.index() < max_rounds && decisions.len() + amnesiac.len() < correct_count {
            let start = tick;
            let duration = self.pacing.duration(round).max(1);
            let deadline = start + duration;

            // 0. Apply due crash/recover events at the round boundary.
            let due = churn.split_off(&(round.index() + 1));
            for ev in std::mem::replace(&mut churn, due).into_values().flatten() {
                match ev {
                    DelayChurn::Crash(pid) => {
                        assert!(
                            procs.remove(&pid).is_some() && crashed.insert(pid),
                            "cannot crash {pid}: not a live correct process"
                        );
                    }
                    DelayChurn::Recover(pid, mode) => {
                        assert!(crashed.remove(&pid), "{pid} is not crashed");
                        let id = self.assignment.id_of(pid);
                        let input = self.inputs[pid.index()].clone();
                        let p = match mode {
                            RecoveryMode::Durable => {
                                let journal = journals
                                    .as_ref()
                                    .and_then(|j| j.get(&pid))
                                    .expect("journal for crashed pid");
                                let recovered = journal.recover();
                                assert!(
                                    recovered.damage.is_none(),
                                    "journal of {pid} damaged: {:?}",
                                    recovered.damage
                                );
                                let entries = journal::decode_entries::<P::Msg>(&recovered.records)
                                    .expect("journal entries decode");
                                let mut p = factory.spawn(id, input);
                                journal::replay(&mut p, entries, self.cfg.counting)
                                    .expect("journal replay");
                                p
                            }
                            RecoveryMode::Amnesiac => {
                                assert!(
                                    self.byz.len() + amnesiac.len() + 1 <= self.cfg.t,
                                    "fault budget exceeded: {} > t = {}",
                                    self.byz.len() + amnesiac.len() + 1,
                                    self.cfg.t
                                );
                                amnesiac.insert(pid);
                                correct_inputs.remove(&pid);
                                decisions.remove(&pid);
                                if let Some(journal) =
                                    journals.as_mut().and_then(|j| j.get_mut(&pid))
                                {
                                    journal.reset().expect("journal reset");
                                }
                                factory.spawn(id, input)
                            }
                        };
                        procs.insert(pid, p);
                    }
                }
            }

            // This round's on-time arrivals route into the reused fabric
            // buckets; journaled processes also stage their deliveries
            // for the write-ahead log.
            deliveries.clear();
            if journals.is_some() {
                journal_scratch.resize_with(n, Vec::new);
                for buf in &mut journal_scratch {
                    buf.clear();
                }
            }

            // 1. Correct sends at the round's opening tick; one Arc wrap
            //    per emission, shared by every recipient's flight.
            let mut addressed: BTreeSet<Pid> = BTreeSet::new();
            for (&pid, proc_) in procs.iter_mut() {
                // One shared handle per emission (the `send_shared` seam;
                // protocols may hand back a cached bundle).
                let out = proc_.send_shared(round);
                let src_id = self.assignment.id_of(pid);
                addressed.clear();
                for (recipients, msg) in out {
                    // Exact frame size and token, computed once per
                    // emission however wide the fan-out.
                    let bits = if self.measure_bits {
                        wire_bits(&*msg)
                    } else {
                        0
                    };
                    let tok = frames.tok_for(&msg);
                    for to in recipients.expand(&self.assignment) {
                        assert!(
                            addressed.insert(to),
                            "correct process {pid} addressed {to} twice in {round}"
                        );
                        if to == pid {
                            // Self-delivery costs no network trip.
                            if journals.is_some() {
                                journal_scratch[to.index()].push((src_id, Arc::clone(&msg)));
                            }
                            deliveries
                                .push(to, SharedEnvelope::framed(src_id, Arc::clone(&msg), tok));
                        } else {
                            messages_sent += 1;
                            bits_sent += bits;
                            let arrive = start + self.model.delay(start, pid, to).max(1);
                            net.send(
                                arrive,
                                Flight {
                                    from: pid,
                                    src: src_id,
                                    to,
                                    round,
                                    msg: Arc::clone(&msg),
                                    tok,
                                },
                            );
                        }
                    }
                }
            }

            // 2. Adversary sends; restricted clamp, same network.
            let ctx = AdvCtx {
                round,
                cfg: &self.cfg,
                assignment: &self.assignment,
                byz: &self.byz,
            };
            let emissions = self.adversary.send(&ctx);
            let mut byz_sent: BTreeMap<(Pid, Pid), u32> = BTreeMap::new();
            for emission in emissions {
                assert!(
                    self.byz.contains(&emission.from),
                    "adversary emitted from non-byzantine {}",
                    emission.from
                );
                let src_id = self.assignment.id_of(emission.from);
                let bits = if self.measure_bits {
                    wire_bits(&*emission.msg)
                } else {
                    0
                };
                let tok = frames.tok_for(&emission.msg);
                for to in emission.to.expand(&self.assignment) {
                    if self.cfg.byz_power == ByzPower::Restricted {
                        let count = byz_sent.entry((emission.from, to)).or_insert(0);
                        if *count >= 1 {
                            continue;
                        }
                        *count += 1;
                    }
                    if to == emission.from {
                        continue; // a Byzantine process gains nothing from self-sends
                    }
                    messages_sent += 1;
                    bits_sent += bits;
                    let arrive = start + self.model.delay(start, emission.from, to).max(1);
                    net.send(
                        arrive,
                        Flight {
                            from: emission.from,
                            src: src_id,
                            to,
                            round,
                            msg: Arc::clone(&emission.msg),
                            tok,
                        },
                    );
                }
            }

            // 3. Advance the clock to the deadline and sort arrivals into
            //    on-time (tagged with this round) and late (an earlier
            //    round's inbox already closed without them).
            for flight in net.arrivals_up_to(deadline) {
                if crashed.contains(&flight.to) {
                    // A down process has no inbox: the arrival is lost,
                    // exactly like a basic-model drop.
                    crash_dropped += 1;
                    mark_lossy(&mut last_lossy_round, flight.round);
                } else if flight.round == round {
                    delivered_on_time += 1;
                    if journals.is_some() && procs.contains_key(&flight.to) {
                        journal_scratch[flight.to.index()]
                            .push((flight.src, Arc::clone(&flight.msg)));
                    }
                    deliveries.push(
                        flight.to,
                        SharedEnvelope::framed(flight.src, flight.msg, flight.tok),
                    );
                } else {
                    debug_assert!(flight.round < round, "messages cannot arrive early");
                    late += 1;
                    mark_lossy(&mut last_lossy_round, flight.round);
                }
            }

            // Persist this round's inboxes before they are consumed (the
            // write-ahead contract: a crash after this point replays to
            // the post-receive state).
            if let Some(j) = &mut journals {
                for (&pid, journal) in j.iter_mut() {
                    if procs.contains_key(&pid) {
                        journal
                            .append(&journal::encode_deliveries_entry(
                                round,
                                &journal_scratch[pid.index()],
                            ))
                            .expect("journal append");
                        journal.sync().expect("journal sync");
                    }
                }
            }

            // 4. Close the round: deliver inboxes, record decisions.
            for (&pid, proc_) in procs.iter_mut() {
                let inbox = deliveries.take_inbox(pid, self.cfg.counting);
                proc_.receive(round, &inbox);
                if amnesiac.contains(&pid) {
                    // Amnesiac rejoiners run but left the accounting;
                    // their decisions draw on the shared fault budget.
                    continue;
                }
                if let Some(v) = proc_.decision() {
                    match decisions.get(&pid) {
                        None => {
                            decisions.insert(pid, (v, round));
                        }
                        Some((prev, _)) => {
                            assert!(
                                *prev == v,
                                "decision of {pid} changed from {prev:?} to {v:?}"
                            );
                        }
                    }
                }
            }

            state_bits = procs.values().map(|p| p.state_bits()).sum();
            peak_state_bits = peak_state_bits.max(state_bits);

            // 5. Byzantine inboxes to the adversary.
            let byz_inboxes: BTreeMap<Pid, Inbox<P::Msg>> = self
                .byz
                .iter()
                .map(|&pid| (pid, deliveries.take_inbox(pid, self.cfg.counting)))
                .collect();
            self.adversary.receive(round, &byz_inboxes);

            tick = deadline;
            round = round.next();
        }

        // Whatever never arrived is also a drop; attribute it to the round
        // it was sent in.
        let mut unarrived = 0u64;
        for flight in net.arrivals_up_to(u64::MAX) {
            unarrived += 1;
            mark_lossy(&mut last_lossy_round, flight.round);
        }

        let outcome = Outcome {
            inputs: correct_inputs,
            decisions,
            horizon: round,
        };
        let verdict = spec::check(&outcome);
        DelayReport {
            outcome,
            verdict,
            rounds: round.index(),
            ticks: tick,
            messages_sent,
            bits_sent: self.measure_bits.then_some(bits_sent),
            delivered_on_time,
            late,
            unarrived,
            crash_dropped,
            last_lossy_round,
            state_bits,
            peak_state_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AlwaysBounded, EventuallyBounded};
    use crate::pacing::DoublingPacing;
    use homonym_core::{FnFactory, Id, Recipients};
    use homonym_sim::adversary::ByzTarget;

    /// Flood the running minimum for `horizon` rounds, then decide it.
    #[derive(Clone, Debug)]
    struct FloodMin {
        id: Id,
        min: u32,
        horizon: u64,
        decision: Option<u32>,
    }

    impl Protocol for FloodMin {
        type Msg = u32;
        type Value = u32;

        fn id(&self) -> Id {
            self.id
        }

        fn send(&mut self, _round: Round) -> Vec<(Recipients, u32)> {
            vec![(Recipients::All, self.min)]
        }

        fn receive(&mut self, round: Round, inbox: &Inbox<u32>) {
            for (_, &msg, _) in inbox.iter() {
                self.min = self.min.min(msg);
            }
            if round.index() + 1 >= self.horizon && self.decision.is_none() {
                self.decision = Some(self.min);
            }
        }

        fn decision(&self) -> Option<u32> {
            self.decision
        }
    }

    fn flood_factory(horizon: u64) -> impl ProtocolFactory<P = FloodMin> {
        FnFactory::new(move |id, input| FloodMin {
            id,
            min: input,
            horizon,
            decision: None,
        })
    }

    fn cfg(n: usize, ell: usize, t: usize) -> SystemConfig {
        SystemConfig::builder(n, ell, t).build().unwrap()
    }

    #[test]
    fn instant_fixed1_matches_lockstep_simulator() {
        let factory = flood_factory(3);
        let inputs = vec![9u32, 4, 7, 2];
        let mut delay =
            DelayCluster::builder(cfg(4, 4, 1), IdAssignment::unique(4), inputs.clone()).build();
        let dr = delay.run(&factory, 10);

        let mut sim =
            homonym_sim::Simulation::builder(cfg(4, 4, 1), IdAssignment::unique(4), inputs)
                .build_with(&factory);
        let sr = sim.run(10);

        assert_eq!(dr.outcome.decisions, sr.outcome.decisions);
        assert_eq!(dr.rounds, sr.rounds);
        assert_eq!(dr.messages_sent, sr.messages_sent);
        assert_eq!(dr.late, 0);
        assert_eq!(dr.clean_from(), Some(Round::ZERO));
    }

    #[test]
    fn slow_network_under_fast_rounds_loses_everything() {
        // Delays of 4..=6 ticks against 1-tick rounds: every non-self
        // message misses its round; processes only ever hear themselves.
        let factory = flood_factory(3);
        let mut delay =
            DelayCluster::builder(cfg(3, 3, 0), IdAssignment::unique(3), vec![5u32, 3, 8])
                .model(AlwaysBounded::between(4, 6, 1))
                .pacing(FixedPacing::new(1))
                .build();
        let report = delay.run(&factory, 3);
        assert_eq!(report.delivered_on_time, 0);
        assert_eq!(report.dropped(), report.messages_sent);
        // Everyone decided their own input: agreement is violated.
        assert!(!report.verdict.agreement.holds());
        assert!(report.clean_from().is_none());
    }

    #[test]
    fn doubling_pacing_outruns_unknown_bound() {
        // Unknown bound Δ = 6 against doubling rounds: early rounds lose
        // messages, later rounds are clean, and a late-enough decision
        // horizon sees the true minimum everywhere.
        let factory = flood_factory(12);
        let mut delay =
            DelayCluster::builder(cfg(3, 3, 0), IdAssignment::unique(3), vec![5u32, 3, 8])
                .model(AlwaysBounded::between(4, 6, 2))
                .pacing(DoublingPacing::new(1, 2))
                .build();
        let report = delay.run(&factory, 20);
        assert!(report.verdict.all_hold(), "{:?}", report.verdict);
        assert!(report.late > 0, "early rounds must lose messages");
        let clean = report.clean_from().expect("lateness must cease");
        assert!(clean.index() > 0);
        // All decisions equal the global minimum.
        for (v, _) in report.outcome.decisions.values() {
            assert_eq!(*v, 3);
        }
    }

    #[test]
    fn eventually_bounded_with_matching_pacing_stabilizes() {
        let factory = flood_factory(30);
        let mut delay =
            DelayCluster::builder(cfg(4, 4, 1), IdAssignment::unique(4), vec![5u32, 3, 8, 1])
                .model(EventuallyBounded::new(2, 25, 30, 13))
                .pacing(FixedPacing::new(2))
                .build();
        let report = delay.run(&factory, 40);
        assert!(report.verdict.all_hold());
        let clean = report.clean_from().expect("post-calm rounds are clean");
        // The calm tick is 25; rounds are 2 ticks; every round from
        // ⌈25/2⌉ + 1 on is necessarily clean (the +1 covers a message sent
        // just before calm).
        assert!(clean.index() <= 25 / 2 + 2, "clean from {clean}");
    }

    #[test]
    fn self_delivery_is_immune_to_delays() {
        let factory = flood_factory(1);
        let mut delay = DelayCluster::builder(cfg(2, 2, 0), IdAssignment::unique(2), vec![7u32, 9])
            .model(AlwaysBounded::between(50, 50, 5))
            .pacing(FixedPacing::new(1))
            .build();
        let report = delay.run(&factory, 1);
        // Deciding after one round, each process heard (only) itself.
        let vals: Vec<u32> = report.outcome.decisions.values().map(|&(v, _)| v).collect();
        assert_eq!(vals, vec![7, 9]);
    }

    #[test]
    fn restricted_clamp_applies_on_the_delay_network() {
        use homonym_sim::adversary::{Emission, Scripted};
        // The Byzantine process tries three copies to one recipient in
        // round 0; the restricted model lets exactly one through.
        let spam = Scripted::new((0..3).map(|_| {
            (
                Round::ZERO,
                Emission::new(Pid::new(2), ByzTarget::One(Pid::new(0)), 0u32),
            )
        }));
        let mut config = cfg(4, 4, 1);
        config.byz_power = ByzPower::Restricted;
        config.counting = homonym_core::Counting::Numerate;
        let factory = flood_factory(2);
        let mut delay = DelayCluster::builder(config, IdAssignment::unique(4), vec![5u32, 5, 5, 5])
            .byzantine([Pid::new(2)], spam)
            .build();
        let report = delay.run(&factory, 3);
        // 2 rounds × 3 correct × 3 peers = 18 correct sends, plus exactly
        // one clamped Byzantine copy.
        assert_eq!(report.messages_sent, 19);
    }

    #[test]
    #[should_panic(expected = "byzantine processes exceed t")]
    fn too_many_byzantine_rejected() {
        let _ = DelayCluster::<FloodMin>::builder(
            cfg(3, 3, 0),
            IdAssignment::unique(3),
            vec![1u32, 2, 3],
        )
        .byzantine([Pid::new(0)], homonym_sim::adversary::Silent)
        .build();
    }

    #[test]
    #[should_panic(expected = "one input per process")]
    fn wrong_input_count_rejected() {
        let _ =
            DelayCluster::<FloodMin>::builder(cfg(3, 3, 0), IdAssignment::unique(3), vec![1u32, 2])
                .build();
    }

    #[test]
    #[should_panic(expected = "assignment covers n processes")]
    fn mismatched_assignment_rejected() {
        let _ = DelayCluster::<FloodMin>::builder(
            cfg(3, 3, 0),
            IdAssignment::unique(4),
            vec![1u32, 2, 3],
        )
        .build();
    }

    #[test]
    fn bits_are_exact_frame_sizes_when_enabled() {
        let factory = flood_factory(3);
        let inputs = vec![9u32, 4, 7, 2];
        let mut delay =
            DelayCluster::builder(cfg(4, 4, 1), IdAssignment::unique(4), inputs.clone())
                .measure_bits(true)
                .build();
        let report = delay.run(&factory, 10);
        // Every payload is a small u32, which frames to 2 bytes (version
        // byte + 1 varint byte) = 16 exact bits per non-self message.
        assert_eq!(report.bits_sent, Some(report.messages_sent * 16));

        let mut off =
            DelayCluster::<FloodMin>::builder(cfg(4, 4, 1), IdAssignment::unique(4), inputs)
                .build();
        assert_eq!(off.run(&factory, 10).bits_sent, None);
    }

    #[test]
    fn zero_gap_durable_recovery_is_invisible() {
        // Crash p1 at the start of round 2 and durably recover it in the
        // same boundary: journal replay restores byte-identical state, so
        // the whole report matches the uninterrupted run.
        let factory = flood_factory(4);
        let inputs = vec![9u32, 4, 7, 2];
        let golden = DelayCluster::builder(cfg(4, 4, 1), IdAssignment::unique(4), inputs.clone())
            .build()
            .run(&factory, 10);
        let recovered =
            DelayCluster::builder(cfg(4, 4, 1), IdAssignment::unique(4), inputs.clone())
                .crash_at(2, Pid::new(1))
                .recover_at(2, Pid::new(1), homonym_core::RecoveryMode::Durable)
                .build()
                .run(&factory, 10);
        assert_eq!(golden.outcome.decisions, recovered.outcome.decisions);
        assert_eq!(golden.rounds, recovered.rounds);
        assert_eq!(golden.messages_sent, recovered.messages_sent);
        assert_eq!(recovered.crash_dropped, 0);
    }

    #[test]
    fn gapped_durable_recovery_drops_inflight_and_catches_up() {
        // p1 is down for rounds 1–2: messages addressed to it drop, it
        // sends nothing, then journal replay brings it back and the flood
        // still converges on the global minimum.
        let factory = flood_factory(8);
        let report =
            DelayCluster::builder(cfg(4, 4, 1), IdAssignment::unique(4), vec![9u32, 4, 7, 2])
                .crash_at(1, Pid::new(1))
                .recover_at(3, Pid::new(1), homonym_core::RecoveryMode::Durable)
                .build()
                .run(&factory, 12);
        assert!(report.crash_dropped > 0, "down rounds must drop arrivals");
        assert!(report.verdict.all_hold(), "{:?}", report.verdict);
        for (v, _) in report.outcome.decisions.values() {
            assert_eq!(*v, 2);
        }
    }

    #[test]
    fn amnesiac_rejoin_leaves_the_accounting() {
        let factory = flood_factory(6);
        let report =
            DelayCluster::builder(cfg(4, 4, 1), IdAssignment::unique(4), vec![9u32, 4, 7, 2])
                .crash_at(1, Pid::new(0))
                .recover_at(2, Pid::new(0), homonym_core::RecoveryMode::Amnesiac)
                .build()
                .run(&factory, 10);
        // The rejoiner consumed the fault budget: it neither counts for
        // termination nor appears in the outcome.
        assert!(!report.outcome.decisions.contains_key(&Pid::new(0)));
        assert!(!report.outcome.inputs.contains_key(&Pid::new(0)));
        assert!(report.verdict.all_hold(), "{:?}", report.verdict);
    }

    #[test]
    #[should_panic(expected = "fault budget exceeded")]
    fn amnesiac_rejoin_over_budget_panics() {
        // t = 0 leaves no budget for an amnesiac rejoin.
        let factory = flood_factory(6);
        let _ = DelayCluster::builder(cfg(3, 3, 0), IdAssignment::unique(3), vec![9u32, 4, 7])
            .crash_at(1, Pid::new(0))
            .recover_at(2, Pid::new(0), homonym_core::RecoveryMode::Amnesiac)
            .build()
            .run(&factory, 10);
    }

    #[test]
    fn unarrived_messages_count_as_drops() {
        let factory = flood_factory(1);
        let mut delay =
            DelayCluster::builder(cfg(3, 3, 0), IdAssignment::unique(3), vec![1u32, 2, 3])
                .model(AlwaysBounded::between(90, 100, 8))
                .pacing(FixedPacing::new(1))
                .build();
        let report = delay.run(&factory, 1);
        assert_eq!(report.unarrived, report.messages_sent);
        assert_eq!(report.dropped(), report.messages_sent);
        assert_eq!(report.last_lossy_round, Some(Round::ZERO));
    }
}
