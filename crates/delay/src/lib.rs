//! Delay-based partial synchrony and the simulation of basic lossy rounds.
//!
//! The paper (Section 2) adopts the *basic* partially synchronous model of
//! Dwork, Lynch and Stockmeyer: lock-step rounds in which a finite but
//! unbounded number of messages may fail to be delivered. It then notes
//! that this choice is without loss of generality:
//!
//! > the model in which message delivery times are eventually bounded by a
//! > known constant and the model in which message delivery times are
//! > always bounded by an unknown constant can both simulate the basic
//! > partially synchronous model
//!
//! This crate makes that equivalence executable. It provides
//!
//! * [`DelayModel`] — per-message delivery-time models:
//!   [`EventuallyBounded`] (delays at most a **known** `Δ`, but only from
//!   an unknown calm point onward) and [`AlwaysBounded`] (delays at most
//!   an **unknown** `Δ`, from the start), plus the degenerate [`Instant`]
//!   used for parity tests against the lock-step simulator;
//! * [`RoundPacing`] — how processes translate wall-clock ticks back into
//!   rounds: [`FixedPacing`] (round length `D`, for the known-constant
//!   model: pick `D ≥ Δ`) and [`DoublingPacing`] (round lengths that grow
//!   geometrically, for the unknown-constant model: eventually the round
//!   outlasts the unknown `Δ`);
//! * [`DelayCluster`] — a discrete-event driver that runs the same
//!   deterministic [`Protocol`](homonym_core::Protocol) automata as
//!   [`homonym_sim::Simulation`], but over a network with per-message
//!   delays. A message tagged for round `r` that arrives after the
//!   receiver has closed round `r` is *late* and discarded — exactly a
//!   dropped message of the basic model.
//!
//! The simulation argument is visible in the [`DelayReport`]: under either
//! model/pacing pair, the number of late messages is finite and lateness
//! ceases from some round on (`clean_from`), so the protocols built for
//! the basic model — `homonym_psync::HomonymAgreement` with
//! `2ℓ > n + 3t`, `homonym_psync::RestrictedAgreement` with `ℓ > t` —
//! decide unchanged. The `model_equivalence` integration tests and the
//! `delay_models` bench exercise both directions.
//!
//! # Example
//!
//! ```
//! use homonym_core::{Domain, IdAssignment, SystemConfig, Synchrony};
//! use homonym_delay::{DelayCluster, DoublingPacing, AlwaysBounded};
//! use homonym_psync::AgreementFactory;
//!
//! // n = 4, ℓ = 4, t = 1: 2ℓ = 8 > n + 3t = 7, solvable.
//! let cfg = SystemConfig::builder(4, 4, 1)
//!     .synchrony(Synchrony::PartiallySynchronous)
//!     .build()
//!     .unwrap();
//! let factory = AgreementFactory::new(4, 4, 1, Domain::binary());
//! // Delays always below an (unknown to the pacing) bound of 3 ticks;
//! // processes double their round length until rounds outlast it.
//! let report = DelayCluster::builder(cfg, IdAssignment::unique(4), vec![true, false, true, false])
//!     .model(AlwaysBounded::new(3, 7))
//!     .pacing(DoublingPacing::new(1, 4))
//!     .build()
//!     .run(&factory, 200);
//! assert!(report.verdict.all_hold());
//! assert!(report.clean_from().is_some());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod driver;
mod model;
mod net;
mod pacing;
pub mod suite;

pub use driver::{DelayCluster, DelayClusterBuilder, DelayReport};
pub use model::{AlwaysBounded, DelayModel, EventuallyBounded, Instant, LinkTargeted};
pub use net::InFlight;
pub use pacing::{DoublingPacing, FixedPacing, RoundPacing};
pub use suite::{run_delay_suite, DelayScenarioResult, DelaySuiteParams, DelaySuiteResult};
