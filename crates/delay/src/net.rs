//! The in-flight message store of the delay network.

use std::collections::BTreeMap;
use std::sync::Arc;

use homonym_core::intern::Tok;
use homonym_core::{Id, Pid, Round};

/// A message travelling through the delay network.
///
/// The payload is an `Arc` handle on the delivery fabric: one emission
/// fanned out to many recipients keeps a single allocation in flight,
/// however the delay model scatters the arrival ticks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Flight<M> {
    /// The sending process (environment knowledge only).
    pub from: Pid,
    /// The sender's authenticated identifier (what the receiver sees).
    pub src: Id,
    /// The recipient.
    pub to: Pid,
    /// The round the message belongs to.
    pub round: Round,
    /// The shared payload.
    pub msg: Arc<M>,
    /// The interner token of the payload (frame header), letting the
    /// receiving inbox deduplicate by token comparison instead of a deep
    /// structural walk.
    pub tok: Tok,
}

/// Messages in flight, keyed by arrival tick.
///
/// The store is deterministic: arrivals at the same tick keep insertion
/// order, and insertion order is itself deterministic because the driver
/// iterates processes in `Pid` order.
#[derive(Clone, Debug)]
pub struct InFlight<M> {
    queue: BTreeMap<u64, Vec<Flight<M>>>,
    len: usize,
}

impl<M> InFlight<M> {
    /// An empty store.
    pub fn new() -> Self {
        InFlight {
            queue: BTreeMap::new(),
            len: 0,
        }
    }

    /// The number of messages still in flight.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub(crate) fn send(&mut self, arrive_at: u64, flight: Flight<M>) {
        self.queue.entry(arrive_at).or_default().push(flight);
        self.len += 1;
    }

    /// Removes and returns every message whose arrival tick is `<= tick`,
    /// in (tick, insertion) order.
    pub(crate) fn arrivals_up_to(&mut self, tick: u64) -> Vec<Flight<M>> {
        let mut due = Vec::new();
        let later = self.queue.split_off(&tick.saturating_add(1));
        for (_, mut batch) in std::mem::replace(&mut self.queue, later) {
            due.append(&mut batch);
        }
        self.len -= due.len();
        due
    }

    /// The earliest pending arrival tick, if any.
    pub fn next_arrival(&self) -> Option<u64> {
        self.queue.keys().next().copied()
    }
}

impl<M> Default for InFlight<M> {
    fn default() -> Self {
        InFlight::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flight(to: usize, round: u64, msg: u32) -> Flight<u32> {
        Flight {
            from: Pid::new(0),
            src: Id::new(1),
            to: Pid::new(to),
            round: Round::new(round),
            msg: Arc::new(msg),
            tok: 0,
        }
    }

    #[test]
    fn arrivals_respect_tick_order() {
        let mut net = InFlight::new();
        net.send(5, flight(1, 0, 10));
        net.send(3, flight(2, 0, 20));
        net.send(5, flight(1, 0, 30));
        assert_eq!(net.len(), 3);
        assert_eq!(net.next_arrival(), Some(3));

        let due = net.arrivals_up_to(4);
        assert_eq!(due.len(), 1);
        assert_eq!(*due[0].msg, 20);
        assert_eq!(net.len(), 2);

        let due = net.arrivals_up_to(5);
        assert_eq!(due.iter().map(|f| *f.msg).collect::<Vec<_>>(), vec![10, 30]);
        assert!(net.is_empty());
        assert_eq!(net.next_arrival(), None);
    }

    #[test]
    fn same_tick_preserves_insertion_order() {
        let mut net = InFlight::new();
        for (k, msg) in [(7u64, 1u32), (7, 2), (7, 3)] {
            net.send(k, flight(0, 0, msg));
        }
        let due = net.arrivals_up_to(7);
        assert_eq!(
            due.iter().map(|f| *f.msg).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn arrivals_up_to_zero_only_takes_due() {
        let mut net = InFlight::new();
        net.send(0, flight(0, 0, 1));
        net.send(1, flight(0, 0, 2));
        let due = net.arrivals_up_to(0);
        assert_eq!(due.len(), 1);
        assert_eq!(net.len(), 1);
    }
}
