//! Round pacing: how processes map wall-clock ticks back into rounds.

use homonym_core::Round;

/// The length, in ticks, that processes allot to each simulated round.
///
/// In the delay world, processes cannot wait "until every message of the
/// round has arrived" — they would wait forever on a lost sender. Instead
/// they close round `r` after a deadline and treat whatever arrived by
/// then as the round's inbox; anything later is discarded, which is
/// exactly a basic-model drop.
pub trait RoundPacing: Send {
    /// The duration of `round`, in ticks. Must be at least 1.
    fn duration(&self, round: Round) -> u64;

    /// The tick at which `round` begins (the prefix sum of durations).
    fn start_of(&self, round: Round) -> u64 {
        (0..round.index())
            .map(|r| self.duration(Round::new(r)))
            .sum()
    }

    /// The first round whose duration is at least `delta`, if pacing ever
    /// reaches it. Diagnostics: with [`AlwaysBounded`] delays, all rounds
    /// from this one on are clean.
    ///
    /// [`AlwaysBounded`]: crate::AlwaysBounded
    fn outlasts(&self, delta: u64, search_horizon: u64) -> Option<Round> {
        (0..search_horizon)
            .map(Round::new)
            .find(|&r| self.duration(r) >= delta)
    }
}

/// Every round lasts exactly `D` ticks.
///
/// This is the pacing for the *known*-constant model: with delays
/// eventually bounded by a known `Δ`, choosing `D ≥ Δ` guarantees that
/// every message sent at or after the calm tick arrives within its round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixedPacing {
    duration: u64,
}

impl FixedPacing {
    /// Rounds of `duration` ticks each.
    ///
    /// # Panics
    ///
    /// Panics if `duration == 0`.
    pub fn new(duration: u64) -> Self {
        assert!(duration >= 1, "rounds last at least one tick");
        FixedPacing { duration }
    }
}

impl RoundPacing for FixedPacing {
    fn duration(&self, _round: Round) -> u64 {
        self.duration
    }

    fn start_of(&self, round: Round) -> u64 {
        self.duration * round.index()
    }
}

/// Round lengths that double every `every` rounds, starting from
/// `initial`.
///
/// This is the pacing for the *unknown*-constant model: whatever the true
/// bound `Δ` is, some round eventually lasts at least `Δ`, and from that
/// round on no message is late. The geometric growth keeps the time wasted
/// on too-short rounds proportional to the time actually needed — the
/// standard guess-and-double argument of Dwork–Lynch–Stockmeyer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DoublingPacing {
    initial: u64,
    every: u64,
}

impl DoublingPacing {
    /// Rounds start at `initial` ticks and double every `every` rounds
    /// (the growth saturates after 32 doublings rather than overflowing).
    ///
    /// # Panics
    ///
    /// Panics if `initial == 0` or `every == 0`.
    pub fn new(initial: u64, every: u64) -> Self {
        assert!(initial >= 1, "rounds last at least one tick");
        assert!(every >= 1, "doubling period is at least one round");
        DoublingPacing { initial, every }
    }
}

impl RoundPacing for DoublingPacing {
    fn duration(&self, round: Round) -> u64 {
        let doublings = (round.index() / self.every).min(32);
        self.initial.saturating_mul(1u64 << doublings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_pacing_is_flat() {
        let p = FixedPacing::new(4);
        assert_eq!(p.duration(Round::ZERO), 4);
        assert_eq!(p.duration(Round::new(100)), 4);
        assert_eq!(p.start_of(Round::new(3)), 12);
    }

    #[test]
    fn doubling_pacing_grows_geometrically() {
        let p = DoublingPacing::new(1, 2);
        let durations: Vec<u64> = (0..8).map(|r| p.duration(Round::new(r))).collect();
        assert_eq!(durations, vec![1, 1, 2, 2, 4, 4, 8, 8]);
        // Prefix sums line up with the default start_of.
        assert_eq!(p.start_of(Round::new(4)), 1 + 1 + 2 + 2);
    }

    #[test]
    fn doubling_pacing_outlasts_any_bound() {
        let p = DoublingPacing::new(1, 4);
        let r = p.outlasts(1_000, 100).expect("must outlast");
        assert!(p.duration(r) >= 1_000);
        // And before that round, it had not yet caught up.
        assert!(p.duration(Round::new(r.index() - 1)) < 1_000);
    }

    #[test]
    fn fixed_pacing_outlasts_only_within_its_duration() {
        let p = FixedPacing::new(5);
        assert_eq!(p.outlasts(5, 10), Some(Round::ZERO));
        assert_eq!(p.outlasts(6, 10), None);
    }

    #[test]
    fn doubling_saturates_instead_of_overflowing() {
        let p = DoublingPacing::new(u64::MAX / 2, 1);
        // Far out, the duration saturates rather than wrapping.
        assert_eq!(p.duration(Round::new(64)), u64::MAX);
    }
}
