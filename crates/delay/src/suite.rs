//! The standard adversary suite, replayed on the delay substrate.
//!
//! [`homonym_sim::harness::run_standard_suite`] sweeps
//! `input patterns × Byzantine placements × strategies` on the lock-step
//! engine; this module runs the same grid over [`DelayCluster`], so every
//! upper-bound claim that holds on basic rounds is re-checked on the
//! delay-based models. Strategies and grid helpers are shared with the
//! lock-step harness — only the substrate changes.

use std::collections::BTreeSet;

use homonym_core::{
    Domain, IdAssignment, Pid, Protocol, ProtocolFactory, Round, SystemConfig, Value,
};
use homonym_sim::adversary::{
    Adversary, CloneSpammer, CrashAt, Equivocator, Flooder, Mimic, ReplayFuzzer, Silent,
    StaleReplayer,
};
use homonym_sim::harness::{byzantine_placements, input_patterns};

use crate::driver::{DelayCluster, DelayReport};
use crate::model::EventuallyBounded;
use crate::pacing::FixedPacing;

/// One scenario's outcome on the delay substrate.
#[derive(Clone, Debug)]
pub struct DelayScenarioResult<V> {
    /// `inputs=… byz=… adversary=…`, as in the lock-step suite.
    pub name: String,
    /// The full report.
    pub report: DelayReport<V>,
}

/// The outcomes of a full grid sweep.
#[derive(Clone, Debug)]
pub struct DelaySuiteResult<V> {
    /// One entry per scenario, in grid order.
    pub results: Vec<DelayScenarioResult<V>>,
}

impl<V: Value> DelaySuiteResult<V> {
    /// Whether every scenario satisfied all three properties.
    pub fn all_hold(&self) -> bool {
        self.results.iter().all(|r| r.report.verdict.all_hold())
    }

    /// The scenarios that violated a property.
    pub fn failures(&self) -> Vec<&DelayScenarioResult<V>> {
        self.results
            .iter()
            .filter(|r| !r.report.verdict.all_hold())
            .collect()
    }

    /// Whether lateness died out in every scenario.
    pub fn all_stabilized(&self) -> bool {
        self.results.iter().all(|r| r.report.clean_from().is_some())
    }
}

/// Parameters of a delay-substrate suite run.
#[derive(Clone, Copy, Debug)]
pub struct DelaySuiteParams<'a, V> {
    /// The system configuration (must be partially synchronous).
    pub cfg: SystemConfig,
    /// The identifier assignment.
    pub assignment: &'a IdAssignment,
    /// The value domain.
    pub domain: &'a Domain<V>,
    /// Known delay bound Δ (rounds are paced at exactly Δ ticks).
    pub delta: u64,
    /// The tick from which the bound holds.
    pub calm_tick: u64,
    /// Rounds to run after the calm point.
    pub slack: u64,
    /// Seed for the delay model and the seeded strategies.
    pub seed: u64,
}

/// Runs the full `inputs × placements × strategies` grid over
/// [`DelayCluster`] with the known-bound delay model.
pub fn run_delay_suite<P, F>(
    factory: &F,
    params: &DelaySuiteParams<'_, P::Value>,
) -> DelaySuiteResult<P::Value>
where
    P: Protocol + 'static,
    P::Msg: homonym_core::codec::WireEncode + homonym_core::codec::WireDecode,
    F: ProtocolFactory<P = P>,
{
    let cfg = params.cfg;
    let assignment = params.assignment;
    let domain = params.domain;
    let horizon = params.calm_tick / params.delta.max(1) + params.slack;
    let mut results = Vec::new();
    let mut salt = 0u64;

    for (input_name, inputs) in input_patterns(domain, cfg.n) {
        for (placement_name, byz) in byzantine_placements(assignment, cfg.t) {
            let byz_inputs: Vec<(Pid, P::Value)> = byz
                .iter()
                .enumerate()
                .map(|(k, &pid)| (pid, domain.values()[k % domain.len()].clone()))
                .collect();
            let opposite = domain.values().last().expect("non-empty domain").clone();
            let split_half: BTreeSet<Pid> =
                Pid::all(cfg.n).filter(|p| p.index() % 2 == 0).collect();

            let mut adversaries: Vec<(&str, Box<dyn Adversary<P::Msg>>)> = vec![
                ("silent", Box::new(Silent)),
                (
                    "crash",
                    Box::new(CrashAt::new(
                        Round::new(horizon / 2),
                        Mimic::new(factory, assignment, &byz_inputs),
                    )),
                ),
                (
                    "mimic",
                    Box::new(Mimic::new(factory, assignment, &byz_inputs)),
                ),
                (
                    "equivocator",
                    Box::new(Equivocator::new(
                        factory,
                        assignment,
                        &byz,
                        domain.default_value().clone(),
                        opposite.clone(),
                        split_half,
                    )),
                ),
                (
                    "clone-spammer",
                    Box::new(CloneSpammer::new(
                        factory,
                        assignment,
                        &byz,
                        domain.values(),
                    )),
                ),
                (
                    "replay-fuzzer",
                    Box::new(ReplayFuzzer::new(params.seed ^ 0x5eed ^ salt, 3)),
                ),
                ("stale-replayer", Box::new(StaleReplayer::new(2, 4))),
                ("flooder", Box::new(Flooder::new(4))),
            ];
            if cfg.t == 0 {
                adversaries.truncate(1);
            }

            for (adv_name, adversary) in adversaries {
                salt += 1;
                let mut cluster = DelayClusterWithBoxed::build(
                    cfg,
                    assignment.clone(),
                    inputs.clone(),
                    byz.clone(),
                    adversary,
                    EventuallyBounded::new(
                        params.delta,
                        params.calm_tick,
                        10 * params.delta + 20,
                        params.seed ^ salt,
                    ),
                    FixedPacing::new(params.delta),
                );
                let report = cluster.run(factory, horizon);
                results.push(DelayScenarioResult {
                    name: format!("inputs={input_name} byz={placement_name} adversary={adv_name}"),
                    report,
                });
            }
        }
    }

    DelaySuiteResult { results }
}

/// Internal shim: [`DelayCluster::builder`] takes `impl Adversary`, but the
/// suite owns its strategies as boxed trait objects; this adapter forwards
/// a box through the `Adversary` interface.
struct BoxedAdversary<M: homonym_core::Message>(Box<dyn Adversary<M>>);

impl<M: homonym_core::Message> Adversary<M> for BoxedAdversary<M> {
    fn send(
        &mut self,
        ctx: &homonym_sim::adversary::AdvCtx<'_>,
    ) -> Vec<homonym_sim::adversary::Emission<M>> {
        self.0.send(ctx)
    }

    fn receive(
        &mut self,
        round: Round,
        inboxes: &std::collections::BTreeMap<Pid, homonym_core::Inbox<M>>,
    ) {
        self.0.receive(round, inboxes)
    }
}

struct DelayClusterWithBoxed;

impl DelayClusterWithBoxed {
    #[allow(clippy::too_many_arguments)]
    fn build<P: Protocol>(
        cfg: SystemConfig,
        assignment: IdAssignment,
        inputs: Vec<P::Value>,
        byz: BTreeSet<Pid>,
        adversary: Box<dyn Adversary<P::Msg>>,
        model: EventuallyBounded,
        pacing: FixedPacing,
    ) -> DelayCluster<P> {
        DelayCluster::builder(cfg, assignment, inputs)
            .byzantine(byz, BoxedAdversary(adversary))
            .model(model)
            .pacing(pacing)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::{ByzPower, Counting, Synchrony};

    #[test]
    fn suite_result_accounting() {
        let suite: DelaySuiteResult<bool> = DelaySuiteResult {
            results: Vec::new(),
        };
        assert!(suite.all_hold());
        assert!(suite.all_stabilized());
        assert!(suite.failures().is_empty());
    }

    // The full grid runs live in tests/delay_suite.rs at the workspace
    // root (they need the psync protocols, a dev-dependency there); this
    // in-crate test only checks the plumbing with a trivial protocol.
    #[derive(Clone, Debug)]
    struct Fixed {
        id: homonym_core::Id,
        v: bool,
    }

    impl Protocol for Fixed {
        type Msg = bool;
        type Value = bool;

        fn id(&self) -> homonym_core::Id {
            self.id
        }

        fn send(&mut self, _round: Round) -> Vec<(homonym_core::Recipients, bool)> {
            vec![(homonym_core::Recipients::All, self.v)]
        }

        fn receive(&mut self, _round: Round, _inbox: &homonym_core::Inbox<bool>) {}

        fn decision(&self) -> Option<bool> {
            Some(self.v)
        }
    }

    #[test]
    fn grid_covers_placements_and_strategies() {
        let cfg = SystemConfig::builder(4, 4, 1)
            .synchrony(Synchrony::PartiallySynchronous)
            .counting(Counting::Numerate)
            .byz_power(ByzPower::Unrestricted)
            .build()
            .unwrap();
        let assignment = IdAssignment::unique(4);
        let domain = Domain::binary();
        let factory = homonym_core::FnFactory::new(|id, v| Fixed { id, v });
        let suite = run_delay_suite(
            &factory,
            &DelaySuiteParams {
                cfg,
                assignment: &assignment,
                domain: &domain,
                delta: 1,
                calm_tick: 0,
                slack: 4,
                seed: 3,
            },
        );
        // 3 input patterns × placements × 8 strategies, all non-empty.
        assert!(suite.results.len() >= 24, "{}", suite.results.len());
        // `Fixed` decides its own input instantly: unanimous patterns
        // hold, the split pattern violates agreement — the checker works.
        assert!(!suite.all_hold());
        assert!(suite
            .results
            .iter()
            .filter(|r| r.name.contains("unanimous"))
            .all(|r| r.report.verdict.all_hold()));
    }
}
