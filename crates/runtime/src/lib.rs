//! A threaded actor runtime for homonym protocols.
//!
//! Runs the same deterministic [`Protocol`] automata as the simulator, but
//! with every correct process on its own OS thread, exchanging messages
//! through channels. A coordinator thread implements the network fabric —
//! lock-step rounds, identifier-based delivery, drop schedules, the
//! numerate/innumerate transform, and the restricted-Byzantine clamp —
//! with exactly the semantics of
//! [`homonym_sim::Simulation`], so a run here must produce
//! the same decisions as the simulator given the same inputs (the
//! `runtime_parity` integration tests assert this).
//!
//! This is the "deployment-shaped" substrate: it exists to demonstrate the
//! protocol automata are runtime-agnostic, and to benchmark the protocol
//! logic under real thread scheduling.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::thread;

use crossbeam_channel::{bounded, Receiver, Sender};
use homonym_core::spec::{self, Outcome};
use homonym_core::{
    ByzPower, Deliveries, Id, IdAssignment, Inbox, Pid, Protocol, ProtocolFactory, Recipients,
    Round, SharedEnvelope, SystemConfig,
};
use homonym_sim::adversary::{AdvCtx, Adversary, Silent};
use homonym_sim::{DropPolicy, NoDrops, RunReport};

enum ToActor<M> {
    Collect(Round),
    Deliver(Round, Inbox<M>),
    Stop,
}

enum FromActor<M, V> {
    Sends(Pid, Vec<(Recipients, M)>),
    Received(Pid, Option<V>),
}

/// Builder for a threaded cluster run.
///
/// # Example
///
/// ```
/// use homonym_classic::{Eig, UniqueRunner};
/// use homonym_core::{Domain, FnFactory, IdAssignment, SystemConfig};
/// use homonym_runtime::Cluster;
///
/// let cfg = SystemConfig::builder(4, 4, 1).build().unwrap();
/// let domain = Domain::binary();
/// let factory = FnFactory::new(move |id, input| {
///     UniqueRunner::new(Eig::new(4, 1, domain.clone()), id, input)
/// });
/// let report = Cluster::new(cfg, IdAssignment::unique(4), vec![true; 4])
///     .run(&factory, 10);
/// assert!(report.verdict.all_hold());
/// ```
pub struct Cluster<P: Protocol> {
    cfg: SystemConfig,
    assignment: IdAssignment,
    inputs: Vec<P::Value>,
    byz: BTreeSet<Pid>,
    adversary: Box<dyn Adversary<P::Msg>>,
    drops: Box<dyn DropPolicy>,
}

impl<P> Cluster<P>
where
    P: Protocol + Send + 'static,
    P::Value: Send,
{
    /// Starts configuring a threaded run of `cfg` under `assignment` with
    /// the given per-process proposals. Defaults: no Byzantine processes,
    /// no drops.
    pub fn new(cfg: SystemConfig, assignment: IdAssignment, inputs: Vec<P::Value>) -> Self {
        Cluster {
            cfg,
            assignment,
            inputs,
            byz: BTreeSet::new(),
            adversary: Box::new(Silent),
            drops: Box::new(NoDrops),
        }
    }

    /// Declares Byzantine processes and their strategy (runs on the
    /// coordinator thread).
    ///
    /// # Panics
    ///
    /// Panics if more than `t` processes are declared Byzantine.
    pub fn byzantine(
        mut self,
        byz: impl IntoIterator<Item = Pid>,
        adversary: impl Adversary<P::Msg> + 'static,
    ) -> Self {
        self.byz = byz.into_iter().collect();
        assert!(
            self.byz.len() <= self.cfg.t,
            "{} byzantine processes exceed t = {}",
            self.byz.len(),
            self.cfg.t
        );
        self.adversary = Box::new(adversary);
        self
    }

    /// Installs a drop policy (default: none).
    pub fn drops(mut self, drops: impl DropPolicy + 'static) -> Self {
        self.drops = Box::new(drops);
        self
    }

    /// Spawns one thread per correct process and runs lock-step rounds
    /// until every correct process decides or `max_rounds` elapse.
    ///
    /// # Panics
    ///
    /// Panics on the same contract violations as the simulator (double
    /// addressing, adversary emitting from a correct process, changed
    /// decisions), and if a worker thread panics.
    pub fn run<F>(mut self, factory: &F, max_rounds: u64) -> RunReport<P::Value>
    where
        F: ProtocolFactory<P = P>,
    {
        let cfg = self.cfg;
        cfg.validate().expect("invalid system configuration");
        assert_eq!(self.assignment.n(), cfg.n, "assignment covers n processes");
        assert_eq!(self.inputs.len(), cfg.n, "one input per process");

        let correct: Vec<Pid> = Pid::all(cfg.n).filter(|p| !self.byz.contains(p)).collect();
        let correct_inputs: BTreeMap<Pid, P::Value> = correct
            .iter()
            .map(|&p| (p, self.inputs[p.index()].clone()))
            .collect();

        // Spawn actors.
        let (from_tx, from_rx): (
            Sender<FromActor<P::Msg, P::Value>>,
            Receiver<FromActor<P::Msg, P::Value>>,
        ) = bounded(cfg.n * 2);
        let mut to_actors: BTreeMap<Pid, Sender<ToActor<P::Msg>>> = BTreeMap::new();
        let mut handles = Vec::new();
        for &pid in &correct {
            let (to_tx, to_rx) = bounded::<ToActor<P::Msg>>(2);
            to_actors.insert(pid, to_tx);
            let from_tx = from_tx.clone();
            let mut proc_ =
                factory.spawn(self.assignment.id_of(pid), self.inputs[pid.index()].clone());
            handles.push(thread::spawn(move || {
                while let Ok(msg) = to_rx.recv() {
                    match msg {
                        ToActor::Collect(round) => {
                            let out = proc_.send(round);
                            from_tx
                                .send(FromActor::Sends(pid, out))
                                .expect("coordinator alive");
                        }
                        ToActor::Deliver(round, inbox) => {
                            proc_.receive(round, &inbox);
                            from_tx
                                .send(FromActor::Received(pid, proc_.decision()))
                                .expect("coordinator alive");
                        }
                        ToActor::Stop => break,
                    }
                }
            }));
        }

        // Coordinator loop. The wire list and delivery buckets are the
        // same Arc-shared fabric the lock-step simulator routes through,
        // reused across rounds.
        let mut decisions: BTreeMap<Pid, (P::Value, Round)> = BTreeMap::new();
        let mut messages_sent = 0u64;
        let mut messages_delivered = 0u64;
        let mut messages_dropped = 0u64;
        let mut round = Round::ZERO;
        let mut wires: Vec<(Pid, Id, Pid, Arc<P::Msg>)> = Vec::new();
        let mut deliveries: Deliveries<P::Msg> = Deliveries::new(cfg.n);

        while round.index() < max_rounds && decisions.len() < correct.len() {
            // 1. Collect correct sends (in parallel across actors).
            for tx in to_actors.values() {
                tx.send(ToActor::Collect(round)).expect("actor alive");
            }
            let mut sends: BTreeMap<Pid, Vec<(Recipients, P::Msg)>> = BTreeMap::new();
            for _ in 0..correct.len() {
                match from_rx.recv().expect("actor alive") {
                    FromActor::Sends(pid, out) => {
                        sends.insert(pid, out);
                    }
                    FromActor::Received(..) => unreachable!("no delivery outstanding"),
                }
            }

            // 2. Wires: correct then adversary (same order as the
            //    simulator, for determinism parity). Each payload is
            //    wrapped in an Arc once; recipients share the handle.
            wires.clear();
            deliveries.clear();
            let mut addressed: BTreeSet<Pid> = BTreeSet::new();
            for (pid, out) in sends {
                let src_id = self.assignment.id_of(pid);
                addressed.clear();
                for (recipients, msg) in out {
                    let msg = Arc::new(msg);
                    for to in recipients.expand(&self.assignment) {
                        assert!(
                            addressed.insert(to),
                            "correct process {pid} addressed {to} twice in {round}"
                        );
                        wires.push((pid, src_id, to, Arc::clone(&msg)));
                    }
                }
            }
            let ctx = AdvCtx {
                round,
                cfg: &cfg,
                assignment: &self.assignment,
                byz: &self.byz,
            };
            let mut byz_sent: BTreeMap<(Pid, Pid), u32> = BTreeMap::new();
            for emission in self.adversary.send(&ctx) {
                assert!(
                    self.byz.contains(&emission.from),
                    "adversary emitted from non-byzantine {}",
                    emission.from
                );
                let src_id = self.assignment.id_of(emission.from);
                for to in emission.to.expand(&self.assignment) {
                    if cfg.byz_power == ByzPower::Restricted {
                        let count = byz_sent.entry((emission.from, to)).or_insert(0);
                        if *count >= 1 {
                            continue;
                        }
                        *count += 1;
                    }
                    wires.push((emission.from, src_id, to, Arc::clone(&emission.msg)));
                }
            }

            // 3. Drops and routing into the dense buckets.
            for (from, src_id, to, msg) in wires.drain(..) {
                let is_self = from == to;
                if !is_self {
                    messages_sent += 1;
                    if self.drops.drops(round, from, to) {
                        messages_dropped += 1;
                        continue;
                    }
                    messages_delivered += 1;
                }
                deliveries.push(to, SharedEnvelope::shared(src_id, msg));
            }

            // 4. Deliver to actors; collect decisions.
            for (&pid, tx) in &to_actors {
                let inbox = deliveries.take_inbox(pid, cfg.counting);
                tx.send(ToActor::Deliver(round, inbox))
                    .expect("actor alive");
            }
            for _ in 0..correct.len() {
                match from_rx.recv().expect("actor alive") {
                    FromActor::Received(pid, decision) => {
                        if let Some(v) = decision {
                            match decisions.get(&pid) {
                                None => {
                                    decisions.insert(pid, (v, round));
                                }
                                Some((prev, _)) => {
                                    assert!(
                                        *prev == v,
                                        "decision of {pid} changed from {prev:?} to {v:?}"
                                    );
                                }
                            }
                        }
                    }
                    FromActor::Sends(..) => unreachable!("no collect outstanding"),
                }
            }

            // 5. Byzantine inboxes to the adversary.
            let byz_inboxes: BTreeMap<Pid, Inbox<P::Msg>> = self
                .byz
                .iter()
                .map(|&pid| (pid, deliveries.take_inbox(pid, cfg.counting)))
                .collect();
            self.adversary.receive(round, &byz_inboxes);

            round = round.next();
        }

        // Shut down actors.
        for tx in to_actors.values() {
            let _ = tx.send(ToActor::Stop);
        }
        drop(to_actors);
        for handle in handles {
            handle.join().expect("worker thread panicked");
        }

        let outcome = Outcome {
            inputs: correct_inputs,
            decisions: decisions.clone(),
            horizon: round,
        };
        let verdict = spec::check(&outcome);
        RunReport {
            all_decided_round: (decisions.len() == correct.len())
                .then(|| decisions.values().map(|&(_, r)| r).max())
                .flatten(),
            outcome,
            verdict,
            rounds: round.index(),
            messages_sent,
            messages_delivered,
            messages_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_classic::{Eig, UniqueRunner};
    use homonym_core::{Domain, FnFactory};

    fn eig_factory(ell: usize, t: usize) -> impl ProtocolFactory<P = UniqueRunner<Eig<bool>>> {
        let domain = Domain::binary();
        FnFactory::new(move |id, input| {
            UniqueRunner::new(Eig::new(ell, t, domain.clone()), id, input)
        })
    }

    #[test]
    fn threads_decide_like_the_simulator() {
        let cfg = SystemConfig::builder(4, 4, 1).build().unwrap();
        let factory = eig_factory(4, 1);
        let threaded = Cluster::new(cfg, IdAssignment::unique(4), vec![true, false, true, false])
            .run(&factory, 10);
        let mut sim = homonym_sim::Simulation::builder(
            cfg,
            IdAssignment::unique(4),
            vec![true, false, true, false],
        )
        .build_with(&factory);
        let simulated = sim.run(10);
        assert!(threaded.verdict.all_hold());
        assert_eq!(threaded.outcome.decisions, simulated.outcome.decisions);
        assert_eq!(threaded.messages_sent, simulated.messages_sent);
    }

    #[test]
    fn byzantine_strategy_runs_on_coordinator() {
        let cfg = SystemConfig::builder(4, 4, 1).build().unwrap();
        let factory = eig_factory(4, 1);
        let report = Cluster::new(cfg, IdAssignment::unique(4), vec![true; 4])
            .byzantine([Pid::new(3)], Silent)
            .run(&factory, 10);
        assert!(report.verdict.all_hold());
        assert_eq!(report.outcome.decisions.len(), 3);
    }

    #[test]
    fn horizon_stops_before_decisions() {
        // EIG needs t + 1 = 2 rounds; a horizon of 1 must stop the cluster
        // cleanly with termination (within the horizon) unmet.
        let cfg = SystemConfig::builder(4, 4, 1).build().unwrap();
        let factory = eig_factory(4, 1);
        let report = Cluster::new(cfg, IdAssignment::unique(4), vec![true; 4]).run(&factory, 1);
        assert_eq!(report.rounds, 1);
        assert!(report.outcome.decisions.is_empty());
        assert!(!report.verdict.termination.holds());
    }
}
