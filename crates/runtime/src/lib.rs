//! A threaded actor runtime for homonym protocols.
//!
//! Runs the same deterministic [`Protocol`] automata as the simulator, but
//! with every correct process on its own OS thread, exchanging messages
//! through channels. A coordinator thread implements the network fabric —
//! lock-step rounds, identifier-based delivery, drop schedules, the
//! numerate/innumerate transform, and the restricted-Byzantine clamp —
//! with exactly the semantics of
//! [`homonym_sim::Simulation`], so a run here must produce
//! the same decisions as the simulator given the same inputs (the
//! `runtime_parity` integration tests assert this).
//!
//! This is the "deployment-shaped" substrate: it exists to demonstrate the
//! protocol automata are runtime-agnostic, and to benchmark the protocol
//! logic under real thread scheduling.
//!
//! Two coordinators are provided: [`Cluster`] runs one agreement instance
//! (the original single-shot parity target), and [`ShardedCluster`] drives
//! the sharded multi-shot schedule of
//! [`homonym_sim::shards::ShardedSimulation`] — K instances interleaved
//! per tick over one shared delivery plane, shards restarting on their
//! queued shots — with thread-per-process actors that are *restarted* in
//! place between shots (the `shard_runtime_parity` integration tests pin
//! the cross-engine equivalence).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::thread;

use crossbeam_channel::{bounded, Receiver, Sender};
use homonym_core::codec::{WireDecode, WireEncode};
use homonym_core::exec::{self, Executor, Sequential};
use homonym_core::intern::{IdBits, Tok};
use homonym_core::journal::{self, Journal, MemJournal};
use homonym_core::spec::{self, Outcome};
use homonym_core::RecoveryMode;
use homonym_core::{
    ByzPower, Counting, Deliveries, DeliverySlots, FrameInterner, Id, IdAssignment, Inbox, Pid,
    Protocol, ProtocolFactory, Recipients, Round, SharedEnvelope, SystemConfig,
};
use homonym_sim::adversary::{AdvCtx, Adversary, Silent};
use homonym_sim::par::{self, SendScratch};
use homonym_sim::shards::{
    wire_bits, ChurnOp, ChurnPlan, ShardCore, ShardId, ShardReport, ShardSpec, ShardWire,
};
use homonym_sim::{DropPolicy, NoDrops, RunReport};

enum ToActor<P: Protocol> {
    /// Replace the actor's automaton (a recovered process rejoins).
    Restart(P),
    Collect(Round),
    Deliver(Round, Inbox<P::Msg>),
    Stop,
}

/// One scheduled crash/recover event of a single-shot [`Cluster`] run.
enum ClusterChurn {
    Crash(Pid),
    Recover(Pid, RecoveryMode),
}

enum FromActor<M, V> {
    Sends(Pid, Vec<(Recipients, Arc<M>)>),
    /// Post-delivery report: decision (if any) plus the automaton's
    /// current `state_bits` sample.
    Received(Pid, Option<V>, u64),
}

/// Builder for a threaded cluster run.
///
/// # Example
///
/// ```
/// use homonym_classic::{Eig, UniqueRunner};
/// use homonym_core::{Domain, FnFactory, IdAssignment, SystemConfig};
/// use homonym_runtime::Cluster;
///
/// let cfg = SystemConfig::builder(4, 4, 1).build().unwrap();
/// let domain = Domain::binary();
/// let factory = FnFactory::new(move |id, input| {
///     UniqueRunner::new(Eig::new(4, 1, domain.clone()), id, input)
/// });
/// let report = Cluster::new(cfg, IdAssignment::unique(4), vec![true; 4])
///     .run(&factory, 10);
/// assert!(report.verdict.all_hold());
/// ```
pub struct Cluster<P: Protocol> {
    cfg: SystemConfig,
    assignment: IdAssignment,
    inputs: Vec<P::Value>,
    byz: BTreeSet<Pid>,
    adversary: Box<dyn Adversary<P::Msg>>,
    drops: Box<dyn DropPolicy>,
    churn: BTreeMap<u64, Vec<ClusterChurn>>,
}

impl<P> Cluster<P>
where
    P: Protocol + Send + 'static,
    P::Value: Send,
{
    /// Starts configuring a threaded run of `cfg` under `assignment` with
    /// the given per-process proposals. Defaults: no Byzantine processes,
    /// no drops.
    pub fn new(cfg: SystemConfig, assignment: IdAssignment, inputs: Vec<P::Value>) -> Self {
        Cluster {
            cfg,
            assignment,
            inputs,
            byz: BTreeSet::new(),
            adversary: Box::new(Silent),
            drops: Box::new(NoDrops),
            churn: BTreeMap::new(),
        }
    }

    /// Schedules a crash of `pid` at the start of `round`: its actor
    /// idles (no sends, inbox drops) and the coordinator's journal for
    /// it becomes its only surviving state.
    pub fn crash_at(mut self, round: u64, pid: Pid) -> Self {
        self.churn
            .entry(round)
            .or_default()
            .push(ClusterChurn::Crash(pid));
        self
    }

    /// Schedules a recovery of `pid` at the start of `round` — durable
    /// (journal replay into a fresh automaton, byte-identical state) or
    /// amnesiac (fresh spawn consuming the shared `t` fault budget).
    pub fn recover_at(mut self, round: u64, pid: Pid, mode: RecoveryMode) -> Self {
        self.churn
            .entry(round)
            .or_default()
            .push(ClusterChurn::Recover(pid, mode));
        self
    }

    /// Declares Byzantine processes and their strategy (runs on the
    /// coordinator thread).
    ///
    /// # Panics
    ///
    /// Panics if more than `t` processes are declared Byzantine.
    pub fn byzantine(
        mut self,
        byz: impl IntoIterator<Item = Pid>,
        adversary: impl Adversary<P::Msg> + 'static,
    ) -> Self {
        self.byz = byz.into_iter().collect();
        assert!(
            self.byz.len() <= self.cfg.t,
            "{} byzantine processes exceed t = {}",
            self.byz.len(),
            self.cfg.t
        );
        self.adversary = Box::new(adversary);
        self
    }

    /// Installs a drop policy (default: none).
    pub fn drops(mut self, drops: impl DropPolicy + 'static) -> Self {
        self.drops = Box::new(drops);
        self
    }

    /// Spawns one thread per correct process and runs lock-step rounds
    /// until every correct process decides or `max_rounds` elapse.
    ///
    /// # Panics
    ///
    /// Panics on the same contract violations as the simulator (double
    /// addressing, adversary emitting from a correct process, changed
    /// decisions), and if a worker thread panics.
    pub fn run<F>(mut self, factory: &F, max_rounds: u64) -> RunReport<P::Value>
    where
        F: ProtocolFactory<P = P>,
        P::Msg: WireEncode + WireDecode,
    {
        let cfg = self.cfg;
        cfg.validate().expect("invalid system configuration");
        assert_eq!(self.assignment.n(), cfg.n, "assignment covers n processes");
        assert_eq!(self.inputs.len(), cfg.n, "one input per process");

        let correct: Vec<Pid> = Pid::all(cfg.n).filter(|p| !self.byz.contains(p)).collect();
        let correct_inputs: BTreeMap<Pid, P::Value> = correct
            .iter()
            .map(|&p| (p, self.inputs[p.index()].clone()))
            .collect();

        // Spawn actors.
        let (from_tx, from_rx): (
            Sender<FromActor<P::Msg, P::Value>>,
            Receiver<FromActor<P::Msg, P::Value>>,
        ) = bounded(cfg.n * 2);
        let mut to_actors: BTreeMap<Pid, Sender<ToActor<P>>> = BTreeMap::new();
        let mut handles = Vec::new();
        for &pid in &correct {
            let (to_tx, to_rx) = bounded::<ToActor<P>>(2);
            to_actors.insert(pid, to_tx);
            let from_tx = from_tx.clone();
            let mut proc_ =
                factory.spawn(self.assignment.id_of(pid), self.inputs[pid.index()].clone());
            handles.push(thread::spawn(move || {
                while let Ok(msg) = to_rx.recv() {
                    match msg {
                        ToActor::Restart(p) => proc_ = p,
                        ToActor::Collect(round) => {
                            let out = proc_.send_shared(round);
                            from_tx
                                .send(FromActor::Sends(pid, out))
                                .expect("coordinator alive");
                        }
                        ToActor::Deliver(round, inbox) => {
                            proc_.receive(round, &inbox);
                            from_tx
                                .send(FromActor::Received(
                                    pid,
                                    proc_.decision(),
                                    proc_.state_bits(),
                                ))
                                .expect("coordinator alive");
                        }
                        ToActor::Stop => break,
                    }
                }
            }));
        }

        // Coordinator loop. The wire list and delivery buckets are the
        // same Arc-shared fabric the lock-step simulator routes through,
        // reused across rounds.
        let mut decisions: BTreeMap<Pid, (P::Value, Round)> = BTreeMap::new();
        let mut messages_sent = 0u64;
        let mut messages_delivered = 0u64;
        let mut messages_dropped = 0u64;
        let mut state_bits = 0u64;
        let mut peak_state_bits = 0u64;
        let mut round = Round::ZERO;
        let mut wires: Vec<(Pid, Id, Pid, Arc<P::Msg>, Tok)> = Vec::new();
        let mut deliveries: Deliveries<P::Msg> = Deliveries::new(cfg.n);
        let mut frames: FrameInterner<P::Msg> = FrameInterner::new();

        // Crash-recovery state: coordinator-held journals (one per
        // correct process, only when a crash is scheduled), the crashed
        // set, and the amnesiac rejoiners who left the accounting.
        let mut churn = std::mem::take(&mut self.churn);
        let mut journals: Option<BTreeMap<Pid, MemJournal>> =
            (!churn.is_empty()).then(|| correct.iter().map(|&p| (p, MemJournal::new())).collect());
        let mut crashed: BTreeSet<Pid> = BTreeSet::new();
        let mut amnesiac: BTreeSet<Pid> = BTreeSet::new();
        let mut correct_inputs = correct_inputs;
        let mut journal_scratch: Vec<Vec<(Id, Arc<P::Msg>)>> = Vec::new();

        while round.index() < max_rounds && decisions.len() + amnesiac.len() < correct.len() {
            // 0. Apply due crash/recover events at the round boundary.
            let due = churn.split_off(&(round.index() + 1));
            for ev in std::mem::replace(&mut churn, due).into_values().flatten() {
                match ev {
                    ClusterChurn::Crash(pid) => {
                        assert!(
                            to_actors.contains_key(&pid) && !crashed.contains(&pid),
                            "cannot crash {pid}: not a live correct process"
                        );
                        crashed.insert(pid);
                    }
                    ClusterChurn::Recover(pid, mode) => {
                        assert!(crashed.contains(&pid), "{pid} is not crashed");
                        let id = self.assignment.id_of(pid);
                        let input = self.inputs[pid.index()].clone();
                        let p = match mode {
                            RecoveryMode::Durable => {
                                let journal = journals
                                    .as_ref()
                                    .and_then(|j| j.get(&pid))
                                    .expect("journal for crashed pid");
                                let recovered = journal.recover();
                                assert!(
                                    recovered.damage.is_none(),
                                    "journal of {pid} damaged: {:?}",
                                    recovered.damage
                                );
                                let entries = journal::decode_entries::<P::Msg>(&recovered.records)
                                    .expect("journal entries decode");
                                let mut p = factory.spawn(id, input);
                                journal::replay(&mut p, entries, cfg.counting)
                                    .expect("journal replay");
                                p
                            }
                            RecoveryMode::Amnesiac => {
                                assert!(
                                    self.byz.len() + amnesiac.len() + 1 <= cfg.t,
                                    "fault budget exceeded: {} > t = {}",
                                    self.byz.len() + amnesiac.len() + 1,
                                    cfg.t
                                );
                                amnesiac.insert(pid);
                                correct_inputs.remove(&pid);
                                decisions.remove(&pid);
                                if let Some(journal) =
                                    journals.as_mut().and_then(|j| j.get_mut(&pid))
                                {
                                    journal.reset().expect("journal reset");
                                }
                                factory.spawn(id, input)
                            }
                        };
                        crashed.remove(&pid);
                        to_actors[&pid]
                            .send(ToActor::Restart(p))
                            .expect("actor alive");
                    }
                }
            }

            // 1. Collect correct sends (in parallel across actors).
            let live = correct.len() - crashed.len();
            for (pid, tx) in &to_actors {
                if !crashed.contains(pid) {
                    tx.send(ToActor::Collect(round)).expect("actor alive");
                }
            }
            let mut sends: BTreeMap<Pid, Vec<(Recipients, Arc<P::Msg>)>> = BTreeMap::new();
            for _ in 0..live {
                match from_rx.recv().expect("actor alive") {
                    FromActor::Sends(pid, out) => {
                        sends.insert(pid, out);
                    }
                    FromActor::Received(..) => unreachable!("no delivery outstanding"),
                }
            }

            // 2. Wires: correct then adversary (same order as the
            //    simulator, for determinism parity). Each payload arrives
            //    as one shared handle per emission (the `send_shared`
            //    seam); recipients share it.
            wires.clear();
            deliveries.clear();
            let mut addressed: BTreeSet<Pid> = BTreeSet::new();
            for (pid, out) in sends {
                let src_id = self.assignment.id_of(pid);
                addressed.clear();
                for (recipients, msg) in out {
                    let tok = frames.tok_for(&msg);
                    for to in recipients.expand(&self.assignment) {
                        assert!(
                            addressed.insert(to),
                            "correct process {pid} addressed {to} twice in {round}"
                        );
                        wires.push((pid, src_id, to, Arc::clone(&msg), tok));
                    }
                }
            }
            let ctx = AdvCtx {
                round,
                cfg: &cfg,
                assignment: &self.assignment,
                byz: &self.byz,
            };
            let mut byz_sent: BTreeMap<(Pid, Pid), u32> = BTreeMap::new();
            for emission in self.adversary.send(&ctx) {
                assert!(
                    self.byz.contains(&emission.from),
                    "adversary emitted from non-byzantine {}",
                    emission.from
                );
                let src_id = self.assignment.id_of(emission.from);
                let tok = frames.tok_for(&emission.msg);
                for to in emission.to.expand(&self.assignment) {
                    if cfg.byz_power == ByzPower::Restricted {
                        let count = byz_sent.entry((emission.from, to)).or_insert(0);
                        if *count >= 1 {
                            continue;
                        }
                        *count += 1;
                    }
                    wires.push((emission.from, src_id, to, Arc::clone(&emission.msg), tok));
                }
            }

            // 3. Drops and routing into the dense buckets. The stateful
            // drop policy is queried before the crash filter so its RNG
            // stream stays in lockstep with an uninterrupted run.
            if journals.is_some() {
                journal_scratch.resize_with(cfg.n, Vec::new);
                for buf in &mut journal_scratch {
                    buf.clear();
                }
            }
            for (from, src_id, to, msg, tok) in wires.drain(..) {
                let is_self = from == to;
                if !is_self {
                    messages_sent += 1;
                    let policy_drop = self.drops.drops(round, from, to);
                    if policy_drop || crashed.contains(&to) {
                        messages_dropped += 1;
                        continue;
                    }
                    messages_delivered += 1;
                } else if crashed.contains(&to) {
                    continue;
                }
                if journals.is_some() && to_actors.contains_key(&to) {
                    journal_scratch[to.index()].push((src_id, Arc::clone(&msg)));
                }
                deliveries.push(to, SharedEnvelope::framed(src_id, msg, tok));
            }
            if let Some(j) = &mut journals {
                for (&pid, journal) in j.iter_mut() {
                    if crashed.contains(&pid) {
                        continue; // not executing this round
                    }
                    let entry =
                        journal::encode_deliveries_entry(round, &journal_scratch[pid.index()]);
                    journal
                        .append(&entry)
                        .and_then(|()| journal.sync())
                        .expect("journal append failed");
                }
            }

            // 4. Deliver to actors; collect decisions.
            for (&pid, tx) in &to_actors {
                if crashed.contains(&pid) {
                    continue;
                }
                let inbox = deliveries.take_inbox(pid, cfg.counting);
                tx.send(ToActor::Deliver(round, inbox))
                    .expect("actor alive");
            }
            let mut round_bits = 0u64;
            for _ in 0..live {
                match from_rx.recv().expect("actor alive") {
                    FromActor::Received(pid, decision, bits) => {
                        round_bits += bits;
                        if amnesiac.contains(&pid) {
                            continue; // left the accounting
                        }
                        if let Some(v) = decision {
                            match decisions.get(&pid) {
                                None => {
                                    decisions.insert(pid, (v, round));
                                }
                                Some((prev, _)) => {
                                    assert!(
                                        *prev == v,
                                        "decision of {pid} changed from {prev:?} to {v:?}"
                                    );
                                }
                            }
                        }
                    }
                    FromActor::Sends(..) => unreachable!("no collect outstanding"),
                }
            }
            state_bits = round_bits;
            peak_state_bits = peak_state_bits.max(state_bits);

            // 5. Byzantine inboxes to the adversary.
            let byz_inboxes: BTreeMap<Pid, Inbox<P::Msg>> = self
                .byz
                .iter()
                .map(|&pid| (pid, deliveries.take_inbox(pid, cfg.counting)))
                .collect();
            self.adversary.receive(round, &byz_inboxes);

            round = round.next();
        }

        // Shut down actors.
        for tx in to_actors.values() {
            let _ = tx.send(ToActor::Stop);
        }
        drop(to_actors);
        for handle in handles {
            handle.join().expect("worker thread panicked");
        }

        let outcome = Outcome {
            inputs: correct_inputs,
            decisions: decisions.clone(),
            horizon: round,
        };
        let verdict = spec::check(&outcome);
        RunReport {
            all_decided_round: (decisions.len() + amnesiac.len() == correct.len())
                .then(|| decisions.values().map(|&(_, r)| r).max())
                .flatten(),
            outcome,
            verdict,
            rounds: round.index(),
            messages_sent,
            messages_delivered,
            messages_dropped,
            state_bits,
            peak_state_bits,
        }
    }
}

enum ToShardActor<P: Protocol> {
    /// Replace the actor's automaton (a new shot starts).
    Restart(P),
    Collect(Round),
    Deliver(Round, Inbox<P::Msg>),
    Stop,
}

enum FromShardActor<M, V> {
    Sends(usize, Pid, Vec<(Recipients, Arc<M>)>),
    /// Post-delivery report: decision (if any) plus the automaton's
    /// current `state_bits` sample.
    Received(usize, Pid, Option<V>, u64),
}

/// The sharded threaded coordinator: drives the same multi-shot shard
/// schedule as [`homonym_sim::shards::ShardedSimulation`], with every
/// process of every shard on its own OS thread.
///
/// Each global tick the coordinator collects one round of sends from all
/// live shards' actors, routes everything through one shared
/// [`Deliveries`] plane (shards at dense slot offsets, payload `Arc`s
/// wrapped once per emission), and delivers back. When a shard's instance
/// decides, the coordinator spawns fresh automata from the shard's
/// factory and *restarts* the existing actor threads in place — no thread
/// churn between shots. Per-shard reports use the same
/// [`ShardReport`]/[`ShotReport`] types as the simulator, so parity is a
/// field-for-field comparison.
///
/// Like the sharded simulator, the cluster is generic over an
/// [`Executor`]: the coordinator-side quadratic work of each tick —
/// expanding the collected sends into wires, delivering the planned
/// wires into the shared plane, draining per-slot inboxes — is fanned
/// out as flattened **(shard, chunk)** units across worker threads (a
/// big shard splits internally into contiguous pid chunks, each
/// writing a disjoint [`DeliverySlots`] sub-range), while the actors
/// keep parallelizing the protocol work itself. Between the scatters
/// the coordinator runs each shard's inherently sequential middle
/// (adversary, frame tokens, stateful drop planning) in shard order —
/// the simulator's own `ShardCore::plan_tick` — so decisions,
/// counters, and reports are identical at any worker count.
///
/// # Example
///
/// ```
/// use homonym_classic::{Eig, UniqueRunner};
/// use homonym_core::{Domain, FnFactory, IdAssignment, SystemConfig};
/// use homonym_runtime::ShardedCluster;
/// use homonym_sim::{ShardSpec, ShotSpec};
///
/// let cfg = SystemConfig::builder(4, 4, 1).build().unwrap();
/// let domain = Domain::binary();
/// let factory = FnFactory::new(move |id, input| {
///     UniqueRunner::new(Eig::new(4, 1, domain.clone()), id, input)
/// });
/// let mut cluster = ShardedCluster::new();
/// cluster.add_shard(
///     ShardSpec::new(cfg, IdAssignment::unique(4))
///         .shot(ShotSpec::new(vec![true; 4]))
///         .shot(ShotSpec::new(vec![false; 4])),
///     factory,
/// );
/// let reports = cluster.run(32);
/// assert_eq!(reports[0].decided_shots(), 2);
/// ```
pub struct ShardedCluster<P: Protocol, E: Executor = Sequential> {
    shards: Vec<(ShardSpec<P>, Box<dyn ProtocolFactory<P = P> + Send>)>,
    measure_bits: bool,
    churn: ChurnPlan<P>,
    exec: E,
}

impl<P: Protocol> Default for ShardedCluster<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Protocol> ShardedCluster<P> {
    /// An empty sharded cluster whose coordinator work runs sequentially.
    pub fn new() -> Self {
        Self::with_executor(Sequential)
    }
}

impl<P: Protocol, E: Executor> ShardedCluster<P, E> {
    /// An empty sharded cluster whose per-tick coordinator work runs on
    /// the given executor — e.g.
    /// `ShardedCluster::with_executor(Pool::new(4))`.
    pub fn with_executor(exec: E) -> Self {
        ShardedCluster {
            shards: Vec::new(),
            measure_bits: false,
            churn: ChurnPlan::new(),
            exec,
        }
    }

    /// Measures exact wire bits per shot (off by default) — see
    /// [`wire_bits`](homonym_sim::shards::wire_bits).
    pub fn measure_bits(mut self, on: bool) -> Self {
        self.measure_bits = on;
        self
    }

    /// Registers a shard-churn plan, applied at the start of each global
    /// tick of [`run`](ShardedCluster::run): aborted shots are cut (their
    /// reports finalized as-is) and the freed actor threads restart on
    /// the shard's next queued shot; enqueued shots revive idle shards.
    ///
    /// This is the threaded counterpart of
    /// [`ShardedSimulation::run_churned`](homonym_sim::ShardedSimulation::run_churned)
    /// — both consume the same plan shape, so a scenario schedule drives
    /// either engine.
    pub fn churn(mut self, plan: ChurnPlan<P>) -> Self {
        self.churn = plan;
        self
    }

    /// Enqueues a shard and the factory its shots respawn from.
    pub fn add_shard(
        &mut self,
        spec: ShardSpec<P>,
        factory: impl ProtocolFactory<P = P> + Send + 'static,
    ) -> ShardId {
        let id = ShardId::new(self.shards.len());
        self.shards.push((spec, Box::new(factory)));
        id
    }
}

/// One shard of the threaded coordinator: the shared bookkeeping, the
/// senders to its actor threads, and the shard-private per-tick scratch —
/// everything a tick's worker tasks need to process this shard's chunks
/// without touching its neighbours.
struct ClusterShard<P: Protocol> {
    core: ShardCore<P>,
    txs: BTreeMap<Pid, Sender<ToShardActor<P>>>,
    /// This tick's collected sends, keyed by correct pid (phase 1a).
    sends: BTreeMap<Pid, Vec<(Recipients, Arc<P::Msg>)>>,
    /// This tick's wires (reused across ticks, local coords).
    wires: Vec<ShardWire<P::Msg>>,
    /// Per-chunk send scratch (phase 1b), reused across ticks.
    send_scratch: Vec<SendScratch<P::Msg>>,
    /// This tick's per-wire delivery plan, reused across ticks.
    route_plan: Vec<bool>,
    /// Restricted-clamp pair bitset, reused across ticks.
    byz_sent: IdBits,
}

/// Borrow bundle for one shard's send phase (the threaded counterpart of
/// the sharded simulator's — here the emissions were already collected
/// from the actors, so the chunks only expand them into wires).
struct SendCtx<'a, P: Protocol> {
    shard: ShardId,
    r: Round,
    assignment: &'a IdAssignment,
    sends: Vec<(Pid, Vec<(Recipients, Arc<P::Msg>)>)>,
    scratch: &'a mut [SendScratch<P::Msg>],
    ranges: Vec<std::ops::Range<usize>>,
}

/// Borrow bundle for one shard's deliver phase: the planned wire list,
/// the shard's sub-split plane views, and per-chunk clones of the actor
/// senders (cloned so each chunk task owns its handles).
struct RecvCtx<'a, P: Protocol> {
    r: Round,
    offset: usize,
    counting: Counting,
    wires: &'a [ShardWire<P::Msg>],
    plan: &'a [bool],
    ranges: Vec<std::ops::Range<usize>>,
    views: Vec<DeliverySlots<'a, P::Msg>>,
    chunk_txs: Vec<Vec<(Pid, Sender<ToShardActor<P>>)>>,
}

impl<P, E> ShardedCluster<P, E>
where
    P: Protocol + Send + 'static,
    P::Value: Send,
    P::Msg: WireEncode + WireDecode,
    E: Executor,
{
    /// Spawns one thread per process of every shard and runs global
    /// lock-step ticks until every shard drains its shot queue or
    /// `max_ticks` elapse, then reports per shard.
    ///
    /// # Panics
    ///
    /// Panics on the same contract violations as the sharded simulator
    /// (all of which are asserted on the coordinator thread or one of
    /// the executor's workers). A panic *inside a protocol automaton*
    /// kills its actor thread and leaves the coordinator waiting for a
    /// reply that never comes — the run does not complete (the same
    /// limitation as [`Cluster`]); protocol code is trusted not to
    /// panic.
    pub fn run(self, max_ticks: u64) -> Vec<ShardReport<P::Value>> {
        let measure_bits = self.measure_bits;
        let exec = self.exec;
        let workers = exec.workers();
        let measure = move |m: &P::Msg| if measure_bits { wire_bits(m) } else { 0 };
        let mut churn = self.churn;

        // Validate and lay the shards out on the shared plane. The shot
        // bookkeeping is the simulator's own `ShardCore`, so validation,
        // restarts and reports cannot drift between the engines.
        let mut shards: Vec<ClusterShard<P>> = Vec::new();
        let mut offset = 0usize;
        for (spec, factory) in self.shards {
            let n = spec.cfg.n;
            shards.push(ClusterShard {
                core: ShardCore::new(spec, factory, offset),
                txs: BTreeMap::new(),
                sends: BTreeMap::new(),
                wires: Vec::new(),
                send_scratch: Vec::new(),
                route_plan: Vec::new(),
                byz_sent: IdBits::new(),
            });
            offset += n;
        }
        let total_slots = offset;

        // One actor thread per (shard, process); automata arrive via
        // Restart messages, so Byzantine-only slots simply idle.
        let (from_tx, from_rx): (
            Sender<FromShardActor<P::Msg, P::Value>>,
            Receiver<FromShardActor<P::Msg, P::Value>>,
        ) = bounded(total_slots.max(1) * 2);
        let mut handles = Vec::new();
        for (s, shard) in shards.iter_mut().enumerate() {
            for pid in Pid::all(shard.core.cfg.n) {
                let (to_tx, to_rx) = bounded::<ToShardActor<P>>(4);
                shard.txs.insert(pid, to_tx);
                let from_tx = from_tx.clone();
                handles.push(thread::spawn(move || {
                    let mut proc_: Option<P> = None;
                    while let Ok(msg) = to_rx.recv() {
                        match msg {
                            ToShardActor::Restart(p) => proc_ = Some(p),
                            ToShardActor::Collect(round) => {
                                let out =
                                    proc_.as_mut().expect("actor restarted").send_shared(round);
                                from_tx
                                    .send(FromShardActor::Sends(s, pid, out))
                                    .expect("coordinator alive");
                            }
                            ToShardActor::Deliver(round, inbox) => {
                                let p = proc_.as_mut().expect("actor restarted");
                                p.receive(round, &inbox);
                                from_tx
                                    .send(FromShardActor::Received(
                                        s,
                                        pid,
                                        p.decision(),
                                        p.state_bits(),
                                    ))
                                    .expect("coordinator alive");
                            }
                            ToShardActor::Stop => break,
                        }
                    }
                }));
            }
        }

        // Ships freshly spawned automata to their actors (the threaded
        // counterpart of the simulator placing them in its procs map).
        let restart_actors =
            |spawned: Vec<(Pid, P)>, txs: &BTreeMap<Pid, Sender<ToShardActor<P>>>| {
                for (pid, p) in spawned {
                    txs[&pid]
                        .send(ToShardActor::Restart(p))
                        .expect("actor alive");
                }
            };

        for shard in shards.iter_mut() {
            if let Some(spawned) = shard.core.start_next_shot(0) {
                restart_actors(spawned, &shard.txs);
            }
        }

        // The coordinator loop: the same shared-fabric tick as the
        // sharded simulator. Phase 1a (collecting sends) and phase 3b
        // (recording decisions) stay on the coordinator because they
        // drain the one reply channel; everything between — the
        // quadratic wire-expansion, delivery, and inbox work — fans
        // out as flattened (shard, chunk) units across the executor,
        // each chunk writing a disjoint slot sub-range of the one
        // plane, with the sequential middle (adversary, tokens, drop
        // planning) on the coordinator in shard order.
        let mut tick = 0u64;
        let mut plane: Deliveries<P::Msg> = Deliveries::new(total_slots);
        let widths: Vec<usize> = shards.iter().map(|s| s.core.cfg.n).collect();
        while tick < max_ticks {
            // Phase 0 — apply due churn: cut aborted shots (reports
            // finalized as-is) and start enqueued / next shots, shipping
            // fresh automata to the freed actors.
            for op in churn.take_due(tick) {
                match op {
                    ChurnOp::Abort(sid) => {
                        let shard = &mut shards[sid.index()];
                        if let Some(spawned) = shard.core.cut_shot(sid, tick, measure_bits) {
                            restart_actors(spawned, &shard.txs);
                        }
                    }
                    ChurnOp::Enqueue(sid, shot) => {
                        let shard = &mut shards[sid.index()];
                        shard.core.shots.push_back(shot);
                        if !shard.core.active {
                            if let Some(spawned) = shard.core.start_next_shot(tick) {
                                restart_actors(spawned, &shard.txs);
                            }
                        }
                    }
                    // Crash/recover: the core validates and (for durable
                    // recoveries) replays the journal into a fresh
                    // automaton; a crashed pid's actor simply idles —
                    // never collected from or delivered to — until a
                    // Restart ships the recovered automaton back.
                    ChurnOp::Crash(sid, pid) => {
                        shards[sid.index()]
                            .core
                            .crash(pid)
                            .expect("churn plan crash failed");
                    }
                    ChurnOp::Recover(sid, pid, mode) => {
                        let shard = &mut shards[sid.index()];
                        let p = shard
                            .core
                            .recover(pid, mode)
                            .expect("churn plan recover failed");
                        shard.txs[&pid]
                            .send(ToShardActor::Restart(p))
                            .expect("actor alive");
                    }
                }
            }
            if !shards.iter().any(|s| s.core.active) && !churn.has_pending_after(tick) {
                break;
            }

            // Phase 1a — collect sends from every live shard's actors
            // (in parallel across all shards).
            let mut expected = 0usize;
            for shard in shards.iter() {
                if !shard.core.active {
                    continue;
                }
                for pid in shard.core.live() {
                    shard.txs[&pid]
                        .send(ToShardActor::Collect(shard.core.round))
                        .expect("actor alive");
                }
                expected += shard.core.live_len();
            }
            for _ in 0..expected {
                match from_rx.recv().expect("actor alive") {
                    FromShardActor::Sends(s, pid, out) => {
                        shards[s].sends.insert(pid, out);
                    }
                    FromShardActor::Received(..) => unreachable!("no delivery outstanding"),
                }
            }

            // Phase 1b — expand the collected sends into wires, one
            // flattened scatter of (shard, chunk) units (correct pids in
            // ascending order per chunk, chunks concatenating in pid
            // order — the simulator's exact wire order).
            {
                let mut ctxs: Vec<SendCtx<'_, P>> = Vec::new();
                for (s, shard) in shards.iter_mut().enumerate() {
                    if !shard.core.active {
                        continue;
                    }
                    let ClusterShard {
                        core,
                        sends,
                        send_scratch,
                        ..
                    } = shard;
                    let ranges = exec::chunk_ranges(core.live_len(), workers);
                    if send_scratch.len() < ranges.len() {
                        send_scratch.resize_with(ranges.len(), Default::default);
                    }
                    let outs: Vec<(Pid, Vec<(Recipients, Arc<P::Msg>)>)> = core
                        .live()
                        .map(|pid| (pid, sends.remove(&pid).expect("send collected")))
                        .collect();
                    ctxs.push(SendCtx {
                        shard: ShardId::new(s),
                        r: core.round,
                        assignment: &core.assignment,
                        sends: outs,
                        scratch: send_scratch.as_mut_slice(),
                        ranges,
                    });
                }
                let mut tasks = Vec::new();
                for ctx in ctxs.iter_mut() {
                    let sid = ctx.shard;
                    let r = ctx.r;
                    let assignment = ctx.assignment;
                    let mut sends = ctx.sends.as_mut_slice();
                    let mut scratch = std::mem::take(&mut ctx.scratch);
                    for range in &ctx.ranges {
                        let (chunk, rest) = std::mem::take(&mut sends).split_at_mut(range.len());
                        sends = rest;
                        let (sc, rest) = scratch.split_at_mut(1);
                        scratch = rest;
                        let sc = &mut sc[0];
                        tasks.push(move || {
                            par::expand_sends(chunk, r, assignment, measure, Some(sid), sc)
                        });
                    }
                }
                exec.scatter(tasks);
            }

            // Coordinator pass, in shard order: merge chunk buffers
            // (chunk order = pid order), adversary emissions, frame
            // tokens, route planning, counters — the simulator's own
            // [`ShardCore::plan_tick`], so the engines cannot drift.
            for (s, shard) in shards.iter_mut().enumerate() {
                if !shard.core.active {
                    continue;
                }
                let ClusterShard {
                    core,
                    wires,
                    send_scratch,
                    byz_sent,
                    route_plan,
                    ..
                } = shard;
                wires.clear();
                let chunks = exec::chunk_ranges(core.live_len(), workers).len();
                for scratch in send_scratch.iter_mut().take(chunks) {
                    scratch.drain_into(wires);
                }
                core.plan_tick(
                    ShardId::new(s),
                    byz_sent,
                    wires,
                    route_plan,
                    measure_bits,
                    |_, _| {},
                );
            }

            // Phases 2–3a — deliver the planned wires into the plane and
            // ship each correct process's inbox to its actor, one
            // flattened scatter of (shard, chunk) units; each chunk owns
            // a disjoint sub-range of its shard's plane slots and clones
            // of its pids' senders.
            {
                let views = plane.split_slots(widths.iter().copied());
                let mut ctxs: Vec<RecvCtx<'_, P>> = Vec::new();
                for (shard, view) in shards.iter_mut().zip(views) {
                    if !shard.core.active {
                        continue;
                    }
                    let ClusterShard {
                        core,
                        txs,
                        wires,
                        route_plan,
                        ..
                    } = shard;
                    let ranges = exec::chunk_ranges(core.cfg.n, workers);
                    let sub_views = view.split_widths(ranges.iter().map(|rg| rg.len()));
                    let chunk_txs = ranges
                        .iter()
                        .map(|range| {
                            core.live()
                                .filter(|pid| range.contains(&pid.index()))
                                .map(|pid| (pid, txs[&pid].clone()))
                                .collect()
                        })
                        .collect();
                    ctxs.push(RecvCtx {
                        r: core.round,
                        offset: core.offset,
                        counting: core.cfg.counting,
                        wires: wires.as_slice(),
                        plan: route_plan.as_slice(),
                        ranges,
                        views: sub_views,
                        chunk_txs,
                    });
                }
                let mut tasks = Vec::new();
                for ctx in ctxs.iter_mut() {
                    let r = ctx.r;
                    let offset = ctx.offset;
                    let counting = ctx.counting;
                    let wires = ctx.wires;
                    let plan = ctx.plan;
                    for ((range, mut view), chunk_txs) in ctx
                        .ranges
                        .iter()
                        .cloned()
                        .zip(ctx.views.drain(..))
                        .zip(ctx.chunk_txs.drain(..))
                    {
                        tasks.push(move || {
                            par::deliver_chunk(wires, plan, offset, range, &mut view);
                            for (pid, tx) in chunk_txs {
                                let inbox =
                                    view.take_inbox(Pid::new(offset + pid.index()), counting);
                                tx.send(ToShardActor::Deliver(r, inbox))
                                    .expect("actor alive");
                            }
                        });
                    }
                }
                exec.scatter(tasks);
            }

            // Phase 3a (Byzantine half) — drain the Byzantine slots to
            // the adversaries, in shard order on the coordinator.
            {
                let mut slots = plane.as_slots();
                for shard in shards.iter_mut() {
                    if shard.core.active {
                        shard.core.deliver_byz(&mut slots);
                    }
                }
            }

            // Phase 3b — decisions, recorded at the still-current round;
            // only then do the live shards' rounds advance.
            let mut bits_by_shard = vec![0u64; shards.len()];
            for _ in 0..expected {
                match from_rx.recv().expect("actor alive") {
                    FromShardActor::Received(s, pid, decision, bits) => {
                        if let Some(v) = decision {
                            shards[s].core.record_decision(pid, v);
                        }
                        bits_by_shard[s] += bits;
                    }
                    FromShardActor::Sends(..) => unreachable!("no collect outstanding"),
                }
            }
            for (shard, &bits) in shards.iter_mut().zip(&bits_by_shard) {
                if shard.core.active {
                    shard.core.record_state_bits(bits);
                    shard.core.round = shard.core.round.next();
                }
            }

            // Phase 4 — finalize decided / horizon-hit shots and restart
            // the freed actors on the next queued shot.
            for (s, shard) in shards.iter_mut().enumerate() {
                if let Some(spawned) =
                    shard
                        .core
                        .roll_over_if_done(ShardId::new(s), tick, measure_bits)
                {
                    restart_actors(spawned, &shard.txs);
                }
            }

            tick += 1;
        }

        // Shut down actors.
        for shard in &shards {
            for tx in shard.txs.values() {
                let _ = tx.send(ToShardActor::Stop);
            }
        }
        for shard in shards.iter_mut() {
            shard.txs.clear();
        }
        for handle in handles {
            handle.join().expect("worker thread panicked");
        }

        shards
            .iter()
            .enumerate()
            .map(|(s, shard)| shard.core.report(ShardId::new(s), tick, measure_bits))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_classic::{Eig, UniqueRunner};
    use homonym_core::{Domain, FnFactory};

    fn eig_factory(ell: usize, t: usize) -> impl ProtocolFactory<P = UniqueRunner<Eig<bool>>> {
        let domain = Domain::binary();
        FnFactory::new(move |id, input| {
            UniqueRunner::new(Eig::new(ell, t, domain.clone()), id, input)
        })
    }

    #[test]
    fn threads_decide_like_the_simulator() {
        let cfg = SystemConfig::builder(4, 4, 1).build().unwrap();
        let factory = eig_factory(4, 1);
        let threaded = Cluster::new(cfg, IdAssignment::unique(4), vec![true, false, true, false])
            .run(&factory, 10);
        let mut sim = homonym_sim::Simulation::builder(
            cfg,
            IdAssignment::unique(4),
            vec![true, false, true, false],
        )
        .build_with(&factory);
        let simulated = sim.run(10);
        assert!(threaded.verdict.all_hold());
        assert_eq!(threaded.outcome.decisions, simulated.outcome.decisions);
        assert_eq!(threaded.messages_sent, simulated.messages_sent);
    }

    #[test]
    fn byzantine_strategy_runs_on_coordinator() {
        let cfg = SystemConfig::builder(4, 4, 1).build().unwrap();
        let factory = eig_factory(4, 1);
        let report = Cluster::new(cfg, IdAssignment::unique(4), vec![true; 4])
            .byzantine([Pid::new(3)], Silent)
            .run(&factory, 10);
        assert!(report.verdict.all_hold());
        assert_eq!(report.outcome.decisions.len(), 3);
    }

    #[test]
    fn sharded_cluster_pipelines_shots_like_the_simulator() {
        use homonym_sim::{ShardSpec, ShardedSimulation, ShotSpec};
        let cfg = SystemConfig::builder(4, 4, 1).build().unwrap();
        let factory = eig_factory(4, 1);
        let build_spec = || {
            ShardSpec::new(cfg, IdAssignment::unique(4))
                .shot(ShotSpec::new(vec![true, false, true, false]))
                .shot(
                    ShotSpec::new(vec![false, false, true, false]).byzantine([Pid::new(3)], Silent),
                )
        };
        let mut cluster = ShardedCluster::new();
        cluster.add_shard(build_spec(), eig_factory(4, 1));
        let threaded = cluster.run(32);

        let mut sim = ShardedSimulation::new();
        sim.add_shard(build_spec(), factory);
        let simulated = sim.run(32);

        assert_eq!(threaded.len(), 1);
        assert_eq!(threaded[0].shots.len(), 2);
        assert_eq!(threaded[0].decided_shots(), 2);
        for (a, b) in threaded[0].shots.iter().zip(&simulated[0].shots) {
            assert_eq!(a.report.outcome.decisions, b.report.outcome.decisions);
            assert_eq!(a.report.rounds, b.report.rounds);
            assert_eq!(a.report.messages_sent, b.report.messages_sent);
            assert_eq!(a.started_tick, b.started_tick);
            assert_eq!(a.finished_tick, b.finished_tick);
        }
    }

    #[test]
    fn sharded_cluster_runs_many_shards_at_once() {
        use homonym_sim::{ShardSpec, ShotSpec};
        let cfg = SystemConfig::builder(4, 4, 1).build().unwrap();
        let mut cluster = ShardedCluster::new();
        for k in 0..4usize {
            let inputs: Vec<bool> = (0..4).map(|i| (i + k) % 2 == 0).collect();
            cluster.add_shard(
                ShardSpec::new(cfg, IdAssignment::unique(4)).shot(ShotSpec::new(inputs)),
                eig_factory(4, 1),
            );
        }
        let reports = cluster.run(16);
        assert_eq!(reports.len(), 4);
        for report in &reports {
            assert_eq!(report.decided_shots(), 1);
            assert!(report.shots[0].report.verdict.all_hold());
        }
    }

    #[test]
    fn pooled_sharded_cluster_matches_sequential_cluster() {
        use homonym_core::exec::Pool;
        use homonym_sim::{ShardSpec, ShotSpec};
        let cfg = SystemConfig::builder(4, 4, 1).build().unwrap();
        let build = || {
            let mut shards = Vec::new();
            for k in 0..5usize {
                let inputs: Vec<bool> = (0..4).map(|i| (i + k) % 2 == 0).collect();
                let mut spec =
                    ShardSpec::new(cfg, IdAssignment::unique(4)).shot(ShotSpec::new(inputs));
                if k % 2 == 0 {
                    spec = spec.shot(
                        ShotSpec::new(vec![false, true, false, true])
                            .byzantine([Pid::new(3)], Silent),
                    );
                }
                shards.push(spec);
            }
            shards
        };

        let mut sequential = ShardedCluster::new();
        for spec in build() {
            sequential.add_shard(spec, eig_factory(4, 1));
        }
        let mut pooled = ShardedCluster::with_executor(Pool::new(3));
        for spec in build() {
            pooled.add_shard(spec, eig_factory(4, 1));
        }

        let a = sequential.run(32);
        let b = pooled.run(32);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.shots.len(), y.shots.len());
            for (p, q) in x.shots.iter().zip(&y.shots) {
                assert_eq!(p.report.outcome.decisions, q.report.outcome.decisions);
                assert_eq!(p.report.rounds, q.report.rounds);
                assert_eq!(p.report.messages_sent, q.report.messages_sent);
                assert_eq!(p.report.messages_delivered, q.report.messages_delivered);
                assert_eq!(p.started_tick, q.started_tick);
                assert_eq!(p.finished_tick, q.finished_tick);
            }
        }
    }

    #[test]
    fn horizon_stops_before_decisions() {
        // EIG needs t + 1 = 2 rounds; a horizon of 1 must stop the cluster
        // cleanly with termination (within the horizon) unmet.
        let cfg = SystemConfig::builder(4, 4, 1).build().unwrap();
        let factory = eig_factory(4, 1);
        let report = Cluster::new(cfg, IdAssignment::unique(4), vec![true; 4]).run(&factory, 1);
        assert_eq!(report.rounds, 1);
        assert!(report.outcome.decisions.is_empty());
        assert!(!report.verdict.termination.holds());
    }
}
