//! The deterministic round-automaton interface implemented by every
//! algorithm in this workspace, plus round arithmetic.

use std::fmt;
use std::sync::Arc;

use crate::codec::DecodeError;
use crate::id::Id;
use crate::message::{Inbox, Message, Recipients};
use crate::value::Value;

/// A round number, starting at 0.
///
/// The paper's algorithms are phrased over *rounds* (send, then receive),
/// *superrounds* (two consecutive rounds, used by the authenticated
/// broadcasts), and *phases* (a fixed number of superrounds, used by the
/// agreement protocols). `Round` provides the conversions.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Round(u64);

impl Round {
    /// The first round.
    pub const ZERO: Round = Round(0);

    /// Creates a round from its index.
    pub fn new(index: u64) -> Self {
        Round(index)
    }

    /// The index of this round.
    pub fn index(self) -> u64 {
        self.0
    }

    /// The superround containing this round (superround `r` consists of
    /// rounds `2r` and `2r + 1`).
    pub fn superround(self) -> Superround {
        Superround(self.0 / 2)
    }

    /// Whether this is the first round of its superround.
    pub fn is_first_of_superround(self) -> bool {
        self.0 % 2 == 0
    }

    /// The next round.
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Round({})", self.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A superround number (two consecutive rounds), starting at 0.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Superround(u64);

impl Superround {
    /// Creates a superround from its index.
    pub fn new(index: u64) -> Self {
        Superround(index)
    }

    /// The index of this superround.
    pub fn index(self) -> u64 {
        self.0
    }

    /// The first of the two rounds of this superround.
    pub fn first_round(self) -> Round {
        Round(self.0 * 2)
    }

    /// The second of the two rounds of this superround.
    pub fn second_round(self) -> Round {
        Round(self.0 * 2 + 1)
    }

    /// The phase containing this superround, with `per_phase` superrounds
    /// per phase (4 for the Figure 5 and Figure 7 protocols).
    pub fn phase(self, per_phase: u64) -> u64 {
        self.0 / per_phase
    }
}

impl fmt::Debug for Superround {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Superround({})", self.0)
    }
}

impl fmt::Display for Superround {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sr{}", self.0)
    }
}

/// A deterministic round automaton: the interface every protocol implements.
///
/// The contract per round `r` (matching the paper's "send, then receive"
/// round structure):
///
/// 1. the environment calls [`send`](Protocol::send) and collects the
///    outgoing messages (each addressed to all processes or to all holders
///    of one identifier — never to an individual process);
/// 2. the environment delivers an [`Inbox`] via
///    [`receive`](Protocol::receive);
/// 3. the environment reads [`decision`](Protocol::decision).
///
/// A correct process may send at most one message to each recipient per
/// round, so the messages returned by `send` must have non-overlapping
/// recipient sets (at most one `Recipients::All`, or group messages to
/// distinct identifiers). The simulator enforces this.
///
/// Implementations must be deterministic: identical states and inboxes must
/// produce identical behaviour. All state iteration should use ordered
/// collections (`BTreeMap`/`BTreeSet`).
pub trait Protocol {
    /// The wire message type.
    type Msg: Message;
    /// The agreement value type.
    type Value: Value;

    /// The identifier this process was assigned. Constant over the run.
    fn id(&self) -> Id;

    /// Produces this round's outgoing messages.
    fn send(&mut self, round: Round) -> Vec<(Recipients, Self::Msg)>;

    /// Produces this round's outgoing messages as shared handles — the
    /// entry point every execution backend (simulator, threaded runtime,
    /// delay driver, sharded engines) actually calls.
    ///
    /// The default wraps [`send`](Protocol::send)'s messages in fresh
    /// [`Arc`]s, which is exactly the single wrap per emission the
    /// delivery fabric performed itself before this seam existed.
    /// Protocols whose wire message is expensive to rebuild (the Figure 5
    /// bundle, whose echo set is retransmitted every round) override this
    /// to hand back a cached `Arc` when nothing changed since the last
    /// round — the fabric then fans the *same* allocation out again, and
    /// pointer-aware receivers can skip re-scanning it.
    ///
    /// Overrides must stay consistent with `send`: for any given state
    /// and round the two must describe the same wire messages, and
    /// exactly one of them is called per round.
    fn send_shared(&mut self, round: Round) -> Vec<(Recipients, Arc<Self::Msg>)> {
        self.send(round)
            .into_iter()
            .map(|(recipients, msg)| (recipients, Arc::new(msg)))
            .collect()
    }

    /// Consumes this round's received messages.
    fn receive(&mut self, round: Round, inbox: &Inbox<Self::Msg>);

    /// The decision, if this process has decided. Must never change once
    /// `Some` (decisions are irrevocable); processes keep participating
    /// after deciding.
    fn decision(&self) -> Option<Self::Value>;

    /// A structural estimate of this process's retained protocol state,
    /// in bits: every table entry counted at a fixed per-entry footprint.
    ///
    /// The absolute scale is a proxy (handles and keys are costed, not
    /// measured); what matters is the *trend* over a run — the engines
    /// sample the per-process sum after every delivery and report the
    /// final and peak values in their run reports, which is how the
    /// bounded-state protocols turn their O(1)-memory claim into a tested
    /// number. The default of 0 means "not instrumented".
    fn state_bits(&self) -> u64 {
        0
    }

    /// A versioned, self-contained encoding of this process's full state,
    /// or `None` if the protocol does not support snapshots.
    ///
    /// Implementations encode through the exact wire codec — a
    /// [`crate::codec::encode_frame`] of the protocol state — so the
    /// snapshot carries the codec's version byte and its size in bits is
    /// codec-exact (`8 × len`, see
    /// [`snapshot_bits`](Protocol::snapshot_bits)). Protocols without a
    /// snapshot are still recoverable: the journal replays their whole
    /// history from round 0 (see [`crate::journal::replay`]).
    fn snapshot(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores this process to the state a [`snapshot`](Protocol::snapshot)
    /// captured. Must accept exactly the bytes `snapshot` produced;
    /// anything else fails with a typed [`DecodeError`] — restoring never
    /// guesses. The default (for protocols without snapshots) rejects
    /// every input.
    fn restore(&mut self, snapshot: &[u8]) -> Result<(), DecodeError> {
        let _ = snapshot;
        Err(DecodeError::BadValue("protocol does not support snapshots"))
    }

    /// The codec-exact size of this process's snapshot in bits (0 when
    /// snapshots are unsupported) — the snapshot-size metric the recovery
    /// bench reports.
    fn snapshot_bits(&self) -> u64 {
        self.snapshot().map_or(0, |b| 8 * b.len() as u64)
    }
}

/// Creates protocol instances for the correct processes of a run (and for
/// adversary strategies that internally simulate correct behaviour).
///
/// A factory captures everything common to the run — the system
/// configuration, the value domain — while `spawn` supplies the per-process
/// identifier and input.
pub trait ProtocolFactory {
    /// The protocol this factory builds.
    type P: Protocol;

    /// Creates the automaton for a process holding `id` that proposes
    /// `input`.
    fn spawn(&self, id: Id, input: <Self::P as Protocol>::Value) -> Self::P;
}

/// A [`ProtocolFactory`] backed by a closure.
///
/// # Example
///
/// ```no_run
/// use homonym_core::{FnFactory, Id, ProtocolFactory};
/// # use homonym_core::{Inbox, Protocol, Recipients, Round};
/// # #[derive(Debug)] struct Echo { id: Id }
/// # impl Protocol for Echo {
/// #     type Msg = u8; type Value = bool;
/// #     fn id(&self) -> Id { self.id }
/// #     fn send(&mut self, _: Round) -> Vec<(Recipients, u8)> { vec![] }
/// #     fn receive(&mut self, _: Round, _: &Inbox<u8>) {}
/// #     fn decision(&self) -> Option<bool> { None }
/// # }
/// let factory = FnFactory::new(|id: Id, _input: bool| Echo { id });
/// let p = factory.spawn(Id::new(1), true);
/// ```
#[derive(Clone, Debug)]
pub struct FnFactory<P, F> {
    f: F,
    _marker: std::marker::PhantomData<fn() -> P>,
}

impl<P, F> FnFactory<P, F>
where
    P: Protocol,
    F: Fn(Id, P::Value) -> P,
{
    /// Wraps a `Fn(Id, Value) -> P` closure as a factory.
    pub fn new(f: F) -> Self {
        FnFactory {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<P, F> ProtocolFactory for FnFactory<P, F>
where
    P: Protocol,
    F: Fn(Id, P::Value) -> P,
{
    type P = P;

    fn spawn(&self, id: Id, input: P::Value) -> P {
        (self.f)(id, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_superround_mapping() {
        assert_eq!(Round::new(0).superround(), Superround::new(0));
        assert_eq!(Round::new(1).superround(), Superround::new(0));
        assert_eq!(Round::new(2).superround(), Superround::new(1));
        assert!(Round::new(4).is_first_of_superround());
        assert!(!Round::new(5).is_first_of_superround());
    }

    #[test]
    fn superround_round_mapping() {
        let sr = Superround::new(3);
        assert_eq!(sr.first_round(), Round::new(6));
        assert_eq!(sr.second_round(), Round::new(7));
        assert_eq!(sr.first_round().superround(), sr);
        assert_eq!(sr.second_round().superround(), sr);
    }

    #[test]
    fn phase_arithmetic() {
        // Figure 5: four superrounds per phase.
        assert_eq!(Superround::new(0).phase(4), 0);
        assert_eq!(Superround::new(3).phase(4), 0);
        assert_eq!(Superround::new(4).phase(4), 1);
        assert_eq!(Round::new(8).superround().phase(4), 1);
    }

    #[test]
    fn round_ordering_and_next() {
        let r = Round::ZERO;
        assert!(r < r.next());
        assert_eq!(r.next().index(), 1);
    }
}
