//! Multi-height chaining of agreement instances with flat memory.
//!
//! [`HeightChain`] runs one inner agreement protocol per **height**, each
//! height getting a fixed `budget` of rounds, and records the decided
//! value of every height in a ledger. The chain is itself a [`Protocol`],
//! so height `h + 1` reuses everything the execution fabric allocated for
//! height `h` — the delivery slot plane, the frame interner, the engine's
//! inboxes — while the inner automaton is *replaced* at each height
//! boundary: steady-state memory per height is the footprint of one inner
//! instance plus one ledger slot, which the `state_bits` accounting in
//! `RunReport` turns into a tested number. This is the substrate the
//! roadmap's networked KV tier will commit operations through.
//!
//! Heights advance in lock-step (`height = round / budget`), so all
//! correct processes run the same inner instance at every round. A
//! process whose inner instance missed its height's decision adopts it at
//! the boundary from the `decided` reports its peers attach to every
//! chain message (`t + 1` distinct identifiers reporting the same value —
//! at least one correct, and inner agreement makes all correct reports
//! for a height equal); reports keep flowing after the boundary, so a
//! straggler back-fills missed heights while later heights run.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::codec::{DecodeError, Reader, WireDecode, WireEncode, Writer};
use crate::config::Counting;
use crate::fabric::SharedEnvelope;
use crate::id::Id;
use crate::message::{Inbox, Recipients};
use crate::process::{Protocol, ProtocolFactory, Round};
use crate::value::Value;

/// The chain's wire message: the inner protocol's message for the current
/// height, tagged with the height and the sender's latest resolved
/// `(height, value)` report.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChainMsg<M, V> {
    /// The height the inner message belongs to.
    pub height: u64,
    /// The sender's freshest resolved height and its value (the boundary
    /// adoption / back-fill signal), if it has resolved any.
    pub decided: Option<(u64, V)>,
    /// The inner protocol's message, shared — re-wrapping for the chain
    /// costs one `Arc` bump, never a payload clone.
    pub inner: Arc<M>,
}

impl<M: WireEncode, V: WireEncode> WireEncode for ChainMsg<M, V> {
    fn encode(&self, w: &mut Writer) {
        self.height.encode(w);
        self.decided.encode(w);
        self.inner.encode(w);
    }
}

impl<M: WireDecode, V: WireDecode> WireDecode for ChainMsg<M, V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ChainMsg {
            height: u64::decode(r)?,
            decided: Option::decode(r)?,
            inner: Arc::new(M::decode(r)?),
        })
    }
}

/// A multi-height ledger over any inner agreement protocol; see the
/// module docs.
///
/// As a [`Protocol`], the chain's `decision` is the value of the *last*
/// target height, surfaced only once every height `0..target_heights` has
/// resolved — so a deciding run certifies the complete ledger.
#[derive(Clone, Debug)]
pub struct HeightChain<F: ProtocolFactory> {
    factory: F,
    id: Id,
    input: <F::P as Protocol>::Value,
    /// Rounds per height (the inner protocol's post-stabilization round
    /// bound, plus slack, chosen by the caller).
    budget: u64,
    /// Heights the chain must resolve before it decides.
    target_heights: u64,
    /// Adoption threshold parameter: `t + 1` identical reports adopt.
    t: usize,
    height: u64,
    inner: F::P,
    /// Resolved value per height, `ledger[h]` for height `h`.
    ledger: Vec<Option<<F::P as Protocol>::Value>>,
    /// Freshest resolved `(height, value)` (what we report to peers).
    last_resolved: Option<(u64, <F::P as Protocol>::Value)>,
    /// Peer reports per unresolved height: value → reporting identifiers.
    reports: BTreeMap<u64, BTreeMap<<F::P as Protocol>::Value, BTreeSet<Id>>>,
    decision: Option<<F::P as Protocol>::Value>,
}

impl<F> HeightChain<F>
where
    F: ProtocolFactory + Clone,
    <F::P as Protocol>::Value: Value,
{
    /// Creates a chain for `target_heights` heights of `budget` rounds
    /// each, adopting boundary decisions at `t + 1` identical reports.
    ///
    /// # Panics
    ///
    /// Panics if `budget` or `target_heights` is 0.
    pub fn new(
        factory: F,
        id: Id,
        input: <F::P as Protocol>::Value,
        budget: u64,
        target_heights: u64,
        t: usize,
    ) -> Self {
        assert!(budget > 0, "a height needs at least one round");
        assert!(target_heights > 0, "the chain needs at least one height");
        let inner = factory.spawn(id, input.clone());
        HeightChain {
            factory,
            id,
            input,
            budget,
            target_heights,
            t,
            height: 0,
            inner,
            ledger: Vec::new(),
            last_resolved: None,
            reports: BTreeMap::new(),
            decision: None,
        }
    }

    /// The resolved value of height `h`, if any.
    pub fn ledger_entry(&self, h: u64) -> Option<&<F::P as Protocol>::Value> {
        self.ledger.get(h as usize).and_then(Option::as_ref)
    }

    /// Number of heights with a resolved value.
    pub fn heights_resolved(&self) -> usize {
        self.ledger.iter().filter(|s| s.is_some()).count()
    }

    /// The height currently running.
    pub fn current_height(&self) -> u64 {
        self.height
    }

    /// Records `v` as height `h`'s value (first write wins — inner
    /// agreement makes competing writes equal anyway), updates the
    /// freshest-resolved report, and surfaces the chain decision once the
    /// first `target_heights` slots are all resolved.
    fn resolve(&mut self, h: u64, v: <F::P as Protocol>::Value) {
        let idx = h as usize;
        if self.ledger.len() <= idx {
            self.ledger.resize(idx + 1, None);
        }
        if self.ledger[idx].is_none() {
            self.ledger[idx] = Some(v.clone());
            self.reports.remove(&h);
            if self.last_resolved.as_ref().map_or(true, |(lh, _)| *lh < h) {
                self.last_resolved = Some((h, v));
            }
            self.check_decision();
        }
    }

    fn check_decision(&mut self) {
        if self.decision.is_some() {
            return;
        }
        let target = self.target_heights as usize;
        if self.ledger.len() >= target && self.ledger[..target].iter().all(Option::is_some) {
            self.decision = self.ledger[target - 1].clone();
        }
    }

    /// Rolls forward to the height containing `round`: finalizes each
    /// passed height from the inner decision (peers' reports back-fill
    /// the slot later if the inner instance missed it) and replaces the
    /// inner automaton with a fresh spawn. The fabric-side state — slot
    /// plane, interner, inboxes — carries over untouched; this replacement
    /// is what makes per-height memory O(1).
    fn roll_to(&mut self, target: u64) {
        while self.height < target {
            let h = self.height;
            if let Some(v) = self.inner.decision() {
                self.resolve(h, v);
            } else if self.ledger.len() <= h as usize {
                self.ledger.resize(h as usize + 1, None);
            }
            self.height += 1;
            self.inner = self.factory.spawn(self.id, self.input.clone());
        }
    }

    /// Applies any unresolved-height reports that have reached `t + 1`
    /// distinct identifiers (ascending value order breaks the — by inner
    /// agreement, impossible — tie deterministically).
    fn apply_reports(&mut self) {
        let ready: Vec<(u64, <F::P as Protocol>::Value)> = self
            .reports
            .iter()
            .filter(|(h, _)| {
                self.ledger
                    .get(**h as usize)
                    .map_or(true, |slot| slot.is_none())
            })
            .filter_map(|(&h, per_v)| {
                per_v
                    .iter()
                    .find(|(_, ids)| ids.len() >= self.t + 1)
                    .map(|(v, _)| (h, v.clone()))
            })
            .collect();
        for (h, v) in ready {
            self.resolve(h, v);
        }
    }

    fn local_round(&self, round: Round) -> Round {
        Round::new(round.index() - self.height * self.budget)
    }
}

impl<F> Protocol for HeightChain<F>
where
    F: ProtocolFactory + Clone + Send + Sync + 'static,
    F::P: Clone + std::fmt::Debug + Send + Sync,
    <F::P as Protocol>::Value: Value,
{
    type Msg = ChainMsg<<F::P as Protocol>::Msg, <F::P as Protocol>::Value>;
    type Value = <F::P as Protocol>::Value;

    fn id(&self) -> Id {
        self.id
    }

    fn send(&mut self, round: Round) -> Vec<(Recipients, Self::Msg)> {
        self.send_shared(round)
            .into_iter()
            .map(|(recipients, msg)| (recipients, (*msg).clone()))
            .collect()
    }

    fn send_shared(&mut self, round: Round) -> Vec<(Recipients, Arc<Self::Msg>)> {
        self.roll_to(round.index() / self.budget);
        let local = self.local_round(round);
        let decided = match self.inner.decision() {
            Some(v) => Some((self.height, v)),
            None => self.last_resolved.clone(),
        };
        self.inner
            .send_shared(local)
            .into_iter()
            .map(|(recipients, inner)| {
                (
                    recipients,
                    Arc::new(ChainMsg {
                        height: self.height,
                        decided: decided.clone(),
                        inner,
                    }),
                )
            })
            .collect()
    }

    fn receive(&mut self, round: Round, inbox: &Inbox<Self::Msg>) {
        self.roll_to(round.index() / self.budget);

        // Fold peers' decided reports in (current or unresolved past
        // heights only — the `reports` table stays bounded by the number
        // of open slots, which is 0 or 1 in a healthy run).
        for (src, msg, _) in inbox.iter() {
            if let Some((h, v)) = &msg.decided {
                let open = *h < self.target_heights.max(self.height + 1)
                    && self
                        .ledger
                        .get(*h as usize)
                        .map_or(true, |slot| slot.is_none());
                if open && (*h <= self.height) {
                    self.reports
                        .entry(*h)
                        .or_default()
                        .entry(v.clone())
                        .or_default()
                        .insert(src);
                }
            }
        }
        self.apply_reports();

        // Rebuild the inner inbox from the current height's messages.
        // Numerate collection with each multiplicity re-expanded returns
        // exactly the multiplicities of the outer inbox, whatever
        // counting model produced them.
        let local = self.local_round(round);
        let height = self.height;
        let inner_inbox = Inbox::collect_shared(
            inbox
                .iter_shared()
                .filter(|(_, m, _)| m.height == height)
                .flat_map(|(src, m, count)| {
                    std::iter::repeat_with(move || {
                        SharedEnvelope::shared(src, Arc::clone(&m.inner))
                    })
                    .take(count as usize)
                }),
            Counting::Numerate,
        );
        self.inner.receive(local, &inner_inbox);

        // An inner decision resolves the height immediately — peers
        // lagging at the boundary can then adopt from our next report.
        if let Some(v) = self.inner.decision() {
            self.resolve(height, v);
        }
    }

    fn decision(&self) -> Option<Self::Value> {
        self.decision.clone()
    }

    fn state_bits(&self) -> u64 {
        let mut bits = self.inner.state_bits();
        bits += self.ledger.len() as u64 * 64;
        for per_v in self.reports.values() {
            for ids in per_v.values() {
                bits += 64 + ids.len() as u64 * 16;
            }
        }
        bits
    }
}

/// A [`ProtocolFactory`] for [`HeightChain`] processes over any inner
/// factory.
#[derive(Clone, Debug)]
pub struct HeightChainFactory<F> {
    inner: F,
    budget: u64,
    target_heights: u64,
    t: usize,
}

impl<F> HeightChainFactory<F> {
    /// Chains `inner`-built instances: `target_heights` heights of
    /// `budget` rounds each, boundary adoption at `t + 1` reports.
    pub fn new(inner: F, budget: u64, target_heights: u64, t: usize) -> Self {
        HeightChainFactory {
            inner,
            budget,
            target_heights,
            t,
        }
    }

    /// Rounds the full chain needs: `budget` per height.
    pub fn round_bound(&self) -> u64 {
        self.budget * self.target_heights
    }
}

impl<F> ProtocolFactory for HeightChainFactory<F>
where
    F: ProtocolFactory + Clone + Send + Sync + 'static,
    F::P: Clone + std::fmt::Debug + Send + Sync,
    <F::P as Protocol>::Value: Value,
{
    type P = HeightChain<F>;

    fn spawn(&self, id: Id, input: <F::P as Protocol>::Value) -> HeightChain<F> {
        HeightChain::new(
            self.inner.clone(),
            id,
            input,
            self.budget,
            self.target_heights,
            self.t,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Counting;
    use crate::message::Envelope;

    /// A toy inner protocol: broadcasts its input every round and decides
    /// the majority of what it received at `decide_at`.
    #[derive(Clone, Debug)]
    struct Toy {
        id: Id,
        input: bool,
        decide_at: u64,
        decided: Option<bool>,
    }

    impl Protocol for Toy {
        type Msg = bool;
        type Value = bool;

        fn id(&self) -> Id {
            self.id
        }

        fn send(&mut self, _round: Round) -> Vec<(Recipients, bool)> {
            vec![(Recipients::All, self.input)]
        }

        fn receive(&mut self, round: Round, inbox: &Inbox<bool>) {
            if self.decided.is_none() && round.index() >= self.decide_at {
                let mut yes = 0u64;
                let mut no = 0u64;
                for (_, &v, c) in inbox.iter() {
                    if v {
                        yes += c;
                    } else {
                        no += c;
                    }
                }
                if yes + no > 0 {
                    self.decided = Some(yes >= no);
                }
            }
        }

        fn decision(&self) -> Option<bool> {
            self.decided
        }

        fn state_bits(&self) -> u64 {
            64
        }
    }

    #[derive(Clone, Debug)]
    struct ToyFactory {
        decide_at: u64,
        /// This identifier's instances never decide on their own — the
        /// chain must adopt their heights from peer reports.
        laggard: Option<Id>,
    }

    impl ProtocolFactory for ToyFactory {
        type P = Toy;

        fn spawn(&self, id: Id, input: bool) -> Toy {
            Toy {
                id,
                input,
                decide_at: if Some(id) == self.laggard {
                    u64::MAX
                } else {
                    self.decide_at
                },
                decided: None,
            }
        }
    }

    fn run_chain(
        factory: HeightChainFactory<ToyFactory>,
        n: u16,
        inputs: &[bool],
        rounds: u64,
    ) -> Vec<HeightChain<ToyFactory>> {
        let mut procs: Vec<HeightChain<ToyFactory>> = (0..n)
            .map(|k| factory.spawn(Id::new(k + 1), inputs[k as usize]))
            .collect();
        for r in 0..rounds {
            let round = Round::new(r);
            let outs: Vec<(Id, ChainMsg<bool, bool>)> = procs
                .iter_mut()
                .map(|p| (p.id(), p.send(round).remove(0).1))
                .collect();
            let envs: Vec<Envelope<ChainMsg<bool, bool>>> = outs
                .iter()
                .map(|(src, m)| Envelope {
                    src: *src,
                    msg: m.clone(),
                })
                .collect();
            let inbox = Inbox::collect(envs, Counting::Numerate);
            for p in &mut procs {
                p.receive(round, &inbox);
            }
        }
        procs
    }

    #[test]
    fn chain_resolves_every_height_and_decides() {
        let factory = HeightChainFactory::new(
            ToyFactory {
                decide_at: 1,
                laggard: None,
            },
            4,
            3,
            1,
        );
        let procs = run_chain(factory, 4, &[true, true, false, true], 13);
        for p in &procs {
            assert!(p.heights_resolved() >= 3, "{:?}", p.ledger);
            assert_eq!(p.decision(), Some(true));
            for h in 0..3 {
                assert_eq!(p.ledger_entry(h), Some(&true));
            }
        }
    }

    #[test]
    fn laggard_adopts_heights_from_peer_reports() {
        let laggard = Id::new(4);
        let factory = HeightChainFactory::new(
            ToyFactory {
                decide_at: 1,
                laggard: Some(laggard),
            },
            4,
            2,
            1,
        );
        let procs = run_chain(factory, 4, &[true; 4], 16);
        let lag = procs.iter().find(|p| p.id() == laggard).unwrap();
        // Its inner instances never decide, yet t + 1 = 2 peer reports
        // back-fill every height.
        assert!(lag.heights_resolved() >= 2, "{:?}", lag.ledger);
        assert_eq!(lag.decision(), Some(true));
    }

    #[test]
    fn state_is_flat_across_heights() {
        let factory = HeightChainFactory::new(
            ToyFactory {
                decide_at: 1,
                laggard: None,
            },
            4,
            8,
            1,
        );
        let mut procs = run_chain(factory, 4, &[true; 4], 32);
        let p = &mut procs[0];
        // Inner state is one fresh Toy regardless of height; ledger adds
        // 64 bits per height — the only growth, linear in ledger length
        // and independent of rounds-per-height history.
        assert_eq!(p.state_bits(), 64 + 8 * 64);
    }

    #[test]
    fn chain_msg_round_trips_through_the_codec() {
        let msg = ChainMsg::<bool, bool> {
            height: 3,
            decided: Some((2, true)),
            inner: Arc::new(false),
        };
        let bytes = crate::codec::encode_frame(&msg);
        let back: ChainMsg<bool, bool> = crate::codec::decode_frame(&bytes).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_budget_rejected() {
        let f = ToyFactory {
            decide_at: 1,
            laggard: None,
        };
        let _ = HeightChain::new(f, Id::new(1), true, 0, 1, 1);
    }
}
