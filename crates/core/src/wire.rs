//! **Deprecated** structural wire-size estimates, superseded by the real
//! codec in [`crate::codec`].
//!
//! [`WireSize`] was the workspace's second-generation bit-cost proxy:
//! the original estimate rendered every emission through `Debug` and
//! counted the string's bytes; `WireSize` replaced that with a
//! structural sum over counts and field sizes. Both were *estimates* —
//! there was no serialization layer behind them.
//!
//! There is now. Every engine's `bits_sent` roll-up (the
//! arXiv:2311.08060 message/bit-cost instrumentation) measures the
//! **exact** encoded frame length via [`crate::codec::frame_bits`], and
//! the committed `BENCH_*.json` artifacts carry exact numbers. Nothing
//! on a cost path consults this trait anymore.
//!
//! The trait is kept (not yet removed) for one consumer: the
//! `paper_report` §14 table quantifying how far the retired estimate sat
//! from the exact encoding on the Figure 5 workload. Do not implement it
//! for new message types — implement [`crate::codec::WireEncode`]
//! instead, which is what every engine bound requires.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use crate::id::{Id, Pid};
use crate::process::{Round, Superround};

/// An estimated wire size, in bits, for one payload.
///
/// Implementations must be deterministic and monotone: a payload that
/// structurally contains another must never report fewer bits.
pub trait WireSize {
    /// The estimated number of bits this value occupies on the wire.
    fn wire_bits(&self) -> u64;
}

/// Fixed-width scalars report `8 × size_of`.
macro_rules! scalar_wire_size {
    ($($ty:ty),* $(,)?) => {
        $(impl WireSize for $ty {
            fn wire_bits(&self) -> u64 {
                8 * std::mem::size_of::<$ty>() as u64
            }
        })*
    };
}

scalar_wire_size!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, char);

impl WireSize for bool {
    fn wire_bits(&self) -> u64 {
        1
    }
}

impl WireSize for () {
    fn wire_bits(&self) -> u64 {
        0
    }
}

impl WireSize for Id {
    fn wire_bits(&self) -> u64 {
        16
    }
}

impl WireSize for Pid {
    fn wire_bits(&self) -> u64 {
        32
    }
}

impl WireSize for Round {
    fn wire_bits(&self) -> u64 {
        64
    }
}

impl WireSize for Superround {
    fn wire_bits(&self) -> u64 {
        64
    }
}

impl WireSize for String {
    fn wire_bits(&self) -> u64 {
        8 * self.len() as u64
    }
}

impl WireSize for &str {
    fn wire_bits(&self) -> u64 {
        8 * self.len() as u64
    }
}

impl<T: WireSize + ?Sized> WireSize for &T {
    fn wire_bits(&self) -> u64 {
        (**self).wire_bits()
    }
}

impl<T: WireSize + ?Sized> WireSize for Arc<T> {
    fn wire_bits(&self) -> u64 {
        (**self).wire_bits()
    }
}

impl<T: WireSize + ?Sized> WireSize for Box<T> {
    fn wire_bits(&self) -> u64 {
        (**self).wire_bits()
    }
}

/// `None` costs one presence bit; `Some` adds the inner size.
impl<T: WireSize> WireSize for Option<T> {
    fn wire_bits(&self) -> u64 {
        1 + self.as_ref().map_or(0, WireSize::wire_bits)
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_bits(&self) -> u64 {
        self.iter().map(WireSize::wire_bits).sum()
    }
}

impl<T: WireSize> WireSize for VecDeque<T> {
    fn wire_bits(&self) -> u64 {
        self.iter().map(WireSize::wire_bits).sum()
    }
}

impl<T: WireSize> WireSize for BTreeSet<T> {
    fn wire_bits(&self) -> u64 {
        self.iter().map(WireSize::wire_bits).sum()
    }
}

impl<K: WireSize, V: WireSize> WireSize for BTreeMap<K, V> {
    fn wire_bits(&self) -> u64 {
        self.iter()
            .map(|(k, v)| k.wire_bits() + v.wire_bits())
            .sum()
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_bits(&self) -> u64 {
        self.0.wire_bits() + self.1.wire_bits()
    }
}

impl<A: WireSize, B: WireSize, C: WireSize> WireSize for (A, B, C) {
    fn wire_bits(&self) -> u64 {
        self.0.wire_bits() + self.1.wire_bits() + self.2.wire_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(7u32.wire_bits(), 32);
        assert_eq!(7u64.wire_bits(), 64);
        assert_eq!(true.wire_bits(), 1);
        assert_eq!(Id::new(3).wire_bits(), 16);
        assert_eq!("abcd".wire_bits(), 32);
    }

    #[test]
    fn containers_sum_elements() {
        let set: BTreeSet<u32> = [1, 2, 3].into();
        assert_eq!(set.wire_bits(), 96);
        let map: BTreeMap<Id, u64> = [(Id::new(1), 9u64)].into();
        assert_eq!(map.wire_bits(), 80);
        assert_eq!(Some(4u32).wire_bits(), 33);
        assert_eq!(None::<u32>.wire_bits(), 1);
        assert_eq!((Id::new(1), 2u64, false).wire_bits(), 81);
    }

    #[test]
    fn monotone_in_payload_size() {
        let small: BTreeSet<u32> = [1].into();
        let large: BTreeSet<u32> = [1, 2].into();
        assert!(large.wire_bits() > small.wire_bits());
    }
}
