//! The shared delivery fabric: `Arc`-backed envelopes and dense per-round
//! delivery buckets.
//!
//! Every protocol in the paper sends "one message to every process / every
//! holder of an identifier", so a single round materializes O(n²)
//! deliveries of O(n) *distinct* payloads. The fabric keeps each payload
//! behind one [`Arc`]: simulators and runtimes wrap an emission exactly
//! once and fan out pointer clones, traces retain handles instead of
//! copies, and [`Inbox::collect_shared`](crate::Inbox::collect_shared)
//! builds per-recipient inboxes without ever invoking the payload's
//! `Clone`. [`Deliveries`] is the per-round routing buffer: buckets keyed
//! by dense [`Pid`] index (a `Vec`, not a `BTreeMap`) that an engine keeps
//! across rounds and `clear()`s instead of reallocating.

use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::config::Counting;
use crate::id::{Id, Pid};
use crate::intern::{Interner, Tok};
use crate::message::{Envelope, Inbox, Message};

/// A received message whose payload is shared with every other recipient:
/// the (authenticated) identifier of its sender plus an [`Arc`] handle on
/// the payload.
///
/// Cloning a `SharedEnvelope` bumps a reference count; it never clones the
/// payload. [`Envelope`] remains the owned view protocols and tests build
/// by hand — `SharedEnvelope::from` lifts one into the fabric.
///
/// An envelope may additionally carry a *frame token* — the payload's
/// dense [`Tok`] under the sending engine's [`FrameInterner`]. The token
/// is a routing hint, not part of the message: it is excluded from
/// equality, ordering, hashing, and `Debug` (the manual impls below), so
/// traces, golden digests, and inbox contents are exactly those of
/// `(src, msg)`. Its sole consumer is
/// [`Inbox::collect_shared`](crate::Inbox::collect_shared), which groups
/// token-equal homonym duplicates with a cheap `(Id, Tok)` comparison
/// instead of a deep structural walk per delivery.
#[derive(Clone)]
pub struct SharedEnvelope<M> {
    /// The sender's authenticated identifier.
    pub src: Id,
    /// The shared payload.
    pub msg: Arc<M>,
    /// The payload's frame token under the emitting engine's
    /// [`FrameInterner`], if the delivery path framed it. Tokens are only
    /// meaningful within one engine's delivery plane; envelopes that
    /// cross engines (tests, hand-built fixtures) carry `None` and take
    /// the structural dedup path.
    pub tok: Option<Tok>,
}

impl<M> SharedEnvelope<M> {
    /// Wraps an owned payload (one allocation, no payload clone).
    pub fn new(src: Id, msg: M) -> Self {
        SharedEnvelope {
            src,
            msg: Arc::new(msg),
            tok: None,
        }
    }

    /// Shares an already-wrapped payload (reference-count bump only).
    pub fn shared(src: Id, msg: Arc<M>) -> Self {
        SharedEnvelope {
            src,
            msg,
            tok: None,
        }
    }

    /// Shares an already-wrapped payload together with its frame token
    /// under the emitting engine's [`FrameInterner`].
    pub fn framed(src: Id, msg: Arc<M>, tok: Tok) -> Self {
        SharedEnvelope {
            src,
            msg,
            tok: Some(tok),
        }
    }
}

// The frame token is transport metadata: identity is `(src, msg)` alone,
// so envelopes compare, order, and hash exactly as they did before tokens
// existed (golden digests and trace orderings are unchanged).
impl<M: PartialEq> PartialEq for SharedEnvelope<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.src, &self.msg) == (other.src, &other.msg)
    }
}

impl<M: Eq> Eq for SharedEnvelope<M> {}

impl<M: Ord> PartialOrd for SharedEnvelope<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M: Ord> Ord for SharedEnvelope<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.src, &self.msg).cmp(&(other.src, &other.msg))
    }
}

impl<M: Hash> Hash for SharedEnvelope<M> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.src.hash(state);
        self.msg.hash(state);
    }
}

impl<M> From<Envelope<M>> for SharedEnvelope<M> {
    fn from(Envelope { src, msg }: Envelope<M>) -> Self {
        SharedEnvelope::new(src, msg)
    }
}

impl<M: fmt::Debug> fmt::Debug for SharedEnvelope<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} from id {}", self.msg, self.src)
    }
}

/// The per-engine payload interner behind token-framed delivery.
///
/// An engine keeps one `FrameInterner` per delivery plane for the
/// lifetime of a run and asks it for the [`Tok`] of each emission once —
/// every recipient's envelope then carries the same token, and
/// [`Inbox::collect_shared`](crate::Inbox::collect_shared) groups
/// content-equal homonym duplicates by `(Id, Tok)` instead of deep
/// payload walks. Correctness never depends on the tokens (the inbox
/// merge stays content-keyed); only the dedup cost does.
///
/// Interned payloads are retained for the run (an [`Interner`] never
/// evicts) — bounded by *distinct* emissions, which the send caches and
/// `Arc` reuse of the protocol layer keep far below total emissions. The
/// retention is also what makes the pointer memo sound: a memoized
/// `Arc` address can never be recycled while its entry exists, because
/// the interner itself holds that allocation alive.
pub struct FrameInterner<M> {
    interner: Interner<M>,
    /// `Arc` address → token, **only** for Arcs the interner itself
    /// retains (first-seen handles). Re-sending the same handle — the
    /// protocol send-cache fast path — resolves with no payload
    /// comparison at all.
    memo: BTreeMap<usize, Tok>,
}

impl<M: Clone + Ord> FrameInterner<M> {
    /// An empty interner.
    pub fn new() -> Self {
        FrameInterner {
            interner: Interner::new(),
            memo: BTreeMap::new(),
        }
    }

    /// The frame token for one emission's payload, interning it on first
    /// sight (an `Arc` clone, never a payload clone).
    pub fn tok_for(&mut self, msg: &Arc<M>) -> Tok {
        let ptr = Arc::as_ptr(msg) as usize;
        if let Some(&tok) = self.memo.get(&ptr) {
            return tok;
        }
        let tok = self.interner.intern_shared(msg);
        // Memoize only when the interner retained THIS allocation (the
        // first handle of its content): retained Arcs never drop, so the
        // address cannot be reused and the memo entry stays valid.
        if Arc::ptr_eq(msg, self.interner.resolve_shared(tok)) {
            self.memo.insert(ptr, tok);
        }
        tok
    }

    /// Number of distinct payloads framed so far.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// Whether nothing has been framed yet.
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }
}

impl<M: Clone + Ord> Default for FrameInterner<M> {
    fn default() -> Self {
        FrameInterner::new()
    }
}

impl<M: fmt::Debug> fmt::Debug for FrameInterner<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrameInterner")
            .field("interner", &self.interner)
            .finish()
    }
}

/// One round's deliveries, bucketed by dense recipient index.
///
/// An engine keeps one `Deliveries` for the lifetime of a run: each round
/// it [`clear`](Deliveries::clear)s the buckets (retaining their
/// allocations), [`push`](Deliveries::push)es every routed envelope, and
/// drains per-recipient inboxes with
/// [`take_inbox`](Deliveries::take_inbox). At n in the hundreds this
/// replaces the seed engine's per-round `BTreeMap<Pid, Vec<Envelope>>`
/// (fresh allocation plus log-time bucket lookup per delivery) with an
/// indexed push.
#[derive(Clone, Debug)]
pub struct Deliveries<M> {
    buckets: Vec<Vec<SharedEnvelope<M>>>,
}

impl<M: Message> Deliveries<M> {
    /// Buckets for `n` recipients, all empty.
    pub fn new(n: usize) -> Self {
        Deliveries {
            buckets: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// The number of recipient buckets.
    pub fn n(&self) -> usize {
        self.buckets.len()
    }

    /// Grows the bucket vector to at least `n` recipients, keeping every
    /// existing bucket (and its allocation). No-op if already large
    /// enough.
    ///
    /// This is how the sharded schedulers share one delivery plane: each
    /// shard claims a contiguous slot range, and enqueueing a new shard
    /// widens the plane without disturbing the buckets other shards are
    /// already reusing round after round.
    pub fn ensure_n(&mut self, n: usize) {
        if n > self.buckets.len() {
            self.buckets.resize_with(n, Vec::new);
        }
    }

    /// Empties every bucket, keeping their allocations for the next round.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
    }

    /// Routes one shared envelope to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range.
    pub fn push(&mut self, to: Pid, envelope: SharedEnvelope<M>) {
        self.buckets[to.index()].push(envelope);
    }

    /// The number of envelopes currently routed to `to`.
    pub fn len_for(&self, to: Pid) -> usize {
        self.buckets[to.index()].len()
    }

    /// Total envelopes routed this round.
    pub fn total(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Drains `to`'s bucket into an [`Inbox`] under the given counting
    /// model. The bucket is left empty but keeps its allocation.
    pub fn take_inbox(&mut self, to: Pid, counting: Counting) -> Inbox<M> {
        Inbox::collect_shared(self.buckets[to.index()].drain(..), counting)
    }

    /// Splits the plane into disjoint contiguous views of the given
    /// widths, laid out back to back from slot 0 — one mutable view per
    /// width, each addressed in **global** slot coordinates.
    ///
    /// This is the lock-free seam of the parallel tick executor: each
    /// shard of a sharded scheduler owns the contiguous range
    /// `[offset, offset + n)`, so handing every worker its shards' views
    /// lets a whole tick's routing and inbox-draining proceed
    /// concurrently with no lock on the plane — the borrow checker
    /// guarantees the ranges cannot overlap.
    ///
    /// Widths may sum to less than [`n`](Deliveries::n); trailing slots
    /// are simply not covered by any view.
    ///
    /// # Panics
    ///
    /// Panics if the widths sum to more than [`n`](Deliveries::n).
    pub fn split_slots(
        &mut self,
        widths: impl IntoIterator<Item = usize>,
    ) -> Vec<DeliverySlots<'_, M>> {
        let mut rest = self.buckets.as_mut_slice();
        let mut start = 0;
        let mut views = Vec::new();
        for width in widths {
            assert!(
                width <= rest.len(),
                "slot ranges exceed the plane: {} + {width} > {}",
                start,
                start + rest.len()
            );
            let (head, tail) = rest.split_at_mut(width);
            views.push(DeliverySlots {
                start,
                buckets: head,
            });
            start += width;
            rest = tail;
        }
        views
    }

    /// The whole plane as a single range view (global coordinates, start
    /// 0) — what a sequential caller hands to code written against
    /// [`DeliverySlots`].
    pub fn as_slots(&mut self) -> DeliverySlots<'_, M> {
        DeliverySlots {
            start: 0,
            buckets: &mut self.buckets,
        }
    }
}

/// A mutable view of a contiguous slot range of a [`Deliveries`] plane,
/// addressed in the plane's **global** [`Pid`] coordinates.
///
/// Produced by [`Deliveries::split_slots`]; because each view borrows a
/// disjoint `&mut` sub-slice of the bucket vector, views can be handed to
/// different worker threads and used concurrently without any
/// synchronization. Out-of-range slots panic, so a shard that tries to
/// write outside its own range is caught immediately rather than
/// corrupting a neighbour.
#[derive(Debug)]
pub struct DeliverySlots<'a, M> {
    start: usize,
    buckets: &'a mut [Vec<SharedEnvelope<M>>],
}

impl<'a, M: Message> DeliverySlots<'a, M> {
    /// Splits this view into disjoint contiguous sub-views of the given
    /// widths, laid out back to back from the view's first slot — each
    /// still addressed in the plane's **global** coordinates.
    ///
    /// This is the nested seam of intra-instance parallelism: a sharded
    /// scheduler first splits the plane per shard
    /// ([`Deliveries::split_slots`]), then splits a big shard's view into
    /// per-worker recipient chunks, so one tick fans out over
    /// (shard, chunk) work units with the borrow checker still proving
    /// every unit disjoint.
    ///
    /// Consumes the view (the sub-views re-borrow its slice). Widths may
    /// sum to less than [`width`](DeliverySlots::width); the tail is left
    /// uncovered.
    ///
    /// # Panics
    ///
    /// Panics if the widths sum to more than this view's width.
    pub fn split_widths(
        self,
        widths: impl IntoIterator<Item = usize>,
    ) -> Vec<DeliverySlots<'a, M>> {
        let mut rest = self.buckets;
        let mut start = self.start;
        let mut views = Vec::new();
        for width in widths {
            assert!(
                width <= rest.len(),
                "sub-ranges exceed the view: {} + {width} > {}",
                start,
                start + rest.len()
            );
            let (head, tail) = rest.split_at_mut(width);
            views.push(DeliverySlots {
                start,
                buckets: head,
            });
            start += width;
            rest = tail;
        }
        views
    }
}

impl<M: Message> DeliverySlots<'_, M> {
    /// The first global slot this view covers.
    pub fn start(&self) -> usize {
        self.start
    }

    /// The number of slots in this view.
    pub fn width(&self) -> usize {
        self.buckets.len()
    }

    /// Resolves a global slot to a local bucket index, panicking (with
    /// the offending slot) on anything outside this view's range.
    fn local_index(&self, to: Pid) -> usize {
        let local = to.index().checked_sub(self.start).unwrap_or_else(|| {
            panic!(
                "slot {to} below this view's range [{}, {})",
                self.start,
                self.start + self.buckets.len()
            )
        });
        assert!(
            local < self.buckets.len(),
            "slot {to} beyond this view's range [{}, {})",
            self.start,
            self.start + self.buckets.len()
        );
        local
    }

    fn bucket(&mut self, to: Pid) -> &mut Vec<SharedEnvelope<M>> {
        let local = self.local_index(to);
        &mut self.buckets[local]
    }

    /// Empties every bucket of the range, keeping allocations.
    pub fn clear(&mut self) {
        for bucket in self.buckets.iter_mut() {
            bucket.clear();
        }
    }

    /// Routes one shared envelope to global slot `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is outside this view's range.
    pub fn push(&mut self, to: Pid, envelope: SharedEnvelope<M>) {
        self.bucket(to).push(envelope);
    }

    /// The number of envelopes currently routed to global slot `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is outside this view's range.
    pub fn len_for(&self, to: Pid) -> usize {
        self.buckets[self.local_index(to)].len()
    }

    /// Drains global slot `to` into an [`Inbox`] under the given counting
    /// model; the bucket keeps its allocation.
    ///
    /// # Panics
    ///
    /// Panics if `to` is outside this view's range.
    pub fn take_inbox(&mut self, to: Pid, counting: Counting) -> Inbox<M> {
        Inbox::collect_shared(self.bucket(to).drain(..), counting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: u16, msg: &str) -> SharedEnvelope<String> {
        SharedEnvelope::new(Id::new(src), msg.to_string())
    }

    #[test]
    fn buckets_route_by_pid_index() {
        let mut d: Deliveries<String> = Deliveries::new(3);
        d.push(Pid::new(0), env(1, "a"));
        d.push(Pid::new(2), env(1, "b"));
        d.push(Pid::new(2), env(2, "b"));
        assert_eq!(d.len_for(Pid::new(0)), 1);
        assert_eq!(d.len_for(Pid::new(1)), 0);
        assert_eq!(d.len_for(Pid::new(2)), 2);
        assert_eq!(d.total(), 3);
    }

    #[test]
    fn take_inbox_drains_but_keeps_buckets() {
        let mut d: Deliveries<String> = Deliveries::new(2);
        d.push(Pid::new(1), env(1, "x"));
        d.push(Pid::new(1), env(1, "x"));
        let inbox = d.take_inbox(Pid::new(1), Counting::Numerate);
        assert_eq!(inbox.count(Id::new(1), &"x".to_string()), 2);
        assert_eq!(d.len_for(Pid::new(1)), 0);
        // The structure is reusable after a clear.
        d.clear();
        d.push(Pid::new(0), env(2, "y"));
        assert_eq!(d.total(), 1);
    }

    #[test]
    fn ensure_n_grows_but_never_shrinks_or_clears() {
        let mut d: Deliveries<String> = Deliveries::new(2);
        d.push(Pid::new(1), env(1, "kept"));
        d.ensure_n(4);
        assert_eq!(d.n(), 4);
        assert_eq!(d.len_for(Pid::new(1)), 1, "existing buckets survive");
        d.push(Pid::new(3), env(2, "new slot"));
        assert_eq!(d.total(), 2);
        d.ensure_n(1);
        assert_eq!(d.n(), 4, "ensure_n never shrinks");
    }

    #[test]
    fn shared_payload_is_one_allocation() {
        let payload = Arc::new("big".to_string());
        let a = SharedEnvelope::shared(Id::new(1), Arc::clone(&payload));
        let b = SharedEnvelope::shared(Id::new(2), Arc::clone(&payload));
        assert!(Arc::ptr_eq(&a.msg, &b.msg));
        assert_eq!(Arc::strong_count(&payload), 3);
    }

    #[test]
    fn split_slots_views_are_disjoint_and_globally_addressed() {
        let mut d: Deliveries<String> = Deliveries::new(7);
        d.push(Pid::new(6), env(9, "pre-existing"));
        {
            let mut views = d.split_slots([2usize, 3, 2]);
            assert_eq!(views.len(), 3);
            assert_eq!(
                views.iter().map(DeliverySlots::start).collect::<Vec<_>>(),
                vec![0, 2, 5]
            );
            // Each view addresses its slots in GLOBAL coordinates.
            views[0].push(Pid::new(1), env(1, "a"));
            views[1].push(Pid::new(2), env(2, "b"));
            views[1].push(Pid::new(4), env(2, "c"));
            views[2].push(Pid::new(5), env(3, "d"));
            assert_eq!(views[2].len_for(Pid::new(6)), 1, "existing data visible");
            let inbox = views[1].take_inbox(Pid::new(2), Counting::Numerate);
            assert_eq!(inbox.count(Id::new(2), &"b".to_string()), 1);
        }
        // The views write through to the plane.
        assert_eq!(d.len_for(Pid::new(1)), 1);
        assert_eq!(d.len_for(Pid::new(2)), 0, "taken inbox drained the slot");
        assert_eq!(d.len_for(Pid::new(4)), 1);
        assert_eq!(d.total(), 4);
    }

    #[test]
    fn split_slots_may_leave_a_tail_uncovered() {
        let mut d: Deliveries<String> = Deliveries::new(5);
        let views = d.split_slots([2usize, 1]);
        assert_eq!(views.len(), 2);
        assert_eq!(views[1].start(), 2);
        assert_eq!(views[1].width(), 1);
    }

    #[test]
    #[should_panic(expected = "exceed the plane")]
    fn split_slots_rejects_oversized_ranges() {
        let mut d: Deliveries<String> = Deliveries::new(3);
        let _ = d.split_slots([2usize, 2]);
    }

    #[test]
    #[should_panic(expected = "below this view's range")]
    fn view_rejects_slots_below_its_range() {
        let mut d: Deliveries<String> = Deliveries::new(4);
        let mut views = d.split_slots([2usize, 2]);
        views[1].push(Pid::new(1), env(1, "trespass"));
    }

    #[test]
    #[should_panic(expected = "beyond this view's range")]
    fn view_rejects_slots_beyond_its_range() {
        let mut d: Deliveries<String> = Deliveries::new(4);
        let mut views = d.split_slots([2usize, 2]);
        views[0].push(Pid::new(2), env(1, "trespass"));
    }

    #[test]
    fn split_widths_nests_inside_a_shard_view() {
        let mut d: Deliveries<String> = Deliveries::new(8);
        {
            let views = d.split_slots([3usize, 5]);
            let mut it = views.into_iter();
            let _first = it.next().unwrap();
            let second = it.next().unwrap();
            // Sub-split the second shard's view into recipient chunks.
            let mut chunks = second.split_widths([2usize, 2]);
            assert_eq!(chunks.len(), 2);
            assert_eq!(chunks[0].start(), 3);
            assert_eq!(chunks[1].start(), 5);
            assert_eq!(chunks[1].width(), 2);
            // Still addressed in GLOBAL plane coordinates.
            chunks[0].push(Pid::new(4), env(1, "a"));
            chunks[1].push(Pid::new(6), env(2, "b"));
        }
        assert_eq!(d.len_for(Pid::new(4)), 1);
        assert_eq!(d.len_for(Pid::new(6)), 1);
        assert_eq!(d.total(), 2);
    }

    #[test]
    #[should_panic(expected = "below this view's range")]
    fn split_widths_sub_views_stay_bounded() {
        let mut d: Deliveries<String> = Deliveries::new(6);
        let views = d.split_slots([6usize]);
        let mut chunks = views.into_iter().next().unwrap().split_widths([3usize, 3]);
        chunks[1].push(Pid::new(2), env(1, "trespass"));
    }

    #[test]
    #[should_panic(expected = "exceed the view")]
    fn split_widths_rejects_oversized_sub_ranges() {
        let mut d: Deliveries<String> = Deliveries::new(4);
        let views = d.split_slots([4usize]);
        let _ = views.into_iter().next().unwrap().split_widths([3usize, 2]);
    }

    #[test]
    fn as_slots_covers_the_whole_plane() {
        let mut d: Deliveries<String> = Deliveries::new(3);
        let mut view = d.as_slots();
        view.push(Pid::new(0), env(1, "x"));
        view.push(Pid::new(2), env(1, "y"));
        view.clear();
        assert_eq!(d.total(), 0);
    }

    #[test]
    fn frame_tokens_are_stable_and_memoized() {
        let mut frames: FrameInterner<String> = FrameInterner::new();
        let a = Arc::new("alpha".to_string());
        let a2 = Arc::new("alpha".to_string()); // content-equal, distinct alloc
        let b = Arc::new("beta".to_string());
        let ta = frames.tok_for(&a);
        assert_eq!(frames.tok_for(&a), ta, "same handle, same token");
        assert_eq!(frames.tok_for(&a2), ta, "equal content, same token");
        assert_ne!(frames.tok_for(&b), ta);
        assert_eq!(frames.len(), 2);
    }

    #[test]
    fn tok_is_excluded_from_envelope_identity() {
        let payload = Arc::new("m".to_string());
        let plain = SharedEnvelope::shared(Id::new(1), Arc::clone(&payload));
        let framed = SharedEnvelope::framed(Id::new(1), Arc::clone(&payload), 7);
        let other = SharedEnvelope::framed(Id::new(1), Arc::clone(&payload), 8);
        assert_eq!(plain, framed);
        assert_eq!(framed, other);
        assert_eq!(plain.cmp(&framed), std::cmp::Ordering::Equal);
        assert_eq!(format!("{plain:?}"), format!("{framed:?}"));
    }

    #[test]
    fn debug_matches_envelope_rendering() {
        let owned = Envelope {
            src: Id::new(3),
            msg: 7u32,
        };
        let shared = SharedEnvelope::from(owned.clone());
        assert_eq!(format!("{owned:?}"), format!("{shared:?}"));
    }
}
