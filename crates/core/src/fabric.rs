//! The shared delivery fabric: `Arc`-backed envelopes and dense per-round
//! delivery buckets.
//!
//! Every protocol in the paper sends "one message to every process / every
//! holder of an identifier", so a single round materializes O(n²)
//! deliveries of O(n) *distinct* payloads. The fabric keeps each payload
//! behind one [`Arc`]: simulators and runtimes wrap an emission exactly
//! once and fan out pointer clones, traces retain handles instead of
//! copies, and [`Inbox::collect_shared`](crate::Inbox::collect_shared)
//! builds per-recipient inboxes without ever invoking the payload's
//! `Clone`. [`Deliveries`] is the per-round routing buffer: buckets keyed
//! by dense [`Pid`] index (a `Vec`, not a `BTreeMap`) that an engine keeps
//! across rounds and `clear()`s instead of reallocating.

use std::fmt;
use std::sync::Arc;

use crate::config::Counting;
use crate::id::{Id, Pid};
use crate::message::{Envelope, Inbox, Message};

/// A received message whose payload is shared with every other recipient:
/// the (authenticated) identifier of its sender plus an [`Arc`] handle on
/// the payload.
///
/// Cloning a `SharedEnvelope` bumps a reference count; it never clones the
/// payload. [`Envelope`] remains the owned view protocols and tests build
/// by hand — `SharedEnvelope::from` lifts one into the fabric.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SharedEnvelope<M> {
    /// The sender's authenticated identifier.
    pub src: Id,
    /// The shared payload.
    pub msg: Arc<M>,
}

impl<M> SharedEnvelope<M> {
    /// Wraps an owned payload (one allocation, no payload clone).
    pub fn new(src: Id, msg: M) -> Self {
        SharedEnvelope {
            src,
            msg: Arc::new(msg),
        }
    }

    /// Shares an already-wrapped payload (reference-count bump only).
    pub fn shared(src: Id, msg: Arc<M>) -> Self {
        SharedEnvelope { src, msg }
    }
}

impl<M> From<Envelope<M>> for SharedEnvelope<M> {
    fn from(Envelope { src, msg }: Envelope<M>) -> Self {
        SharedEnvelope::new(src, msg)
    }
}

impl<M: fmt::Debug> fmt::Debug for SharedEnvelope<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} from id {}", self.msg, self.src)
    }
}

/// One round's deliveries, bucketed by dense recipient index.
///
/// An engine keeps one `Deliveries` for the lifetime of a run: each round
/// it [`clear`](Deliveries::clear)s the buckets (retaining their
/// allocations), [`push`](Deliveries::push)es every routed envelope, and
/// drains per-recipient inboxes with
/// [`take_inbox`](Deliveries::take_inbox). At n in the hundreds this
/// replaces the seed engine's per-round `BTreeMap<Pid, Vec<Envelope>>`
/// (fresh allocation plus log-time bucket lookup per delivery) with an
/// indexed push.
#[derive(Clone, Debug)]
pub struct Deliveries<M> {
    buckets: Vec<Vec<SharedEnvelope<M>>>,
}

impl<M: Message> Deliveries<M> {
    /// Buckets for `n` recipients, all empty.
    pub fn new(n: usize) -> Self {
        Deliveries {
            buckets: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// The number of recipient buckets.
    pub fn n(&self) -> usize {
        self.buckets.len()
    }

    /// Grows the bucket vector to at least `n` recipients, keeping every
    /// existing bucket (and its allocation). No-op if already large
    /// enough.
    ///
    /// This is how the sharded schedulers share one delivery plane: each
    /// shard claims a contiguous slot range, and enqueueing a new shard
    /// widens the plane without disturbing the buckets other shards are
    /// already reusing round after round.
    pub fn ensure_n(&mut self, n: usize) {
        if n > self.buckets.len() {
            self.buckets.resize_with(n, Vec::new);
        }
    }

    /// Empties every bucket, keeping their allocations for the next round.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
    }

    /// Routes one shared envelope to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range.
    pub fn push(&mut self, to: Pid, envelope: SharedEnvelope<M>) {
        self.buckets[to.index()].push(envelope);
    }

    /// The number of envelopes currently routed to `to`.
    pub fn len_for(&self, to: Pid) -> usize {
        self.buckets[to.index()].len()
    }

    /// Total envelopes routed this round.
    pub fn total(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Drains `to`'s bucket into an [`Inbox`] under the given counting
    /// model. The bucket is left empty but keeps its allocation.
    pub fn take_inbox(&mut self, to: Pid, counting: Counting) -> Inbox<M> {
        Inbox::collect_shared(self.buckets[to.index()].drain(..), counting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: u16, msg: &str) -> SharedEnvelope<String> {
        SharedEnvelope::new(Id::new(src), msg.to_string())
    }

    #[test]
    fn buckets_route_by_pid_index() {
        let mut d: Deliveries<String> = Deliveries::new(3);
        d.push(Pid::new(0), env(1, "a"));
        d.push(Pid::new(2), env(1, "b"));
        d.push(Pid::new(2), env(2, "b"));
        assert_eq!(d.len_for(Pid::new(0)), 1);
        assert_eq!(d.len_for(Pid::new(1)), 0);
        assert_eq!(d.len_for(Pid::new(2)), 2);
        assert_eq!(d.total(), 3);
    }

    #[test]
    fn take_inbox_drains_but_keeps_buckets() {
        let mut d: Deliveries<String> = Deliveries::new(2);
        d.push(Pid::new(1), env(1, "x"));
        d.push(Pid::new(1), env(1, "x"));
        let inbox = d.take_inbox(Pid::new(1), Counting::Numerate);
        assert_eq!(inbox.count(Id::new(1), &"x".to_string()), 2);
        assert_eq!(d.len_for(Pid::new(1)), 0);
        // The structure is reusable after a clear.
        d.clear();
        d.push(Pid::new(0), env(2, "y"));
        assert_eq!(d.total(), 1);
    }

    #[test]
    fn ensure_n_grows_but_never_shrinks_or_clears() {
        let mut d: Deliveries<String> = Deliveries::new(2);
        d.push(Pid::new(1), env(1, "kept"));
        d.ensure_n(4);
        assert_eq!(d.n(), 4);
        assert_eq!(d.len_for(Pid::new(1)), 1, "existing buckets survive");
        d.push(Pid::new(3), env(2, "new slot"));
        assert_eq!(d.total(), 2);
        d.ensure_n(1);
        assert_eq!(d.n(), 4, "ensure_n never shrinks");
    }

    #[test]
    fn shared_payload_is_one_allocation() {
        let payload = Arc::new("big".to_string());
        let a = SharedEnvelope::shared(Id::new(1), Arc::clone(&payload));
        let b = SharedEnvelope::shared(Id::new(2), Arc::clone(&payload));
        assert!(Arc::ptr_eq(&a.msg, &b.msg));
        assert_eq!(Arc::strong_count(&payload), 3);
    }

    #[test]
    fn debug_matches_envelope_rendering() {
        let owned = Envelope {
            src: Id::new(3),
            msg: 7u32,
        };
        let shared = SharedEnvelope::from(owned.clone());
        assert_eq!(format!("{owned:?}"), format!("{shared:?}"));
    }
}
