//! Error types for configuration and assignment validation.

use std::error::Error;
use std::fmt;

use crate::id::Id;

/// An invalid [`SystemConfig`](crate::SystemConfig).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// Fewer than two processes.
    TooFewProcesses {
        /// The offending process count.
        n: usize,
    },
    /// `ℓ` must satisfy `1 ≤ ℓ ≤ n`.
    BadEll {
        /// The offending identifier count.
        ell: usize,
        /// The process count.
        n: usize,
    },
    /// `t` must satisfy `t < n`.
    TooManyFaults {
        /// The offending fault bound.
        t: usize,
        /// The process count.
        n: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooFewProcesses { n } => {
                write!(f, "system needs at least 2 processes, got n = {n}")
            }
            ConfigError::BadEll { ell, n } => {
                write!(
                    f,
                    "identifier count must satisfy 1 <= ell <= n, got ell = {ell}, n = {n}"
                )
            }
            ConfigError::TooManyFaults { t, n } => {
                write!(f, "fault bound must satisfy t < n, got t = {t}, n = {n}")
            }
        }
    }
}

impl Error for ConfigError {}

/// An invalid [`IdAssignment`](crate::IdAssignment).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AssignmentError {
    /// No processes at all.
    Empty,
    /// `ℓ` must satisfy `1 ≤ ℓ ≤ n`.
    BadEll {
        /// The offending identifier count.
        ell: usize,
        /// The process count.
        n: usize,
    },
    /// A process was assigned an identifier outside `1..=ℓ`.
    IdOutOfRange {
        /// The offending identifier.
        id: Id,
        /// The identifier count.
        ell: usize,
    },
    /// Some identifier in `1..=ℓ` has no holder; the paper requires every
    /// identifier to be assigned to at least one process.
    UnassignedId {
        /// The identifier with no holder.
        id: Id,
    },
}

impl fmt::Display for AssignmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignmentError::Empty => write!(f, "assignment must cover at least one process"),
            AssignmentError::BadEll { ell, n } => {
                write!(
                    f,
                    "identifier count must satisfy 1 <= ell <= n, got ell = {ell}, n = {n}"
                )
            }
            AssignmentError::IdOutOfRange { id, ell } => {
                write!(f, "identifier {id} out of range 1..={ell}")
            }
            AssignmentError::UnassignedId { id } => {
                write!(f, "identifier {id} is not assigned to any process")
            }
        }
    }
}

impl Error for AssignmentError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<Box<dyn Error>> = vec![
            Box::new(ConfigError::TooFewProcesses { n: 1 }),
            Box::new(ConfigError::BadEll { ell: 0, n: 3 }),
            Box::new(ConfigError::TooManyFaults { t: 3, n: 3 }),
            Box::new(AssignmentError::Empty),
            Box::new(AssignmentError::UnassignedId { id: Id::new(2) }),
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }
}
