//! The Table 1 solvability characterization, as executable predicates.
//!
//! The paper completely characterizes when Byzantine agreement is solvable
//! in a system of `n` processes using `ℓ` identifiers with at most `t`
//! Byzantine processes (always requiring `n > 3t`):
//!
//! | model | unrestricted Byzantine | restricted Byzantine |
//! |---|---|---|
//! | synchronous | `ℓ > 3t` | numerate: `ℓ > t`; innumerate: `ℓ > 3t` |
//! | partially synchronous | `2ℓ > n + 3t` | numerate: `ℓ > t`; innumerate: `2ℓ > n + 3t` |
//!
//! These predicates are the ground truth that the experiment harness
//! compares against: a configuration's empirical verdict (the algorithm
//! survives the adversary suite / a lower-bound scenario exhibits a
//! violation) must match [`solvable`].

use crate::config::{ByzPower, Counting, Synchrony, SystemConfig};

/// Which Table 1 condition applies to a configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Condition {
    /// `ℓ > 3t` (synchronous, or restricted+innumerate synchronous).
    EllGt3T,
    /// `2ℓ > n + 3t` (partially synchronous).
    TwoEllGtNPlus3T,
    /// `ℓ > t` (restricted Byzantine processes with numerate receivers).
    EllGtT,
}

impl Condition {
    /// Evaluates this condition on `(n, ℓ, t)`.
    pub fn holds(self, n: usize, ell: usize, t: usize) -> bool {
        match self {
            Condition::EllGt3T => ell > 3 * t,
            Condition::TwoEllGtNPlus3T => 2 * ell > n + 3 * t,
            Condition::EllGtT => ell > t,
        }
    }

    /// The smallest `ℓ` satisfying this condition for the given `n` and `t`,
    /// ignoring the `ℓ ≤ n` cap.
    pub fn min_ell(self, n: usize, t: usize) -> usize {
        match self {
            Condition::EllGt3T => 3 * t + 1,
            // smallest ℓ with 2ℓ ≥ n + 3t + 1
            Condition::TwoEllGtNPlus3T => (n + 3 * t) / 2 + 1,
            Condition::EllGtT => t + 1,
        }
    }
}

/// The Table 1 condition applicable to `cfg`'s model axes.
pub fn condition(cfg: &SystemConfig) -> Condition {
    match (cfg.synchrony, cfg.byz_power, cfg.counting) {
        (_, ByzPower::Restricted, Counting::Numerate) => Condition::EllGtT,
        (Synchrony::Synchronous, _, _) => Condition::EllGt3T,
        (Synchrony::PartiallySynchronous, _, _) => Condition::TwoEllGtNPlus3T,
    }
}

/// Whether Byzantine agreement is solvable in `cfg`, per Table 1 of the
/// paper (including the baseline `n > 3t` requirement).
///
/// # Example
///
/// ```
/// use homonym_core::{SystemConfig, Synchrony, bounds};
///
/// // Synchronous: ℓ > 3t.
/// assert!(bounds::solvable(&SystemConfig::builder(7, 4, 1).build().unwrap()));
/// assert!(!bounds::solvable(&SystemConfig::builder(7, 3, 1).build().unwrap()));
/// ```
pub fn solvable(cfg: &SystemConfig) -> bool {
    cfg.n_exceeds_3t() && condition(cfg).holds(cfg.n, cfg.ell, cfg.t)
}

/// The smallest number of identifiers that makes `cfg`'s model solvable for
/// its `n` and `t`, or `None` if no `ℓ ≤ n` suffices (or `n ≤ 3t`).
pub fn min_solvable_ell(cfg: &SystemConfig) -> Option<usize> {
    if !cfg.n_exceeds_3t() {
        return None;
    }
    let ell = condition(cfg).min_ell(cfg.n, cfg.t);
    (ell <= cfg.n).then_some(ell)
}

/// Whether the quorum-intersection property of Lemma 7 holds: with
/// `2ℓ > n + 3t`, any two sets of `ℓ − t` identifiers share an identifier
/// that belongs to exactly one process, and that process is correct.
///
/// This is the arithmetic core of the Figure 5 protocol's safety:
/// `2(ℓ − t) − ℓ > n − ℓ + t`.
pub fn lemma7_holds(n: usize, ell: usize, t: usize) -> bool {
    ell >= t && 2 * (ell - t) >= ell && (2 * (ell - t) - ell) > (n - ell.min(n)) + t
}

/// One cell of the reproduced Table 1 grid: a configuration and whether the
/// paper says it is solvable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridCell {
    /// The configuration.
    pub cfg: SystemConfig,
    /// Whether Table 1 declares it solvable.
    pub solvable: bool,
    /// Whether this cell sits exactly on the boundary (solvable with the
    /// minimum `ℓ`, or unsolvable with `ℓ` one below the minimum).
    pub boundary: bool,
}

/// Enumerates a grid of configurations straddling the solvability boundary
/// for the given model axes: for each `t` in `ts` and each `n`, the cells
/// with `ℓ` ranging `lo..=hi` around the bound.
///
/// Used by the Table 1 experiments to pick exactly the configurations whose
/// empirical verdict is informative.
pub fn boundary_grid(
    synchrony: Synchrony,
    counting: Counting,
    byz_power: ByzPower,
    ts: &[usize],
    ns_per_t: usize,
) -> Vec<GridCell> {
    let mut cells = Vec::new();
    for &t in ts {
        let n_lo = 3 * t + 1;
        for n in n_lo..n_lo + ns_per_t {
            let probe = SystemConfig {
                n,
                ell: 1,
                t,
                synchrony,
                counting,
                byz_power,
            };
            let min_ell = condition(&probe).min_ell(n, t);
            let lo = min_ell.saturating_sub(2).max(1);
            let hi = (min_ell + 1).min(n);
            for ell in lo..=hi {
                let cfg = SystemConfig { ell, ..probe };
                if cfg.validate().is_err() {
                    continue;
                }
                let s = solvable(&cfg);
                let boundary = ell == min_ell || ell + 1 == min_ell;
                cells.push(GridCell {
                    cfg,
                    solvable: s,
                    boundary,
                });
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(
        n: usize,
        ell: usize,
        t: usize,
        synchrony: Synchrony,
        counting: Counting,
        byz_power: ByzPower,
    ) -> SystemConfig {
        SystemConfig::builder(n, ell, t)
            .synchrony(synchrony)
            .counting(counting)
            .byz_power(byz_power)
            .build()
            .unwrap()
    }

    #[test]
    fn synchronous_bound_is_3t() {
        use ByzPower::*;
        use Counting::*;
        for t in 1..4usize {
            let n = 4 * t + 1;
            for (counting, byz) in [
                (Innumerate, Unrestricted),
                (Numerate, Unrestricted),
                (Innumerate, Restricted),
            ] {
                let c = cfg(n, 3 * t, t, Synchrony::Synchronous, counting, byz);
                assert!(!solvable(&c), "ℓ = 3t must be unsolvable: {c:?}");
                let c = cfg(
                    n,
                    (3 * t + 1).min(n),
                    t,
                    Synchrony::Synchronous,
                    counting,
                    byz,
                );
                assert!(solvable(&c), "ℓ = 3t+1 must be solvable: {c:?}");
            }
        }
    }

    #[test]
    fn partially_synchronous_bound_depends_on_n() {
        // The paper's example: t = 1, ℓ = 4 works for n = 4 but not n = 5.
        let base = |n| {
            cfg(
                n,
                4,
                1,
                Synchrony::PartiallySynchronous,
                Counting::Innumerate,
                ByzPower::Unrestricted,
            )
        };
        assert!(solvable(&base(4)));
        assert!(!solvable(&base(5)));
    }

    #[test]
    fn psync_bound_strictly_harder_than_sync_with_homonyms() {
        for t in 1..4usize {
            for n in (3 * t + 2)..(3 * t + 8) {
                let sync_min = Condition::EllGt3T.min_ell(n, t);
                let psync_min = Condition::TwoEllGtNPlus3T.min_ell(n, t);
                assert!(
                    psync_min > sync_min,
                    "psync needs more ids whenever n > 3t+1: n={n}, t={t}"
                );
            }
        }
    }

    #[test]
    fn restricted_numerate_bound_is_t() {
        for synchrony in [Synchrony::Synchronous, Synchrony::PartiallySynchronous] {
            for t in 1..4usize {
                let n = 3 * t + 1;
                let c = cfg(n, t, t, synchrony, Counting::Numerate, ByzPower::Restricted);
                assert!(!solvable(&c));
                let c = cfg(
                    n,
                    t + 1,
                    t,
                    synchrony,
                    Counting::Numerate,
                    ByzPower::Restricted,
                );
                assert!(solvable(&c));
            }
        }
    }

    #[test]
    fn restricted_innumerate_matches_unrestricted() {
        // Theorems 19 and 20: restriction does not help innumerate processes.
        for (synchrony, want) in [
            (Synchrony::Synchronous, Condition::EllGt3T),
            (Synchrony::PartiallySynchronous, Condition::TwoEllGtNPlus3T),
        ] {
            let c = cfg(
                7,
                5,
                1,
                synchrony,
                Counting::Innumerate,
                ByzPower::Restricted,
            );
            assert_eq!(condition(&c), want);
        }
    }

    #[test]
    fn n_at_most_3t_is_never_solvable() {
        let c = cfg(
            3,
            3,
            1,
            Synchrony::Synchronous,
            Counting::Numerate,
            ByzPower::Unrestricted,
        );
        assert!(!solvable(&c));
        assert_eq!(min_solvable_ell(&c), None);
    }

    #[test]
    fn min_solvable_ell_matches_predicate() {
        for t in 1..3usize {
            for n in (3 * t + 1)..(3 * t + 6) {
                for synchrony in [Synchrony::Synchronous, Synchrony::PartiallySynchronous] {
                    let probe = SystemConfig::builder(n, 1, t)
                        .synchrony(synchrony)
                        .build()
                        .unwrap();
                    if let Some(min) = min_solvable_ell(&probe) {
                        let at = SystemConfig { ell: min, ..probe };
                        assert!(solvable(&at));
                        if min > 1 {
                            let below = SystemConfig {
                                ell: min - 1,
                                ..probe
                            };
                            assert!(!solvable(&below));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn lemma7_iff_psync_condition() {
        // Lemma 7's arithmetic is exactly the 2ℓ > n + 3t condition.
        for t in 0..4usize {
            for n in (3 * t + 1)..(3 * t + 10) {
                for ell in t.max(1)..=n {
                    let cond = Condition::TwoEllGtNPlus3T.holds(n, ell, t);
                    assert_eq!(lemma7_holds(n, ell, t), cond, "n={n} ell={ell} t={t}");
                }
            }
        }
    }

    #[test]
    fn boundary_grid_straddles_the_bound() {
        let cells = boundary_grid(
            Synchrony::Synchronous,
            Counting::Innumerate,
            ByzPower::Unrestricted,
            &[1, 2],
            3,
        );
        assert!(!cells.is_empty());
        assert!(cells.iter().any(|c| c.solvable));
        assert!(cells.iter().any(|c| !c.solvable));
        for c in &cells {
            assert_eq!(c.solvable, solvable(&c.cfg));
            assert!(c.cfg.validate().is_ok());
        }
    }
}
