//! The tick executor: the cross-engine seam that fans independent
//! per-shard work out across cores.
//!
//! Both sharded engines (`homonym_sim::shards::ShardedSimulation` and
//! `homonym_runtime::ShardedCluster`) advance K independent agreement
//! instances one round per global tick, and within a tick the shards are
//! embarrassingly parallel: each owns a disjoint slot range of the shared
//! [`Deliveries`](crate::Deliveries) plane and never reads another
//! shard's state. An [`Executor`] abstracts *how* that per-tick batch of
//! shard steps runs:
//!
//! * [`Sequential`] — in task order on the calling thread (the original
//!   single-threaded schedule, and the default);
//! * [`Pool`] — on `workers` scoped threads, tasks dealt round-robin,
//!   results merged back **in task order** so every observable (traces,
//!   decisions, reports) is byte-identical to [`Sequential`] at any
//!   worker count. `tests/shard_isolation.rs` property-tests this and
//!   `tests/fabric_golden.rs` pins it against the sequential golden
//!   digests.
//!
//! Executors promise nothing about *interleaving*, only about result
//! order — callers must hand them tasks that are independent (each task
//! owns `&mut` access to disjoint data, e.g. via
//! [`Deliveries::split_slots`](crate::Deliveries::split_slots)).
//!
//! Later backends (async runtimes, multi-backend routing) are expected to
//! reuse this boundary rather than re-invent per-engine threading.

/// Runs a tick's batch of independent tasks, returning their results in
/// task order.
///
/// # Determinism contract
///
/// `scatter` must return `results[i] == tasks[i]()` for every `i`, as if
/// the tasks had run sequentially — implementations may overlap task
/// *execution* arbitrarily but must not let the schedule leak into the
/// results. Combined with task independence (disjoint `&mut` data), this
/// makes every engine built on an executor schedule-oblivious.
pub trait Executor {
    /// How many tasks this executor may run concurrently (1 for
    /// [`Sequential`]). Engines may use this to size scratch pools.
    fn workers(&self) -> usize;

    /// Runs every task to completion and returns their outputs in task
    /// order.
    fn scatter<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send;
}

/// The single-threaded executor: tasks run in order on the calling
/// thread. This is the default for both sharded engines and the
/// behavioural reference for every other executor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Sequential;

impl Executor for Sequential {
    fn workers(&self) -> usize {
        1
    }

    fn scatter<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        tasks.into_iter().map(|task| task()).collect()
    }
}

/// The thread-pool executor: each `scatter` deals its tasks round-robin
/// onto `workers` scoped threads (spawned per call — scoped threads may
/// borrow the caller's data, which is what lets engines hand workers
/// `&mut` views of live shard state without `'static` gymnastics or
/// locks). Results come back over a `crossbeam-channel` and are reordered
/// by task index, so output is byte-identical to [`Sequential`].
///
/// A panic in any task propagates to the caller once every worker has
/// finished (workers are joined individually and the first panicking
/// worker's payload is re-raised with
/// [`resume_unwind`](std::panic::resume_unwind), so the original panic
/// message survives — engine contract violations stay diagnosable under
/// the pool; which sibling tasks had already run is not specified).
///
/// # Example
///
/// ```
/// use homonym_core::exec::{Executor, Pool, Sequential};
///
/// let data = vec![3u64, 1, 4, 1, 5, 9, 2, 6];
/// let tasks = |d: &Vec<u64>| {
///     d.iter()
///         .map(|&x| move || x * x)
///         .collect::<Vec<_>>()
/// };
/// let seq = Sequential.scatter(tasks(&data));
/// let pooled = Pool::new(3).scatter(tasks(&data));
/// assert_eq!(seq, pooled); // same results, same order
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// An executor running tasks on `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero (use [`Sequential`] for one-thread
    /// semantics without the pool machinery; `Pool::new(1)` is also
    /// valid and runs tasks on the caller's thread).
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "a pool needs at least one worker");
        Pool { workers }
    }
}

impl Executor for Pool {
    fn workers(&self) -> usize {
        self.workers
    }

    fn scatter<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let workers = self.workers.min(tasks.len());
        if workers <= 1 {
            return Sequential.scatter(tasks);
        }

        // Deal tasks round-robin: chunk w gets tasks w, w + workers, …
        // The deal is a pure function of (task count, worker count), so
        // the work placement — though invisible in the results — is
        // reproducible too.
        let task_count = tasks.len();
        let mut chunks: Vec<Vec<(usize, F)>> = (0..workers).map(|_| Vec::new()).collect();
        for (index, task) in tasks.into_iter().enumerate() {
            chunks[index % workers].push((index, task));
        }

        let mut results: Vec<Option<T>> = (0..task_count).map(|_| None).collect();
        let (result_tx, result_rx) = crossbeam_channel::unbounded::<(usize, T)>();
        crossbeam_utils::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(chunks.len());
            for chunk in chunks {
                let result_tx = result_tx.clone();
                handles.push(scope.spawn(move |_| {
                    for (index, task) in chunk {
                        result_tx
                            .send((index, task()))
                            .expect("scatter collector outlives workers");
                    }
                }));
            }
            // The workers' clones keep the channel open; dropping the
            // original lets the drain below terminate when they finish
            // (a panicking worker drops its clone early, so the drain
            // cannot hang on a dead sender).
            drop(result_tx);
            while let Ok((index, value)) = result_rx.recv() {
                results[index] = Some(value);
            }
            // Join explicitly so a panicked task's payload is re-raised
            // verbatim instead of the scope's generic panic message.
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        })
        .expect("scoped workers joined");
        results
            .into_iter()
            .map(|slot| slot.expect("every task produced a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn square_tasks(data: &[u64]) -> Vec<impl FnOnce() -> u64 + Send + '_> {
        data.iter().map(|&x| move || x * x).collect()
    }

    #[test]
    fn sequential_runs_in_order() {
        let order = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..5)
            .map(|i| {
                let order = &order;
                move || {
                    assert_eq!(order.fetch_add(1, Ordering::SeqCst), i);
                    i
                }
            })
            .collect();
        assert_eq!(Sequential.scatter(tasks), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pool_matches_sequential_at_every_worker_count() {
        let data: Vec<u64> = (0..23).collect();
        let expected = Sequential.scatter(square_tasks(&data));
        for workers in [1, 2, 3, 7, 32] {
            assert_eq!(
                Pool::new(workers).scatter(square_tasks(&data)),
                expected,
                "worker count {workers}"
            );
        }
    }

    #[test]
    fn pool_handles_empty_and_singleton_batches() {
        let empty: Vec<fn() -> u8> = Vec::new();
        assert!(Pool::new(4).scatter(empty).is_empty());
        assert_eq!(Pool::new(4).scatter(vec![|| 9u8]), vec![9]);
    }

    #[test]
    fn pool_tasks_mutate_disjoint_borrows() {
        let mut buckets = vec![0u64; 6];
        let tasks: Vec<_> = buckets
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| move || *slot = i as u64 * 10)
            .collect();
        Pool::new(3).scatter(tasks);
        assert_eq!(buckets, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        Pool::new(0);
    }

    #[test]
    fn pool_propagates_task_panics_with_their_message() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(2).scatter(
                (0..4)
                    .map(|i| move || assert_ne!(i, 2, "task bug"))
                    .collect::<Vec<_>>(),
            )
        });
        let payload = result.expect_err("the task panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a message");
        assert!(
            message.contains("task bug"),
            "original message lost: {message:?}"
        );
    }
}
