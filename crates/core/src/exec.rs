//! The tick executor: the cross-engine seam that fans independent
//! per-shard work out across cores.
//!
//! Both sharded engines (`homonym_sim::shards::ShardedSimulation` and
//! `homonym_runtime::ShardedCluster`) advance K independent agreement
//! instances one round per global tick, and within a tick the shards are
//! embarrassingly parallel: each owns a disjoint slot range of the shared
//! [`Deliveries`](crate::Deliveries) plane and never reads another
//! shard's state. An [`Executor`] abstracts *how* that per-tick batch of
//! shard steps runs:
//!
//! * [`Sequential`] — in task order on the calling thread (the original
//!   single-threaded schedule, and the default);
//! * [`Pool`] — on `workers` **persistent** threads (spawned once per
//!   pool, not once per tick), tasks dealt round-robin, results merged
//!   back **in task order** so every observable (traces, decisions,
//!   reports) is byte-identical to [`Sequential`] at any worker count.
//!   `tests/shard_isolation.rs` property-tests this and
//!   `tests/fabric_golden.rs` pins it against the sequential golden
//!   digests.
//!
//! Executors promise nothing about *interleaving*, only about result
//! order — callers must hand them tasks that are independent (each task
//! owns `&mut` access to disjoint data, e.g. via
//! [`Deliveries::split_slots`](crate::Deliveries::split_slots)).
//!
//! Later backends (async runtimes, multi-backend routing) are expected to
//! reuse this boundary rather than re-invent per-engine threading.

/// Splits `0..len` into at most `chunks` contiguous, non-empty,
/// balanced ranges (the first `len % chunks` ranges get one extra item).
/// Fewer ranges come back when `len < chunks`; an empty input yields no
/// ranges at all.
///
/// This is the work-partitioning helper behind intra-instance
/// parallelism: the chunk boundaries depend only on `(len, chunks)`, so
/// a chunk-then-merge pipeline produces the same ordered output no
/// matter how the chunks are scheduled.
///
/// # Example
///
/// ```
/// use homonym_core::exec::chunk_ranges;
///
/// assert_eq!(chunk_ranges(7, 3), vec![0..3, 3..5, 5..7]);
/// assert_eq!(chunk_ranges(2, 4), vec![0..1, 1..2]); // never empty ranges
/// assert!(chunk_ranges(0, 4).is_empty());
/// ```
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, len);
    let mut ranges = Vec::with_capacity(chunks);
    let (base, extra) = (len / chunks, len % chunks);
    let mut start = 0;
    for i in 0..chunks {
        let width = base + usize::from(i < extra);
        ranges.push(start..start + width);
        start += width;
    }
    ranges
}

/// Runs a tick's batch of independent tasks, returning their results in
/// task order.
///
/// # Determinism contract
///
/// `scatter` must return `results[i] == tasks[i]()` for every `i`, as if
/// the tasks had run sequentially — implementations may overlap task
/// *execution* arbitrarily but must not let the schedule leak into the
/// results. Combined with task independence (disjoint `&mut` data), this
/// makes every engine built on an executor schedule-oblivious.
pub trait Executor {
    /// How many tasks this executor may run concurrently (1 for
    /// [`Sequential`]). Engines may use this to size scratch pools.
    fn workers(&self) -> usize;

    /// Runs every task to completion and returns their outputs in task
    /// order.
    fn scatter<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send;
}

/// The single-threaded executor: tasks run in order on the calling
/// thread. This is the default for both sharded engines and the
/// behavioural reference for every other executor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Sequential;

impl Executor for Sequential {
    fn workers(&self) -> usize {
        1
    }

    fn scatter<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        tasks.into_iter().map(|task| task()).collect()
    }
}

/// The thread-pool executor: a **persistent** set of `workers` threads
/// (spawned once, in [`Pool::new`], via the `scoped_threadpool` stand-in)
/// that each `scatter` deals its tasks onto round-robin. Tasks may borrow
/// the caller's data — which is what lets engines hand workers `&mut`
/// views of live shard state without `'static` gymnastics or locks —
/// because every `scatter` blocks until its last task finishes. Results
/// come back over a `crossbeam-channel` and are reordered by task index,
/// so output is byte-identical to [`Sequential`].
///
/// Earlier versions spawned fresh scoped threads per `scatter`; the
/// sharded engines scatter once per global tick, so that paid thread
/// creation every round. The persistent pool amortizes the spawn to once
/// per `Pool`.
///
/// A panic in any task propagates to the caller once every task of the
/// batch has finished (the first panicking task's payload — by
/// submission order — is re-raised with
/// [`resume_unwind`](std::panic::resume_unwind), so the original panic
/// message survives — engine contract violations stay diagnosable under
/// the pool; which sibling tasks had already run is not specified). The
/// pool itself survives and can run further batches.
///
/// Cloning a `Pool` shares the same worker threads (the underlying pool
/// sits behind an `Arc<Mutex<…>>`; `scatter` holds the lock for the
/// duration of the batch, so concurrent scatters from clones serialize).
/// Do **not** call `scatter` from inside a task of the same pool (or a
/// clone of it) — the inner call would block on the mutex the outer
/// batch holds until its last task finishes, which is a deadlock. Nested
/// fan-out needs a second, independent `Pool` (the engines never nest:
/// one scatter per global tick).
///
/// # Example
///
/// ```
/// use homonym_core::exec::{Executor, Pool, Sequential};
///
/// let data = vec![3u64, 1, 4, 1, 5, 9, 2, 6];
/// let tasks = |d: &Vec<u64>| {
///     d.iter()
///         .map(|&x| move || x * x)
///         .collect::<Vec<_>>()
/// };
/// let seq = Sequential.scatter(tasks(&data));
/// let pooled = Pool::new(3).scatter(tasks(&data));
/// assert_eq!(seq, pooled); // same results, same order
/// ```
#[derive(Clone)]
pub struct Pool {
    workers: usize,
    inner: std::sync::Arc<std::sync::Mutex<scoped_threadpool::Pool>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl Pool {
    /// An executor running tasks on `workers` persistent threads
    /// (spawned here, reused by every `scatter`).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero (use [`Sequential`] for one-thread
    /// semantics without the pool machinery; `Pool::new(1)` is also
    /// valid and runs tasks on the caller's thread).
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "a pool needs at least one worker");
        let threads = u32::try_from(workers).expect("worker count fits in u32");
        Pool {
            workers,
            inner: std::sync::Arc::new(std::sync::Mutex::new(scoped_threadpool::Pool::new(
                threads,
            ))),
        }
    }
}

impl Executor for Pool {
    fn workers(&self) -> usize {
        self.workers
    }

    fn scatter<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        if self.workers <= 1 || tasks.len() <= 1 {
            return Sequential.scatter(tasks);
        }

        let task_count = tasks.len();
        let mut results: Vec<Option<T>> = (0..task_count).map(|_| None).collect();
        let (result_tx, result_rx) = crossbeam_channel::unbounded::<(usize, T)>();
        {
            // A poisoned mutex only means an earlier batch panicked
            // after its rendezvous; the worker threads are intact.
            let mut pool = self
                .inner
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            // `scoped` blocks until every task has run and re-raises the
            // first task panic with its original payload.
            pool.scoped(|scope| {
                for (index, task) in tasks.into_iter().enumerate() {
                    let result_tx = result_tx.clone();
                    scope.execute(move || {
                        result_tx
                            .send((index, task()))
                            .expect("scatter collector outlives workers");
                    });
                }
            });
        }
        drop(result_tx);
        while let Ok((index, value)) = result_rx.try_recv() {
            results[index] = Some(value);
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every task produced a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn square_tasks(data: &[u64]) -> Vec<impl FnOnce() -> u64 + Send + '_> {
        data.iter().map(|&x| move || x * x).collect()
    }

    #[test]
    fn sequential_runs_in_order() {
        let order = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..5)
            .map(|i| {
                let order = &order;
                move || {
                    assert_eq!(order.fetch_add(1, Ordering::SeqCst), i);
                    i
                }
            })
            .collect();
        assert_eq!(Sequential.scatter(tasks), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pool_matches_sequential_at_every_worker_count() {
        let data: Vec<u64> = (0..23).collect();
        let expected = Sequential.scatter(square_tasks(&data));
        for workers in [1, 2, 3, 7, 32] {
            assert_eq!(
                Pool::new(workers).scatter(square_tasks(&data)),
                expected,
                "worker count {workers}"
            );
        }
    }

    #[test]
    fn pool_handles_empty_and_singleton_batches() {
        let empty: Vec<fn() -> u8> = Vec::new();
        assert!(Pool::new(4).scatter(empty).is_empty());
        assert_eq!(Pool::new(4).scatter(vec![|| 9u8]), vec![9]);
    }

    #[test]
    fn pool_tasks_mutate_disjoint_borrows() {
        let mut buckets = vec![0u64; 6];
        let tasks: Vec<_> = buckets
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| move || *slot = i as u64 * 10)
            .collect();
        Pool::new(3).scatter(tasks);
        assert_eq!(buckets, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        Pool::new(0);
    }

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for len in 0..40usize {
            for chunks in 1..10usize {
                let ranges = chunk_ranges(len, chunks);
                assert!(ranges.len() <= chunks);
                assert!(ranges.iter().all(|r| !r.is_empty()), "{len}/{chunks}");
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..len).collect::<Vec<_>>(), "{len}/{chunks}");
                if let (Some(first), Some(last)) = (ranges.first(), ranges.last()) {
                    assert!(first.len() - last.len() <= 1, "balanced: {len}/{chunks}");
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_zero_chunks_is_clamped() {
        assert_eq!(chunk_ranges(5, 0), vec![0..5]);
        assert!(chunk_ranges(0, 0).is_empty());
    }

    #[test]
    fn pool_propagates_task_panics_with_their_message() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(2).scatter(
                (0..4)
                    .map(|i| move || assert_ne!(i, 2, "task bug"))
                    .collect::<Vec<_>>(),
            )
        });
        let payload = result.expect_err("the task panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a message");
        assert!(
            message.contains("task bug"),
            "original message lost: {message:?}"
        );
    }
}
