//! Durable journals and crash-recovery replay.
//!
//! The engines in this workspace are deterministic round automata, which
//! makes crash recovery a *replay* problem: persist what each process
//! **received** per round (plus optional state snapshots), and a crashed
//! process can be rebuilt bit-for-bit by respawning a fresh automaton and
//! re-feeding it the journaled rounds. This module provides the pieces:
//!
//! * [`Journal`] — an append/sync/recover log of opaque byte records.
//!   Two backends ship: [`MemJournal`] (the engines' default, modelling
//!   the write-vs-fsync boundary in memory) and [`FileWal`] (a file-backed
//!   write-ahead log with checksummed records, the durable-state substrate
//!   the `homonymd` service tier will sit on).
//! * [`JournalEntry`] — the typed record layer: per-round delivered
//!   envelopes and versioned state snapshots, encoded with the exact wire
//!   codec ([`crate::codec`]).
//! * [`replay`] — rebuilds a process from its entries: restore the last
//!   snapshot (if any), then re-run `send`/`receive` for every journaled
//!   round after it.
//! * [`Fault`] — seeded, reproducible WAL corruption (torn tail writes,
//!   truncation, bit flips) for the recovery-hardening tests: every
//!   injected fault must surface as a typed [`JournalError`], never as
//!   silently decoded garbage.
//!
//! # On-disk format
//!
//! ```text
//! magic "HJWL" | version u8 | record*      record := len u32le | crc32 u32le | payload
//! ```
//!
//! `crc32` is the IEEE CRC-32 of the payload. Recovery scans records in
//! order and stops at the first damage, returning the intact prefix plus
//! a typed description of the damage — the *clean rollback* contract.

use std::collections::VecDeque;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use crate::codec::{
    decode_frame, DecodeError, Reader, WireDecode, WireEncode, Writer, FORMAT_VERSION,
};
use crate::config::Counting;
use crate::id::Id;
use crate::message::{Envelope, Inbox};
use crate::process::{Protocol, Round};

/// The WAL header: 4 magic bytes plus the codec format version.
const MAGIC: [u8; 4] = *b"HJWL";
/// Full header length in bytes (magic + version).
const HEADER_LEN: u64 = 5;
/// Per-record framing overhead in bytes (length + checksum).
const RECORD_HEADER_LEN: usize = 8;
/// Upper bound on a single record's payload — a length field larger than
/// this is treated as corruption rather than attempted as an allocation.
const MAX_RECORD_LEN: u32 = 1 << 28;

/// What kind of damage a recovery scan found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptKind {
    /// The file does not start with the WAL magic/version header.
    BadMagic,
    /// The log ends inside a record header or payload — a torn or
    /// truncated tail write.
    TornRecord,
    /// A record's payload does not match its stored CRC-32 — a bit flip
    /// or overwrite.
    BadChecksum,
    /// A record header declares an implausibly large payload.
    OversizeRecord,
}

impl fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptKind::BadMagic => write!(f, "bad magic"),
            CorruptKind::TornRecord => write!(f, "torn record"),
            CorruptKind::BadChecksum => write!(f, "bad checksum"),
            CorruptKind::OversizeRecord => write!(f, "oversize record"),
        }
    }
}

/// Why a journal operation failed. Every corruption mode injected by
/// [`Fault`] must map onto one of these — recovery never hands back
/// garbage bytes as if they were records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// An underlying I/O operation failed (message stringified so the
    /// error stays comparable in tests).
    Io(String),
    /// The log is damaged at the given byte offset.
    Corrupt {
        /// Byte offset of the damaged record's header.
        offset: u64,
        /// The damage category.
        kind: CorruptKind,
    },
    /// A checksummed record decoded to no valid [`JournalEntry`].
    Decode(DecodeError),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::Corrupt { offset, kind } => {
                write!(f, "journal corrupt at byte {offset}: {kind}")
            }
            JournalError::Decode(e) => write!(f, "journal record undecodable: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e.to_string())
    }
}

impl From<DecodeError> for JournalError {
    fn from(e: DecodeError) -> Self {
        JournalError::Decode(e)
    }
}

/// The result of a recovery scan: every record before the first damage,
/// plus the damage itself (if any).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Recovered {
    /// The intact record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// The first damage the scan hit, or `None` for a clean log.
    pub damage: Option<JournalError>,
}

/// An append-only, crash-consistent record log.
///
/// `append` stages a record; `sync` makes everything staged durable. A
/// crash (real or injected) may lose any suffix of the un-synced bytes —
/// [`recover`](Journal::recover) returns whatever survived, intact
/// records only.
pub trait Journal {
    /// Stages one record payload.
    fn append(&mut self, payload: &[u8]) -> Result<(), JournalError>;
    /// Makes every staged record durable.
    fn sync(&mut self) -> Result<(), JournalError>;
    /// Scans the durable log, returning the intact prefix and the first
    /// damage found (typed — corrupt bytes are never returned as records).
    fn recover(&self) -> Recovered;
    /// Discards the whole log, durably (a recovery baseline reset: after
    /// an amnesiac rejoin the pre-crash history must not replay).
    fn reset(&mut self) -> Result<(), JournalError>;
}

/// IEEE CRC-32, table-driven (the workspace vendors no checksum crate).
fn crc32(bytes: &[u8]) -> u32 {
    fn table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    }
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(table);
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Frames one record (length + checksum + payload) onto a byte sink.
fn frame_record(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Scans a framed byte log (without the file header; `base` is the byte
/// offset the slice starts at, for damage reporting).
fn scan_records(bytes: &[u8], base: u64) -> Recovered {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let offset = base + pos as u64;
        if bytes.len() - pos < RECORD_HEADER_LEN {
            return Recovered {
                records,
                damage: Some(JournalError::Corrupt {
                    offset,
                    kind: CorruptKind::TornRecord,
                }),
            };
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            return Recovered {
                records,
                damage: Some(JournalError::Corrupt {
                    offset,
                    kind: CorruptKind::OversizeRecord,
                }),
            };
        }
        let start = pos + RECORD_HEADER_LEN;
        let end = start + len as usize;
        if end > bytes.len() {
            return Recovered {
                records,
                damage: Some(JournalError::Corrupt {
                    offset,
                    kind: CorruptKind::TornRecord,
                }),
            };
        }
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            return Recovered {
                records,
                damage: Some(JournalError::Corrupt {
                    offset,
                    kind: CorruptKind::BadChecksum,
                }),
            };
        }
        records.push(payload.to_vec());
        pos = end;
    }
    Recovered {
        records,
        damage: None,
    }
}

/// The in-memory journal backend: the engines' default.
///
/// Staged records become durable on [`sync`](Journal::sync);
/// [`crash`](MemJournal::crash) models power loss by dropping everything
/// staged since the last sync.
#[derive(Clone, Debug, Default)]
pub struct MemJournal {
    synced: Vec<Vec<u8>>,
    staged: VecDeque<Vec<u8>>,
}

impl MemJournal {
    /// An empty journal.
    pub fn new() -> Self {
        MemJournal::default()
    }

    /// Simulates a crash: every record staged since the last
    /// [`sync`](Journal::sync) is lost.
    pub fn crash(&mut self) {
        self.staged.clear();
    }

    /// Total durable payload bytes (the journal-size metric the recovery
    /// bench reports).
    pub fn synced_bytes(&self) -> u64 {
        self.synced.iter().map(|r| r.len() as u64).sum()
    }
}

impl Journal for MemJournal {
    fn append(&mut self, payload: &[u8]) -> Result<(), JournalError> {
        self.staged.push_back(payload.to_vec());
        Ok(())
    }

    fn sync(&mut self) -> Result<(), JournalError> {
        self.synced.extend(self.staged.drain(..));
        Ok(())
    }

    fn recover(&self) -> Recovered {
        Recovered {
            records: self.synced.clone(),
            damage: None,
        }
    }

    fn reset(&mut self) -> Result<(), JournalError> {
        self.synced.clear();
        self.staged.clear();
        Ok(())
    }
}

/// A file-backed write-ahead log with checksummed records.
///
/// `append` writes through to the file immediately; `sync` calls
/// `fsync`. [`crash`](FileWal::crash) models power loss between write
/// and fsync: a *seeded* amount of the un-synced tail survives (possibly
/// tearing the last record mid-write), the rest is lost. The seeded
/// [`Fault`] injectors corrupt the file in place for the hardening tests.
#[derive(Debug)]
pub struct FileWal {
    path: PathBuf,
    file: File,
    /// Bytes guaranteed on disk (header included).
    synced_len: u64,
    /// Bytes written (header included); the suffix past `synced_len` is
    /// at the mercy of a crash.
    len: u64,
}

impl FileWal {
    /// Creates (or truncates) the WAL at `path` and writes the header.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, JournalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(&MAGIC)?;
        file.write_all(&[FORMAT_VERSION])?;
        file.sync_data()?;
        Ok(FileWal {
            path,
            file,
            synced_len: HEADER_LEN,
            len: HEADER_LEN,
        })
    }

    /// The WAL's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes durable on disk (header included).
    pub fn synced_len(&self) -> u64 {
        self.synced_len
    }

    /// Simulates power loss between write and fsync: of the un-synced
    /// tail, a seeded prefix survives — everything from a clean cut at
    /// the sync watermark to a torn half-record.
    pub fn crash(&mut self, seed: u64) -> Result<(), JournalError> {
        let tail = self.len - self.synced_len;
        let survives = if tail == 0 {
            0
        } else {
            splitmix(seed) % (tail + 1)
        };
        let new_len = self.synced_len + survives;
        self.file.set_len(new_len)?;
        self.file.seek(SeekFrom::End(0))?;
        self.len = new_len;
        Ok(())
    }

    /// Injects one corruption fault into the on-disk bytes.
    pub fn inject(&mut self, fault: &Fault) -> Result<(), JournalError> {
        let mut bytes = std::fs::read(&self.path)?;
        match *fault {
            Fault::TornTail { drop } => {
                let keep = bytes.len().saturating_sub(drop as usize);
                bytes.truncate(keep);
            }
            Fault::Truncate { len } => {
                bytes.truncate(len as usize);
            }
            Fault::BitFlip { offset, bit } => {
                if let Some(b) = bytes.get_mut(offset as usize) {
                    *b ^= 1 << (bit % 8);
                }
            }
        }
        std::fs::write(&self.path, &bytes)?;
        self.len = bytes.len() as u64;
        self.synced_len = self.synced_len.min(self.len);
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.file.seek(SeekFrom::End(0))?;
        Ok(())
    }
}

impl Journal for FileWal {
    fn append(&mut self, payload: &[u8]) -> Result<(), JournalError> {
        let mut framed = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        frame_record(&mut framed, payload);
        self.file.write_all(&framed)?;
        self.len += framed.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), JournalError> {
        self.file.sync_data()?;
        self.synced_len = self.len;
        Ok(())
    }

    fn recover(&self) -> Recovered {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(e) => {
                return Recovered {
                    records: Vec::new(),
                    damage: Some(e.into()),
                }
            }
        };
        if bytes.len() < HEADER_LEN as usize || bytes[..4] != MAGIC || bytes[4] != FORMAT_VERSION {
            return Recovered {
                records: Vec::new(),
                damage: Some(JournalError::Corrupt {
                    offset: 0,
                    kind: CorruptKind::BadMagic,
                }),
            };
        }
        scan_records(&bytes[HEADER_LEN as usize..], HEADER_LEN)
    }

    fn reset(&mut self) -> Result<(), JournalError> {
        self.file.set_len(HEADER_LEN)?;
        self.file.seek(SeekFrom::End(0))?;
        self.file.sync_data()?;
        self.len = HEADER_LEN;
        self.synced_len = HEADER_LEN;
        Ok(())
    }
}

/// One seeded WAL corruption, for the recovery-hardening tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Drop the last `drop` bytes (a torn tail write).
    TornTail {
        /// Bytes torn off the end.
        drop: u64,
    },
    /// Truncate the file to `len` bytes.
    Truncate {
        /// Surviving file length.
        len: u64,
    },
    /// Flip one bit in place.
    BitFlip {
        /// Byte offset of the flip.
        offset: u64,
        /// Bit index within the byte (taken mod 8).
        bit: u8,
    },
}

impl Fault {
    /// Draws one fault for a log of `file_len` bytes from a splitmix64
    /// stream over `seed` — same seed, same fault, every platform.
    pub fn draw(seed: u64, file_len: u64) -> Fault {
        let kind = splitmix(seed) % 3;
        let a = splitmix(seed.wrapping_add(1));
        let b = splitmix(seed.wrapping_add(2));
        match kind {
            0 => Fault::TornTail {
                drop: 1 + a % file_len.max(1),
            },
            1 => Fault::Truncate {
                len: a % file_len.max(1),
            },
            _ => Fault::BitFlip {
                offset: a % file_len.max(1),
                bit: (b % 8) as u8,
            },
        }
    }
}

/// One splitmix64 step (the same generator the scenario sub-streams use).
fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A typed journal record: what one process experienced, round by round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalEntry<M> {
    /// The envelopes delivered to this process in `round` (possibly
    /// none — an entry is journaled for every executed round, because
    /// `send` mutates state and replay must re-run it).
    Deliveries {
        /// The round these envelopes arrived in.
        round: Round,
        /// `(sender identifier, message)` pairs in delivery order.
        envelopes: Vec<(Id, M)>,
    },
    /// A versioned state snapshot, valid at the *start* of `round`:
    /// replay restores the latest snapshot and re-runs only the rounds
    /// after it.
    Snapshot {
        /// The first round NOT covered by this snapshot.
        round: Round,
        /// The [`Protocol::snapshot`] bytes.
        bytes: Vec<u8>,
    },
}

const TAG_DELIVERIES: u8 = 0;
const TAG_SNAPSHOT: u8 = 1;

impl<M: WireEncode> WireEncode for JournalEntry<M> {
    fn encode(&self, w: &mut Writer) {
        match self {
            JournalEntry::Deliveries { round, envelopes } => {
                w.put_u8(TAG_DELIVERIES);
                round.encode(w);
                envelopes.encode(w);
            }
            JournalEntry::Snapshot { round, bytes } => {
                w.put_u8(TAG_SNAPSHOT);
                round.encode(w);
                bytes.encode(w);
            }
        }
    }
}

impl<M: WireDecode> WireDecode for JournalEntry<M> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take_u8()? {
            TAG_DELIVERIES => Ok(JournalEntry::Deliveries {
                round: Round::decode(r)?,
                envelopes: Vec::decode(r)?,
            }),
            TAG_SNAPSHOT => Ok(JournalEntry::Snapshot {
                round: Round::decode(r)?,
                bytes: Vec::decode(r)?,
            }),
            tag => Err(DecodeError::BadTag {
                what: "JournalEntry",
                tag,
            }),
        }
    }
}

/// Encodes a deliveries entry straight from the engine's `Arc`-shared
/// wires — byte-identical to encoding an owned
/// [`JournalEntry::Deliveries`], without cloning any payload.
pub fn encode_deliveries_entry<M: WireEncode>(
    round: Round,
    envelopes: &[(Id, std::sync::Arc<M>)],
) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(FORMAT_VERSION);
    w.put_u8(TAG_DELIVERIES);
    round.encode(&mut w);
    w.put_varint(envelopes.len() as u64);
    for (src, msg) in envelopes {
        src.encode(&mut w);
        msg.encode(&mut w);
    }
    w.into_vec()
}

/// Encodes a snapshot entry (no message bound — snapshot bytes are
/// already codec-framed by the protocol).
pub fn encode_snapshot_entry(round: Round, bytes: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(FORMAT_VERSION);
    w.put_u8(TAG_SNAPSHOT);
    round.encode(&mut w);
    w.put_varint(bytes.len() as u64);
    for &b in bytes {
        w.put_varint(u64::from(b));
    }
    w.into_vec()
}

/// Decodes every recovered record into typed entries. Fails on the first
/// undecodable record — checksummed-but-meaningless bytes are an error,
/// never a silently empty entry.
pub fn decode_entries<M: WireDecode>(
    records: &[Vec<u8>],
) -> Result<Vec<JournalEntry<M>>, JournalError> {
    records
        .iter()
        .map(|r| decode_frame::<JournalEntry<M>>(r).map_err(JournalError::Decode))
        .collect()
}

/// Replays journal entries into a freshly spawned automaton: restores
/// the latest snapshot (if the entries carry one), then re-runs
/// `send`/`receive` for every journaled round after it — determinism
/// makes the result byte-identical to the pre-crash state. Returns the
/// first round *not* replayed (what the process should execute next).
pub fn replay<P: Protocol>(
    proc_: &mut P,
    entries: Vec<JournalEntry<P::Msg>>,
    counting: Counting,
) -> Result<Round, DecodeError> {
    let mut from = Round::ZERO;
    for entry in &entries {
        if let JournalEntry::Snapshot { round, .. } = entry {
            from = (*round).max(from);
        }
    }
    if from > Round::ZERO {
        let bytes = entries
            .iter()
            .rev()
            .find_map(|e| match e {
                JournalEntry::Snapshot { round, bytes } if *round == from => Some(bytes),
                _ => None,
            })
            .expect("snapshot round came from an entry");
        proc_.restore(bytes)?;
    }
    let mut next = from;
    for entry in entries {
        if let JournalEntry::Deliveries { round, envelopes } = entry {
            if round < from {
                continue;
            }
            let _ = proc_.send_shared(round);
            let inbox = Inbox::collect(
                envelopes
                    .into_iter()
                    .map(|(src, msg)| Envelope { src, msg }),
                counting,
            );
            proc_.receive(round, &inbox);
            next = round.next();
        }
    }
    Ok(next)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(round: u64, msgs: &[(u16, u64)]) -> Vec<u8> {
        let e = JournalEntry::Deliveries {
            round: Round::new(round),
            envelopes: msgs
                .iter()
                .map(|&(id, m)| (Id::new(id), m))
                .collect::<Vec<(Id, u64)>>(),
        };
        crate::codec::encode_frame(&e)
    }

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn mem_journal_sync_boundary() {
        let mut j = MemJournal::new();
        j.append(b"a").unwrap();
        j.sync().unwrap();
        j.append(b"b").unwrap();
        j.crash();
        j.append(b"c").unwrap();
        j.sync().unwrap();
        let rec = j.recover();
        assert_eq!(rec.records, vec![b"a".to_vec(), b"c".to_vec()]);
        assert_eq!(rec.damage, None);
    }

    #[test]
    fn entry_round_trips_through_frames() {
        let bytes = entry(3, &[(1, 10), (2, 20)]);
        let decoded: JournalEntry<u64> = decode_frame(&bytes).unwrap();
        assert_eq!(
            decoded,
            JournalEntry::Deliveries {
                round: Round::new(3),
                envelopes: vec![(Id::new(1), 10), (Id::new(2), 20)],
            }
        );
    }

    #[test]
    fn arc_encoder_matches_owned_encoding() {
        use std::sync::Arc;
        let owned = entry(5, &[(1, 42), (3, 7)]);
        let shared = encode_deliveries_entry(
            Round::new(5),
            &[(Id::new(1), Arc::new(42u64)), (Id::new(3), Arc::new(7u64))],
        );
        assert_eq!(owned, shared);
    }

    #[test]
    fn snapshot_encoder_matches_owned_encoding() {
        let e: JournalEntry<u64> = JournalEntry::Snapshot {
            round: Round::new(4),
            bytes: vec![1, 2, 200],
        };
        let owned = crate::codec::encode_frame(&e);
        assert_eq!(owned, encode_snapshot_entry(Round::new(4), &[1, 2, 200]));
    }

    #[test]
    fn undecodable_record_is_a_typed_error() {
        let garbage = vec![vec![0xff, 0xff, 0xff]];
        let err = decode_entries::<u64>(&garbage).unwrap_err();
        assert!(matches!(err, JournalError::Decode(_)));
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("homonym-journal-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn file_wal_round_trips() {
        let path = tmp("roundtrip");
        let mut wal = FileWal::create(&path).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        wal.sync().unwrap();
        let rec = wal.recover();
        assert_eq!(rec.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(rec.damage, None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_wal_crash_loses_only_unsynced_tail() {
        let path = tmp("crash");
        let mut wal = FileWal::create(&path).unwrap();
        wal.append(b"durable").unwrap();
        wal.sync().unwrap();
        wal.append(b"staged-but-lost").unwrap();
        wal.crash(7).unwrap();
        let rec = wal.recover();
        // The synced prefix always survives; the tail either vanished
        // cleanly or tore mid-record — never decoded as garbage.
        assert_eq!(rec.records[0], b"durable".to_vec());
        assert!(rec.records.len() <= 2);
        if rec.records.len() == 1 && rec.damage.is_some() {
            assert!(matches!(
                rec.damage,
                Some(JournalError::Corrupt {
                    kind: CorruptKind::TornRecord,
                    ..
                })
            ));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_is_detected() {
        let path = tmp("flip");
        let mut wal = FileWal::create(&path).unwrap();
        wal.append(b"payload-under-test").unwrap();
        wal.sync().unwrap();
        // Flip a payload bit (past the record header).
        wal.inject(&Fault::BitFlip {
            offset: HEADER_LEN + RECORD_HEADER_LEN as u64 + 2,
            bit: 3,
        })
        .unwrap();
        let rec = wal.recover();
        assert!(rec.records.is_empty());
        assert!(matches!(
            rec.damage,
            Some(JournalError::Corrupt {
                kind: CorruptKind::BadChecksum,
                ..
            })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_damage_is_bad_magic() {
        let path = tmp("magic");
        let mut wal = FileWal::create(&path).unwrap();
        wal.append(b"x").unwrap();
        wal.sync().unwrap();
        wal.inject(&Fault::BitFlip { offset: 1, bit: 0 }).unwrap();
        let rec = wal.recover();
        assert_eq!(
            rec.damage,
            Some(JournalError::Corrupt {
                offset: 0,
                kind: CorruptKind::BadMagic,
            })
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_empties_durably() {
        let path = tmp("reset");
        let mut wal = FileWal::create(&path).unwrap();
        wal.append(b"gone").unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
        let rec = wal.recover();
        assert!(rec.records.is_empty());
        assert_eq!(rec.damage, None);
        wal.append(b"fresh").unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.recover().records, vec![b"fresh".to_vec()]);
        std::fs::remove_file(&path).ok();
    }
}
