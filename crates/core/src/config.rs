//! System parameters: `(n, ℓ, t)` and the three model axes of the paper.

use crate::error::ConfigError;

/// The synchrony model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Synchrony {
    /// Lock-step rounds; every message sent is delivered in its round.
    Synchronous,
    /// The *basic partially synchronous* model of Dwork, Lynch and
    /// Stockmeyer: computation still proceeds in rounds, but in each
    /// execution a finite (though unbounded) number of messages may fail to
    /// be delivered. Operationally: there is an unknown global stabilization
    /// round after which every message is delivered.
    PartiallySynchronous,
}

/// Whether processes can count copies of identical messages in a round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counting {
    /// Messages received in a round form a **multiset**: a process can count
    /// copies of identical messages.
    Numerate,
    /// Messages received in a round form a **set**: identical copies
    /// collapse, so counting is impossible.
    Innumerate,
}

/// How many messages a Byzantine process may send to a single recipient in
/// one round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ByzPower {
    /// A Byzantine process may send arbitrarily many messages per recipient
    /// per round — in particular it can impersonate a whole stack of
    /// homonyms by itself (used by the Figure 1 and Figure 4 lower bounds).
    Unrestricted,
    /// A Byzantine process sends at most one message per recipient per
    /// round, like a correct process. The paper shows this weakening drops
    /// the identifier requirement to `ℓ > t` for numerate processes.
    Restricted,
}

/// Full system parameters: `n` processes, `ℓ` identifiers, at most `t`
/// Byzantine processes, plus the model axes.
///
/// `SystemConfig` is a passive parameter record (all fields public); use
/// [`SystemConfig::builder`] for validated construction and
/// [`SystemConfig::validate`] after mutating fields.
///
/// # Example
///
/// ```
/// use homonym_core::{SystemConfig, Synchrony, Counting, ByzPower};
///
/// let cfg = SystemConfig::builder(7, 5, 1)
///     .synchrony(Synchrony::PartiallySynchronous)
///     .counting(Counting::Innumerate)
///     .byz_power(ByzPower::Unrestricted)
///     .build()?;
/// assert_eq!(cfg.quorum(), 4); // ℓ - t identifiers
/// # Ok::<(), homonym_core::ConfigError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SystemConfig {
    /// Number of processes.
    pub n: usize,
    /// Number of identifiers actually assigned, `1 ≤ ℓ ≤ n`.
    pub ell: usize,
    /// Maximum number of Byzantine processes.
    pub t: usize,
    /// Synchrony model.
    pub synchrony: Synchrony,
    /// Numerate or innumerate reception.
    pub counting: Counting,
    /// Byzantine sending power.
    pub byz_power: ByzPower,
}

impl SystemConfig {
    /// Starts building a configuration for `n` processes, `ell` identifiers
    /// and fault bound `t`. Defaults: synchronous, innumerate, unrestricted
    /// (the paper's base model).
    pub fn builder(n: usize, ell: usize, t: usize) -> SystemConfigBuilder {
        SystemConfigBuilder {
            cfg: SystemConfig {
                n,
                ell,
                t,
                synchrony: Synchrony::Synchronous,
                counting: Counting::Innumerate,
                byz_power: ByzPower::Unrestricted,
            },
        }
    }

    /// Checks the structural constraints `n ≥ 2`, `1 ≤ ℓ ≤ n`, `t < n`.
    ///
    /// Note that this does **not** check `n > 3t` — that is a *solvability*
    /// condition, not a model constraint, and lower-bound experiments
    /// deliberately configure unsolvable systems. Use
    /// [`bounds::solvable`](crate::bounds::solvable) for solvability.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n < 2 {
            return Err(ConfigError::TooFewProcesses { n: self.n });
        }
        if self.ell == 0 || self.ell > self.n {
            return Err(ConfigError::BadEll {
                ell: self.ell,
                n: self.n,
            });
        }
        if self.t >= self.n {
            return Err(ConfigError::TooManyFaults {
                t: self.t,
                n: self.n,
            });
        }
        Ok(())
    }

    /// The identifier quorum `ℓ − t` used throughout the Figure 5 protocol.
    ///
    /// # Panics
    ///
    /// Panics if `t > ℓ` (such configurations never pass solvability checks).
    pub fn quorum(&self) -> usize {
        self.ell
            .checked_sub(self.t)
            .expect("quorum requires t <= ell")
    }

    /// The echo-join threshold `ℓ − 2t` of the authenticated broadcast
    /// (Proposition 6). Saturates at zero for out-of-range configurations so
    /// lower-bound experiments can still instantiate the protocol.
    pub fn echo_join(&self) -> usize {
        self.ell.saturating_sub(2 * self.t)
    }

    /// `n − t`, the process-count quorum of the Figure 6/7 protocols.
    pub fn n_minus_t(&self) -> usize {
        self.n.checked_sub(self.t).expect("t < n is validated")
    }

    /// `n − 2t`, the echo-join threshold of the Figure 6 broadcast.
    /// Saturates at zero.
    pub fn n_minus_2t(&self) -> usize {
        self.n.saturating_sub(2 * self.t)
    }

    /// Whether `n > 3t`, the baseline requirement for Byzantine agreement
    /// even with unique identifiers.
    pub fn n_exceeds_3t(&self) -> bool {
        self.n > 3 * self.t
    }
}

/// Builder for [`SystemConfig`]; see [`SystemConfig::builder`].
#[derive(Clone, Debug)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    /// Sets the synchrony model.
    pub fn synchrony(mut self, synchrony: Synchrony) -> Self {
        self.cfg.synchrony = synchrony;
        self
    }

    /// Sets numerate or innumerate reception.
    pub fn counting(mut self, counting: Counting) -> Self {
        self.cfg.counting = counting;
        self
    }

    /// Sets the Byzantine sending power.
    pub fn byz_power(mut self, byz_power: ByzPower) -> Self {
        self.cfg.byz_power = byz_power;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated structural constraint.
    pub fn build(self) -> Result<SystemConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_base_model() {
        let cfg = SystemConfig::builder(4, 4, 1).build().unwrap();
        assert_eq!(cfg.synchrony, Synchrony::Synchronous);
        assert_eq!(cfg.counting, Counting::Innumerate);
        assert_eq!(cfg.byz_power, ByzPower::Unrestricted);
    }

    #[test]
    fn validation_catches_each_constraint() {
        assert!(matches!(
            SystemConfig::builder(1, 1, 0).build(),
            Err(ConfigError::TooFewProcesses { .. })
        ));
        assert!(matches!(
            SystemConfig::builder(3, 0, 1).build(),
            Err(ConfigError::BadEll { .. })
        ));
        assert!(matches!(
            SystemConfig::builder(3, 4, 1).build(),
            Err(ConfigError::BadEll { .. })
        ));
        assert!(matches!(
            SystemConfig::builder(3, 3, 3).build(),
            Err(ConfigError::TooManyFaults { .. })
        ));
    }

    #[test]
    fn unsolvable_systems_are_still_valid_models() {
        // ℓ = 3t is unsolvable but must be constructible for lower-bound
        // experiments.
        let cfg = SystemConfig::builder(4, 3, 1).build().unwrap();
        assert!(cfg.n_exceeds_3t());
        assert_eq!(cfg.quorum(), 2);
    }

    #[test]
    fn thresholds() {
        let cfg = SystemConfig::builder(7, 6, 1).build().unwrap();
        assert_eq!(cfg.quorum(), 5);
        assert_eq!(cfg.echo_join(), 4);
        assert_eq!(cfg.n_minus_t(), 6);
        assert_eq!(cfg.n_minus_2t(), 5);
    }

    #[test]
    fn echo_join_saturates() {
        let cfg = SystemConfig::builder(4, 1, 1).build().unwrap();
        assert_eq!(cfg.echo_join(), 0);
        assert_eq!(cfg.n_minus_2t(), 2);
    }
}
