//! Payload interning and identifier bitsets — the small-key utilities the
//! hot protocol paths key their evidence tables with.
//!
//! The Figure 5/6/7 broadcast layers accumulate evidence per
//! `(payload, superround, identifier)` key. Payloads are deep values
//! (candidate sets, vote tuples), so keying maps on them directly means a
//! deep clone per observed item and a deep comparison per map probe —
//! `O(rounds × n × active echoes)` clones, the protocol-side wall the
//! `fabric_scaling` bench exposes. An [`Interner`] maps each distinct
//! payload to a dense `u32` token exactly once; from then on the hot maps
//! key on small `Copy` tuples and the payload is only touched again when a
//! wire bundle is rebuilt or an accept fires.
//!
//! [`IdBits`] is the companion evidence set: "distinct identifiers seen
//! echoing this key" as a fixed-width bitset over the `ℓ` identifiers,
//! with a maintained popcount so the `ℓ − 2t` / `ℓ − t` threshold checks
//! are O(1) instead of a `BTreeSet` walk.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A dense token standing for one interned payload.
///
/// Tokens are assigned in first-seen order and are only meaningful to the
/// [`Interner`] that issued them.
pub type Tok = u32;

/// Maps deep values to dense [`Tok`]s, cloning each distinct value exactly
/// once (into an [`Arc`], shared between the lookup map and the resolve
/// table).
///
/// # Example
///
/// ```
/// use homonym_core::intern::Interner;
///
/// let mut interner: Interner<String> = Interner::new();
/// let a = interner.intern(&"alpha".to_string());
/// let b = interner.intern(&"beta".to_string());
/// assert_ne!(a, b);
/// assert_eq!(interner.intern(&"alpha".to_string()), a); // stable
/// assert_eq!(interner.resolve(a), "alpha");
/// assert_eq!(interner.get(&"gamma".to_string()), None); // read-only probe
/// ```
#[derive(Clone)]
pub struct Interner<T> {
    lookup: BTreeMap<Arc<T>, Tok>,
    items: Vec<Arc<T>>,
}

impl<T: Clone + Ord> Interner<T> {
    /// An empty interner.
    pub fn new() -> Self {
        Interner {
            lookup: BTreeMap::new(),
            items: Vec::new(),
        }
    }

    /// The token for `value`, interning it (one clone) on first sight.
    pub fn intern(&mut self, value: &T) -> Tok {
        if let Some(&tok) = self.lookup.get(value) {
            return tok;
        }
        let tok = Tok::try_from(self.items.len()).expect("interner overflow");
        let shared = Arc::new(value.clone());
        self.items.push(Arc::clone(&shared));
        self.lookup.insert(shared, tok);
        tok
    }

    /// The token for `value`, interning by cloning the caller's [`Arc`]
    /// handle on first sight — no deep clone even for new payloads.
    pub fn intern_shared(&mut self, value: &Arc<T>) -> Tok {
        if let Some(&tok) = self.lookup.get(&**value) {
            return tok;
        }
        let tok = Tok::try_from(self.items.len()).expect("interner overflow");
        self.items.push(Arc::clone(value));
        self.lookup.insert(Arc::clone(value), tok);
        tok
    }

    /// The token for `value` if it has been interned, without interning.
    pub fn get(&self, value: &T) -> Option<Tok> {
        self.lookup.get(value).copied()
    }

    /// The value behind `tok`.
    ///
    /// # Panics
    ///
    /// Panics if `tok` was not issued by this interner.
    pub fn resolve(&self, tok: Tok) -> &T {
        &self.items[tok as usize]
    }

    /// The shared handle behind `tok` (for callers that retain payloads).
    ///
    /// # Panics
    ///
    /// Panics if `tok` was not issued by this interner.
    pub fn resolve_shared(&self, tok: Tok) -> &Arc<T> {
        &self.items[tok as usize]
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<T: Clone + Ord> Default for Interner<T> {
    fn default() -> Self {
        Interner::new()
    }
}

impl<T: PartialEq> PartialEq for Interner<T> {
    fn eq(&self, other: &Self) -> bool {
        self.items.len() == other.items.len()
            && self.items.iter().zip(&other.items).all(|(a, b)| **a == **b)
    }
}

impl<T: Eq> Eq for Interner<T> {}

impl<T: std::hash::Hash> std::hash::Hash for Interner<T> {
    /// Hashes the interned values in token order — tokens are assigned
    /// first-seen, so two interners that interned the same values in the
    /// same order hash (and compare) equal regardless of map internals.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.items.len().hash(state);
        for item in &self.items {
            (**item).hash(state);
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Interner<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("items", &self.items)
            .finish()
    }
}

/// A growable bitset over identifier indices with a maintained popcount,
/// so evidence-threshold checks ("seen from `ℓ − t` distinct
/// identifiers") are O(1).
///
/// # Example
///
/// ```
/// use homonym_core::intern::IdBits;
///
/// let mut bits = IdBits::with_capacity(4);
/// assert!(bits.insert(2));
/// assert!(!bits.insert(2)); // already present
/// assert!(bits.insert(70)); // grows past the initial width
/// assert_eq!(bits.len(), 2);
/// assert!(bits.contains(70) && !bits.contains(0));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IdBits {
    words: Vec<u64>,
    count: u32,
}

impl IdBits {
    /// An empty bitset with no preallocated width.
    pub fn new() -> Self {
        IdBits::default()
    }

    /// An empty bitset sized for indices `0..bits` (it still grows on
    /// demand past that — malformed identifiers must count as evidence
    /// exactly like the `BTreeSet` they replace, not panic).
    pub fn with_capacity(bits: usize) -> Self {
        IdBits {
            words: vec![0; bits.div_ceil(64)],
            count: 0,
        }
    }

    /// Inserts `index`; returns whether it was newly set.
    pub fn insert(&mut self, index: usize) -> bool {
        let word = index / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << (index % 64);
        if self.words[word] & mask != 0 {
            return false;
        }
        self.words[word] |= mask;
        self.count += 1;
        true
    }

    /// Whether `index` is set.
    pub fn contains(&self, index: usize) -> bool {
        self.words
            .get(index / 64)
            .is_some_and(|w| w & (1u64 << (index % 64)) != 0)
    }

    /// Number of set indices (maintained, not recounted).
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether no index is set.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Clears every index while keeping the allocated width — the
    /// reset-and-reuse half of an alloc-free scratch bitset (the engines'
    /// per-tick duplicate checks reuse one `IdBits` across rounds).
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.count = 0;
    }

    /// Iterates over the set indices, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64)
                .filter(move |b| bits & (1u64 << b) != 0)
                .map(move |b| w * 64 + b)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_stable_and_dense() {
        let mut i: Interner<u32> = Interner::new();
        let toks: Vec<Tok> = (0..5).map(|v| i.intern(&(v * 10))).collect();
        assert_eq!(toks, vec![0, 1, 2, 3, 4]);
        for (k, tok) in toks.iter().enumerate() {
            assert_eq!(*i.resolve(*tok), k as u32 * 10);
            assert_eq!(i.get(&(k as u32 * 10)), Some(*tok));
        }
        assert_eq!(i.intern(&30), 3, "re-interning returns the same token");
        assert_eq!(i.len(), 5);
    }

    #[test]
    fn get_does_not_intern() {
        let mut i: Interner<&'static str> = Interner::new();
        assert_eq!(i.get(&"x"), None);
        assert!(i.is_empty());
        let tok = i.intern(&"x");
        assert_eq!(i.get(&"x"), Some(tok));
    }

    #[test]
    fn bits_insert_contains_count() {
        let mut b = IdBits::with_capacity(10);
        for idx in [0usize, 3, 9, 63, 64, 129] {
            assert!(b.insert(idx), "first insert of {idx}");
            assert!(!b.insert(idx), "second insert of {idx}");
            assert!(b.contains(idx));
        }
        assert_eq!(b.len(), 6);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 3, 9, 63, 64, 129]);
        assert!(!b.contains(1));
        assert!(!b.contains(10_000));
    }

    #[test]
    fn clear_keeps_width_but_forgets_everything() {
        let mut b = IdBits::with_capacity(8);
        b.insert(3);
        b.insert(200);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert!(!b.contains(3) && !b.contains(200));
        assert!(b.insert(3), "cleared indices insert as new");
    }

    #[test]
    fn empty_bits() {
        let b = IdBits::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert!(!b.contains(0));
        assert_eq!(b.iter().count(), 0);
    }
}
