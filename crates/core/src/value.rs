//! Proposal values, value domains, and the *proper set* bookkeeping used by
//! the partially synchronous protocols.

use std::collections::BTreeSet;
use std::fmt;
use std::hash::Hash;

use crate::id::Id;

/// A value that can be proposed to and decided by Byzantine agreement.
///
/// This is a marker trait with a blanket implementation: any ordered,
/// hashable, cloneable, printable, `Send + Sync + 'static` type qualifies
/// (`bool`, `u64`, `String`, …). Ordering is required because the paper's
/// algorithms make *deterministic choices* among candidate values (e.g.
/// Figure 3 line 5, Figure 7's lock selection), which we implement as
/// "smallest"; `Sync` lets values ride the `Arc`-shared delivery fabric
/// inside message payloads.
pub trait Value: Clone + Ord + Eq + Hash + fmt::Debug + Send + Sync + 'static {}

impl<T: Clone + Ord + Eq + Hash + fmt::Debug + Send + Sync + 'static> Value for T {}

/// The finite domain of values processes may propose.
///
/// The Figure 5 and Figure 7 protocols need the domain explicitly: one of
/// the proper-set rules is "add **all possible input values**", which only
/// makes sense over a known finite domain. Binary agreement uses
/// [`Domain::binary`].
///
/// # Example
///
/// ```
/// use homonym_core::Domain;
/// let d = Domain::binary();
/// assert_eq!(d.values(), &[false, true]);
/// assert!(d.contains(&true));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Domain<V> {
    values: Vec<V>,
}

impl<V: Value> Domain<V> {
    /// Creates a domain from the given values (sorted, deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty: agreement over an empty domain is
    /// meaningless.
    pub fn new(mut values: Vec<V>) -> Self {
        assert!(!values.is_empty(), "value domain must be non-empty");
        values.sort();
        values.dedup();
        Domain { values }
    }

    /// The sorted, deduplicated values of this domain.
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Whether `v` belongs to this domain.
    pub fn contains(&self, v: &V) -> bool {
        self.values.binary_search(v).is_ok()
    }

    /// The number of values in the domain.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the domain is empty (never true; see [`Domain::new`]).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The smallest value, used as the deterministic default in several
    /// algorithms.
    pub fn default_value(&self) -> &V {
        &self.values[0]
    }
}

impl Domain<bool> {
    /// The binary domain `{false, true}` (the paper's 0 and 1).
    pub fn binary() -> Self {
        Domain::new(vec![false, true])
    }
}

impl Domain<u32> {
    /// The domain `{0, 1, …, k−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn range(k: u32) -> Self {
        Domain::new((0..k).collect())
    }
}

impl<V: fmt::Debug> fmt::Debug for Domain<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Domain").field(&self.values).finish()
    }
}

/// A process's set of *proper values*: values it could output without
/// violating validity (Section 4.2 of the paper).
///
/// Initially only the process's own input is proper. Proper sets are
/// appended to every message; on reception the set grows by two rules:
///
/// 1. if proper sets containing `v` arrive from `t + 1` different
///    *identifiers* (innumerate rule, Figure 5) or in `t + 1` *messages*
///    (numerate rule, Figure 7), then `v` becomes proper;
/// 2. if proper sets arrive from `2t + 1` different identifiers (resp.
///    messages) and **no** value reaches the `t + 1` threshold, every domain
///    value becomes proper (possible only when correct inputs already
///    differ, so validity is vacuous).
///
/// # Example
///
/// ```
/// use homonym_core::{Domain, Id, ProperSet};
/// use std::collections::BTreeSet;
///
/// let domain = Domain::binary();
/// let mut proper = ProperSet::new(false);
/// let from_true: BTreeSet<bool> = [true].into();
/// // Three distinct identifiers report {true}: with t = 2 that meets t + 1.
/// let batch: Vec<(Id, &BTreeSet<bool>)> = (1..=3).map(|i| (Id::new(i), &from_true)).collect();
/// proper.update_by_identifiers(&batch, 2, &domain);
/// assert!(proper.contains(&true));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ProperSet<V> {
    set: BTreeSet<V>,
}

impl<V: Value> ProperSet<V> {
    /// Creates a proper set containing only the process's own input.
    pub fn new(input: V) -> Self {
        ProperSet {
            set: BTreeSet::from([input]),
        }
    }

    /// Whether `v` is currently proper.
    pub fn contains(&self, v: &V) -> bool {
        self.set.contains(v)
    }

    /// The current proper values, sorted.
    pub fn as_set(&self) -> &BTreeSet<V> {
        &self.set
    }

    /// Number of proper values.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether no value is proper (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Applies the innumerate (Figure 5) update rules to one round's
    /// received proper sets, counting **distinct identifiers**: an
    /// identifier supports `v` if any of its messages' proper sets contains
    /// `v`.
    pub fn update_by_identifiers(
        &mut self,
        received: &[(Id, &BTreeSet<V>)],
        t: usize,
        domain: &Domain<V>,
    ) {
        let reporter_ids: BTreeSet<Id> = received.iter().map(|&(i, _)| i).collect();
        let mut reached = false;
        for v in domain.values() {
            let supporters = received
                .iter()
                .filter(|(_, s)| s.contains(v))
                .map(|&(i, _)| i)
                .collect::<BTreeSet<Id>>()
                .len();
            if supporters >= t + 1 {
                self.set.insert(v.clone());
                reached = true;
            }
        }
        if !reached && reporter_ids.len() >= 2 * t + 1 {
            self.set.extend(domain.values().iter().cloned());
        }
    }

    /// Applies the numerate (Figure 7) update rules to one round's received
    /// proper sets, counting **messages with multiplicity**.
    pub fn update_by_count(
        &mut self,
        received: &[(u64, &BTreeSet<V>)],
        t: usize,
        domain: &Domain<V>,
    ) {
        let total: u64 = received.iter().map(|&(c, _)| c).sum();
        let mut reached = false;
        for v in domain.values() {
            let support: u64 = received
                .iter()
                .filter(|(_, s)| s.contains(v))
                .map(|&(c, _)| c)
                .sum();
            if support >= t as u64 + 1 {
                self.set.insert(v.clone());
                reached = true;
            }
        }
        if !reached && total >= 2 * t as u64 + 1 {
            self.set.extend(domain.values().iter().cloned());
        }
    }
}

impl<V: fmt::Debug> fmt::Debug for ProperSet<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ProperSet").field(&self.set).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_sorts_and_dedups() {
        let d = Domain::new(vec![3u32, 1, 2, 3, 1]);
        assert_eq!(d.values(), &[1, 2, 3]);
        assert_eq!(*d.default_value(), 1);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_rejected() {
        let _ = Domain::<u32>::new(vec![]);
    }

    #[test]
    fn binary_domain() {
        let d = Domain::binary();
        assert!(d.contains(&false) && d.contains(&true));
        assert!(!*d.default_value());
    }

    #[test]
    fn proper_starts_with_input_only() {
        let p = ProperSet::new(true);
        assert!(p.contains(&true));
        assert!(!p.contains(&false));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn identifier_rule_needs_t_plus_1_distinct_ids() {
        let domain = Domain::binary();
        let s: BTreeSet<bool> = [true].into();
        let t = 1;

        // Two messages from the SAME identifier do not count twice.
        let mut p = ProperSet::new(false);
        p.update_by_identifiers(&[(Id::new(1), &s), (Id::new(1), &s)], t, &domain);
        assert!(!p.contains(&true));

        // Two distinct identifiers reach t + 1 = 2.
        let mut p = ProperSet::new(false);
        p.update_by_identifiers(&[(Id::new(1), &s), (Id::new(2), &s)], t, &domain);
        assert!(p.contains(&true));
    }

    #[test]
    fn fallback_rule_adds_domain_when_no_common_value() {
        let domain = Domain::range(4);
        let t = 1;
        let s0: BTreeSet<u32> = [0].into();
        let s1: BTreeSet<u32> = [1].into();
        let s2: BTreeSet<u32> = [2].into();
        let mut p = ProperSet::new(3u32);
        // 2t + 1 = 3 identifiers, no value with t + 1 = 2 supporters.
        p.update_by_identifiers(
            &[(Id::new(1), &s0), (Id::new(2), &s1), (Id::new(3), &s2)],
            t,
            &domain,
        );
        for v in domain.values() {
            assert!(p.contains(v), "fallback must add {v}");
        }
    }

    #[test]
    fn fallback_rule_does_not_fire_below_2t_plus_1() {
        let domain = Domain::range(4);
        let t = 1;
        let s0: BTreeSet<u32> = [0].into();
        let s1: BTreeSet<u32> = [1].into();
        let mut p = ProperSet::new(3u32);
        p.update_by_identifiers(&[(Id::new(1), &s0), (Id::new(2), &s1)], t, &domain);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn fallback_rule_suppressed_when_some_value_reaches_threshold() {
        // Validity guard: if all correct processes propose v, every correct
        // proper set contains v, so the t+1 rule fires and the fallback
        // cannot.
        let domain = Domain::binary();
        let t = 1;
        let sv: BTreeSet<bool> = [false].into();
        let junk: BTreeSet<bool> = [true].into();
        let mut p = ProperSet::new(false);
        p.update_by_identifiers(
            &[(Id::new(1), &sv), (Id::new(2), &sv), (Id::new(3), &junk)],
            t,
            &domain,
        );
        assert!(p.contains(&false));
        assert!(
            !p.contains(&true),
            "one Byzantine identifier must not smuggle values in"
        );
    }

    #[test]
    fn count_rule_uses_multiplicity() {
        let domain = Domain::binary();
        let t = 1;
        let s: BTreeSet<bool> = [true].into();
        // Two identical copies (homonym clones) DO count in the numerate rule.
        let mut p = ProperSet::new(false);
        p.update_by_count(&[(2, &s)], t, &domain);
        assert!(p.contains(&true));

        let mut p = ProperSet::new(false);
        p.update_by_count(&[(1, &s)], t, &domain);
        assert!(!p.contains(&true));
    }

    #[test]
    fn count_fallback_rule() {
        let domain = Domain::range(3);
        let t = 1;
        let s0: BTreeSet<u32> = [0].into();
        let s1: BTreeSet<u32> = [1].into();
        let mut p = ProperSet::new(2u32);
        p.update_by_count(&[(1, &s0), (2, &s1)], t, &domain);
        // Value 1 has multiplicity 2 = t + 1, so the threshold rule fires
        // and the fallback must not.
        assert!(p.contains(&1));
        assert!(!p.contains(&0));
    }
}
