//! The exact binary wire codec: varint-based, zero-copy, hand-rolled.
//!
//! The workspace's cost instrumentation (the arXiv:2311.08060 message/
//! bit-cost reproduction in `paper_report`) used to report a structural
//! *estimate* ([`WireSize`](crate::WireSize)) because no serialization
//! layer existed. This module is that layer: [`WireEncode`]/[`WireDecode`]
//! are a trait pair over a byte-oriented [`Writer`]/[`Reader`], and every
//! `Msg` type in the workspace implements both, so `bits_sent` roll-ups
//! are the exact encoded length of what a networked transport would put
//! on the wire — no `Debug` formatting, no structural guessing.
//!
//! # Frame layout
//!
//! A framed message is a single leading **format version byte**
//! ([`FORMAT_VERSION`], currently `1`) followed by the payload encoding.
//! Decoding rejects unknown versions and trailing bytes, so accidental
//! format breaks fail loudly (the golden byte-vector tests pin one
//! representative encoding per message type).
//!
//! # Encoding rules
//!
//! * Unsigned integers (`u8`–`u64`, `usize`, lengths, counts) are LEB128
//!   varints: 7 value bits per byte, high bit = continuation.
//! * Signed integers are zigzag-mapped (`(n << 1) ^ (n >> 63)`) and then
//!   varint-encoded, so small magnitudes of either sign stay short.
//! * `bool` is one byte (`0`/`1`); `()` is zero bytes.
//! * Strings are a varint byte length followed by UTF-8 bytes.
//! * `Option<T>` is a one-byte presence tag; sequences (`Vec`,
//!   `VecDeque`, `BTreeSet`) are a varint count followed by the elements
//!   in iteration order; `BTreeMap` is a varint count followed by
//!   key/value pairs in key order. Ordered containers therefore have a
//!   canonical encoding: equal values encode to equal bytes.
//! * `Arc<T>`/`Box<T>`/`&T` encode as `T` (sharing is a process-local
//!   artifact, not a wire concept); `Arc<T>`/`Box<T>` decode by wrapping
//!   a freshly decoded `T`.
//!
//! Encoding is infallible and never clones the payload; decoding returns
//! [`DecodeError`] on malformed input. `decode(encode(m)) == m` holds for
//! every implementation (the round-trip property tests pin this per
//! message type).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use crate::id::{Id, Pid};
use crate::process::{Round, Superround};

/// The wire-format version this build encodes, carried as the single
/// leading byte of every frame.
pub const FORMAT_VERSION: u8 = 1;

/// Why a byte slice failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended inside a value.
    Eof,
    /// A frame decoded cleanly but left bytes behind.
    Trailing {
        /// How many bytes were left over.
        remaining: usize,
    },
    /// An enum/bool/option tag byte had no meaning.
    BadTag {
        /// The type whose tag was malformed.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A structurally valid encoding carried an out-of-domain value.
    BadValue(&'static str),
    /// The frame's leading version byte is not [`FORMAT_VERSION`].
    Version(u8),
    /// A varint ran longer than 10 bytes (no `u64` needs more).
    VarintOverflow,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Eof => write!(f, "input ended inside a value"),
            DecodeError::Trailing { remaining } => {
                write!(f, "{remaining} trailing bytes after the frame")
            }
            DecodeError::BadTag { what, tag } => write!(f, "bad tag {tag} for {what}"),
            DecodeError::BadValue(what) => write!(f, "out-of-domain value for {what}"),
            DecodeError::Version(v) => {
                write!(f, "unknown format version {v} (expected {FORMAT_VERSION})")
            }
            DecodeError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// An append-only byte sink encoders write into.
///
/// Engines keep one `Writer` as scratch and [`clear`](Writer::clear) it
/// between emissions, so measuring exact bits allocates nothing on the
/// steady state (the buffer is reused at its high-water mark).
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, yielding its bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Empties the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Appends one raw byte.
    pub fn put_u8(&mut self, byte: u8) {
        self.buf.push(byte);
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends an LEB128 varint.
    pub fn put_varint(&mut self, mut value: u64) {
        loop {
            let byte = (value & 0x7f) as u8;
            value >>= 7;
            if value == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a zigzag-mapped signed varint.
    pub fn put_signed(&mut self, value: i64) {
        self.put_varint(((value << 1) ^ (value >> 63)) as u64);
    }
}

/// A cursor over a byte slice decoders read from.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Reads one raw byte.
    pub fn take_u8(&mut self) -> Result<u8, DecodeError> {
        let byte = *self.buf.get(self.pos).ok_or(DecodeError::Eof)?;
        self.pos += 1;
        Ok(byte)
    }

    /// Reads `len` raw bytes.
    pub fn take_bytes(&mut self, len: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(len).ok_or(DecodeError::Eof)?;
        let bytes = self.buf.get(self.pos..end).ok_or(DecodeError::Eof)?;
        self.pos = end;
        Ok(bytes)
    }

    /// Reads an LEB128 varint.
    pub fn take_varint(&mut self) -> Result<u64, DecodeError> {
        let mut value: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.take_u8()?;
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                if shift == 63 && byte > 1 {
                    return Err(DecodeError::VarintOverflow);
                }
                return Ok(value);
            }
        }
        Err(DecodeError::VarintOverflow)
    }

    /// Reads a zigzag-mapped signed varint.
    pub fn take_signed(&mut self) -> Result<i64, DecodeError> {
        let raw = self.take_varint()?;
        Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
    }
}

/// A type with an exact binary wire encoding.
///
/// Encoding is infallible, deterministic (equal values produce equal
/// bytes), and never clones the value.
pub trait WireEncode {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);
}

/// A type decodable from its [`WireEncode`] bytes.
///
/// `decode(encode(m)) == m` must hold; the round-trip property tests pin
/// it per message type.
pub trait WireDecode: Sized {
    /// Reads one value from `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

/// Encodes `msg` as a framed byte vector: [`FORMAT_VERSION`] followed by
/// the payload encoding.
pub fn encode_frame<M: WireEncode + ?Sized>(msg: &M) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(FORMAT_VERSION);
    msg.encode(&mut w);
    w.into_vec()
}

/// Decodes one framed message, rejecting unknown versions and trailing
/// bytes.
pub fn decode_frame<M: WireDecode>(bytes: &[u8]) -> Result<M, DecodeError> {
    let mut r = Reader::new(bytes);
    let version = r.take_u8()?;
    if version != FORMAT_VERSION {
        return Err(DecodeError::Version(version));
    }
    let msg = M::decode(&mut r)?;
    if !r.is_empty() {
        return Err(DecodeError::Trailing {
            remaining: r.remaining(),
        });
    }
    Ok(msg)
}

std::thread_local! {
    static SCRATCH: std::cell::RefCell<Writer> = std::cell::RefCell::new(Writer::new());
}

/// The exact framed size of `msg` on the wire, in bits: 8 × (1 version
/// byte + payload bytes).
///
/// Encodes into a thread-local scratch buffer reused across calls, so the
/// per-emission cost measurement on the engine hot paths allocates
/// nothing at steady state.
pub fn frame_bits<M: WireEncode + ?Sized>(msg: &M) -> u64 {
    SCRATCH.with(|scratch| {
        let mut w = scratch.borrow_mut();
        w.clear();
        msg.encode(&mut w);
        8 * (1 + w.len() as u64)
    })
}

macro_rules! varint_codec {
    ($($ty:ty),* $(,)?) => {
        $(
            impl WireEncode for $ty {
                fn encode(&self, w: &mut Writer) {
                    w.put_varint(u64::from(*self));
                }
            }
            impl WireDecode for $ty {
                fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                    <$ty>::try_from(r.take_varint()?)
                        .map_err(|_| DecodeError::BadValue(stringify!($ty)))
                }
            }
        )*
    };
}

varint_codec!(u8, u16, u32, u64);

impl WireEncode for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(*self as u64);
    }
}

impl WireDecode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        usize::try_from(r.take_varint()?).map_err(|_| DecodeError::BadValue("usize"))
    }
}

macro_rules! signed_codec {
    ($($ty:ty),* $(,)?) => {
        $(
            impl WireEncode for $ty {
                fn encode(&self, w: &mut Writer) {
                    w.put_signed(i64::from(*self));
                }
            }
            impl WireDecode for $ty {
                fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                    <$ty>::try_from(r.take_signed()?)
                        .map_err(|_| DecodeError::BadValue(stringify!($ty)))
                }
            }
        )*
    };
}

signed_codec!(i8, i16, i32, i64);

impl WireEncode for isize {
    fn encode(&self, w: &mut Writer) {
        w.put_signed(*self as i64);
    }
}

impl WireDecode for isize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        isize::try_from(r.take_signed()?).map_err(|_| DecodeError::BadValue("isize"))
    }
}

impl WireEncode for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(u8::from(*self));
    }
}

impl WireDecode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag { what: "bool", tag }),
        }
    }
}

impl WireEncode for char {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(u64::from(u32::from(*self)));
    }
}

impl WireDecode for char {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let raw = u32::try_from(r.take_varint()?).map_err(|_| DecodeError::BadValue("char"))?;
        char::from_u32(raw).ok_or(DecodeError::BadValue("char"))
    }
}

impl WireEncode for () {
    fn encode(&self, _w: &mut Writer) {}
}

impl WireDecode for () {
    fn decode(_r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(())
    }
}

impl WireEncode for str {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        w.put_bytes(self.as_bytes());
    }
}

impl WireEncode for String {
    fn encode(&self, w: &mut Writer) {
        self.as_str().encode(w);
    }
}

impl WireDecode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = usize::try_from(r.take_varint()?).map_err(|_| DecodeError::BadValue("String"))?;
        let bytes = r.take_bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadValue("String"))
    }
}

impl<T: WireEncode + ?Sized> WireEncode for &T {
    fn encode(&self, w: &mut Writer) {
        (**self).encode(w);
    }
}

impl<T: WireEncode + ?Sized> WireEncode for Arc<T> {
    fn encode(&self, w: &mut Writer) {
        (**self).encode(w);
    }
}

impl<T: WireDecode> WireDecode for Arc<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Arc::new(T::decode(r)?))
    }
}

impl<T: WireEncode + ?Sized> WireEncode for Box<T> {
    fn encode(&self, w: &mut Writer) {
        (**self).encode(w);
    }
}

impl<T: WireDecode> WireDecode for Box<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Box::new(T::decode(r)?))
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(inner) => {
                w.put_u8(1);
                inner.encode(w);
            }
        }
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

fn encode_seq<'a, T: WireEncode + 'a>(items: impl ExactSizeIterator<Item = &'a T>, w: &mut Writer) {
    w.put_varint(items.len() as u64);
    for item in items {
        item.encode(w);
    }
}

fn decode_count(r: &mut Reader<'_>) -> Result<usize, DecodeError> {
    let count = usize::try_from(r.take_varint()?).map_err(|_| DecodeError::BadValue("count"))?;
    // A count can never exceed the remaining byte budget (every element
    // encodes to at least one byte), so a corrupt length cannot trigger a
    // huge preallocation.
    if count > r.remaining() {
        return Err(DecodeError::Eof);
    }
    Ok(count)
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        encode_seq(self.iter(), w);
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let count = decode_count(r)?;
        let mut items = Vec::with_capacity(count);
        for _ in 0..count {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<T: WireEncode> WireEncode for VecDeque<T> {
    fn encode(&self, w: &mut Writer) {
        encode_seq(self.iter(), w);
    }
}

impl<T: WireDecode> WireDecode for VecDeque<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Vec::<T>::decode(r)?.into())
    }
}

impl<T: WireEncode> WireEncode for BTreeSet<T> {
    fn encode(&self, w: &mut Writer) {
        encode_seq(self.iter(), w);
    }
}

impl<T: WireDecode + Ord> WireDecode for BTreeSet<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let count = decode_count(r)?;
        let mut items = BTreeSet::new();
        for _ in 0..count {
            items.insert(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<K: WireEncode, V: WireEncode> WireEncode for BTreeMap<K, V> {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
}

impl<K: WireDecode + Ord, V: WireDecode> WireDecode for BTreeMap<K, V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let count = decode_count(r)?;
        let mut map = BTreeMap::new();
        for _ in 0..count {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

impl<A: WireEncode, B: WireEncode> WireEncode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: WireDecode, B: WireDecode> WireDecode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: WireEncode, B: WireEncode, C: WireEncode> WireEncode for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
}

impl<A: WireDecode, B: WireDecode, C: WireDecode> WireDecode for (A, B, C) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl WireEncode for Id {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(u64::from(self.get()));
    }
}

impl WireDecode for Id {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let raw = u16::try_from(r.take_varint()?).map_err(|_| DecodeError::BadValue("Id"))?;
        if raw == 0 {
            return Err(DecodeError::BadValue("Id"));
        }
        Ok(Id::new(raw))
    }
}

impl WireEncode for Pid {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.index() as u64);
    }
}

impl WireDecode for Pid {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let index = usize::try_from(r.take_varint()?).map_err(|_| DecodeError::BadValue("Pid"))?;
        Ok(Pid::new(index))
    }
}

impl WireEncode for Round {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.index());
    }
}

impl WireDecode for Round {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Round::new(r.take_varint()?))
    }
}

impl WireEncode for Superround {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.index());
    }
}

impl WireDecode for Superround {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Superround::new(r.take_varint()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode_frame(&value);
        let back: T = decode_frame(&bytes).expect("frame decodes");
        assert_eq!(back, value);
    }

    #[test]
    fn varints_use_seven_bit_groups() {
        let mut w = Writer::new();
        w.put_varint(0);
        w.put_varint(127);
        w.put_varint(128);
        w.put_varint(300);
        assert_eq!(w.as_slice(), &[0, 0x7f, 0x80, 0x01, 0xac, 0x02]);
        let mut r = Reader::new(w.as_slice());
        assert_eq!(r.take_varint().unwrap(), 0);
        assert_eq!(r.take_varint().unwrap(), 127);
        assert_eq!(r.take_varint().unwrap(), 128);
        assert_eq!(r.take_varint().unwrap(), 300);
        assert!(r.is_empty());
    }

    #[test]
    fn varint_extremes_roundtrip() {
        for value in [0u64, 1, 127, 128, u64::from(u32::MAX), u64::MAX] {
            let mut w = Writer::new();
            w.put_varint(value);
            let mut r = Reader::new(w.as_slice());
            assert_eq!(r.take_varint().unwrap(), value);
        }
    }

    #[test]
    fn signed_zigzag_roundtrip() {
        for value in [0i64, -1, 1, -64, 63, i64::MIN, i64::MAX] {
            let mut w = Writer::new();
            w.put_signed(value);
            let mut r = Reader::new(w.as_slice());
            assert_eq!(r.take_signed().unwrap(), value);
        }
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(0u8);
        roundtrip(7u32);
        roundtrip(u64::MAX);
        roundtrip(-42i32);
        roundtrip(true);
        roundtrip('ℓ');
        roundtrip(());
        roundtrip("homonym".to_string());
        roundtrip(Id::new(3));
        roundtrip(Pid::new(11));
        roundtrip(Round::new(17));
        roundtrip(Superround::new(8));
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(BTreeSet::from(["a".to_string(), "b".to_string()]));
        roundtrip(BTreeMap::from([(Id::new(1), 9u64), (Id::new(2), 4u64)]));
        roundtrip(Some(Id::new(5)));
        roundtrip(None::<u32>);
        roundtrip((Id::new(1), 2u64, false));
        roundtrip(Arc::new("shared".to_string()));
        roundtrip(VecDeque::from([1u16, 2, 3]));
    }

    #[test]
    fn frame_rejects_unknown_version() {
        let mut bytes = encode_frame(&7u32);
        bytes[0] = 9;
        assert_eq!(decode_frame::<u32>(&bytes), Err(DecodeError::Version(9)));
    }

    #[test]
    fn frame_rejects_trailing_bytes() {
        let mut bytes = encode_frame(&7u32);
        bytes.push(0);
        assert_eq!(
            decode_frame::<u32>(&bytes),
            Err(DecodeError::Trailing { remaining: 1 })
        );
    }

    #[test]
    fn truncated_input_is_eof() {
        let bytes = encode_frame(&"hello".to_string());
        assert_eq!(
            decode_frame::<String>(&bytes[..bytes.len() - 2]),
            Err(DecodeError::Eof)
        );
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert_eq!(
            decode_frame::<bool>(&[FORMAT_VERSION, 7]),
            Err(DecodeError::BadTag {
                what: "bool",
                tag: 7
            })
        );
        assert_eq!(
            decode_frame::<Option<u32>>(&[FORMAT_VERSION, 2]),
            Err(DecodeError::BadTag {
                what: "Option",
                tag: 2
            })
        );
        assert_eq!(
            decode_frame::<Id>(&[FORMAT_VERSION, 0]),
            Err(DecodeError::BadValue("Id"))
        );
    }

    #[test]
    fn corrupt_count_cannot_force_a_huge_preallocation() {
        // count = u32::MAX with no elements behind it: Eof, not OOM.
        let mut w = Writer::new();
        w.put_u8(FORMAT_VERSION);
        w.put_varint(u64::from(u32::MAX));
        assert_eq!(
            decode_frame::<Vec<u64>>(w.as_slice()),
            Err(DecodeError::Eof)
        );
    }

    #[test]
    fn oversized_varint_is_rejected() {
        let bytes = [
            FORMAT_VERSION,
            0xff,
            0xff,
            0xff,
            0xff,
            0xff,
            0xff,
            0xff,
            0xff,
            0xff,
            0x7f,
        ];
        assert_eq!(
            decode_frame::<u64>(&bytes),
            Err(DecodeError::VarintOverflow)
        );
    }

    #[test]
    fn frame_bits_is_exact_frame_length() {
        let value = vec![1u32, 300, 70000];
        assert_eq!(frame_bits(&value), 8 * encode_frame(&value).len() as u64);
        // The version byte is included: a unit payload is one byte.
        assert_eq!(frame_bits(&()), 8);
    }

    #[test]
    fn golden_scalar_vectors() {
        // Format version 1. Breaking any of these bytes is a wire-format
        // break: bump FORMAT_VERSION and regenerate.
        assert_eq!(encode_frame(&7u32), vec![1, 7]);
        assert_eq!(encode_frame(&300u64), vec![1, 0xac, 0x02]);
        assert_eq!(encode_frame(&Id::new(3)), vec![1, 3]);
        assert_eq!(encode_frame(&Pid::new(11)), vec![1, 11]);
        assert_eq!(encode_frame(&Round::new(9)), vec![1, 9]);
        assert_eq!(encode_frame(&Superround::new(4)), vec![1, 4]);
        assert_eq!(encode_frame(&"hi".to_string()), vec![1, 2, b'h', b'i']);
        assert_eq!(
            encode_frame(&BTreeSet::from([Id::new(1), Id::new(2)])),
            vec![1, 2, 1, 2]
        );
        assert_eq!(encode_frame(&Some(false)), vec![1, 1, 0]);
        assert_eq!(encode_frame(&-3i32), vec![1, 5]);
    }
}
