//! Seeded scenario schedules: reproducible, serializable event scripts.
//!
//! A [`Schedule`] is a timestamped list of mid-run disruptions — processes
//! turning Byzantine, Byzantine strategies switching, drop-policy shifts
//! (partitions forming and healing), topology edits, and shard churn —
//! generated from a **single seed** and replayable from a single hex line.
//! This is the ewok-style scenario corpus the fuzz harness drives: the
//! schedule is the whole scenario, so a failing run is reproduced by
//! re-decoding its schedule, not by re-rolling RNG state.
//!
//! # Sub-streams
//!
//! Every component of a scenario (assignment, inputs, Byzantine set,
//! drops, strategy, events, …) draws from its **own** RNG stream, derived
//! from the scenario seed via [`sub_seed`] (a splitmix64 finalizer over
//! `seed ⊕ mix(component)`). Two components never share a stream, which
//! kills the seed-reuse class of bug where, e.g., the drop decisions are
//! correlated with the input draw because both consumed the same `StdRng`.
//!
//! # Scope
//!
//! Schedules describe *binary-valued* agreement scenarios (`bool` inputs),
//! which is the domain every fuzzed protocol family in this workspace
//! shares. The event vocabulary is engine-agnostic: the lock-step
//! [`Simulation`], the sharded engines, and any future event-driven
//! backend replay the same corpus.
//!
//! [`Simulation`]: https://docs.rs/homonym-sim

use std::collections::BTreeSet;
use std::fmt;

use crate::codec::{
    decode_frame, encode_frame, DecodeError, Reader, WireDecode, WireEncode, Writer,
};
use crate::{Pid, Round};

/// Splitmix64 finalizer: a bijective avalanche mix.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives an independent sub-seed for one scenario component.
///
/// The derivation is a splitmix64 avalanche over `seed ⊕ mix64(component)`,
/// so distinct components yield decorrelated streams even for adjacent
/// seeds. Components are the [`stream`] constants; ad-hoc callers may use
/// any `u64` tag not colliding with them.
pub fn sub_seed(seed: u64, component: u64) -> u64 {
    mix64(seed ^ mix64(component))
}

/// Component tags for [`sub_seed`]: one per independent scenario stream.
pub mod stream {
    /// Identifier-assignment draw.
    pub const ASSIGNMENT: u64 = 1;
    /// Correct-process input draw.
    pub const INPUTS: u64 = 2;
    /// Byzantine-set draw.
    pub const BYZ: u64 = 3;
    /// Message-drop decisions (the `RandomUntilGst` stream).
    pub const DROPS: u64 = 4;
    /// Byzantine-strategy draw.
    pub const STRATEGY: u64 = 5;
    /// Timed-event draw (what happens, and when).
    pub const EVENTS: u64 = 6;
    /// Family-cell parameter draw (which `(n, ℓ, t)` inside a family).
    pub const CELL: u64 = 7;
    /// Shard-churn draw (which shards restart, with which inputs).
    pub const SHARDS: u64 = 8;
    /// Crash/recover draw (which pid crashes, when, and how it rejoins).
    pub const CRASHES: u64 = 9;
}

/// How a crashed process rejoins the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryMode {
    /// Restore from the last durable snapshot plus the journal suffix —
    /// the process rejoins with its exact pre-crash state and stays
    /// *correct* (no fault budget consumed).
    Durable,
    /// Rejoin with a fresh automaton and no memory of the past. The
    /// process was observably faulty, so it consumes one unit of the
    /// shared `|faulty| ≤ t` budget (alongside the Byzantine set).
    Amnesiac,
}

impl RecoveryMode {
    /// A short label for traces and DOT artifacts.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryMode::Durable => "durable",
            RecoveryMode::Amnesiac => "amnesiac",
        }
    }
}

impl WireEncode for RecoveryMode {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            RecoveryMode::Durable => 0,
            RecoveryMode::Amnesiac => 1,
        });
    }
}

impl WireDecode for RecoveryMode {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take_u8()? {
            0 => Ok(RecoveryMode::Durable),
            1 => Ok(RecoveryMode::Amnesiac),
            tag => Err(DecodeError::BadTag {
                what: "RecoveryMode",
                tag,
            }),
        }
    }
}

/// A serializable description of a Byzantine strategy.
///
/// This is the *data* half of the sim crate's adversary library: each
/// variant names a strategy and carries exactly the parameters needed to
/// rebuild it against a protocol factory at replay time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StrategyKind {
    /// Byzantine processes send nothing (crash from round 0).
    Silent,
    /// Run the real protocol with the given adversarial inputs.
    Mimic {
        /// Input per Byzantine process.
        inputs: Vec<(Pid, bool)>,
    },
    /// Two personas per Byzantine process; `split` sees input `true`.
    Equivocator {
        /// Correct processes shown the `true` persona.
        split: BTreeSet<Pid>,
    },
    /// Many personas per Byzantine process, all sent to everyone.
    CloneSpammer {
        /// One persona input per entry.
        inputs: Vec<bool>,
    },
    /// Duplicate every intercepted frame `copies` times.
    Flooder {
        /// Copies per flooded frame.
        copies: u32,
    },
    /// Replay mutated captured frames.
    ReplayFuzzer {
        /// Mutation stream seed.
        seed: u64,
        /// Frames injected per round.
        burst: u32,
    },
    /// Replay genuine frames `delay` rounds late.
    StaleReplayer {
        /// Rounds to hold a captured frame.
        delay: u64,
        /// Replayed frames per round.
        cap: u32,
    },
    /// Behave as `inner` until `at`, then go silent.
    CrashAt {
        /// First silent round.
        at: Round,
        /// Pre-crash behaviour.
        inner: Box<StrategyKind>,
    },
    /// Run several strategies at once.
    Compose(Vec<StrategyKind>),
}

impl StrategyKind {
    /// A short label for reports, mirroring the sim adversary names.
    pub fn label(&self) -> String {
        match self {
            StrategyKind::Silent => "silent".into(),
            StrategyKind::Mimic { .. } => "mimic".into(),
            StrategyKind::Equivocator { .. } => "equivocator".into(),
            StrategyKind::CloneSpammer { .. } => "clone_spammer".into(),
            StrategyKind::Flooder { .. } => "flooder".into(),
            StrategyKind::ReplayFuzzer { .. } => "replay_fuzzer".into(),
            StrategyKind::StaleReplayer { .. } => "stale_replayer".into(),
            StrategyKind::CrashAt { inner, .. } => format!("crash({})", inner.label()),
            StrategyKind::Compose(parts) => {
                let names: Vec<String> = parts.iter().map(|p| p.label()).collect();
                format!("compose({})", names.join("+"))
            }
        }
    }
}

impl WireEncode for StrategyKind {
    fn encode(&self, w: &mut Writer) {
        match self {
            StrategyKind::Silent => w.put_u8(0),
            StrategyKind::Mimic { inputs } => {
                w.put_u8(1);
                inputs.encode(w);
            }
            StrategyKind::Equivocator { split } => {
                w.put_u8(2);
                split.encode(w);
            }
            StrategyKind::CloneSpammer { inputs } => {
                w.put_u8(3);
                inputs.encode(w);
            }
            StrategyKind::Flooder { copies } => {
                w.put_u8(4);
                copies.encode(w);
            }
            StrategyKind::ReplayFuzzer { seed, burst } => {
                w.put_u8(5);
                seed.encode(w);
                burst.encode(w);
            }
            StrategyKind::StaleReplayer { delay, cap } => {
                w.put_u8(6);
                delay.encode(w);
                cap.encode(w);
            }
            StrategyKind::CrashAt { at, inner } => {
                w.put_u8(7);
                at.encode(w);
                inner.encode(w);
            }
            StrategyKind::Compose(parts) => {
                w.put_u8(8);
                parts.encode(w);
            }
        }
    }
}

impl WireDecode for StrategyKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.take_u8()? {
            0 => StrategyKind::Silent,
            1 => StrategyKind::Mimic {
                inputs: Vec::decode(r)?,
            },
            2 => StrategyKind::Equivocator {
                split: BTreeSet::decode(r)?,
            },
            3 => StrategyKind::CloneSpammer {
                inputs: Vec::decode(r)?,
            },
            4 => StrategyKind::Flooder {
                copies: u32::decode(r)?,
            },
            5 => StrategyKind::ReplayFuzzer {
                seed: u64::decode(r)?,
                burst: u32::decode(r)?,
            },
            6 => StrategyKind::StaleReplayer {
                delay: u64::decode(r)?,
                cap: u32::decode(r)?,
            },
            7 => StrategyKind::CrashAt {
                at: Round::decode(r)?,
                inner: Box::new(StrategyKind::decode(r)?),
            },
            8 => StrategyKind::Compose(Vec::decode(r)?),
            tag => {
                return Err(DecodeError::BadTag {
                    what: "StrategyKind",
                    tag,
                })
            }
        })
    }
}

/// A serializable description of a message-drop policy.
///
/// Probabilities are carried as **permille** (`0..=1000`) so the codec
/// stays float-free and the encoding is exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DropSpec {
    /// Nothing is dropped (the fully synchronous model).
    None,
    /// Drop each non-self message with probability `p_permille / 1000`
    /// before `until`, from the sub-stream tagged `stream`.
    Random {
        /// Drop probability in permille (`0..=1000`).
        p_permille: u16,
        /// Stabilization round: no drops at or after it.
        until: Round,
        /// Sub-stream tag mixed with the scenario seed via [`sub_seed`].
        stream: u64,
    },
    /// Cut every edge crossing between `sides` until `heal`.
    Partition {
        /// The partition classes (need not cover all processes).
        sides: Vec<BTreeSet<Pid>>,
        /// First round of restored connectivity.
        heal: Round,
    },
    /// Drop everything to and from `pids` until `heal`.
    Isolate {
        /// The isolated processes.
        pids: BTreeSet<Pid>,
        /// First round of restored connectivity.
        heal: Round,
    },
}

impl DropSpec {
    /// The stabilization round of the described policy: no drops at or
    /// after it.
    pub fn gst(&self) -> Round {
        match self {
            DropSpec::None => Round::ZERO,
            DropSpec::Random { until, .. } => *until,
            DropSpec::Partition { heal, .. } | DropSpec::Isolate { heal, .. } => *heal,
        }
    }
}

impl WireEncode for DropSpec {
    fn encode(&self, w: &mut Writer) {
        match self {
            DropSpec::None => w.put_u8(0),
            DropSpec::Random {
                p_permille,
                until,
                stream,
            } => {
                w.put_u8(1);
                p_permille.encode(w);
                until.encode(w);
                stream.encode(w);
            }
            DropSpec::Partition { sides, heal } => {
                w.put_u8(2);
                sides.encode(w);
                heal.encode(w);
            }
            DropSpec::Isolate { pids, heal } => {
                w.put_u8(3);
                pids.encode(w);
                heal.encode(w);
            }
        }
    }
}

impl WireDecode for DropSpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.take_u8()? {
            0 => DropSpec::None,
            1 => {
                let p_permille = u16::decode(r)?;
                if p_permille > 1000 {
                    return Err(DecodeError::BadValue("DropSpec permille"));
                }
                DropSpec::Random {
                    p_permille,
                    until: Round::decode(r)?,
                    stream: u64::decode(r)?,
                }
            }
            2 => DropSpec::Partition {
                sides: Vec::decode(r)?,
                heal: Round::decode(r)?,
            },
            3 => DropSpec::Isolate {
                pids: BTreeSet::decode(r)?,
                heal: Round::decode(r)?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    what: "DropSpec",
                    tag,
                })
            }
        })
    }
}

/// One mid-run disruption.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleEvent {
    /// The given correct processes turn Byzantine.
    ///
    /// The engine validates the Byzantine budget: if the turn would push
    /// the ever-Byzantine count past `t`, the event is *rejected* and the
    /// run reports a detected model breach — schedules may carry such
    /// events deliberately, to assert detection.
    TurnByzantine {
        /// Processes turning.
        pids: BTreeSet<Pid>,
    },
    /// The Byzantine coalition switches strategy.
    SwitchStrategy {
        /// The new strategy.
        strategy: StrategyKind,
    },
    /// The drop policy is replaced (a partition forms, a ramp starts, or
    /// — with [`DropSpec::None`] — the network heals).
    SetDrops {
        /// The new policy.
        policy: DropSpec,
    },
    /// The topology becomes the complete graph minus `cut` (empty `cut`
    /// restores full connectivity).
    SetTopology {
        /// Undirected edges removed from the complete graph.
        cut: BTreeSet<(Pid, Pid)>,
    },
    /// The sharded engines abort shard `shard`'s live shot.
    ShardAbort {
        /// Target shard index.
        shard: u32,
    },
    /// The sharded engines enqueue a fresh shot on shard `shard`.
    ShardEnqueue {
        /// Target shard index.
        shard: u32,
        /// Inputs for the new shot's processes.
        inputs: Vec<bool>,
    },
    /// The process crashes at this round boundary: it stops sending, and
    /// every message addressed to it drops until it recovers.
    Crash {
        /// The crashing process.
        pid: Pid,
    },
    /// A crashed process rejoins at this round boundary.
    ///
    /// [`RecoveryMode::Durable`] replays the journal (bit-exact state,
    /// still correct); [`RecoveryMode::Amnesiac`] respawns fresh and
    /// consumes the shared fault budget — the engine rejects the event
    /// (a reported breach) if that would exceed `t`.
    Recover {
        /// The recovering process.
        pid: Pid,
        /// How it rejoins.
        mode: RecoveryMode,
    },
}

impl ScheduleEvent {
    /// A short label for traces and DOT artifacts.
    pub fn label(&self) -> String {
        match self {
            ScheduleEvent::TurnByzantine { pids } => format!("turn_byz({} pids)", pids.len()),
            ScheduleEvent::SwitchStrategy { strategy } => format!("switch({})", strategy.label()),
            ScheduleEvent::SetDrops { policy } => match policy {
                DropSpec::None => "heal".into(),
                DropSpec::Random { p_permille, .. } => format!("drops(p={p_permille}‰)"),
                DropSpec::Partition { sides, .. } => format!("partition({} sides)", sides.len()),
                DropSpec::Isolate { pids, .. } => format!("isolate({} pids)", pids.len()),
            },
            ScheduleEvent::SetTopology { cut } if cut.is_empty() => "topology(complete)".into(),
            ScheduleEvent::SetTopology { cut } => format!("topology(-{} edges)", cut.len()),
            ScheduleEvent::ShardAbort { shard } => format!("abort(shard {shard})"),
            ScheduleEvent::ShardEnqueue { shard, .. } => format!("enqueue(shard {shard})"),
            ScheduleEvent::Crash { pid } => format!("crash({pid})"),
            ScheduleEvent::Recover { pid, mode } => format!("recover({pid}, {})", mode.label()),
        }
    }
}

impl WireEncode for ScheduleEvent {
    fn encode(&self, w: &mut Writer) {
        match self {
            ScheduleEvent::TurnByzantine { pids } => {
                w.put_u8(0);
                pids.encode(w);
            }
            ScheduleEvent::SwitchStrategy { strategy } => {
                w.put_u8(1);
                strategy.encode(w);
            }
            ScheduleEvent::SetDrops { policy } => {
                w.put_u8(2);
                policy.encode(w);
            }
            ScheduleEvent::SetTopology { cut } => {
                w.put_u8(3);
                cut.encode(w);
            }
            ScheduleEvent::ShardAbort { shard } => {
                w.put_u8(4);
                shard.encode(w);
            }
            ScheduleEvent::ShardEnqueue { shard, inputs } => {
                w.put_u8(5);
                shard.encode(w);
                inputs.encode(w);
            }
            ScheduleEvent::Crash { pid } => {
                w.put_u8(6);
                pid.encode(w);
            }
            ScheduleEvent::Recover { pid, mode } => {
                w.put_u8(7);
                pid.encode(w);
                mode.encode(w);
            }
        }
    }
}

impl WireDecode for ScheduleEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.take_u8()? {
            0 => ScheduleEvent::TurnByzantine {
                pids: BTreeSet::decode(r)?,
            },
            1 => ScheduleEvent::SwitchStrategy {
                strategy: StrategyKind::decode(r)?,
            },
            2 => ScheduleEvent::SetDrops {
                policy: DropSpec::decode(r)?,
            },
            3 => ScheduleEvent::SetTopology {
                cut: BTreeSet::decode(r)?,
            },
            4 => ScheduleEvent::ShardAbort {
                shard: u32::decode(r)?,
            },
            5 => ScheduleEvent::ShardEnqueue {
                shard: u32::decode(r)?,
                inputs: Vec::decode(r)?,
            },
            6 => ScheduleEvent::Crash {
                pid: Pid::decode(r)?,
            },
            7 => ScheduleEvent::Recover {
                pid: Pid::decode(r)?,
                mode: RecoveryMode::decode(r)?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    what: "ScheduleEvent",
                    tag,
                })
            }
        })
    }
}

/// An event with the round it fires at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimedEvent {
    /// The round at whose *start* the event applies.
    pub at: Round,
    /// The disruption.
    pub event: ScheduleEvent,
}

impl WireEncode for TimedEvent {
    fn encode(&self, w: &mut Writer) {
        self.at.encode(w);
        self.event.encode(w);
    }
}

impl WireDecode for TimedEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(TimedEvent {
            at: Round::decode(r)?,
            event: ScheduleEvent::decode(r)?,
        })
    }
}

/// A reproducible scenario script: seed, horizon, and timed events.
///
/// The schedule *is* the replay artifact: [`Schedule::to_hex`] emits a
/// one-line string that [`Schedule::from_hex`] restores byte-for-byte,
/// and the seed inside it re-derives every sub-stream.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schedule {
    /// The scenario seed every sub-stream is derived from.
    pub seed: u64,
    /// The global stabilization round the scenario promises: all
    /// disruptive drop phases end before it.
    pub gst: Round,
    /// The observation horizon (rounds the run executes).
    pub horizon: Round,
    /// The timed events, sorted by round (see [`Schedule::normalize`]).
    pub events: Vec<TimedEvent>,
}

impl Schedule {
    /// An empty schedule for `seed` with the given stabilization round
    /// and horizon.
    pub fn new(seed: u64, gst: Round, horizon: Round) -> Self {
        Schedule {
            seed,
            gst,
            horizon,
            events: Vec::new(),
        }
    }

    /// Appends an event firing at `at`.
    pub fn push(&mut self, at: Round, event: ScheduleEvent) {
        self.events.push(TimedEvent { at, event });
    }

    /// The events firing at the start of `round`, in push order.
    pub fn events_at(&self, round: Round) -> impl Iterator<Item = &ScheduleEvent> {
        self.events
            .iter()
            .filter(move |e| e.at == round)
            .map(|e| &e.event)
    }

    /// Sorts events by round, keeping push order within a round.
    pub fn normalize(&mut self) {
        self.events.sort_by_key(|e| e.at);
    }

    /// Encodes the schedule as a versioned frame in lowercase hex — the
    /// one-line replay artifact.
    pub fn to_hex(&self) -> String {
        let bytes = encode_frame(self);
        let mut out = String::with_capacity(bytes.len() * 2);
        for b in bytes {
            use fmt::Write;
            write!(out, "{b:02x}").expect("write to String");
        }
        out
    }

    /// Decodes a schedule from its [`to_hex`](Schedule::to_hex) line.
    pub fn from_hex(hex: &str) -> Result<Self, DecodeError> {
        let hex = hex.trim();
        if hex.len() % 2 != 0 {
            return Err(DecodeError::BadValue("Schedule hex length"));
        }
        let nibble = |c: u8| -> Result<u8, DecodeError> {
            match c {
                b'0'..=b'9' => Ok(c - b'0'),
                b'a'..=b'f' => Ok(c - b'a' + 10),
                b'A'..=b'F' => Ok(c - b'A' + 10),
                _ => Err(DecodeError::BadValue("Schedule hex digit")),
            }
        };
        let raw = hex.as_bytes();
        let mut bytes = Vec::with_capacity(raw.len() / 2);
        for pair in raw.chunks_exact(2) {
            bytes.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
        }
        decode_frame(&bytes)
    }
}

impl WireEncode for Schedule {
    fn encode(&self, w: &mut Writer) {
        self.seed.encode(w);
        self.gst.encode(w);
        self.horizon.encode(w);
        self.events.encode(w);
    }
}

impl WireDecode for Schedule {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Schedule {
            seed: u64::decode(r)?,
            gst: Round::decode(r)?,
            horizon: Round::decode(r)?,
            events: Vec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schedule() -> Schedule {
        let mut s = Schedule::new(0xDEAD_BEEF, Round::new(9), Round::new(14));
        s.push(
            Round::new(3),
            ScheduleEvent::TurnByzantine {
                pids: [Pid::new(2)].into_iter().collect(),
            },
        );
        s.push(
            Round::new(4),
            ScheduleEvent::SwitchStrategy {
                strategy: StrategyKind::CrashAt {
                    at: Round::new(7),
                    inner: Box::new(StrategyKind::Mimic {
                        inputs: vec![(Pid::new(2), true)],
                    }),
                },
            },
        );
        s.push(
            Round::new(5),
            ScheduleEvent::SetDrops {
                policy: DropSpec::Partition {
                    sides: vec![
                        [Pid::new(0), Pid::new(1)].into_iter().collect(),
                        [Pid::new(3)].into_iter().collect(),
                    ],
                    heal: Round::new(8),
                },
            },
        );
        s.push(
            Round::new(6),
            ScheduleEvent::SetTopology {
                cut: [(Pid::new(0), Pid::new(3))].into_iter().collect(),
            },
        );
        s.push(Round::new(10), ScheduleEvent::ShardAbort { shard: 1 });
        s.push(
            Round::new(11),
            ScheduleEvent::ShardEnqueue {
                shard: 1,
                inputs: vec![true, false, true],
            },
        );
        s.push(Round::new(12), ScheduleEvent::Crash { pid: Pid::new(1) });
        s.push(
            Round::new(13),
            ScheduleEvent::Recover {
                pid: Pid::new(1),
                mode: RecoveryMode::Durable,
            },
        );
        s
    }

    #[test]
    fn sub_seed_streams_are_decorrelated() {
        let seed = 42;
        let all: BTreeSet<u64> = (0..64).map(|c| sub_seed(seed, c)).collect();
        assert_eq!(all.len(), 64, "component streams must not collide");
        // Adjacent seeds with the same component diverge too.
        assert_ne!(
            sub_seed(seed, stream::DROPS),
            sub_seed(seed + 1, stream::DROPS)
        );
        // And the raw seed is never reused verbatim.
        assert!((0..64).all(|c| sub_seed(seed, c) != seed));
    }

    #[test]
    fn schedule_roundtrips_through_hex() {
        let s = sample_schedule();
        let hex = s.to_hex();
        let back = Schedule::from_hex(&hex).expect("decode");
        assert_eq!(back, s);
        // Upper-case and padded variants decode identically.
        assert_eq!(Schedule::from_hex(&hex.to_uppercase()).unwrap(), s);
        assert_eq!(Schedule::from_hex(&format!("  {hex}\n")).unwrap(), s);
    }

    #[test]
    fn schedule_hex_rejects_garbage() {
        assert!(Schedule::from_hex("abc").is_err(), "odd length");
        assert!(Schedule::from_hex("zz").is_err(), "non-hex digit");
        // A valid-hex but truncated frame fails to decode.
        let hex = sample_schedule().to_hex();
        assert!(Schedule::from_hex(&hex[..hex.len() - 4]).is_err());
    }

    #[test]
    fn schedule_encoding_is_pinned() {
        // Golden byte pin: any codec change that silently invalidates
        // existing replay lines must show up here.
        let mut s = Schedule::new(7, Round::new(2), Round::new(5));
        s.push(
            Round::new(1),
            ScheduleEvent::TurnByzantine {
                pids: [Pid::new(0)].into_iter().collect(),
            },
        );
        assert_eq!(s.to_hex(), "010702050101000100");
    }

    #[test]
    fn normalize_sorts_stably() {
        let mut s = Schedule::new(1, Round::new(5), Round::new(9));
        s.push(Round::new(4), ScheduleEvent::ShardAbort { shard: 2 });
        s.push(Round::new(2), ScheduleEvent::ShardAbort { shard: 0 });
        s.push(Round::new(4), ScheduleEvent::ShardAbort { shard: 1 });
        s.normalize();
        let order: Vec<(u64, u32)> = s
            .events
            .iter()
            .map(|e| match e.event {
                ScheduleEvent::ShardAbort { shard } => (e.at.index(), shard),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![(2, 0), (4, 2), (4, 1)]);
    }

    #[test]
    fn events_at_filters_by_round() {
        let s = sample_schedule();
        assert_eq!(s.events_at(Round::new(3)).count(), 1);
        assert_eq!(s.events_at(Round::new(7)).count(), 0);
    }

    #[test]
    fn drop_spec_gst_matches_variants() {
        assert_eq!(DropSpec::None.gst(), Round::ZERO);
        let r = DropSpec::Random {
            p_permille: 250,
            until: Round::new(6),
            stream: stream::DROPS,
        };
        assert_eq!(r.gst(), Round::new(6));
    }

    #[test]
    fn permille_over_1000_is_rejected() {
        let bad = DropSpec::Random {
            p_permille: 1001,
            until: Round::new(1),
            stream: 0,
        };
        let mut w = Writer::new();
        bad.encode(&mut w);
        let mut r = Reader::new(w.as_slice());
        assert!(DropSpec::decode(&mut r).is_err());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(StrategyKind::Silent.label(), "silent");
        assert_eq!(
            StrategyKind::CrashAt {
                at: Round::new(3),
                inner: Box::new(StrategyKind::Silent)
            }
            .label(),
            "crash(silent)"
        );
        assert_eq!(
            ScheduleEvent::SetTopology {
                cut: BTreeSet::new()
            }
            .label(),
            "topology(complete)"
        );
        assert_eq!(
            ScheduleEvent::Crash { pid: Pid::new(3) }.label(),
            "crash(p3)"
        );
        assert_eq!(
            ScheduleEvent::Recover {
                pid: Pid::new(3),
                mode: RecoveryMode::Amnesiac
            }
            .label(),
            "recover(p3, amnesiac)"
        );
    }

    #[test]
    fn recovery_mode_round_trips() {
        for mode in [RecoveryMode::Durable, RecoveryMode::Amnesiac] {
            let mut w = Writer::new();
            mode.encode(&mut w);
            let mut r = Reader::new(w.as_slice());
            assert_eq!(RecoveryMode::decode(&mut r).unwrap(), mode);
        }
        let mut r = Reader::new(&[9]);
        assert!(RecoveryMode::decode(&mut r).is_err());
    }
}
