//! The Byzantine agreement problem specification and trace-level checkers.
//!
//! Byzantine agreement (Section 2 of the paper) is defined by three
//! properties over the *correct* processes:
//!
//! 1. **Validity** — if all correct processes propose the same value `v`,
//!    no correct process decides a value other than `v`;
//! 2. **Agreement** — no two correct processes decide differently;
//! 3. **Termination** — every correct process eventually decides.
//!
//! [`check`] evaluates all three over an [`Outcome`] (the observable result
//! of one execution) and produces a structured [`Verdict`] so experiments
//! can assert not just *that* something broke, but *which* property and
//! *where* — the impossibility scenarios rely on this.

use std::collections::BTreeMap;
use std::fmt;

use crate::id::Pid;
use crate::process::Round;
use crate::value::Value;

/// The observable result of one execution, from the checker's perspective.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outcome<V> {
    /// The proposal of each *correct* process.
    pub inputs: BTreeMap<Pid, V>,
    /// The decision (if any) of each correct process, with the round in
    /// which it first decided.
    pub decisions: BTreeMap<Pid, (V, Round)>,
    /// The horizon up to which the execution was observed.
    pub horizon: Round,
}

impl<V: Value> Outcome<V> {
    /// The correct processes that never decided within the horizon.
    pub fn undecided(&self) -> Vec<Pid> {
        self.inputs
            .keys()
            .filter(|p| !self.decisions.contains_key(p))
            .copied()
            .collect()
    }

    /// The latest round in which any correct process decided, if any did.
    pub fn last_decision_round(&self) -> Option<Round> {
        self.decisions.values().map(|&(_, r)| r).max()
    }
}

/// Why a property failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation<V> {
    /// All correct processes proposed `proposed`, yet `who` decided
    /// `decided`.
    Validity {
        /// The common proposal of all correct processes.
        proposed: V,
        /// The offending decision.
        decided: V,
        /// The process that decided it.
        who: Pid,
    },
    /// Two correct processes decided different values.
    Agreement {
        /// One process and its decision.
        a: (Pid, V),
        /// Another process and its conflicting decision.
        b: (Pid, V),
    },
    /// Some correct processes never decided within the horizon.
    Termination {
        /// The processes that never decided.
        undecided: Vec<Pid>,
        /// The observation horizon.
        horizon: Round,
    },
}

impl<V: fmt::Debug> fmt::Display for Violation<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Validity { proposed, decided, who } => write!(
                f,
                "validity violated: all correct processes proposed {proposed:?} but {who} decided {decided:?}"
            ),
            Violation::Agreement { a, b } => write!(
                f,
                "agreement violated: {} decided {:?} but {} decided {:?}",
                a.0, a.1, b.0, b.1
            ),
            Violation::Termination { undecided, horizon } => write!(
                f,
                "termination violated: {} correct process(es) undecided after {horizon}",
                undecided.len()
            ),
        }
    }
}

/// The result of checking one property.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PropertyResult<V> {
    /// The property holds in this execution.
    Holds,
    /// The property is violated, with a witness.
    Violated(Violation<V>),
}

impl<V> PropertyResult<V> {
    /// Whether the property holds.
    pub fn holds(&self) -> bool {
        matches!(self, PropertyResult::Holds)
    }
}

/// The verdict of one execution against the Byzantine agreement spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Verdict<V> {
    /// Validity result.
    pub validity: PropertyResult<V>,
    /// Agreement result.
    pub agreement: PropertyResult<V>,
    /// Termination result (within the observation horizon).
    pub termination: PropertyResult<V>,
}

impl<V: Value> Verdict<V> {
    /// Whether all three properties hold.
    pub fn all_hold(&self) -> bool {
        self.validity.holds() && self.agreement.holds() && self.termination.holds()
    }

    /// Whether the *safety* properties (validity and agreement) hold,
    /// regardless of termination. Lower-bound experiments distinguish
    /// algorithms that stall from algorithms that err.
    pub fn safe(&self) -> bool {
        self.validity.holds() && self.agreement.holds()
    }

    /// The violations, in (validity, agreement, termination) order.
    pub fn violations(&self) -> Vec<&Violation<V>> {
        [&self.validity, &self.agreement, &self.termination]
            .into_iter()
            .filter_map(|p| match p {
                PropertyResult::Holds => None,
                PropertyResult::Violated(v) => Some(v),
            })
            .collect()
    }
}

impl<V: Value> fmt::Display for Verdict<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.all_hold() {
            return write!(f, "validity ok, agreement ok, termination ok");
        }
        let mut first = true;
        for (name, p) in [
            ("validity", &self.validity),
            ("agreement", &self.agreement),
            ("termination", &self.termination),
        ] {
            if !first {
                write!(f, "; ")?;
            }
            first = false;
            match p {
                PropertyResult::Holds => write!(f, "{name} ok")?,
                PropertyResult::Violated(v) => write!(f, "{v}")?,
            }
        }
        Ok(())
    }
}

/// Checks validity, agreement, and termination of an outcome.
///
/// # Example
///
/// ```
/// use homonym_core::{Pid, Round};
/// use homonym_core::spec::{check, Outcome};
/// use std::collections::BTreeMap;
///
/// let outcome = Outcome {
///     inputs: BTreeMap::from([(Pid::new(0), true), (Pid::new(1), true)]),
///     decisions: BTreeMap::from([
///         (Pid::new(0), (true, Round::new(3))),
///         (Pid::new(1), (true, Round::new(4))),
///     ]),
///     horizon: Round::new(10),
/// };
/// assert!(check(&outcome).all_hold());
/// ```
pub fn check<V: Value>(outcome: &Outcome<V>) -> Verdict<V> {
    Verdict {
        validity: check_validity(outcome),
        agreement: check_agreement(outcome),
        termination: check_termination(outcome),
    }
}

/// Checks only validity: meaningful whenever all correct inputs coincide.
pub fn check_validity<V: Value>(outcome: &Outcome<V>) -> PropertyResult<V> {
    let mut inputs = outcome.inputs.values();
    let Some(first) = inputs.next() else {
        return PropertyResult::Holds;
    };
    if !inputs.all(|v| v == first) {
        // Correct inputs differ: validity constrains nothing.
        return PropertyResult::Holds;
    }
    for (&pid, (decided, _)) in &outcome.decisions {
        if decided != first {
            return PropertyResult::Violated(Violation::Validity {
                proposed: first.clone(),
                decided: decided.clone(),
                who: pid,
            });
        }
    }
    PropertyResult::Holds
}

/// Checks only agreement.
pub fn check_agreement<V: Value>(outcome: &Outcome<V>) -> PropertyResult<V> {
    let mut decided = outcome.decisions.iter();
    let Some((&p0, (v0, _))) = decided.next() else {
        return PropertyResult::Holds;
    };
    for (&p, (v, _)) in decided {
        if v != v0 {
            return PropertyResult::Violated(Violation::Agreement {
                a: (p0, v0.clone()),
                b: (p, v.clone()),
            });
        }
    }
    PropertyResult::Holds
}

/// Checks only termination, within the outcome's horizon.
///
/// Termination is an eventual property; an execution observed to a finite
/// horizon can only ever *refute* it relative to that horizon. The harness
/// chooses horizons comfortably above each algorithm's proven decision
/// bound, so a refutation at the horizon is reported as a violation.
pub fn check_termination<V: Value>(outcome: &Outcome<V>) -> PropertyResult<V> {
    let undecided = outcome.undecided();
    if undecided.is_empty() {
        PropertyResult::Holds
    } else {
        PropertyResult::Violated(Violation::Termination {
            undecided,
            horizon: outcome.horizon,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(
        inputs: &[(usize, bool)],
        decisions: &[(usize, bool, u64)],
        horizon: u64,
    ) -> Outcome<bool> {
        Outcome {
            inputs: inputs.iter().map(|&(p, v)| (Pid::new(p), v)).collect(),
            decisions: decisions
                .iter()
                .map(|&(p, v, r)| (Pid::new(p), (v, Round::new(r))))
                .collect(),
            horizon: Round::new(horizon),
        }
    }

    #[test]
    fn all_good() {
        let o = outcome(&[(0, true), (1, true)], &[(0, true, 1), (1, true, 2)], 5);
        let v = check(&o);
        assert!(v.all_hold());
        assert!(v.safe());
        assert!(v.violations().is_empty());
        assert_eq!(o.last_decision_round(), Some(Round::new(2)));
    }

    #[test]
    fn validity_violation_detected() {
        let o = outcome(&[(0, true), (1, true)], &[(0, false, 1), (1, false, 1)], 5);
        let v = check(&o);
        assert!(!v.validity.holds());
        assert!(v.agreement.holds());
        assert!(matches!(
            v.violations()[0],
            Violation::Validity {
                proposed: true,
                decided: false,
                ..
            }
        ));
    }

    #[test]
    fn validity_vacuous_when_inputs_differ() {
        let o = outcome(&[(0, true), (1, false)], &[(0, false, 1), (1, false, 1)], 5);
        assert!(check(&o).all_hold());
    }

    #[test]
    fn agreement_violation_detected() {
        let o = outcome(&[(0, true), (1, false)], &[(0, true, 1), (1, false, 1)], 5);
        let v = check(&o);
        assert!(!v.agreement.holds());
        assert!(!v.all_hold());
        assert!(!v.safe());
    }

    #[test]
    fn termination_violation_detected() {
        let o = outcome(&[(0, true), (1, true), (2, true)], &[(0, true, 1)], 9);
        let v = check(&o);
        assert!(v.safe());
        assert!(!v.termination.holds());
        match &v.termination {
            PropertyResult::Violated(Violation::Termination { undecided, horizon }) => {
                assert_eq!(undecided, &[Pid::new(1), Pid::new(2)]);
                assert_eq!(*horizon, Round::new(9));
            }
            other => panic!("expected termination violation, got {other:?}"),
        }
    }

    #[test]
    fn partial_decisions_still_checked_for_agreement() {
        let o = outcome(
            &[(0, true), (1, false), (2, true)],
            &[(0, true, 1), (1, false, 2)],
            5,
        );
        let v = check(&o);
        assert!(!v.agreement.holds());
        assert!(!v.termination.holds());
    }

    #[test]
    fn empty_outcome_holds_vacuously() {
        let o = outcome(&[], &[], 0);
        assert!(check(&o).all_hold());
    }

    #[test]
    fn display_mentions_failing_property() {
        let o = outcome(&[(0, true), (1, false)], &[(0, true, 1), (1, false, 1)], 5);
        let s = check(&o).to_string();
        assert!(s.contains("agreement violated"), "{s}");
    }
}
