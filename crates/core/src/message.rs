//! Message envelopes, addressing, and per-round inboxes.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::config::Counting;
use crate::fabric::SharedEnvelope;
use crate::id::Id;

/// A protocol message payload.
///
/// Blanket-implemented for any ordered, cloneable, printable,
/// `Send + Sync + 'static` type. Ordering gives inboxes a canonical
/// iteration order, which keeps every execution deterministic; `Sync` lets
/// the delivery fabric share one `Arc`-wrapped payload across every
/// recipient (and across runtime threads) instead of deep-cloning it per
/// delivery.
pub trait Message: Clone + Ord + Eq + fmt::Debug + Send + Sync + 'static {}

impl<T: Clone + Ord + Eq + fmt::Debug + Send + Sync + 'static> Message for T {}

/// Whom a correct process addresses a message to.
///
/// The paper's model: "a process cannot direct a message it sends to a
/// particular process, but can direct the message to all processes that
/// have a particular identifier". (Byzantine processes are not so limited —
/// they may send arbitrary messages to each process individually; that
/// power lives in the simulator's adversary interface, not here.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Recipients {
    /// Every process, including the sender itself.
    All,
    /// Every process holding the given identifier.
    Group(Id),
}

impl Recipients {
    /// The processes addressed under `assignment`, in ascending process
    /// order, without allocating — `All` is every process, `Group(i)` is
    /// `G(i)`.
    pub fn expand(
        self,
        assignment: &crate::id::IdAssignment,
    ) -> impl Iterator<Item = crate::id::Pid> + '_ {
        let (all, group) = match self {
            Recipients::All => (Some(crate::id::Pid::all(assignment.n())), None),
            Recipients::Group(id) => (None, Some(assignment.group_iter(id))),
        };
        all.into_iter().flatten().chain(group.into_iter().flatten())
    }
}

/// A received message: the (authenticated) identifier of its sender plus
/// the payload. In the paper's notation, `m.id` and `m.val`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Envelope<M> {
    /// The sender's authenticated identifier.
    pub src: Id,
    /// The payload.
    pub msg: M,
}

impl<M: fmt::Debug> fmt::Debug for Envelope<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} from id {}", self.msg, self.src)
    }
}

/// The messages a process receives in one round.
///
/// Internally a multiset keyed by `(sender identifier, payload)`. In a
/// **numerate** system multiplicities are preserved; in an **innumerate**
/// system the environment collapses every multiplicity to 1 *before*
/// delivery, so numeracy is a property of the system rather than trusted
/// protocol behaviour — an innumerate protocol physically cannot observe
/// counts.
///
/// # Example
///
/// ```
/// use homonym_core::{Counting, Envelope, Id, Inbox};
///
/// let deliveries = vec![
///     Envelope { src: Id::new(1), msg: "hello" },
///     Envelope { src: Id::new(1), msg: "hello" }, // homonym clone
///     Envelope { src: Id::new(2), msg: "hello" },
/// ];
/// let numerate = Inbox::collect(deliveries.clone(), Counting::Numerate);
/// assert_eq!(numerate.count(Id::new(1), &"hello"), 2);
/// let innumerate = Inbox::collect(deliveries, Counting::Innumerate);
/// assert_eq!(innumerate.count(Id::new(1), &"hello"), 1);
/// // Either way, two distinct identifiers sent "hello".
/// assert_eq!(numerate.ids_where(|m| *m == "hello").count(), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Inbox<M> {
    // Keys are `Arc`-shared with the delivery fabric: building an inbox
    // from shared envelopes never clones a payload, and `BTreeMap`'s
    // `Borrow`-based lookup keeps every query usable with a plain `&M`.
    by_id: BTreeMap<Id, BTreeMap<Arc<M>, u64>>,
}

impl<M: Message> Inbox<M> {
    /// An empty inbox.
    pub fn empty() -> Self {
        Inbox {
            by_id: BTreeMap::new(),
        }
    }

    /// Builds an inbox from delivered envelopes under the given counting
    /// model.
    pub fn collect(deliveries: impl IntoIterator<Item = Envelope<M>>, counting: Counting) -> Self {
        Inbox::collect_shared(deliveries.into_iter().map(SharedEnvelope::from), counting)
    }

    /// Builds an inbox from fabric-shared envelopes under the given
    /// counting model.
    ///
    /// Equivalent to [`Inbox::collect`] on the underlying payloads (the
    /// `fabric_equivalence` property tests pin this), but moves `Arc`
    /// handles instead of owned payloads: no payload is cloned, however
    /// many recipients share it.
    ///
    /// Envelopes carrying a frame token (see
    /// [`SharedEnvelope::framed`](crate::fabric::SharedEnvelope)) are
    /// pre-grouped by `(sender id, token)` — a `(u16, u32)` comparison —
    /// so the homonym-duplicate hot case (many content-equal payloads
    /// from one identifier) costs one deep payload walk per *distinct*
    /// payload instead of one per delivery. Untokened envelopes take the
    /// structural path. The final merge is content-keyed either way, so
    /// the resulting inbox is identical whether or not (and however
    /// consistently) deliveries were framed.
    pub fn collect_shared(
        deliveries: impl IntoIterator<Item = SharedEnvelope<M>>,
        counting: Counting,
    ) -> Self {
        let mut by_id: BTreeMap<Id, BTreeMap<Arc<M>, u64>> = BTreeMap::new();
        let mut framed: BTreeMap<(Id, crate::intern::Tok), (Arc<M>, u64)> = BTreeMap::new();
        for SharedEnvelope { src, msg, tok } in deliveries {
            match tok {
                Some(tok) => {
                    framed
                        .entry((src, tok))
                        .and_modify(|(_, count)| *count += 1)
                        .or_insert((msg, 1));
                }
                None => {
                    *by_id.entry(src).or_default().entry(msg).or_insert(0) += 1;
                }
            }
        }
        for ((src, _), (msg, count)) in framed {
            *by_id.entry(src).or_default().entry(msg).or_insert(0) += count;
        }
        if counting == Counting::Innumerate {
            for msgs in by_id.values_mut() {
                for c in msgs.values_mut() {
                    *c = 1;
                }
            }
        }
        Inbox { by_id }
    }

    /// The multiplicity of `(id, msg)` — at most 1 in an innumerate system.
    pub fn count(&self, id: Id, msg: &M) -> u64 {
        self.by_id
            .get(&id)
            .and_then(|m| m.get(msg))
            .copied()
            .unwrap_or(0)
    }

    /// Whether at least one copy of `(id, msg)` arrived.
    pub fn contains(&self, id: Id, msg: &M) -> bool {
        self.count(id, msg) > 0
    }

    /// The identifiers from which at least one message arrived, ascending.
    pub fn ids(&self) -> impl Iterator<Item = Id> + '_ {
        self.by_id.keys().copied()
    }

    /// The distinct payloads received from `id`, with multiplicities.
    pub fn from_id(&self, id: Id) -> impl Iterator<Item = (&M, u64)> + '_ {
        self.by_id
            .get(&id)
            .into_iter()
            .flat_map(|m| m.iter().map(|(msg, &c)| (&**msg, c)))
    }

    /// The number of *distinct* payloads received from `id`.
    pub fn distinct_from(&self, id: Id) -> usize {
        self.by_id.get(&id).map_or(0, BTreeMap::len)
    }

    /// Iterates over all `(sender id, payload, multiplicity)` triples in
    /// canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Id, &M, u64)> + '_ {
        self.by_id
            .iter()
            .flat_map(|(&id, msgs)| msgs.iter().map(move |(m, &c)| (id, &**m, c)))
    }

    /// Iterates over the same triples as [`iter`](Inbox::iter) but hands
    /// out the shared payload handles, so fabric-aware consumers (replay
    /// pools, trace stores) can retain a message without cloning it.
    pub fn iter_shared(&self) -> impl Iterator<Item = (Id, &Arc<M>, u64)> + '_ {
        self.by_id
            .iter()
            .flat_map(|(&id, msgs)| msgs.iter().map(move |(m, &c)| (id, m, c)))
    }

    /// The identifiers that sent at least one payload satisfying `pred`.
    ///
    /// This is the *innumerate-safe* evidence counter used all over the
    /// paper ("received ⟨echo m⟩ from `ℓ − t` distinct identifiers").
    pub fn ids_where<'a, F>(&'a self, pred: F) -> impl Iterator<Item = Id> + 'a
    where
        F: Fn(&M) -> bool + 'a,
    {
        self.by_id
            .iter()
            .filter(move |(_, msgs)| msgs.keys().any(|m| pred(m)))
            .map(|(&id, _)| id)
    }

    /// Total multiplicity of payloads satisfying `pred`, across all
    /// identifiers — the *numerate* evidence counter of Figures 6 and 7
    /// ("received `n − t` messages ⟨ack⟩ in this round").
    pub fn count_where<F>(&self, pred: F) -> u64
    where
        F: Fn(&M) -> bool,
    {
        self.iter()
            .filter(|(_, m, _)| pred(m))
            .map(|(_, _, c)| c)
            .sum()
    }

    /// Total multiplicity of all messages.
    pub fn total(&self) -> u64 {
        self.iter().map(|(_, _, c)| c).sum()
    }

    /// Number of distinct `(id, payload)` pairs.
    pub fn len(&self) -> usize {
        self.by_id.values().map(BTreeMap::len).sum()
    }

    /// Whether nothing was received.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

impl<M: Message> Default for Inbox<M> {
    fn default() -> Self {
        Inbox::empty()
    }
}

impl<M: Message> FromIterator<Envelope<M>> for Inbox<M> {
    /// Collects with numerate (multiset) semantics; use [`Inbox::collect`]
    /// to control the counting model.
    fn from_iter<T: IntoIterator<Item = Envelope<M>>>(iter: T) -> Self {
        Inbox::collect(iter, Counting::Numerate)
    }
}

impl<M: fmt::Debug> fmt::Debug for Inbox<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (id, msgs) in &self.by_id {
            map.entry(id, msgs);
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(id: u16, msg: &str) -> Envelope<String> {
        Envelope {
            src: Id::new(id),
            msg: msg.to_string(),
        }
    }

    #[test]
    fn numerate_preserves_multiplicity() {
        let inbox = Inbox::collect(
            vec![env(1, "a"), env(1, "a"), env(1, "b"), env(2, "a")],
            Counting::Numerate,
        );
        assert_eq!(inbox.count(Id::new(1), &"a".to_string()), 2);
        assert_eq!(inbox.count(Id::new(1), &"b".to_string()), 1);
        assert_eq!(inbox.total(), 4);
        assert_eq!(inbox.len(), 3);
    }

    #[test]
    fn innumerate_collapses_duplicates() {
        let inbox = Inbox::collect(
            vec![env(1, "a"), env(1, "a"), env(1, "a"), env(2, "a")],
            Counting::Innumerate,
        );
        assert_eq!(inbox.count(Id::new(1), &"a".to_string()), 1);
        assert_eq!(inbox.total(), 2);
    }

    #[test]
    fn ids_where_counts_distinct_identifiers_once() {
        let inbox = Inbox::collect(
            vec![
                env(1, "echo"),
                env(1, "echo"),
                env(2, "echo"),
                env(3, "other"),
            ],
            Counting::Numerate,
        );
        let supporters: Vec<Id> = inbox.ids_where(|m| m == "echo").collect();
        assert_eq!(supporters, vec![Id::new(1), Id::new(2)]);
    }

    #[test]
    fn count_where_sums_multiplicity_across_ids() {
        let inbox = Inbox::collect(
            vec![env(1, "ack"), env(1, "ack"), env(2, "ack"), env(2, "nack")],
            Counting::Numerate,
        );
        assert_eq!(inbox.count_where(|m| m == "ack"), 3);
    }

    #[test]
    fn distinct_from_detects_equivocation() {
        // Figure 3 line 13: "more than one different message from identifier
        // j" exposes a Byzantine (or split-homonym) group.
        let inbox = Inbox::collect(vec![env(1, "x"), env(1, "y")], Counting::Innumerate);
        assert_eq!(inbox.distinct_from(Id::new(1)), 2);
        assert_eq!(inbox.distinct_from(Id::new(9)), 0);
    }

    #[test]
    fn empty_inbox() {
        let inbox: Inbox<String> = Inbox::empty();
        assert!(inbox.is_empty());
        assert_eq!(inbox.total(), 0);
        assert_eq!(inbox.ids().count(), 0);
    }

    #[test]
    fn framed_and_structural_dedup_agree() {
        let payload = Arc::new("m".to_string());
        let other = Arc::new("x".to_string());
        let mixed = vec![
            SharedEnvelope::framed(Id::new(1), Arc::clone(&payload), 0),
            SharedEnvelope::framed(Id::new(1), Arc::clone(&payload), 0),
            // An untokened duplicate of the same content must merge with
            // the token group — the inbox is content-keyed, not token-keyed.
            SharedEnvelope::shared(Id::new(1), Arc::clone(&payload)),
            SharedEnvelope::framed(Id::new(2), Arc::clone(&payload), 0),
            SharedEnvelope::shared(Id::new(1), Arc::clone(&other)),
        ];
        let plain = mixed.iter().cloned().map(|mut e| {
            e.tok = None;
            e
        });
        let framed = Inbox::collect_shared(mixed.clone(), Counting::Numerate);
        let structural = Inbox::collect_shared(plain, Counting::Numerate);
        assert_eq!(framed, structural);
        assert_eq!(framed.count(Id::new(1), &"m".to_string()), 3);
        assert_eq!(framed.count(Id::new(2), &"m".to_string()), 1);
        let innumerate = Inbox::collect_shared(mixed, Counting::Innumerate);
        assert_eq!(innumerate.count(Id::new(1), &"m".to_string()), 1);
    }

    #[test]
    fn iteration_is_canonically_ordered() {
        let inbox = Inbox::collect(
            vec![env(2, "b"), env(1, "z"), env(1, "a"), env(2, "a")],
            Counting::Numerate,
        );
        let flat: Vec<(u16, String)> = inbox.iter().map(|(i, m, _)| (i.get(), m.clone())).collect();
        assert_eq!(
            flat,
            vec![
                (1, "a".to_string()),
                (1, "z".to_string()),
                (2, "a".to_string()),
                (2, "b".to_string())
            ]
        );
    }
}
