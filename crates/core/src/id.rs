//! Identifiers, process names, and identifier assignments.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::AssignmentError;

/// An authenticated identifier, `1..=ℓ`, exactly as in the paper.
///
/// Identifiers are the *only* names protocols may use. Several processes may
/// hold the same identifier (homonyms). Messages are authenticated with the
/// sender's identifier: a receiver knows the identifier but not which holder
/// of it sent the message.
///
/// # Example
///
/// ```
/// use homonym_core::Id;
/// let leader = Id::new(3);
/// assert_eq!(leader.get(), 3);
/// assert_eq!(leader.index(), 2); // zero-based position
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Id(u16);

impl Id {
    /// Creates the identifier with 1-based value `raw`.
    ///
    /// # Panics
    ///
    /// Panics if `raw == 0`; the paper numbers identifiers from 1.
    pub fn new(raw: u16) -> Self {
        assert!(raw >= 1, "identifiers are numbered from 1");
        Id(raw)
    }

    /// Creates the identifier at zero-based position `index` (so `Id::from_index(0) == Id::new(1)`).
    pub fn from_index(index: usize) -> Self {
        Id(u16::try_from(index + 1).expect("identifier index out of range"))
    }

    /// The 1-based value of this identifier.
    pub fn get(self) -> u16 {
        self.0
    }

    /// The zero-based position of this identifier (`get() - 1`).
    pub fn index(self) -> usize {
        usize::from(self.0) - 1
    }

    /// The identifier of the leaders of phase `ph` among `ell` identifiers:
    /// `(ph mod ℓ) + 1`, as on line 10 of Figure 5.
    pub fn phase_leader(ph: u64, ell: usize) -> Self {
        Id::from_index((ph % ell as u64) as usize)
    }

    /// Iterates over all `ell` identifiers, `1..=ell`.
    pub fn all(ell: usize) -> impl DoubleEndedIterator<Item = Id> + Clone {
        (0..ell).map(Id::from_index)
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({})", self.0)
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A *process name*: the zero-based index of a process in the execution
/// environment.
///
/// The paper is explicit that such names exist only in proofs: "these names
/// cannot be used by the processes themselves in their algorithms". In this
/// workspace, `Pid` appears exclusively in the simulator, the adversary
/// interfaces, and the property checkers — never in a [`Protocol`]
/// implementation.
///
/// [`Protocol`]: crate::Protocol
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(u32);

impl Pid {
    /// Creates the process name with index `index`.
    pub fn new(index: usize) -> Self {
        Pid(u32::try_from(index).expect("process index out of range"))
    }

    /// The zero-based index of this process.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over the names of all `n` processes.
    pub fn all(n: usize) -> impl DoubleEndedIterator<Item = Pid> + Clone {
        (0..n).map(Pid::new)
    }
}

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pid({})", self.0)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An assignment of the `ℓ` identifiers to the `n` processes.
///
/// Every identifier must be held by at least one process (the paper requires
/// each identifier to be assigned), and identifiers are `1..=ℓ`.
///
/// The agreement problem must be solved *regardless of how the `n` processes
/// are assigned the `ℓ` identifiers*, so test harnesses quantify over several
/// assignments; the constructors here include the adversarial packings used
/// in the paper's proofs.
///
/// # Example
///
/// ```
/// use homonym_core::{Id, IdAssignment};
///
/// // 5 processes, 3 identifiers, worst-case packing: identifier 1 is held
/// // by the n - ℓ + 1 = 3 surplus processes.
/// let a = IdAssignment::stacked(3, 5).unwrap();
/// assert_eq!(a.group(Id::new(1)).len(), 3);
/// assert_eq!(a.group(Id::new(2)).len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IdAssignment {
    ids: Vec<Id>,
    ell: usize,
}

impl IdAssignment {
    /// Creates an assignment from the identifier of each process.
    ///
    /// # Errors
    ///
    /// Returns an error if `ids` is empty, any identifier is out of
    /// `1..=ell`, or some identifier in `1..=ell` has no holder.
    pub fn new(ell: usize, ids: Vec<Id>) -> Result<Self, AssignmentError> {
        if ids.is_empty() {
            return Err(AssignmentError::Empty);
        }
        if ell == 0 || ell > ids.len() {
            return Err(AssignmentError::BadEll { ell, n: ids.len() });
        }
        let mut seen = vec![false; ell];
        for &id in &ids {
            if id.index() >= ell {
                return Err(AssignmentError::IdOutOfRange { id, ell });
            }
            seen[id.index()] = true;
        }
        if let Some(missing) = seen.iter().position(|s| !s) {
            return Err(AssignmentError::UnassignedId {
                id: Id::from_index(missing),
            });
        }
        Ok(IdAssignment { ids, ell })
    }

    /// The classical assignment: `ℓ = n`, process `i` holds identifier `i+1`.
    pub fn unique(n: usize) -> Self {
        IdAssignment {
            ids: (0..n).map(Id::from_index).collect(),
            ell: n,
        }
    }

    /// The fully anonymous assignment: `ℓ = 1`, everyone holds identifier 1.
    pub fn anonymous(n: usize) -> Self {
        IdAssignment {
            ids: vec![Id::new(1); n],
            ell: 1,
        }
    }

    /// The paper's worst-case packing: identifier 1 is held by the
    /// `n − ℓ + 1` surplus processes and identifiers `2..=ℓ` by one process
    /// each (the "stack" used in the Figure 1 and Figure 4 constructions).
    ///
    /// # Errors
    ///
    /// Returns an error if `ell` is 0 or exceeds `n`.
    pub fn stacked(ell: usize, n: usize) -> Result<Self, AssignmentError> {
        if ell == 0 || ell > n {
            return Err(AssignmentError::BadEll { ell, n });
        }
        let stack = n - ell + 1;
        let mut ids = vec![Id::new(1); stack];
        ids.extend((1..ell).map(Id::from_index));
        Ok(IdAssignment { ids, ell })
    }

    /// A balanced assignment: identifiers dealt round-robin, so group sizes
    /// differ by at most one.
    ///
    /// # Errors
    ///
    /// Returns an error if `ell` is 0 or exceeds `n`.
    pub fn round_robin(ell: usize, n: usize) -> Result<Self, AssignmentError> {
        if ell == 0 || ell > n {
            return Err(AssignmentError::BadEll { ell, n });
        }
        Ok(IdAssignment {
            ids: (0..n).map(|i| Id::from_index(i % ell)).collect(),
            ell,
        })
    }

    /// Every surjective assignment of `ell` identifiers to `n` processes,
    /// in lexicographic order — `ℓ! · S(n, ℓ)`-ish many, so keep `n`
    /// small.
    ///
    /// The paper's solvability statements quantify over *every* way the
    /// `n` processes may be assigned the `ℓ` identifiers; the
    /// `assignment_sweep` tests use this to close that quantifier
    /// exhaustively at small scale rather than sampling shapes.
    ///
    /// # Panics
    ///
    /// Panics if `ell == 0`, `ell > n`, or the enumeration would exceed
    /// a million assignments (`ellⁿ` grows fast).
    pub fn enumerate_all(ell: usize, n: usize) -> Vec<IdAssignment> {
        assert!(ell >= 1 && ell <= n, "need 1 <= ell <= n");
        assert!(
            (ell as u128).pow(n as u32) <= 1_000_000,
            "enumeration too large: {ell}^{n}"
        );
        let mut out = Vec::new();
        let mut ids = vec![Id::new(1); n];
        loop {
            if let Ok(assignment) = IdAssignment::new(ell, ids.clone()) {
                out.push(assignment);
            }
            // Increment the base-ℓ counter.
            let mut k = n;
            loop {
                if k == 0 {
                    return out;
                }
                k -= 1;
                if ids[k].index() + 1 < ell {
                    ids[k] = Id::from_index(ids[k].index() + 1);
                    for slot in ids.iter_mut().skip(k + 1) {
                        *slot = Id::new(1);
                    }
                    break;
                }
            }
        }
    }

    /// The number of processes, `n`.
    pub fn n(&self) -> usize {
        self.ids.len()
    }

    /// The number of identifiers, `ℓ`.
    pub fn ell(&self) -> usize {
        self.ell
    }

    /// The identifier held by process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn id_of(&self, pid: Pid) -> Id {
        self.ids[pid.index()]
    }

    /// The *group* `G(i)`: all processes holding identifier `id`, in
    /// ascending process order.
    pub fn group(&self, id: Id) -> Vec<Pid> {
        self.group_iter(id).collect()
    }

    /// Iterates over `G(i)` without allocating — the delivery fabric
    /// expands every group-addressed emission through this.
    pub fn group_iter(&self, id: Id) -> impl DoubleEndedIterator<Item = Pid> + Clone + '_ {
        self.ids
            .iter()
            .enumerate()
            .filter(move |(_, &i)| i == id)
            .map(|(p, _)| Pid::new(p))
    }

    /// The size of each identifier's group, keyed by identifier.
    pub fn group_sizes(&self) -> BTreeMap<Id, usize> {
        let mut sizes: BTreeMap<Id, usize> = Id::all(self.ell).map(|i| (i, 0)).collect();
        for &id in &self.ids {
            *sizes.get_mut(&id).expect("validated id") += 1;
        }
        sizes
    }

    /// The identifiers held by exactly one process (non-homonyms).
    pub fn sole_identifiers(&self) -> Vec<Id> {
        self.group_sizes()
            .into_iter()
            .filter(|&(_, c)| c == 1)
            .map(|(i, _)| i)
            .collect()
    }

    /// Iterates over `(Pid, Id)` pairs in process order.
    pub fn iter(&self) -> impl Iterator<Item = (Pid, Id)> + '_ {
        self.ids.iter().enumerate().map(|(p, &i)| (Pid::new(p), i))
    }

    /// A borrowed view of the per-process identifiers.
    pub fn as_slice(&self) -> &[Id] {
        &self.ids
    }
}

impl fmt::Debug for IdAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IdAssignment")
            .field("ell", &self.ell)
            .field("ids", &self.ids)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerate_all_counts_surjections() {
        // Surjections from 4 processes onto 2 identifiers: 2⁴ − 2 = 14.
        let all = IdAssignment::enumerate_all(2, 4);
        assert_eq!(all.len(), 14);
        // All distinct, all valid.
        let distinct: std::collections::BTreeSet<Vec<Id>> =
            all.iter().map(|a| a.as_slice().to_vec()).collect();
        assert_eq!(distinct.len(), 14);
        for a in &all {
            assert_eq!(a.n(), 4);
            assert_eq!(a.ell(), 2);
            assert_eq!(a.group_sizes().len(), 2);
        }
    }

    #[test]
    fn enumerate_all_degenerate_cases() {
        // ℓ = 1: exactly the anonymous assignment.
        let all = IdAssignment::enumerate_all(1, 3);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].as_slice(), IdAssignment::anonymous(3).as_slice());
        // ℓ = n: the n! permutations.
        assert_eq!(IdAssignment::enumerate_all(3, 3).len(), 6);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn enumerate_all_rejects_explosions() {
        let _ = IdAssignment::enumerate_all(10, 10);
    }

    #[test]
    fn id_roundtrip() {
        for raw in 1u16..=20 {
            let id = Id::new(raw);
            assert_eq!(id.get(), raw);
            assert_eq!(Id::from_index(id.index()), id);
        }
    }

    #[test]
    #[should_panic(expected = "numbered from 1")]
    fn id_zero_rejected() {
        let _ = Id::new(0);
    }

    #[test]
    fn phase_leader_rotates_through_all_ids() {
        let ell = 5;
        let leaders: Vec<Id> = (0..ell as u64)
            .map(|ph| Id::phase_leader(ph, ell))
            .collect();
        assert_eq!(leaders, Id::all(ell).collect::<Vec<_>>());
        // And wraps around.
        assert_eq!(Id::phase_leader(ell as u64, ell), Id::new(1));
    }

    #[test]
    fn unique_assignment() {
        let a = IdAssignment::unique(4);
        assert_eq!(a.n(), 4);
        assert_eq!(a.ell(), 4);
        for (p, i) in a.iter() {
            assert_eq!(p.index() + 1, usize::from(i.get()));
            assert_eq!(a.group(i), vec![p]);
        }
        assert_eq!(a.sole_identifiers().len(), 4);
    }

    #[test]
    fn anonymous_assignment() {
        let a = IdAssignment::anonymous(6);
        assert_eq!(a.ell(), 1);
        assert_eq!(a.group(Id::new(1)).len(), 6);
        assert!(a.sole_identifiers().is_empty());
    }

    #[test]
    fn stacked_assignment_shape() {
        let a = IdAssignment::stacked(4, 9).unwrap();
        assert_eq!(a.group(Id::new(1)).len(), 6); // n - ℓ + 1
        for i in 2..=4 {
            assert_eq!(a.group(Id::new(i)).len(), 1);
        }
        assert_eq!(
            a.sole_identifiers(),
            vec![Id::new(2), Id::new(3), Id::new(4)]
        );
    }

    #[test]
    fn round_robin_is_balanced() {
        let a = IdAssignment::round_robin(3, 8).unwrap();
        let sizes: Vec<usize> = a.group_sizes().values().copied().collect();
        assert_eq!(sizes.iter().sum::<usize>(), 8);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn new_rejects_unassigned_identifier() {
        let err = IdAssignment::new(3, vec![Id::new(1), Id::new(1), Id::new(2)]).unwrap_err();
        assert!(matches!(err, AssignmentError::UnassignedId { id } if id == Id::new(3)));
    }

    #[test]
    fn new_rejects_out_of_range_identifier() {
        let err = IdAssignment::new(2, vec![Id::new(1), Id::new(3)]).unwrap_err();
        assert!(matches!(err, AssignmentError::IdOutOfRange { .. }));
    }

    #[test]
    fn new_rejects_ell_larger_than_n() {
        assert!(matches!(
            IdAssignment::new(5, vec![Id::new(1)]),
            Err(AssignmentError::BadEll { .. })
        ));
        assert!(matches!(
            IdAssignment::stacked(6, 5),
            Err(AssignmentError::BadEll { .. })
        ));
    }

    #[test]
    fn group_sizes_sum_to_n() {
        let a = IdAssignment::stacked(3, 7).unwrap();
        assert_eq!(a.group_sizes().values().sum::<usize>(), 7);
    }
}
