//! Model types and problem specification for **Byzantine agreement with
//! homonyms** (Delporte-Gallet et al., PODC 2011).
//!
//! A system has `n` processes sharing `ℓ` *authenticated identifiers*
//! (`1 ≤ ℓ ≤ n`). Processes holding the same identifier are *homonyms*:
//! a receiver can authenticate which identifier a message came from, but not
//! which process behind that identifier sent it. This crate defines:
//!
//! * [`Id`] / [`Pid`] — identifiers (what protocols see) vs. process names
//!   (what only the execution environment sees),
//! * [`IdAssignment`] — which process holds which identifier,
//! * [`SystemConfig`] — the `(n, ℓ, t)` parameters plus the three model
//!   axes of the paper: [`Synchrony`], [`Counting`] (numerate/innumerate)
//!   and [`ByzPower`] (restricted/unrestricted Byzantine senders),
//! * [`Protocol`] — the deterministic round automaton interface every
//!   algorithm in this workspace implements,
//! * [`Inbox`] — per-round received messages, as a multiset (numerate view)
//!   or a set (innumerate view),
//! * [`fabric`] — the `Arc`-shared delivery fabric every execution backend
//!   (lock-step simulator, threaded runtime, delay network) routes through,
//! * [`exec`] — the tick executor seam ([`Sequential`] and the
//!   persistent thread-[`Pool`]) the sharded engines fan per-shard work
//!   out with,
//! * [`intern`] — the payload [`Interner`] and identifier bitset
//!   ([`IdBits`]) the hot protocol paths key their evidence tables with,
//! * [`journal`] — durable journals (in-memory and file-backed WAL
//!   backends with seeded fault injection) and deterministic
//!   crash-recovery replay,
//! * [`codec`] — the exact binary wire codec ([`WireEncode`] /
//!   [`WireDecode`]) behind the message/bit-cost instrumentation and the
//!   token-framed delivery path,
//! * [`WireSize`] — the *deprecated* structural wire-size estimate the
//!   codec replaced (kept for the estimate-vs-exact comparison in
//!   `paper_report`),
//! * [`scenario`] — seeded, serializable scenario schedules (timed
//!   Byzantine/drop/topology/churn events with per-component sub-streams),
//!   the replayable fuzz corpus every execution backend shares,
//! * [`bounds`] — the Table 1 solvability characterization,
//! * [`spec`] — the Byzantine agreement properties (validity, agreement,
//!   termination) and trace-level checkers.
//!
//! # Example
//!
//! ```
//! use homonym_core::{SystemConfig, Synchrony, bounds};
//!
//! // The paper's headline surprise: with t = 1 and ℓ = 4, partially
//! // synchronous agreement is solvable for n = 4 but NOT for n = 5.
//! let mut cfg = SystemConfig::builder(4, 4, 1)
//!     .synchrony(Synchrony::PartiallySynchronous)
//!     .build()
//!     .unwrap();
//! assert!(bounds::solvable(&cfg));
//! cfg.n = 5;
//! assert!(!bounds::solvable(&cfg));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod chain;
pub mod codec;
mod config;
mod error;
pub mod exec;
pub mod fabric;
mod id;
pub mod intern;
pub mod journal;
mod message;
mod process;
pub mod scenario;
pub mod spec;
mod value;
mod wire;

pub use chain::{ChainMsg, HeightChain, HeightChainFactory};
pub use codec::{DecodeError, Reader, WireDecode, WireEncode, Writer};
pub use config::{ByzPower, Counting, Synchrony, SystemConfig, SystemConfigBuilder};
pub use error::{AssignmentError, ConfigError};
pub use exec::{Executor, Pool, Sequential};
pub use fabric::{Deliveries, DeliverySlots, FrameInterner, SharedEnvelope};
pub use id::{Id, IdAssignment, Pid};
pub use intern::{IdBits, Interner};
pub use journal::{FileWal, Journal, JournalEntry, JournalError, MemJournal, Recovered};
pub use message::{Envelope, Inbox, Message, Recipients};
pub use process::{FnFactory, Protocol, ProtocolFactory, Round, Superround};
pub use scenario::{
    sub_seed, DropSpec, RecoveryMode, Schedule, ScheduleEvent, StrategyKind, TimedEvent,
};
pub use value::{Domain, ProperSet, Value};
pub use wire::WireSize;
