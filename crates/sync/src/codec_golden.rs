//! Golden byte-vector tests pinning the wire format of the `T(A)`
//! transformer messages (format version 1, the single leading byte of
//! each frame). Breaking any of these vectors is a wire-format break:
//! bump `FORMAT_VERSION` in `homonym_core::codec` and regenerate.

use std::collections::BTreeMap;

use homonym_classic::{Eig, EigMsg, SyncBa};
use homonym_core::codec::encode_frame;
use homonym_core::{Domain, Id};

use crate::transformer::{TransformerMsg, TransformerMsgOf};

#[test]
fn golden_transformer_vectors() {
    let decide: TransformerMsgOf<Eig<bool>> = TransformerMsg::Decide(Some(true));
    assert_eq!(encode_frame(&decide), vec![1, 1, 1, 1]);

    let eig = Eig::new(4, 1, Domain::binary());
    let state: TransformerMsgOf<Eig<bool>> = TransformerMsg::State(eig.init(Id::new(3), false));
    assert_eq!(encode_frame(&state), vec![1, 0, 3, 1, 0, 0, 0]);

    let msg: EigMsg<bool> = BTreeMap::from([(vec![], true), (vec![Id::new(2)], false)]);
    let run: TransformerMsgOf<Eig<bool>> = TransformerMsg::Run(msg);
    assert_eq!(encode_frame(&run), vec![1, 2, 2, 0, 1, 1, 2, 0]);
}
