//! The `T(A)` transformer of Figure 3.

use std::collections::{BTreeMap, BTreeSet};

use homonym_classic::SyncBa;
use homonym_core::codec::{DecodeError, Reader, WireDecode, WireEncode, Writer};
use homonym_core::{Id, Inbox, Protocol, ProtocolFactory, Recipients, Round, WireSize};

/// The phase-relative position of a round: each phase of `T(A)` is three
/// rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PhaseRound {
    Selection,
    Deciding,
    Running,
}

fn phase_round(round: Round) -> (u64, PhaseRound) {
    let phase = round.index() / 3;
    let kind = match round.index() % 3 {
        0 => PhaseRound::Selection,
        1 => PhaseRound::Deciding,
        _ => PhaseRound::Running,
    };
    (phase, kind)
}

/// Wire messages of `T(A)`: one variant per round kind.
///
/// Generic over the simulated algorithm's state, message, and value types
/// (for an algorithm `A`, the wire type is
/// `TransformerMsg<A::State, A::Msg, A::Value>`).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TransformerMsg<S, M, V> {
    /// Selection round: the sender's current `A`-state (Figure 3 line 3).
    State(S),
    /// Deciding round: the sender's `decide(s)` (Figure 3 line 6).
    Decide(Option<V>),
    /// Running round: `M(s, r)` of the simulated algorithm (line 10).
    Run(M),
}

/// The concrete wire type of `T(A)` for a given algorithm `A`.
pub type TransformerMsgOf<A> =
    TransformerMsg<<A as SyncBa>::State, <A as SyncBa>::Msg, <A as SyncBa>::Value>;

impl<S: WireEncode, M: WireEncode, V: WireEncode> WireEncode for TransformerMsg<S, M, V> {
    fn encode(&self, w: &mut Writer) {
        match self {
            TransformerMsg::State(s) => {
                w.put_u8(0);
                s.encode(w);
            }
            TransformerMsg::Decide(d) => {
                w.put_u8(1);
                d.encode(w);
            }
            TransformerMsg::Run(m) => {
                w.put_u8(2);
                m.encode(w);
            }
        }
    }
}

impl<S: WireDecode, M: WireDecode, V: WireDecode> WireDecode for TransformerMsg<S, M, V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take_u8()? {
            0 => Ok(TransformerMsg::State(S::decode(r)?)),
            1 => Ok(TransformerMsg::Decide(Option::decode(r)?)),
            2 => Ok(TransformerMsg::Run(M::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                what: "TransformerMsg",
                tag,
            }),
        }
    }
}

impl<S: WireSize, M: WireSize, V: WireSize> WireSize for TransformerMsg<S, M, V> {
    fn wire_bits(&self) -> u64 {
        match self {
            TransformerMsg::State(s) => s.wire_bits(),
            TransformerMsg::Decide(d) => d.wire_bits(),
            TransformerMsg::Run(m) => m.wire_bits(),
        }
    }
}

/// One homonym process running `T(A)` (Figure 3).
///
/// # Example
///
/// ```
/// use homonym_classic::Eig;
/// use homonym_core::{Domain, Id, Protocol};
/// use homonym_sync::Transformed;
///
/// // ℓ = 4 identifiers, t = 1: ℓ > 3t, so T(EIG) solves agreement for any
/// // n ≥ 4 homonym processes.
/// let algo = Eig::new(4, 1, Domain::binary());
/// let p = Transformed::new(algo, 1, Id::new(2), true);
/// assert_eq!(p.id(), Id::new(2));
/// ```
#[derive(Clone, Debug)]
pub struct Transformed<A: SyncBa> {
    algo: A,
    t: usize,
    id: Id,
    /// The simulated `A`-state `s`.
    state: A::State,
    decision: Option<A::Value>,
    /// Ablation switch: when false, the deciding rounds are inert and a
    /// process decides only from its own simulated state (see
    /// [`TransformedFactory::ablated_without_decide_relay`]).
    decide_relay: bool,
}

impl<A: SyncBa> Transformed<A> {
    /// Creates the automaton for a process holding `id` proposing `input`,
    /// simulating `algo` and tolerating `t` faults.
    ///
    /// # Panics
    ///
    /// Panics if `t` differs from the simulated algorithm's fault bound —
    /// the deciding-round threshold `t + 1` must match what `A` tolerates.
    pub fn new(algo: A, t: usize, id: Id, input: A::Value) -> Self {
        assert_eq!(
            t,
            algo.t(),
            "transformer and simulated algorithm must agree on t"
        );
        let state = algo.init(id, input);
        Transformed {
            algo,
            t,
            id,
            state,
            decision: None,
            decide_relay: true,
        }
    }

    /// The simulated `A`-state (exposed for the lockstep tests).
    pub fn state(&self) -> &A::State {
        &self.state
    }

    /// Rounds needed for every correct process to decide: three per
    /// simulated round, plus one full phase of slack for the
    /// deciding-round relay.
    pub fn round_bound(&self) -> u64 {
        3 * (self.algo.round_bound() + 1)
    }
}

impl<A: SyncBa> Protocol for Transformed<A> {
    type Msg = TransformerMsgOf<A>;
    type Value = A::Value;

    fn id(&self) -> Id {
        self.id
    }

    fn send(&mut self, round: Round) -> Vec<(Recipients, Self::Msg)> {
        let (phase, kind) = phase_round(round);
        let msg = match kind {
            // Line 3: get the group to agree on its state.
            PhaseRound::Selection => TransformerMsg::State(self.state.clone()),
            // Line 6: the deciding round replaces A's decision line.
            PhaseRound::Deciding => TransformerMsg::Decide(if self.decide_relay {
                self.algo.decide(&self.state)
            } else {
                None
            }),
            // Line 10: one real round of A (1-based round number).
            PhaseRound::Running => TransformerMsg::Run(self.algo.message(&self.state, phase + 1)),
        };
        vec![(Recipients::All, msg)]
    }

    fn receive(&mut self, round: Round, inbox: &Inbox<Self::Msg>) {
        let (phase, kind) = phase_round(round);
        match kind {
            PhaseRound::Selection => {
                // Line 5: deterministic choice among the states received
                // from the process's own identifier — we take the smallest.
                let chosen = inbox
                    .from_id(self.id)
                    .filter_map(|(m, _)| match m {
                        TransformerMsg::State(s) => Some(s),
                        _ => None,
                    })
                    .min();
                if let Some(s) = chosen {
                    self.state = s.clone();
                }
                // (In the synchronous model a process always receives its own
                // state, so `chosen` is never empty for correct processes.)
            }
            PhaseRound::Deciding => {
                // Lines 8–9: decide any value reported by t + 1 distinct
                // identifiers; at least one of them names a fully correct
                // group, which only reports what A really decided.
                if self.decision.is_some() || !self.decide_relay {
                    return;
                }
                let mut support: BTreeMap<&A::Value, BTreeSet<Id>> = BTreeMap::new();
                for (id, msg, _) in inbox.iter() {
                    if let TransformerMsg::Decide(Some(v)) = msg {
                        support.entry(v).or_default().insert(id);
                    }
                }
                self.decision = support
                    .into_iter()
                    .find(|(_, ids)| ids.len() >= self.t + 1)
                    .map(|(v, _)| v.clone());
            }
            PhaseRound::Running => {
                // Lines 12–14: drop every message from identifiers that sent
                // more than one distinct message this round — their group is
                // provably not a single correct process.
                let mut received: BTreeMap<Id, A::Msg> = BTreeMap::new();
                for id in inbox.ids() {
                    let mut runs = inbox.from_id(id).filter_map(|(m, _)| match m {
                        TransformerMsg::Run(m) => Some(m),
                        _ => None,
                    });
                    let first = runs.next();
                    let distinct = inbox.distinct_from(id);
                    if let (Some(m), 1) = (first, distinct) {
                        received.insert(id, m.clone());
                    }
                }
                // Line 15: one transition of A (1-based round number).
                self.state = self.algo.transition(&self.state, phase + 1, &received);
                if !self.decide_relay && self.decision.is_none() {
                    // Ablated mode: only the process's own simulated state
                    // can decide (Figure 2 line 3) — which a Byzantine
                    // homonym can sabotage; see the ablation tests.
                    self.decision = self.algo.decide(&self.state);
                }
            }
        }
    }

    fn decision(&self) -> Option<Self::Value> {
        self.decision.clone()
    }
}

/// A [`ProtocolFactory`] producing [`Transformed`] processes for one run.
#[derive(Clone, Debug)]
pub struct TransformedFactory<A> {
    algo: A,
    t: usize,
    decide_relay: bool,
}

impl<A: SyncBa + Clone> TransformedFactory<A> {
    /// Creates a factory stamping out `T(algo)` processes tolerating `t`
    /// faults.
    ///
    /// # Panics
    ///
    /// Panics if `t` differs from `algo.t()`.
    pub fn new(algo: A, t: usize) -> Self {
        assert_eq!(
            t,
            algo.t(),
            "transformer and simulated algorithm must agree on t"
        );
        TransformedFactory {
            algo,
            t,
            decide_relay: true,
        }
    }

    /// **Ablation**: builds the transformer *without* the deciding rounds
    /// (processes send `Decide(None)` and ignore incoming decide reports,
    /// deciding only from their own simulated state).
    ///
    /// The paper adds the deciding rounds precisely because "the deciding
    /// rounds are useful for correct processes that belong to a group with
    /// a Byzantine process": such a process's selection round can be
    /// hijacked forever by a minimal Byzantine state, so without the relay
    /// it never decides — the `ablation_decide_relay` tests and bench
    /// measure exactly that failure.
    ///
    /// # Panics
    ///
    /// Panics if `t` differs from `algo.t()`.
    pub fn ablated_without_decide_relay(algo: A, t: usize) -> Self {
        assert_eq!(
            t,
            algo.t(),
            "transformer and simulated algorithm must agree on t"
        );
        TransformedFactory {
            algo,
            t,
            decide_relay: false,
        }
    }

    /// The worst-case rounds to decision (see
    /// [`Transformed::round_bound`]).
    pub fn round_bound(&self) -> u64 {
        3 * (self.algo.round_bound() + 1)
    }
}

impl<A: SyncBa + Clone> ProtocolFactory for TransformedFactory<A> {
    type P = Transformed<A>;

    fn spawn(&self, id: Id, input: A::Value) -> Transformed<A> {
        let mut p = Transformed::new(self.algo.clone(), self.t, id, input);
        p.decide_relay = self.decide_relay;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_classic::Eig;
    use homonym_core::{Counting, Domain, Envelope};

    type BoolEig = Eig<bool>;

    fn algo(ell: usize, t: usize) -> BoolEig {
        Eig::new(ell, t, Domain::binary())
    }

    fn state_msg(p: &Transformed<BoolEig>) -> TransformerMsgOf<BoolEig> {
        TransformerMsg::State(p.state().clone())
    }

    #[test]
    fn phase_round_mapping() {
        assert_eq!(phase_round(Round::new(0)), (0, PhaseRound::Selection));
        assert_eq!(phase_round(Round::new(1)), (0, PhaseRound::Deciding));
        assert_eq!(phase_round(Round::new(2)), (0, PhaseRound::Running));
        assert_eq!(phase_round(Round::new(3)), (1, PhaseRound::Selection));
    }

    #[test]
    fn selection_round_aligns_group_state() {
        // Two homonyms with different inputs; after the selection round both
        // hold the same state.
        let mut a = Transformed::new(algo(4, 1), 1, Id::new(1), false);
        let mut b = Transformed::new(algo(4, 1), 1, Id::new(1), true);
        let ma = state_msg(&a);
        let mb = state_msg(&b);
        let inbox = Inbox::collect(
            vec![
                Envelope {
                    src: Id::new(1),
                    msg: ma,
                },
                Envelope {
                    src: Id::new(1),
                    msg: mb,
                },
            ],
            Counting::Innumerate,
        );
        a.receive(Round::new(0), &inbox);
        b.receive(Round::new(0), &inbox);
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn selection_ignores_other_identifiers() {
        let mut a = Transformed::new(algo(4, 1), 1, Id::new(1), false);
        let before = a.state().clone();
        let other = Transformed::new(algo(4, 1), 1, Id::new(2), true);
        let inbox = Inbox::collect(
            vec![Envelope {
                src: Id::new(2),
                msg: state_msg(&other),
            }],
            Counting::Innumerate,
        );
        a.receive(Round::new(0), &inbox);
        assert_eq!(
            *a.state(),
            before,
            "states from other identifiers must not be adopted"
        );
    }

    #[test]
    fn deciding_round_needs_t_plus_1_identifiers() {
        let t = 1;
        let mut p = Transformed::new(algo(4, t), t, Id::new(1), false);

        // One identifier claiming a decision is not enough.
        let inbox = Inbox::collect(
            vec![Envelope {
                src: Id::new(2),
                msg: TransformerMsg::Decide(Some(true)),
            }],
            Counting::Innumerate,
        );
        p.receive(Round::new(1), &inbox);
        assert_eq!(p.decision(), None);

        // Two distinct identifiers (t + 1) suffice.
        let inbox = Inbox::collect(
            vec![
                Envelope {
                    src: Id::new(2),
                    msg: TransformerMsg::Decide(Some(true)),
                },
                Envelope {
                    src: Id::new(3),
                    msg: TransformerMsg::Decide(Some(true)),
                },
            ],
            Counting::Innumerate,
        );
        p.receive(Round::new(4), &inbox);
        assert_eq!(p.decision(), Some(true));
    }

    #[test]
    fn deciding_round_ignores_none_votes() {
        let t = 1;
        let mut p = Transformed::new(algo(4, t), t, Id::new(1), false);
        let inbox = Inbox::collect(
            vec![
                Envelope {
                    src: Id::new(2),
                    msg: TransformerMsg::Decide(None),
                },
                Envelope {
                    src: Id::new(3),
                    msg: TransformerMsg::Decide(None),
                },
                Envelope {
                    src: Id::new(4),
                    msg: TransformerMsg::Decide(None),
                },
            ],
            Counting::Innumerate,
        );
        p.receive(Round::new(1), &inbox);
        assert_eq!(p.decision(), None);
    }

    #[test]
    fn running_round_discards_equivocating_identifiers() {
        let t = 1;
        let mut p = Transformed::new(algo(4, t), t, Id::new(1), false);
        // Identifier 2 sends two *different* run messages: a split (or
        // Byzantine) group. Its root claim must not enter the EIG tree.
        let mut m1 = homonym_classic::EigMsg::new();
        m1.insert(vec![], true);
        let mut m2 = homonym_classic::EigMsg::new();
        m2.insert(vec![], false);
        let inbox = Inbox::collect(
            vec![
                Envelope {
                    src: Id::new(2),
                    msg: TransformerMsg::Run(m1.clone()),
                },
                Envelope {
                    src: Id::new(2),
                    msg: TransformerMsg::Run(m2),
                },
                Envelope {
                    src: Id::new(3),
                    msg: TransformerMsg::Run(m1),
                },
            ],
            Counting::Innumerate,
        );
        let before = p.state().tree_size();
        p.receive(Round::new(2), &inbox);
        // Only identifier 3's message got through.
        assert_eq!(p.state().tree_size(), before + 1);
    }

    #[test]
    fn running_round_discards_ill_typed_messages() {
        let t = 1;
        let mut p = Transformed::new(algo(4, t), t, Id::new(1), false);
        let stray = Transformed::new(algo(4, t), t, Id::new(2), true);
        // A State message during a running round is junk; the identifier
        // also equivocates by type mixture, so everything from it goes.
        let mut run = homonym_classic::EigMsg::new();
        run.insert(vec![], true);
        let inbox = Inbox::collect(
            vec![
                Envelope {
                    src: Id::new(2),
                    msg: state_msg(&stray),
                },
                Envelope {
                    src: Id::new(2),
                    msg: TransformerMsg::Run(run),
                },
            ],
            Counting::Innumerate,
        );
        let before = p.state().tree_size();
        p.receive(Round::new(2), &inbox);
        assert_eq!(p.state().tree_size(), before);
    }

    #[test]
    #[should_panic(expected = "agree on t")]
    fn mismatched_t_rejected() {
        let _ = Transformed::new(algo(4, 1), 2, Id::new(1), false);
    }

    #[test]
    fn round_bound_is_three_times_plus_slack() {
        let f = TransformedFactory::new(algo(4, 1), 1);
        // EIG bound = t + 1 = 2 simulated rounds → 3 × (2 + 1) = 9.
        assert_eq!(f.round_bound(), 9);
    }
}

#[cfg(test)]
mod codec_proptests {
    use std::collections::BTreeMap;

    use super::*;
    use homonym_classic::{Eig, EigMsg, EigState, SyncBa};
    use homonym_core::codec::{decode_frame, encode_frame};
    use homonym_core::Domain;
    use proptest::prelude::*;

    /// A structurally arbitrary EIG message: random paths over
    /// identifiers 1..=6 with random boolean values.
    fn arb_eig_msg() -> impl Strategy<Value = EigMsg<bool>> {
        proptest::collection::btree_map(
            proptest::collection::vec(1u16..=6, 0..3)
                .prop_map(|raw| raw.into_iter().map(Id::new).collect::<Vec<Id>>()),
            any::<bool>(),
            0..5,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// `decode(encode(m)) == m` for every `T(EIG)` wire variant:
        /// selection-round states, deciding-round decisions, and
        /// running-round simulated messages.
        #[test]
        fn transformer_msg_roundtrips(
            tag in 0usize..3,
            raw_id in 1u16..=6,
            input in any::<bool>(),
            decide in any::<bool>(),
            decision in any::<bool>(),
            run_msg in arb_eig_msg(),
        ) {
            let algo = Eig::new(4, 1, Domain::binary());
            let msg: TransformerMsgOf<Eig<bool>> = match tag {
                0 => TransformerMsg::State(algo.init(Id::new(raw_id), input)),
                1 => TransformerMsg::Decide(decide.then_some(decision)),
                _ => TransformerMsg::Run(run_msg),
            };
            let back: TransformerMsgOf<Eig<bool>> =
                decode_frame(&encode_frame(&msg)).expect("own frames must decode");
            prop_assert_eq!(back, msg);
        }

        /// The `State` variant also round-trips rich states reached by
        /// actually stepping the simulated algorithm.
        #[test]
        fn transformer_state_roundtrips_after_steps(
            inputs in proptest::collection::vec(any::<bool>(), 4),
        ) {
            let algo = Eig::new(4, 1, Domain::binary());
            let mut states: Vec<EigState<bool>> = (0..4)
                .map(|k| algo.init(Id::from_index(k), inputs[k]))
                .collect();
            for ba_round in 1..=algo.round_bound() {
                let received: BTreeMap<Id, EigMsg<bool>> = (0..4)
                    .map(|k| (Id::from_index(k), algo.message(&states[k], ba_round)))
                    .collect();
                states = states
                    .iter()
                    .map(|s| algo.transition(s, ba_round, &received))
                    .collect();
                for s in &states {
                    let wrapped: TransformerMsgOf<Eig<bool>> =
                        TransformerMsg::State(s.clone());
                    let back: TransformerMsgOf<Eig<bool>> =
                        decode_frame(&encode_frame(&wrapped)).expect("own frames must decode");
                    prop_assert_eq!(back, wrapped);
                }
            }
        }
    }
}
