//! The synchronous homonym Byzantine agreement transformer `T(A)`
//! (Section 3.2, Figure 3 of the paper).
//!
//! Given any synchronous Byzantine agreement algorithm `A` for `ℓ`
//! processes with unique identifiers (a [`SyncBa`](homonym_classic::SyncBa)
//! implementation), [`Transformed`] runs it in a system of `n ≥ ℓ`
//! processes sharing `ℓ` identifiers, tolerating `t` Byzantine processes
//! whenever `ℓ > 3t` — which Theorem 3 shows is optimal.
//!
//! The construction groups processes by identifier; each group `G(i)`
//! cooperatively simulates the single process `pᵢ` of `A`. Three rounds of
//! the homonym system simulate one round of `A` (a *phase*):
//!
//! 1. **selection** — group members exchange their `A`-states and
//!    deterministically adopt one, so a fully correct group acts as one
//!    process from then on;
//! 2. **deciding** — processes exchange `decide(s)` values and decide on
//!    any value reported by `t + 1` distinct identifiers (at least one of
//!    which names a fully correct group), which lets a correct process
//!    stuck in a group with a Byzantine member decide too;
//! 3. **running** — one actual round of `A`, where messages from any
//!    identifier that equivocated (sent more than one distinct message)
//!    are discarded, making a Byzantine-infiltrated group indistinguishable
//!    from a single Byzantine process of `A`.
//!
//! The transformer works for innumerate processes — it never counts
//! message copies, only distinct identifiers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

#[cfg(test)]
mod codec_golden;
mod transformer;

pub use transformer::{Transformed, TransformedFactory, TransformerMsg, TransformerMsgOf};
