//! Sharded multi-shot agreement over the shared delivery fabric.
//!
//! The paper's protocols are single-shot: one agreement instance per run.
//! A production workload runs *many* independent instances at once, so
//! [`ShardedSimulation`] drives K instances — each with its own
//! [`SystemConfig`], identifier assignment, Byzantine set, drop policy and
//! topology — through **one** shared [`Deliveries`] plane. Every shard
//! claims a contiguous range of slots in the plane
//! ([`Deliveries::ensure_n`] widens it as shards are enqueued), rounds are
//! interleaved across shards each global *tick*, and the fabric's headline
//! guarantee is preserved: each emitted payload is wrapped in an
//! [`Arc`](std::sync::Arc) exactly once, whatever the shard count (pinned
//! by the counting-`Clone` test in this module).
//!
//! Shards are *multi-shot*: a [`ShardSpec`] carries a queue of
//! [`ShotSpec`]s, and the tick after a shard's instance decides (or hits
//! its per-shot horizon) the shard restarts on the next queued shot — the
//! pipelining that turns one-shot agreement into a throughput workload.
//! Per shot the scheduler rolls up the same [`RunReport`] the single-shot
//! engine produces, plus scheduling metadata and an optional exact
//! wire-bit count ([`ShotReport`], aggregated per shard in
//! [`ShardReport`]) —
//! the message/bit cost instrumentation the arXiv:2311.08060
//! reproduction builds on.
//!
//! Interleaving is unobservable: each shard's per-shot decisions, message
//! counts and traces are byte-identical to running that shot alone in a
//! fresh [`Simulation`](crate::Simulation) (`tests/shard_isolation.rs`
//! property-tests this; `tests/shard_runtime_parity.rs` pins the threaded
//! backend to the same schedule).
//!
//! Ticks run on an [`Executor`]: shards own disjoint slot ranges of the
//! plane, so each global tick can fan the live shards out across worker
//! threads ([`Pool`](homonym_core::exec::Pool)) with no locking — and
//! because per-shard work is merged back in shard order, the executor's
//! schedule is unobservable too (byte-identical traces, decisions, and
//! reports at any worker count).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

use homonym_core::codec::{self, WireDecode, WireEncode};
use homonym_core::exec::{self, Executor, Sequential};
use homonym_core::intern::{IdBits, Tok};
use homonym_core::journal::{self, Journal, MemJournal};
use homonym_core::spec::{self, Outcome};
use homonym_core::{
    Counting, Deliveries, DeliverySlots, FrameInterner, Id, IdAssignment, Inbox, Pid, Protocol,
    ProtocolFactory, RecoveryMode, Round, SystemConfig,
};

use crate::adversary::{AdvCtx, Adversary, Silent};
use crate::drops::{DropPolicy, NoDrops};
use crate::engine::{ChurnError, RunReport};
use crate::par::{self, SendScratch};
use crate::topology::Topology;
use crate::trace::{Delivery, Trace};

/// The index of one shard (one agreement-instance slot) in a sharded
/// scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(usize);

impl ShardId {
    /// The shard with the given index.
    pub fn new(index: usize) -> Self {
        ShardId(index)
    }

    /// The dense index of this shard.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One agreement instance to run on a shard: inputs plus the per-shot
/// fault environment (Byzantine set and strategy, drop policy, horizon).
///
/// Defaults: no Byzantine processes, no drops, no per-shot horizon (the
/// shot runs until it decides or the scheduler's tick budget ends).
pub struct ShotSpec<P: Protocol> {
    /// Process `i` proposes `inputs[i]` (Byzantine inputs are ignored).
    pub inputs: Vec<P::Value>,
    /// The Byzantine processes of this shot.
    pub byz: BTreeSet<Pid>,
    /// The strategy controlling the Byzantine processes (`Send`, so a
    /// pool executor may step the shard on a worker thread).
    pub adversary: Box<dyn Adversary<P::Msg> + Send>,
    /// The drop policy (fresh per shot, so shots are independent).
    pub drops: Box<dyn DropPolicy + Send>,
    /// If set, the shot ends after this many rounds even if undecided —
    /// the same bound as [`Simulation::run`](crate::Simulation::run)'s
    /// `max_rounds`.
    pub horizon: Option<u64>,
}

impl<P: Protocol> ShotSpec<P> {
    /// A shot proposing `inputs`, with no faults, no drops, no horizon.
    pub fn new(inputs: Vec<P::Value>) -> Self {
        ShotSpec {
            inputs,
            byz: BTreeSet::new(),
            adversary: Box::new(Silent),
            drops: Box::new(NoDrops),
            horizon: None,
        }
    }

    /// Declares the Byzantine processes and their strategy for this shot.
    pub fn byzantine(
        mut self,
        byz: impl IntoIterator<Item = Pid>,
        adversary: impl Adversary<P::Msg> + Send + 'static,
    ) -> Self {
        self.byz = byz.into_iter().collect();
        self.adversary = Box::new(adversary);
        self
    }

    /// Installs a drop policy for this shot.
    pub fn drops(mut self, drops: impl DropPolicy + Send + 'static) -> Self {
        self.drops = Box::new(drops);
        self
    }

    /// Bounds the shot to `rounds` rounds.
    pub fn horizon(mut self, rounds: u64) -> Self {
        self.horizon = Some(rounds);
        self
    }
}

/// One shard: a system configuration, an identifier assignment, a
/// topology, and a queue of [`ShotSpec`]s to run back to back.
pub struct ShardSpec<P: Protocol> {
    /// The `(n, ℓ, t)` parameters and model axes of every shot.
    pub cfg: SystemConfig,
    /// Which process holds which identifier.
    pub assignment: IdAssignment,
    /// The communication topology (default: complete).
    pub topology: Topology,
    /// The shots to run, in order.
    pub shots: VecDeque<ShotSpec<P>>,
    /// Whether every correct process journals its execution so crashed
    /// processes can be recovered durably (default: off).
    pub durable: bool,
}

impl<P: Protocol> ShardSpec<P> {
    /// A shard of `cfg` under `assignment` with an empty shot queue and
    /// the complete topology.
    pub fn new(cfg: SystemConfig, assignment: IdAssignment) -> Self {
        let n = cfg.n;
        ShardSpec {
            cfg,
            assignment,
            topology: Topology::complete(n),
            shots: VecDeque::new(),
            durable: false,
        }
    }

    /// Turns on per-process journaling, so [`ChurnOp::Crash`]ed processes
    /// can be [`ChurnOp::Recover`]ed durably (journal replay).
    pub fn durable(mut self) -> Self {
        self.durable = true;
        self
    }

    /// Installs a topology.
    ///
    /// # Panics
    ///
    /// Panics if the topology's size differs from `n`.
    pub fn topology(mut self, topology: Topology) -> Self {
        assert_eq!(topology.n(), self.cfg.n, "topology size must equal n");
        self.topology = topology;
        self
    }

    /// Appends a shot to the queue.
    pub fn shot(mut self, shot: ShotSpec<P>) -> Self {
        self.shots.push_back(shot);
        self
    }
}

/// The report of one completed (or horizon-/budget-terminated) shot.
#[derive(Clone, Debug)]
pub struct ShotReport<V> {
    /// The shard this shot ran on.
    pub shard: ShardId,
    /// The shot's position in the shard's queue (0-based).
    pub shot: usize,
    /// The same report a solo [`Simulation::run`](crate::Simulation::run)
    /// of this shot produces: outcome, verdict, rounds, message counts.
    pub report: RunReport<V>,
    /// The global tick at which the shot's round 0 executed.
    pub started_tick: u64,
    /// The global tick at which the shot's last round executed.
    pub finished_tick: u64,
    /// Exact wire bits handed to the network, if the scheduler was
    /// built with [`ShardedSimulation::measure_bits`] — see [`wire_bits`].
    pub bits_sent: Option<u64>,
}

/// The per-shard roll-up: every shot report, plus cost aggregates.
#[derive(Clone, Debug)]
pub struct ShardReport<V> {
    /// The shard.
    pub shard: ShardId,
    /// One report per shot, in queue order.
    pub shots: Vec<ShotReport<V>>,
}

impl<V> ShardReport<V> {
    /// Shots in which every correct process decided.
    pub fn decided_shots(&self) -> usize {
        self.shots
            .iter()
            .filter(|s| s.report.all_decided_round.is_some())
            .count()
    }

    /// Total non-self messages handed to the network across all shots.
    pub fn messages_sent(&self) -> u64 {
        self.shots.iter().map(|s| s.report.messages_sent).sum()
    }

    /// Total rounds executed across all shots.
    pub fn rounds(&self) -> u64 {
        self.shots.iter().map(|s| s.report.rounds).sum()
    }

    /// Total exact wire bits, if bit measurement was on.
    pub fn bits_sent(&self) -> Option<u64> {
        self.shots.iter().map(|s| s.bits_sent).sum()
    }
}

/// One delivery in a sharded run: the shard and shot it belongs to, plus
/// the ordinary [`Delivery`] record in that shard's *local* coordinates
/// (local [`Pid`]s, local round) — so extracting one shard's entries
/// reproduces exactly the trace a solo run would have recorded.
#[derive(Clone, Debug)]
pub struct ShardDelivery<M> {
    /// The shard the delivery belongs to.
    pub shard: ShardId,
    /// The shot (within the shard) the delivery belongs to.
    pub shot: usize,
    /// The delivery, in the shard's local coordinates.
    pub delivery: Delivery<M>,
}

/// A recorded sharded execution: every attempted delivery of every shard,
/// in global routing order, each tagged with its [`ShardId`] and shot.
#[derive(Clone, Debug, Default)]
pub struct ShardedTrace<M> {
    entries: Vec<ShardDelivery<M>>,
}

impl<M: homonym_core::Message> ShardedTrace<M> {
    /// An empty trace.
    pub fn new() -> Self {
        ShardedTrace {
            entries: Vec::new(),
        }
    }

    /// All recorded entries, in recording (= routing) order.
    pub fn entries(&self) -> &[ShardDelivery<M>] {
        &self.entries
    }

    /// Number of recorded (attempted) deliveries across all shards.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries of one shard's shot, extracted into an ordinary
    /// [`Trace`] (payload handles shared, not cloned). By the isolation
    /// property this equals the trace a solo run of that shot records.
    pub fn shard_shot_trace(&self, shard: ShardId, shot: usize) -> Trace<M> {
        let mut trace = Trace::new();
        for entry in &self.entries {
            if entry.shard == shard && entry.shot == shot {
                trace.record(entry.delivery.clone());
            }
        }
        trace
    }
}

/// The **exact** wire size of one payload, in bits: the framed binary
/// encoding's length under [`homonym_core::codec`] (one version byte plus
/// the varint-based payload encoding).
///
/// Until the codec landed this was a structural *estimate*
/// (`WireSize`, and before that, `Debug`-string bytes). It is computed
/// **once per emission** into a thread-local scratch buffer (the `Arc`
/// fan-out shares the number with every recipient), so measuring bits
/// neither allocates at steady state nor changes the clone-count profile
/// of the hot path. Absolute numbers differ from both estimates, so the
/// committed `BENCH_*.json` artifacts were regenerated when the codec
/// landed.
pub fn wire_bits<M: WireEncode>(msg: &M) -> u64 {
    codec::frame_bits(msg)
}

/// One routed sharded message, in shard-local coordinates, carrying the
/// shared payload handle. Wires never leave their owning shard, so the
/// shard index lives with the buffer, not on every wire.
///
/// Engines keep a reusable `Vec<ShardWire>` per shard as tick scratch
/// and fill/route it exclusively through the `crate::par` helpers (or
/// the [`ShardCore::build_wires`]/[`ShardCore::route_wires`] pair) — the
/// internals are crate-private so the addressing and routing rules
/// cannot be bypassed from outside.
pub struct ShardWire<M> {
    pub(crate) from: Pid,
    pub(crate) src: Id,
    pub(crate) to: Pid,
    pub(crate) msg: Arc<M>,
    pub(crate) bits: u64,
    /// The payload's frame token under the owning shard's
    /// [`FrameInterner`] — carried onto every delivered envelope so inbox
    /// dedup groups homonym duplicates by token instead of deep walks.
    pub(crate) tok: Tok,
}

/// The engine-agnostic bookkeeping of one shard: its configuration, its
/// shot queue, the live shot's fault environment and counters, and the
/// per-shot report roll-up.
///
/// Both sharded engines — the lock-step [`ShardedSimulation`] here and
/// the threaded `homonym_runtime::ShardedCluster` — embed one
/// `ShardCore` per shard and drive it through the same lifecycle
/// ([`start_next_shot`](ShardCore::start_next_shot),
/// [`record_decision`](ShardCore::record_decision),
/// [`roll_over_if_done`](ShardCore::roll_over_if_done),
/// [`report`](ShardCore::report)), so shot validation, restarts, and
/// accounting cannot drift between engines. What differs per engine is
/// only where the spawned automata live: the simulator holds them
/// directly, the cluster ships them to actor threads.
pub struct ShardCore<P: Protocol> {
    /// The `(n, ℓ, t)` parameters and model axes of every shot.
    pub cfg: SystemConfig,
    /// Which process holds which identifier.
    pub assignment: IdAssignment,
    /// The communication topology.
    pub topology: Topology,
    /// Spawns the automata of each shot.
    pub factory: Box<dyn ProtocolFactory<P = P> + Send>,
    /// The shots still queued.
    pub shots: VecDeque<ShotSpec<P>>,
    /// First slot of this shard's contiguous range in the shared plane.
    pub offset: usize,
    /// The current shot's position in the queue (0-based).
    pub shot: usize,
    /// The correct processes of the current shot, ascending. Amnesiac
    /// rejoiners stay here (they keep executing rounds) but leave
    /// [`inputs`](ShardCore::inputs) and the decision accounting.
    pub correct: Vec<Pid>,
    /// The correct processes' inputs (for the outcome checker).
    pub inputs: BTreeMap<Pid, P::Value>,
    /// The shot's full input vector, untouched by churn — recoveries
    /// respawn from here even after the spec view dropped the pid.
    spawn_inputs: Vec<P::Value>,
    /// The Byzantine processes of the current shot.
    pub byz: BTreeSet<Pid>,
    /// The currently crashed processes of the current shot (their
    /// automata are removed by the engine; the core force-drops their
    /// wires and suspends their journals).
    pub crashed: BTreeSet<Pid>,
    /// The processes that rejoined amnesiac this shot — they share the
    /// `t` fault budget with the Byzantine set and leave the shot's
    /// correctness accounting.
    pub amnesiac: BTreeSet<Pid>,
    /// Whether this shard journals deliveries for durable recovery.
    pub durable: bool,
    /// Per-process journals (populated per shot when `durable`).
    journals: BTreeMap<Pid, Box<dyn Journal + Send>>,
    /// Per-pid delivery staging for the journaling pass (reused).
    journal_scratch: Vec<Vec<(Id, Arc<P::Msg>)>>,
    /// The strategy controlling the Byzantine processes.
    pub adversary: Box<dyn Adversary<P::Msg> + Send>,
    /// The current shot's drop policy.
    pub drops: Box<dyn DropPolicy + Send>,
    /// The current shot's round bound, if any.
    pub horizon: Option<u64>,
    /// The current shot's next round (local to the shard).
    pub round: Round,
    /// The global tick at which the current shot's round 0 executed.
    pub started_tick: u64,
    /// Decisions of the current shot, with their rounds.
    pub decisions: BTreeMap<Pid, (P::Value, Round)>,
    /// Non-self messages handed to the network this shot.
    pub messages_sent: u64,
    /// Non-self messages delivered this shot.
    pub messages_delivered: u64,
    /// Non-self messages lost to the drop policy this shot.
    pub messages_dropped: u64,
    /// Exact wire bits sent this shot (see [`wire_bits`]).
    pub bits_sent: u64,
    /// Sum of [`Protocol::state_bits`] across the shot's correct
    /// processes at the last sampled round.
    pub state_bits: u64,
    /// Largest per-round [`ShardCore::state_bits`] sample this shot.
    pub peak_state_bits: u64,
    /// Whether a shot is currently live (false once the queue drains).
    pub active: bool,
    /// Reports of the completed shots, in queue order.
    pub done: Vec<ShotReport<P::Value>>,
    /// The shard's frame interner: one token per distinct emitted
    /// payload, persistent across rounds and shots (tokens are only
    /// compared within one shard's delivery slots).
    pub frames: FrameInterner<P::Msg>,
}

impl<P: Protocol> ShardCore<P> {
    /// Lays a shard out at `offset` slots into the shared plane.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the assignment
    /// disagrees with it.
    pub fn new(
        spec: ShardSpec<P>,
        factory: Box<dyn ProtocolFactory<P = P> + Send>,
        offset: usize,
    ) -> Self {
        spec.cfg.validate().expect("invalid system configuration");
        assert_eq!(
            spec.assignment.n(),
            spec.cfg.n,
            "assignment covers n processes"
        );
        assert_eq!(
            spec.assignment.ell(),
            spec.cfg.ell,
            "assignment uses ell identifiers"
        );
        ShardCore {
            cfg: spec.cfg,
            assignment: spec.assignment,
            topology: spec.topology,
            factory,
            shots: spec.shots,
            offset,
            shot: 0,
            correct: Vec::new(),
            inputs: BTreeMap::new(),
            spawn_inputs: Vec::new(),
            byz: BTreeSet::new(),
            crashed: BTreeSet::new(),
            amnesiac: BTreeSet::new(),
            durable: spec.durable,
            journals: BTreeMap::new(),
            journal_scratch: Vec::new(),
            adversary: Box::new(Silent),
            drops: Box::new(NoDrops),
            horizon: None,
            round: Round::ZERO,
            started_tick: 0,
            decisions: BTreeMap::new(),
            messages_sent: 0,
            messages_delivered: 0,
            messages_dropped: 0,
            bits_sent: 0,
            state_bits: 0,
            peak_state_bits: 0,
            active: false,
            done: Vec::new(),
            frames: FrameInterner::new(),
        }
    }

    /// Installs the next queued shot and spawns its correct automata
    /// (returned for the engine to place), or goes idle if the queue is
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if the shot's inputs or Byzantine set are malformed.
    pub fn start_next_shot(&mut self, tick: u64) -> Option<Vec<(Pid, P)>> {
        let Some(spec) = self.shots.pop_front() else {
            self.active = false;
            return None;
        };
        assert_eq!(spec.inputs.len(), self.cfg.n, "one input per process");
        assert!(
            spec.byz.len() <= self.cfg.t,
            "{} byzantine processes exceed t = {}",
            spec.byz.len(),
            self.cfg.t
        );
        assert!(
            spec.byz.iter().all(|p| p.index() < self.cfg.n),
            "byzantine pid out of range"
        );
        let spawned: Vec<(Pid, P)> = self
            .assignment
            .iter()
            .filter(|(pid, _)| !spec.byz.contains(pid))
            .map(|(pid, id)| {
                (
                    pid,
                    self.factory.spawn(id, spec.inputs[pid.index()].clone()),
                )
            })
            .collect();
        self.correct = spawned.iter().map(|&(pid, _)| pid).collect();
        self.inputs = self
            .correct
            .iter()
            .map(|&pid| (pid, spec.inputs[pid.index()].clone()))
            .collect();
        self.spawn_inputs = spec.inputs;
        self.byz = spec.byz;
        self.crashed = BTreeSet::new();
        self.amnesiac = BTreeSet::new();
        self.journals = if self.durable {
            self.correct
                .iter()
                .map(|&pid| {
                    let journal: Box<dyn Journal + Send> = Box::new(MemJournal::new());
                    (pid, journal)
                })
                .collect()
        } else {
            BTreeMap::new()
        };
        self.adversary = spec.adversary;
        self.drops = spec.drops;
        self.horizon = spec.horizon;
        self.round = Round::ZERO;
        self.started_tick = tick;
        self.decisions = BTreeMap::new();
        self.messages_sent = 0;
        self.messages_delivered = 0;
        self.messages_dropped = 0;
        self.bits_sent = 0;
        self.state_bits = 0;
        self.peak_state_bits = 0;
        self.active = true;
        Some(spawned)
    }

    /// Whether every correct process of the live shot has decided.
    /// Amnesiac rejoiners left the accounting; currently crashed
    /// processes still count (the shot waits for them to recover and
    /// decide, or runs to its horizon).
    pub fn all_decided(&self) -> bool {
        self.decisions.len() + self.amnesiac.len() == self.correct.len()
    }

    /// The processes currently executing rounds: the correct set
    /// (including amnesiac rejoiners) minus the currently crashed.
    pub fn live(&self) -> impl Iterator<Item = Pid> + '_ {
        self.correct
            .iter()
            .copied()
            .filter(move |p| !self.crashed.contains(p))
    }

    /// The number of processes currently executing rounds.
    pub fn live_len(&self) -> usize {
        self.correct.len() - self.crashed.len()
    }

    /// Records one round's total [`Protocol::state_bits`] across the
    /// shot's correct processes — engines call this after delivery, from
    /// wherever their automata live.
    pub fn record_state_bits(&mut self, total: u64) {
        self.state_bits = total;
        self.peak_state_bits = self.peak_state_bits.max(total);
    }

    /// Records a decision, enforcing irrevocability.
    ///
    /// # Panics
    ///
    /// Panics if the decision changes (a protocol bug).
    pub fn record_decision(&mut self, pid: Pid, v: P::Value) {
        if self.amnesiac.contains(&pid) {
            return; // left the shot's correctness accounting
        }
        match self.decisions.get(&pid) {
            None => {
                self.decisions.insert(pid, (v, self.round));
            }
            Some((prev, _)) => {
                assert!(
                    *prev == v,
                    "decision of {pid} changed from {prev:?} to {v:?}"
                );
            }
        }
    }

    /// If the live shot has decided or hit its horizon, finalizes its
    /// report and pipelines the next queued shot; returns the automata
    /// of the new shot for the engine to place ([`None`] if the shot
    /// continues or the queue drained).
    pub fn roll_over_if_done(
        &mut self,
        shard: ShardId,
        tick: u64,
        measure_bits: bool,
    ) -> Option<Vec<(Pid, P)>> {
        if !self.active {
            return None;
        }
        let decided = self.all_decided();
        let horizon_hit = self.horizon.is_some_and(|h| self.round.index() >= h);
        if !(decided || horizon_hit) {
            return None;
        }
        let report = self.shot_report(shard, tick, measure_bits);
        self.done.push(report);
        self.shot += 1;
        self.start_next_shot(tick + 1)
    }

    /// Finalizes the live shot **unconditionally** — decided or not —
    /// and pipelines the next queued shot; returns the new shot's
    /// automata for the engine to place ([`None`] if the queue is
    /// empty, leaving the shard idle).
    ///
    /// This is the churn seam: a schedule aborting a shard mid-shot
    /// records the interrupted shot's report (its verdict reflects
    /// whatever had been decided by the cut) instead of silently
    /// discarding the work.
    pub fn cut_shot(
        &mut self,
        shard: ShardId,
        tick: u64,
        measure_bits: bool,
    ) -> Option<Vec<(Pid, P)>> {
        if self.active {
            let report = self.shot_report(shard, tick, measure_bits);
            self.done.push(report);
            self.shot += 1;
        }
        self.start_next_shot(tick)
    }

    /// The report of the live shot as of now.
    pub fn shot_report(
        &self,
        shard: ShardId,
        finished_tick: u64,
        measure_bits: bool,
    ) -> ShotReport<P::Value> {
        let outcome = Outcome {
            inputs: self.inputs.clone(),
            decisions: self.decisions.clone(),
            horizon: self.round,
        };
        let verdict = spec::check(&outcome);
        ShotReport {
            shard,
            shot: self.shot,
            report: RunReport {
                all_decided_round: self
                    .all_decided()
                    .then(|| self.decisions.values().map(|&(_, r)| r).max())
                    .flatten(),
                outcome,
                verdict,
                rounds: self.round.index(),
                messages_sent: self.messages_sent,
                messages_delivered: self.messages_delivered,
                messages_dropped: self.messages_dropped,
                state_bits: self.state_bits,
                peak_state_bits: self.peak_state_bits,
            },
            started_tick: self.started_tick,
            finished_tick,
            bits_sent: measure_bits.then_some(self.bits_sent),
        }
    }

    /// The shard's roll-up: completed shots, plus the live shot's
    /// current (possibly undecided) state if one is running.
    pub fn report(
        &self,
        shard: ShardId,
        current_tick: u64,
        measure_bits: bool,
    ) -> ShardReport<P::Value> {
        let mut shots = self.done.clone();
        if self.active {
            shots.push(self.shot_report(shard, current_tick.saturating_sub(1), measure_bits));
        }
        ShardReport { shard, shots }
    }

    /// The calling-thread middle of a shard's tick, run after the send
    /// chunks merged into `wires` (correct processes in ascending pid
    /// order): appends the adversary's wires, stamps frame tokens from
    /// the shard's one interner, and plans the routes — topology plus
    /// the stateful drop policy, queried in exact wire order — folding
    /// the tallies into the shot's counters. `record` sees every
    /// *attempted* delivery in routing order (the trace hook; untraced
    /// engines pass a no-op).
    ///
    /// Both sharded engines — the lock-step simulator and the threaded
    /// cluster — call this between their send and deliver/receive
    /// scatters, so the adversary contract assert, the restricted
    /// clamp, and the counter accounting exist in exactly one place and
    /// cannot drift.
    ///
    /// # Panics
    ///
    /// Panics if the adversary emits from a non-Byzantine process.
    pub fn plan_tick(
        &mut self,
        shard: ShardId,
        byz_sent: &mut IdBits,
        wires: &mut Vec<ShardWire<P::Msg>>,
        route_plan: &mut Vec<bool>,
        measure_bits: bool,
        record: impl FnMut(&ShardWire<P::Msg>, bool),
    ) where
        P::Msg: WireEncode,
    {
        let ctx = AdvCtx {
            round: self.round,
            cfg: &self.cfg,
            assignment: &self.assignment,
            byz: &self.byz,
        };
        let emissions = self.adversary.send(&ctx);
        par::adversary_wires(
            emissions,
            &self.byz,
            &self.assignment,
            self.cfg.byz_power,
            byz_sent,
            |m| if measure_bits { wire_bits(m) } else { 0 },
            Some(shard),
            wires,
        );
        par::stamp_toks(&mut self.frames, wires);
        let down = (!self.crashed.is_empty()).then_some(&self.crashed);
        let tallies = par::plan_routes(
            wires,
            self.round,
            &self.topology,
            down,
            self.drops.as_mut(),
            route_plan,
            record,
        );
        self.messages_sent += tallies.sent;
        self.messages_delivered += tallies.delivered;
        self.messages_dropped += tallies.dropped;
        self.bits_sent += tallies.bits;
        self.journal_deliveries(wires, route_plan);
    }

    /// Journals this round's planned deliveries, one [`Deliveries`
    /// entry](journal::JournalEntry::Deliveries) per live journaled
    /// process (even when its inbox is empty — sending mutates state, so
    /// every executed round must replay). No-op unless the shard is
    /// durable.
    fn journal_deliveries(&mut self, wires: &[ShardWire<P::Msg>], plan: &[bool])
    where
        P::Msg: WireEncode,
    {
        if self.journals.is_empty() {
            return;
        }
        let n = self.cfg.n;
        self.journal_scratch.resize_with(n, Vec::new);
        for buf in &mut self.journal_scratch {
            buf.clear();
        }
        for (wire, &deliver) in wires.iter().zip(plan) {
            if deliver && self.journals.contains_key(&wire.to) {
                self.journal_scratch[wire.to.index()].push((wire.src, Arc::clone(&wire.msg)));
            }
        }
        for (&pid, journal) in &mut self.journals {
            if self.crashed.contains(&pid) {
                continue; // not executing this round: nothing to replay
            }
            let entry =
                journal::encode_deliveries_entry(self.round, &self.journal_scratch[pid.index()]);
            journal
                .append(&entry)
                .and_then(|()| journal.sync())
                .expect("journal append failed");
        }
    }

    /// Marks `pid` crashed: its wires are force-dropped from the next
    /// route pass on and its journal is suspended. The engine must drop
    /// the pid's automaton itself (the core never holds automata).
    pub fn crash(&mut self, pid: Pid) -> Result<(), ChurnError> {
        if pid.index() >= self.cfg.n {
            return Err(ChurnError::UnknownPid(pid));
        }
        if self.byz.contains(&pid) {
            return Err(ChurnError::AlreadyByzantine(pid));
        }
        if self.crashed.contains(&pid) {
            return Err(ChurnError::AlreadyCrashed(pid));
        }
        self.crashed.insert(pid);
        Ok(())
    }

    /// Recovers a crashed `pid`, returning the automaton the engine must
    /// place back where its automata live.
    ///
    /// [`Durable`](RecoveryMode::Durable) replays the pid's journal into
    /// a fresh spawn — byte-identical state, no budget cost — and fails
    /// with [`ChurnError::RecoveryFailed`] (state unchanged) if the
    /// shard is not durable or the journal is damaged.
    /// [`Amnesiac`](RecoveryMode::Amnesiac) rejoins with a fresh spawn,
    /// consuming the shared `|byz ∪ amnesiac| ≤ t` fault budget and
    /// leaving the shot's correctness accounting.
    pub fn recover(&mut self, pid: Pid, mode: RecoveryMode) -> Result<P, ChurnError>
    where
        P::Msg: WireDecode,
    {
        if !self.crashed.contains(&pid) {
            return Err(ChurnError::NotCrashed(pid));
        }
        let id = self.assignment.id_of(pid);
        let input = self.spawn_inputs[pid.index()].clone();
        match mode {
            RecoveryMode::Amnesiac => {
                let mut ever: BTreeSet<Pid> = self.byz.union(&self.amnesiac).copied().collect();
                ever.insert(pid);
                if ever.len() > self.cfg.t {
                    return Err(ChurnError::BudgetExceeded {
                        would_be: ever.len(),
                        t: self.cfg.t,
                    });
                }
                self.crashed.remove(&pid);
                self.amnesiac.insert(pid);
                self.inputs.remove(&pid);
                self.decisions.remove(&pid);
                if let Some(journal) = self.journals.get_mut(&pid) {
                    journal.reset().expect("journal reset failed");
                }
                Ok(self.factory.spawn(id, input))
            }
            RecoveryMode::Durable => {
                let Some(journal) = self.journals.get(&pid) else {
                    return Err(ChurnError::RecoveryFailed(format!(
                        "no journal for {pid} (shard not durable)"
                    )));
                };
                let recovered = journal.recover();
                if let Some(damage) = recovered.damage {
                    return Err(ChurnError::RecoveryFailed(damage.to_string()));
                }
                let entries = journal::decode_entries::<P::Msg>(&recovered.records)
                    .map_err(|e| ChurnError::RecoveryFailed(e.to_string()))?;
                let mut proc_ = self.factory.spawn(id, input);
                journal::replay(&mut proc_, entries, self.cfg.counting)
                    .map_err(|e| ChurnError::RecoveryFailed(e.to_string()))?;
                self.crashed.remove(&pid);
                Ok(proc_)
            }
        }
    }

    /// Phase 3 (Byzantine half) — drain the Byzantine slots and hand the
    /// inboxes to the adversary, at the current round (the caller
    /// advances the round afterwards).
    pub fn deliver_byz(&mut self, slots: &mut DeliverySlots<'_, P::Msg>) {
        let byz_inboxes: BTreeMap<Pid, Inbox<P::Msg>> = self
            .byz
            .iter()
            .map(|&pid| {
                let slot = Pid::new(self.offset + pid.index());
                (pid, slots.take_inbox(slot, self.cfg.counting))
            })
            .collect();
        self.adversary.receive(self.round, &byz_inboxes);
    }
}

/// One shard-churn operation, applied at the start of a global tick.
pub enum ChurnOp<P: Protocol> {
    /// Cut the shard's live shot (finalizing its report as-is) and start
    /// its next queued shot, if any.
    Abort(ShardId),
    /// Enqueue a fresh shot on the shard; if the shard is idle, the shot
    /// starts immediately.
    Enqueue(ShardId, ShotSpec<P>),
    /// Crash one process of the shard's live shot: its automaton is
    /// dropped and its wires are force-dropped until it recovers.
    Crash(ShardId, Pid),
    /// Recover a crashed process of the shard's live shot, durably
    /// (journal replay; requires [`ShardSpec::durable`]) or amnesiac
    /// (fresh spawn consuming the shared `t` fault budget).
    Recover(ShardId, Pid, RecoveryMode),
}

/// A tick-indexed script of shard churn: which shards abort, restart, or
/// receive fresh shots, and when.
///
/// Plans are consumed by [`ShardedSimulation::run_churned`] and the
/// threaded cluster's churn loop: at the start of each global tick every
/// operation due at (or before) that tick is applied, in insertion
/// order. The plan is plain data — scenario schedules compile their
/// shard events down to one.
pub struct ChurnPlan<P: Protocol> {
    ops: BTreeMap<u64, Vec<ChurnOp<P>>>,
}

impl<P: Protocol> Default for ChurnPlan<P> {
    fn default() -> Self {
        ChurnPlan {
            ops: BTreeMap::new(),
        }
    }
}

impl<P: Protocol> ChurnPlan<P> {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `op` at the start of global tick `tick`.
    pub fn at(&mut self, tick: u64, op: ChurnOp<P>) -> &mut Self {
        self.ops.entry(tick).or_default().push(op);
        self
    }

    /// Whether no operations remain.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Removes and returns every operation due at or before `tick`, in
    /// tick order then insertion order.
    pub fn take_due(&mut self, tick: u64) -> Vec<ChurnOp<P>> {
        let later = self.ops.split_off(&(tick + 1));
        let due = std::mem::replace(&mut self.ops, later);
        due.into_values().flatten().collect()
    }

    /// Whether any operation is scheduled strictly after `tick`.
    pub fn has_pending_after(&self, tick: u64) -> bool {
        self.ops.keys().any(|&t| t > tick)
    }
}

/// One shard of the lock-step engine: the shared bookkeeping, the
/// automata themselves, and the shard-private scratch buffers one tick's
/// work needs — so a worker task touching this shard's chunk touches
/// nothing outside it (and its slot range of the plane).
struct SimShard<P: Protocol> {
    core: ShardCore<P>,
    procs: BTreeMap<Pid, P>,
    /// This tick's routed wires (reused across ticks, local coords).
    wires: Vec<ShardWire<P::Msg>>,
    /// This tick's trace entries, drained into the global trace — in
    /// shard order — after every shard has stepped.
    trace_buf: Vec<ShardDelivery<P::Msg>>,
    /// Per-chunk send buffers (intra-shard parallelism scratch).
    send_scratch: Vec<SendScratch<P::Msg>>,
    /// This tick's per-wire delivery plan (route phase output).
    route_plan: Vec<bool>,
    /// The adversary's restricted-clamp bitset, reused across ticks.
    byz_sent: IdBits,
    /// Per-chunk receive results: `(pid, decision, state_bits)`.
    recv_out: Vec<Vec<(Pid, Option<P::Value>, u64)>>,
}

/// Borrow bundle for one shard's send phase: unifies the shard-side
/// borrows under one lifetime so the flattened (shard, chunk) tasks can
/// be built in a second pass over all bundles.
struct SendCtx<'a, P: Protocol> {
    shard: ShardId,
    r: Round,
    assignment: &'a IdAssignment,
    procs: Vec<(Pid, &'a mut P)>,
    scratch: &'a mut [SendScratch<P::Msg>],
    ranges: Vec<Range<usize>>,
}

/// Borrow bundle for one shard's receive phase: the planned wire list,
/// the shard's sub-split plane views, and the per-chunk result buffers.
struct RecvCtx<'a, P: Protocol> {
    r: Round,
    offset: usize,
    counting: Counting,
    wires: &'a [ShardWire<P::Msg>],
    plan: &'a [bool],
    ranges: Vec<Range<usize>>,
    views: Vec<DeliverySlots<'a, P::Msg>>,
    procs: Vec<(Pid, &'a mut P)>,
    outs: &'a mut [Vec<(Pid, Option<P::Value>, u64)>],
}

/// A deterministic scheduler driving K independent agreement instances
/// through one shared delivery plane.
///
/// Each global **tick** executes one round of every live shard: the
/// shard sends, routes its wires into its own slot range of the shared
/// [`Deliveries`] plane, receives, and (if decided or horizon-hit) rolls
/// over to its next queued shot. Bucket allocations are reused across
/// both rounds and shards, and each payload is wrapped in an `Arc`
/// exactly once regardless of K.
///
/// The scheduler is generic over an [`Executor`]: under the default
/// [`Sequential`] executor shards step one after another on the calling
/// thread; under [`Pool`](homonym_core::exec::Pool) each tick fans the
/// shards out across worker threads, every worker writing its shards'
/// disjoint plane ranges concurrently (via
/// [`Deliveries::split_slots`]) and the per-shard trace buffers merging
/// back in shard order — so traces, decisions, and reports are
/// **byte-identical at any worker count** (`tests/shard_isolation.rs`
/// property-tests this; `tests/fabric_golden.rs` pins it against the
/// sequential golden digests).
///
/// # Example
///
/// ```
/// use homonym_classic::{Eig, UniqueRunner};
/// use homonym_core::{Domain, FnFactory, IdAssignment, SystemConfig};
/// use homonym_sim::shards::{ShardSpec, ShardedSimulation, ShotSpec};
///
/// let cfg = SystemConfig::builder(4, 4, 1).build().unwrap();
/// let domain = Domain::binary();
/// let factory = FnFactory::new(move |id, input| {
///     UniqueRunner::new(Eig::new(4, 1, domain.clone()), id, input)
/// });
/// let mut sharded = ShardedSimulation::new();
/// for _ in 0..3 {
///     let spec = ShardSpec::new(cfg, IdAssignment::unique(4))
///         .shot(ShotSpec::new(vec![true; 4]))
///         .shot(ShotSpec::new(vec![false; 4]));
///     sharded.add_shard(spec, factory.clone());
/// }
/// let reports = sharded.run(32);
/// assert_eq!(reports.len(), 3);
/// assert!(reports.iter().all(|r| r.decided_shots() == 2));
/// ```
pub struct ShardedSimulation<P: Protocol, E: Executor = Sequential> {
    shards: Vec<SimShard<P>>,
    plane: Deliveries<P::Msg>,
    /// Per-shard slot widths, in shard order — fixed at `add_shard`
    /// time, cached so each tick's plane split allocates no new vector.
    widths: Vec<usize>,
    exec: E,
    tick: u64,
    trace: Option<ShardedTrace<P::Msg>>,
    measure_bits: bool,
}

impl<P: Protocol> Default for ShardedSimulation<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Protocol> ShardedSimulation<P> {
    /// An empty scheduler stepping shards sequentially (add shards with
    /// [`add_shard`](ShardedSimulation::add_shard)).
    pub fn new() -> Self {
        Self::with_executor(Sequential)
    }
}

impl<P: Protocol, E: Executor> ShardedSimulation<P, E> {
    /// An empty scheduler whose ticks run on the given executor — e.g.
    /// `ShardedSimulation::with_executor(Pool::new(4))` steps each
    /// tick's live shards on four worker threads.
    pub fn with_executor(exec: E) -> Self {
        ShardedSimulation {
            shards: Vec::new(),
            plane: Deliveries::new(0),
            widths: Vec::new(),
            exec,
            tick: 0,
            trace: None,
            measure_bits: false,
        }
    }

    /// Records a full sharded delivery trace (off by default).
    pub fn record_trace(mut self, on: bool) -> Self {
        self.trace = on.then(ShardedTrace::new);
        self
    }

    /// Measures exact wire bits per shot (off by default) — see
    /// [`wire_bits`].
    pub fn measure_bits(mut self, on: bool) -> Self {
        self.measure_bits = on;
        self
    }

    /// Enqueues a shard, widening the shared plane by the shard's `n`
    /// slots, and starts its first shot.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, the assignment disagrees
    /// with it, or a shot's inputs/Byzantine set are malformed.
    pub fn add_shard(
        &mut self,
        spec: ShardSpec<P>,
        factory: impl ProtocolFactory<P = P> + Send + 'static,
    ) -> ShardId {
        let id = ShardId(self.shards.len());
        let offset = self.plane.n();
        self.widths.push(spec.cfg.n);
        self.plane.ensure_n(offset + spec.cfg.n);
        let mut core = ShardCore::new(spec, Box::new(factory), offset);
        let procs = core
            .start_next_shot(self.tick)
            .map(|spawned| spawned.into_iter().collect())
            .unwrap_or_default();
        self.shards.push(SimShard {
            core,
            procs,
            wires: Vec::new(),
            trace_buf: Vec::new(),
            send_scratch: Vec::new(),
            route_plan: Vec::new(),
            byz_sent: IdBits::new(),
            recv_out: Vec::new(),
        });
        id
    }

    /// The number of shards enqueued.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The number of global ticks executed so far.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Whether every shard has drained its shot queue.
    pub fn all_idle(&self) -> bool {
        self.shards.iter().all(|s| !s.core.active)
    }

    /// The recorded sharded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&ShardedTrace<P::Msg>> {
        self.trace.as_ref()
    }

    /// Consumes the scheduler, returning the trace (if recorded).
    pub fn into_trace(self) -> Option<ShardedTrace<P::Msg>> {
        self.trace
    }

    /// Executes one global tick: one round of every live shard, through
    /// the shared plane.
    ///
    /// Work is fanned out as flattened **(shard, chunk)** units — a big
    /// shard splits internally into contiguous pid chunks instead of
    /// serializing the whole tick behind one indivisible task — in two
    /// scatters: every shard's send chunks, then every shard's
    /// deliver/receive chunks (each against its own sub-split of the
    /// shard's plane range, via [`DeliverySlots::split_widths`]). Between
    /// them the calling thread walks the shards in shard order doing the
    /// inherently sequential work: merging chunk buffers in chunk order,
    /// the adversary's emissions, frame-token stamping, and route
    /// planning (stateful drop policies make query order observable).
    /// Per-shard object call sequences are exactly the single-shot
    /// engine's and trace buffers merge in shard order, so traces,
    /// decisions, and reports are **byte-identical at any worker count**.
    ///
    /// # Panics
    ///
    /// Panics on the same contract violations as
    /// [`Simulation::step`](crate::Simulation::step).
    pub fn step(&mut self)
    where
        P: Send,
        P::Value: Send,
        P::Msg: WireEncode,
    {
        let tick = self.tick;
        let measure_bits = self.measure_bits;
        let record_trace = self.trace.is_some();
        let workers = self.exec.workers();
        let measure = move |m: &P::Msg| if measure_bits { wire_bits(m) } else { 0 };

        // Phase 1 — sends, one flattened scatter of (shard, chunk) units.
        {
            let mut ctxs: Vec<SendCtx<'_, P>> = Vec::new();
            for (s, shard) in self.shards.iter_mut().enumerate() {
                if !shard.core.active {
                    continue;
                }
                let SimShard {
                    core,
                    procs,
                    send_scratch,
                    ..
                } = shard;
                let ranges = exec::chunk_ranges(procs.len(), workers);
                if send_scratch.len() < ranges.len() {
                    send_scratch.resize_with(ranges.len(), Default::default);
                }
                ctxs.push(SendCtx {
                    shard: ShardId(s),
                    r: core.round,
                    assignment: &core.assignment,
                    procs: procs.iter_mut().map(|(&pid, p)| (pid, p)).collect(),
                    scratch: send_scratch.as_mut_slice(),
                    ranges,
                });
            }
            let mut tasks = Vec::new();
            for ctx in ctxs.iter_mut() {
                let sid = ctx.shard;
                let r = ctx.r;
                let assignment = ctx.assignment;
                let mut procs = ctx.procs.as_mut_slice();
                let mut scratch = std::mem::take(&mut ctx.scratch);
                for range in &ctx.ranges {
                    let (chunk, rest) = std::mem::take(&mut procs).split_at_mut(range.len());
                    procs = rest;
                    let (sc, rest) = scratch.split_at_mut(1);
                    scratch = rest;
                    let sc = &mut sc[0];
                    tasks.push(move || {
                        par::send_chunk(chunk, r, assignment, measure, Some(sid), sc)
                    });
                }
            }
            self.exec.scatter(tasks);
        }

        // Calling-thread pass, in shard order: merge chunk buffers (chunk
        // order = pid order), adversary emissions, frame-token stamping,
        // route planning, counters.
        for (s, shard) in self.shards.iter_mut().enumerate() {
            if !shard.core.active {
                continue;
            }
            let sid = ShardId(s);
            let SimShard {
                core,
                procs,
                wires,
                send_scratch,
                trace_buf,
                byz_sent,
                route_plan,
                ..
            } = shard;
            let r = core.round;
            wires.clear();
            let chunks = exec::chunk_ranges(procs.len(), workers).len();
            for scratch in send_scratch.iter_mut().take(chunks) {
                scratch.drain_into(wires);
            }
            let shot = core.shot;
            core.plan_tick(
                sid,
                byz_sent,
                wires,
                route_plan,
                measure_bits,
                |wire, dropped| {
                    if record_trace {
                        trace_buf.push(ShardDelivery {
                            shard: sid,
                            shot,
                            delivery: Delivery {
                                round: r,
                                from: wire.from,
                                src_id: wire.src,
                                to: wire.to,
                                msg: Arc::clone(&wire.msg),
                                dropped,
                            },
                        });
                    }
                },
            );
        }

        // Phase 2 — deliver + receive, one flattened scatter of
        // (shard, chunk) units; each chunk owns a disjoint sub-range of
        // its shard's plane slots.
        {
            let views = self.plane.split_slots(self.widths.iter().copied());
            let mut ctxs: Vec<RecvCtx<'_, P>> = Vec::new();
            for (shard, view) in self.shards.iter_mut().zip(views) {
                if !shard.core.active {
                    continue;
                }
                let SimShard {
                    core,
                    procs,
                    wires,
                    route_plan,
                    recv_out,
                    ..
                } = shard;
                let ranges = exec::chunk_ranges(core.cfg.n, workers);
                if recv_out.len() < ranges.len() {
                    recv_out.resize_with(ranges.len(), Vec::new);
                }
                let sub_views = view.split_widths(ranges.iter().map(|rg| rg.len()));
                ctxs.push(RecvCtx {
                    r: core.round,
                    offset: core.offset,
                    counting: core.cfg.counting,
                    wires: wires.as_slice(),
                    plan: route_plan.as_slice(),
                    ranges,
                    views: sub_views,
                    procs: procs.iter_mut().map(|(&pid, p)| (pid, p)).collect(),
                    outs: recv_out.as_mut_slice(),
                });
            }
            let mut tasks = Vec::new();
            for ctx in ctxs.iter_mut() {
                let r = ctx.r;
                let offset = ctx.offset;
                let counting = ctx.counting;
                let wires = ctx.wires;
                let plan = ctx.plan;
                let mut procs = ctx.procs.as_mut_slice();
                let mut outs = std::mem::take(&mut ctx.outs);
                for (range, mut view) in ctx.ranges.iter().cloned().zip(ctx.views.drain(..)) {
                    let split = procs
                        .iter()
                        .take_while(|(pid, _)| pid.index() < range.end)
                        .count();
                    let (chunk, rest) = std::mem::take(&mut procs).split_at_mut(split);
                    procs = rest;
                    let (out, rest) = outs.split_at_mut(1);
                    outs = rest;
                    let out = &mut out[0];
                    tasks.push(move || {
                        par::deliver_chunk(wires, plan, offset, range, &mut view);
                        par::receive_chunk(chunk, r, offset, counting, &mut view, out);
                    });
                }
            }
            self.exec.scatter(tasks);
        }

        // Post pass, in shard order: merge chunk results (decisions in
        // pid order), state sampling, Byzantine inboxes, round advance,
        // rollover.
        let mut slots = self.plane.as_slots();
        for (s, shard) in self.shards.iter_mut().enumerate() {
            let sid = ShardId(s);
            if shard.core.active {
                let chunks = exec::chunk_ranges(shard.core.cfg.n, workers).len();
                let mut total = 0u64;
                for out in shard.recv_out.iter_mut().take(chunks) {
                    for (pid, decision, bits) in out.drain(..) {
                        total += bits;
                        if let Some(v) = decision {
                            shard.core.record_decision(pid, v);
                        }
                    }
                }
                shard.core.record_state_bits(total);
                shard.core.deliver_byz(&mut slots);
                shard.core.round = shard.core.round.next();
            }
            if let Some(spawned) = shard.core.roll_over_if_done(sid, tick, measure_bits) {
                shard.procs = spawned.into_iter().collect();
            }
        }

        // Merge per-shard trace buffers in shard order — the same global
        // routing order the plane-wide sequential sweep recorded.
        if let Some(trace) = &mut self.trace {
            for shard in &mut self.shards {
                trace.entries.append(&mut shard.trace_buf);
            }
        }

        self.tick = tick + 1;
    }

    /// Ticks until every shard's queue drains or `max_ticks` global ticks
    /// have executed, then reports per shard.
    pub fn run(&mut self, max_ticks: u64) -> Vec<ShardReport<P::Value>>
    where
        P: Send,
        P::Value: Send,
        P::Msg: WireEncode,
    {
        while self.tick < max_ticks && !self.all_idle() {
            self.step();
        }
        self.reports()
    }

    /// Enqueues a fresh shot on `shard` mid-run; if the shard is idle,
    /// the shot starts at the current tick.
    ///
    /// # Panics
    ///
    /// Panics if `shard` does not exist or the shot is malformed.
    pub fn enqueue_shot(&mut self, shard: ShardId, shot: ShotSpec<P>) {
        let tick = self.tick;
        let s = &mut self.shards[shard.index()];
        s.core.shots.push_back(shot);
        if !s.core.active {
            if let Some(spawned) = s.core.start_next_shot(tick) {
                s.procs = spawned.into_iter().collect();
            }
        }
    }

    /// Cuts `shard`'s live shot — its report is finalized as-is — and
    /// starts the next queued shot, if any (shard churn: a restart looks
    /// like an abort plus an enqueue).
    ///
    /// # Panics
    ///
    /// Panics if `shard` does not exist.
    pub fn abort_shot(&mut self, shard: ShardId) {
        let tick = self.tick;
        let measure_bits = self.measure_bits;
        let s = &mut self.shards[shard.index()];
        match s.core.cut_shot(shard, tick, measure_bits) {
            Some(spawned) => s.procs = spawned.into_iter().collect(),
            None => s.procs = BTreeMap::new(),
        }
    }

    /// Crashes one process of `shard`'s live shot: the automaton is
    /// dropped (sends stop, the inbox slot goes dark) and the journal —
    /// if the shard is durable — becomes the pid's only surviving state.
    ///
    /// # Panics
    ///
    /// Panics if `shard` does not exist.
    pub fn crash_process(&mut self, shard: ShardId, pid: Pid) -> Result<(), ChurnError> {
        let s = &mut self.shards[shard.index()];
        s.core.crash(pid)?;
        s.procs.remove(&pid);
        Ok(())
    }

    /// Recovers a crashed process of `shard`'s live shot — durable
    /// (journal replay into a fresh spawn, byte-identical state) or
    /// amnesiac (fresh spawn consuming the shared `t` fault budget).
    ///
    /// # Panics
    ///
    /// Panics if `shard` does not exist.
    pub fn recover_process(
        &mut self,
        shard: ShardId,
        pid: Pid,
        mode: RecoveryMode,
    ) -> Result<(), ChurnError>
    where
        P::Msg: WireDecode,
    {
        let s = &mut self.shards[shard.index()];
        let proc_ = s.core.recover(pid, mode)?;
        s.procs.insert(pid, proc_);
        Ok(())
    }

    /// Applies one churn operation now.
    ///
    /// # Panics
    ///
    /// Panics if a crash/recover operation is invalid for the shard's
    /// current state (scripted [`ChurnPlan`]s are engine-internal; the
    /// scenario interpreter validates through the fallible
    /// [`crash_process`](ShardedSimulation::crash_process) /
    /// [`recover_process`](ShardedSimulation::recover_process) seam
    /// instead).
    pub fn apply_churn_op(&mut self, op: ChurnOp<P>)
    where
        P::Msg: WireDecode,
    {
        match op {
            ChurnOp::Abort(shard) => self.abort_shot(shard),
            ChurnOp::Enqueue(shard, shot) => self.enqueue_shot(shard, shot),
            ChurnOp::Crash(shard, pid) => self
                .crash_process(shard, pid)
                .expect("churn plan crash failed"),
            ChurnOp::Recover(shard, pid, mode) => self
                .recover_process(shard, pid, mode)
                .expect("churn plan recover failed"),
        }
    }

    /// Like [`run`](ShardedSimulation::run), but applying the churn
    /// plan's due operations at the start of each tick. The run
    /// continues through idle stretches while operations remain
    /// scheduled (a plan may revive an idle shard), and stops when both
    /// the shards and the plan are drained or `max_ticks` is hit.
    pub fn run_churned(
        &mut self,
        mut plan: ChurnPlan<P>,
        max_ticks: u64,
    ) -> Vec<ShardReport<P::Value>>
    where
        P: Send,
        P::Value: Send,
        P::Msg: WireEncode + WireDecode,
    {
        while self.tick < max_ticks {
            for op in plan.take_due(self.tick) {
                self.apply_churn_op(op);
            }
            if self.all_idle() && !plan.has_pending_after(self.tick) {
                break;
            }
            self.step();
        }
        self.reports()
    }

    /// The per-shard reports so far. Completed shots appear as finalized;
    /// a still-live shot appears with its current (possibly undecided)
    /// state.
    pub fn reports(&self) -> Vec<ShardReport<P::Value>> {
        self.shards
            .iter()
            .enumerate()
            .map(|(s, shard)| shard.core.report(ShardId(s), self.tick, self.measure_bits))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::{FnFactory, Recipients};

    /// A minimal synchronous agreement: broadcast the input every round,
    /// decide on the smallest value heard from all `n` identifiers.
    #[derive(Clone, Debug)]
    struct MinAgree {
        id: Id,
        input: u32,
        n: usize,
        heard: BTreeMap<u32, BTreeSet<Id>>,
        decision: Option<u32>,
    }

    impl Protocol for MinAgree {
        type Msg = u32;
        type Value = u32;

        fn id(&self) -> Id {
            self.id
        }

        fn send(&mut self, _round: Round) -> Vec<(Recipients, u32)> {
            vec![(Recipients::All, self.input)]
        }

        fn receive(&mut self, _round: Round, inbox: &Inbox<u32>) {
            for (id, &msg, _count) in inbox.iter() {
                self.heard.entry(msg).or_default().insert(id);
            }
            if self.decision.is_none() {
                let all_ids: BTreeSet<Id> = self.heard.values().flatten().copied().collect();
                if all_ids.len() >= self.n {
                    self.decision = self.heard.keys().next().copied();
                }
            }
        }

        fn decision(&self) -> Option<u32> {
            self.decision
        }
    }

    fn min_agree_factory(n: usize) -> impl ProtocolFactory<P = MinAgree> + Clone {
        FnFactory::new(move |id, input| MinAgree {
            id,
            input,
            n,
            heard: BTreeMap::new(),
            decision: None,
        })
    }

    fn cfg(n: usize) -> SystemConfig {
        SystemConfig::builder(n, n, 0).build().unwrap()
    }

    #[test]
    fn pipelining_restarts_on_the_next_queued_shot() {
        let factory = min_agree_factory(3);
        let mut sharded = ShardedSimulation::new();
        let spec = ShardSpec::new(cfg(3), IdAssignment::unique(3))
            .shot(ShotSpec::new(vec![5, 5, 5]))
            .shot(ShotSpec::new(vec![7, 9, 7]))
            .shot(ShotSpec::new(vec![1, 2, 3]));
        sharded.add_shard(spec, factory);
        let reports = sharded.run(16);
        assert_eq!(reports.len(), 1);
        let shard = &reports[0];
        assert_eq!(shard.shots.len(), 3);
        assert_eq!(shard.decided_shots(), 3);
        // Each shot decides in its round 0 (everyone hears everyone), so
        // the pipeline runs them on consecutive ticks.
        for (k, shot) in shard.shots.iter().enumerate() {
            assert_eq!(shot.shot, k);
            assert_eq!(shot.started_tick, k as u64);
            assert_eq!(shot.finished_tick, k as u64);
            assert!(shot.report.verdict.all_hold(), "{}", shot.report.verdict);
        }
        // The decided values are the per-shot minima.
        let decided: Vec<u32> = shard
            .shots
            .iter()
            .map(|s| s.report.outcome.decisions.values().next().unwrap().0)
            .collect();
        assert_eq!(decided, vec![5, 7, 1]);
    }

    #[test]
    fn heterogeneous_shard_sizes_share_one_plane() {
        let mut sharded = ShardedSimulation::new();
        for n in [2usize, 5, 3] {
            let spec = ShardSpec::new(cfg(n), IdAssignment::unique(n))
                .shot(ShotSpec::new((0..n as u32).collect()));
            sharded.add_shard(spec, min_agree_factory(n));
        }
        let reports = sharded.run(8);
        assert!(sharded.all_idle());
        for (report, n) in reports.iter().zip([2u64, 5, 3]) {
            assert_eq!(report.decided_shots(), 1);
            // A full n × n broadcast minus self-deliveries, for one round.
            assert_eq!(report.messages_sent(), n * (n - 1));
            // Everyone decides the minimum, 0.
            let shot = &report.shots[0];
            assert!(shot.report.outcome.decisions.values().all(|&(v, _)| v == 0));
        }
    }

    #[test]
    fn bits_are_measured_once_per_emission_when_enabled() {
        let factory = min_agree_factory(2);
        let mut with_bits = ShardedSimulation::new().measure_bits(true);
        with_bits.add_shard(
            ShardSpec::new(cfg(2), IdAssignment::unique(2)).shot(ShotSpec::new(vec![3, 4])),
            factory.clone(),
        );
        let reports = with_bits.run(4);
        let shot = &reports[0].shots[0];
        // 2 non-self messages; a small u32 payload frames to 2 bytes
        // (version byte + 1 varint byte) = 16 exact bits each.
        assert_eq!(shot.bits_sent, Some(32));
        assert_eq!(reports[0].bits_sent(), Some(32));

        let mut without = ShardedSimulation::new();
        without.add_shard(
            ShardSpec::new(cfg(2), IdAssignment::unique(2)).shot(ShotSpec::new(vec![3, 4])),
            factory,
        );
        let reports = without.run(4);
        assert_eq!(reports[0].shots[0].bits_sent, None);
        assert_eq!(reports[0].bits_sent(), None);
    }

    #[test]
    fn trace_entries_carry_shard_and_shot_tags() {
        let factory = min_agree_factory(2);
        let mut sharded = ShardedSimulation::new().record_trace(true);
        for _ in 0..2 {
            sharded.add_shard(
                ShardSpec::new(cfg(2), IdAssignment::unique(2))
                    .shot(ShotSpec::new(vec![1, 2]))
                    .shot(ShotSpec::new(vec![8, 9])),
                factory.clone(),
            );
        }
        sharded.run(8);
        let trace = sharded.trace().unwrap();
        // 2 shards × 2 shots × (2 × 2 deliveries per round, 1 round each).
        assert_eq!(trace.len(), 16);
        for shard in [ShardId::new(0), ShardId::new(1)] {
            for shot in [0usize, 1] {
                let solo = trace.shard_shot_trace(shard, shot);
                assert_eq!(solo.len(), 4, "{shard} shot {shot}");
                // Local coordinates: pids 0..2 only, rounds from zero.
                assert!(solo
                    .deliveries()
                    .iter()
                    .all(|d| d.to.index() < 2 && d.round == Round::ZERO));
            }
        }
    }

    #[test]
    fn undecided_shot_is_cut_by_its_horizon() {
        // n = 3 but one process is Byzantine-silent: MinAgree waits for
        // all 3 identifiers forever.
        let factory = min_agree_factory(3);
        let cfg = SystemConfig::builder(3, 3, 1).build().unwrap();
        let mut sharded = ShardedSimulation::new();
        sharded.add_shard(
            ShardSpec::new(cfg, IdAssignment::unique(3)).shot(
                ShotSpec::new(vec![1, 1, 1])
                    .byzantine([Pid::new(2)], Silent)
                    .horizon(3),
            ),
            factory,
        );
        let reports = sharded.run(10);
        assert!(sharded.all_idle());
        let shot = &reports[0].shots[0];
        assert_eq!(shot.report.rounds, 3);
        assert!(shot.report.all_decided_round.is_none());
        assert!(!shot.report.verdict.termination.holds());
        assert_eq!(sharded.tick(), 3, "the scheduler idles after the cut");
    }

    /// The acceptance criterion: K = 64 independent n = 32 synchronous
    /// agreement shards, multi-shot, through one plane — and the engine
    /// clones **zero** payloads (same counting-`Clone` technique as the
    /// single-shot fabric test).
    mod clone_counting {
        use super::*;
        use std::sync::atomic::{AtomicU64, Ordering};

        static CLONES: AtomicU64 = AtomicU64::new(0);

        #[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
        struct Counted(u32);

        impl Clone for Counted {
            fn clone(&self) -> Self {
                CLONES.fetch_add(1, Ordering::Relaxed);
                Counted(self.0)
            }
        }

        impl WireEncode for Counted {
            fn encode(&self, w: &mut codec::Writer) {
                self.0.encode(w);
            }
        }

        /// Synchronous agreement on `Counted` payloads: broadcast the
        /// input, decide once all `n` identifiers are heard (round 0),
        /// never cloning what it receives.
        #[derive(Clone, Debug)]
        struct CountedAgree {
            id: Id,
            input: u32,
            n: usize,
            heard: BTreeSet<Id>,
            min: Option<u32>,
            decision: Option<u32>,
        }

        impl Protocol for CountedAgree {
            type Msg = Counted;
            type Value = u32;

            fn id(&self) -> Id {
                self.id
            }

            fn send(&mut self, _round: Round) -> Vec<(Recipients, Counted)> {
                vec![(Recipients::All, Counted(self.input))]
            }

            fn receive(&mut self, _round: Round, inbox: &Inbox<Counted>) {
                for (id, msg, _count) in inbox.iter() {
                    self.heard.insert(id);
                    self.min = Some(self.min.map_or(msg.0, |m| m.min(msg.0)));
                }
                if self.decision.is_none() && self.heard.len() >= self.n {
                    self.decision = self.min;
                }
            }

            fn decision(&self) -> Option<u32> {
                self.decision
            }
        }

        #[test]
        fn k64_n32_sync_agreement_clones_zero_payloads() {
            let k = 64usize;
            let n = 32usize;
            let shots = 2usize;
            let factory = FnFactory::new(move |id, input: u32| CountedAgree {
                id,
                input,
                n,
                heard: BTreeSet::new(),
                min: None,
                decision: None,
            });
            let mut sharded = ShardedSimulation::new().record_trace(true);
            for s in 0..k {
                let mut spec = ShardSpec::new(cfg(n), IdAssignment::unique(n));
                for shot in 0..shots {
                    let inputs = (0..n as u32).map(|i| i + (s + shot) as u32).collect();
                    spec = spec.shot(ShotSpec::new(inputs));
                }
                sharded.add_shard(spec, factory.clone());
            }

            let before = CLONES.load(Ordering::Relaxed);
            let reports = sharded.run(16);
            let clones = CLONES.load(Ordering::Relaxed) - before;

            assert!(sharded.all_idle());
            let decided: usize = reports.iter().map(ShardReport::decided_shots).sum();
            assert_eq!(decided, k * shots, "every shard decides every shot");
            // K × n² deliveries per tick, all recorded in the trace —
            // and the scheduler cloned no payload at all.
            let deliveries = (k * n * n * shots) as u64;
            assert_eq!(sharded.trace().unwrap().len() as u64, deliveries);
            assert_eq!(clones, 0, "the sharded fabric clones no payloads at all");
        }
    }
}
