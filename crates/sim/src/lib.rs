//! Deterministic round-based simulator for homonym message-passing systems.
//!
//! The paper's model is an abstract lock-step round system; this crate
//! realizes it exactly:
//!
//! * [`Simulation`] — the engine. Each round it (1) collects the broadcast
//!   of every correct process, (2) asks the [`Adversary`] for the Byzantine
//!   processes' messages, (3) applies the [`Topology`], the restricted-
//!   Byzantine clamp, and the [`DropPolicy`], (4) builds per-process
//!   [`Inbox`](homonym_core::Inbox)es under the configured counting model,
//!   and (5) delivers them.
//! * [`DropPolicy`] — the basic partially synchronous model of Dwork,
//!   Lynch and Stockmeyer: any message may be lost, but only finitely many
//!   (operationally: none at or after a global stabilization round).
//! * [`Adversary`] — full Byzantine power: per-recipient messages, and in
//!   the unrestricted model arbitrarily many per recipient per round. The
//!   [`adversary`] module ships a strategy library (silent, crash,
//!   correct-mimicking, equivocation, homonym-clone spam, replay fuzzing,
//!   scripted).
//! * [`Trace`] — per-delivery records supporting the replay adversaries
//!   used by the Figure 4 partition construction.
//! * [`shards`] — the sharded multi-shot scheduler: K independent
//!   agreement instances interleaved over one shared delivery plane,
//!   with pipelining and per-shard cost roll-ups.
//! * [`harness`] — run-and-check: executes a protocol against a whole
//!   scenario grid and compares the empirical verdicts with the Table 1
//!   prediction.
//! * [`scenario`] — schedule replay: materializes a serialized
//!   [`Schedule`](homonym_core::Schedule) of timed disruptions against the
//!   engine's mutation hooks, with a ddmin shrinker that bisects failing
//!   schedules to minimal counterexamples and a DOT trace-graph artifact.
//!
//! Everything is deterministic given the seed: protocols are deterministic
//! by contract, and all randomness (fuzz adversaries, random drop policies)
//! flows from explicitly seeded PRNGs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversary;
#[cfg(test)]
mod adversary_tests;
mod drops;
mod engine;
pub mod harness;
pub mod par;
pub mod scenario;
pub mod shards;
mod topology;
mod trace;

pub use adversary::{AdvCtx, Adversary, ByzTarget, Emission};
pub use drops::{
    Both, DropPolicy, IsolateUntil, NoDrops, PartitionUntil, RandomUntilGst, ScriptedDrops,
};
pub use engine::{ChurnError, RunReport, Simulation, SimulationBuilder};
pub use scenario::{Scenario, ScenarioReport, ScenarioVerdict};
pub use shards::{
    ChurnOp, ChurnPlan, ShardDelivery, ShardId, ShardReport, ShardSpec, ShardedSimulation,
    ShardedTrace, ShotReport, ShotSpec,
};
pub use topology::Topology;
pub use trace::{Delivery, Trace};
