//! Intra-instance parallel tick helpers, shared by every engine.
//!
//! One agreement instance's round has three phases — send, route,
//! receive — and two of them parallelize over disjoint chunks:
//!
//! * **send**: the correct processes are partitioned into contiguous pid
//!   chunks; each worker runs [`Protocol::send_shared`] for its chunk
//!   into a per-chunk wire buffer ([`SendScratch`]), and the buffers
//!   concatenate in chunk order — so the wire list is byte-identical to
//!   the sequential pid-order sweep.
//! * **receive**: the recipient slots are partitioned into contiguous
//!   pid ranges ([`DeliverySlots::split_widths`]); each worker scans the
//!   (already planned) wire list, delivers the wires landing in its
//!   range, then drains its inboxes and runs [`Protocol::receive`] for
//!   its processes, collecting `(pid, decision, state_bits)` per chunk —
//!   merged in chunk (= pid) order afterwards.
//!
//! The **route** phase stays on the coordinating thread, on purpose:
//! [`DropPolicy::drops`] is stateful (`&mut self` — the partially
//! synchronous policies consume one RNG draw per queried message), so
//! the drop decisions must be made in exact sequential wire order for
//! traces to replay byte-identically. [`plan_routes`] does that single
//! cheap O(wires) pass, producing a delivery plan the receive workers
//! read concurrently. Frame-token stamping ([`stamp_toks`]) is likewise
//! a main-thread pass: tokens are only sound within one
//! [`FrameInterner`] per delivery plane, so per-chunk interners would
//! wrongly merge distinct payloads.
//!
//! The helpers take an optional [`ShardId`] label so the solo engine and
//! the sharded engines keep their exact historical panic messages.

use std::collections::BTreeSet;
use std::ops::Range;
use std::sync::Arc;

use homonym_core::intern::{IdBits, Tok};
use homonym_core::{
    ByzPower, Counting, DeliverySlots, FrameInterner, IdAssignment, Message, Pid, Protocol,
    Recipients, Round, SharedEnvelope,
};

use crate::adversary::Emission;
use crate::drops::DropPolicy;
use crate::shards::{ShardId, ShardWire};
use crate::topology::Topology;

/// One send worker's reusable scratch: its chunk's wire buffer plus the
/// per-process duplicate-recipient bitset (alloc-free across rounds).
pub struct SendScratch<M> {
    pub(crate) wires: Vec<ShardWire<M>>,
    addressed: IdBits,
}

impl<M> Default for SendScratch<M> {
    fn default() -> Self {
        SendScratch {
            wires: Vec::new(),
            addressed: IdBits::new(),
        }
    }
}

impl<M> SendScratch<M> {
    /// Moves this chunk's wires onto the end of a shard's wire list (the
    /// chunk buffer keeps its allocation for the next round) — engines
    /// call this per chunk, in chunk order, to reproduce the sequential
    /// wire order.
    pub fn drain_into(&mut self, wires: &mut Vec<ShardWire<M>>) {
        wires.append(&mut self.wires);
    }
}

/// Expands one process's emissions into wires, enforcing the
/// one-message-per-recipient rule with the scratch bitset. Tokens are
/// stamped later, on the coordinating thread ([`stamp_toks`]).
fn push_emissions<M>(
    pid: Pid,
    out: Vec<(Recipients, Arc<M>)>,
    r: Round,
    assignment: &IdAssignment,
    measure: impl Fn(&M) -> u64,
    shard: Option<ShardId>,
    scratch: &mut SendScratch<M>,
) {
    let src = assignment.id_of(pid);
    scratch.addressed.clear();
    for (recipients, msg) in out {
        let bits = measure(&msg);
        for to in recipients.expand(assignment) {
            if !scratch.addressed.insert(to.index()) {
                match shard {
                    Some(shard) => {
                        panic!("correct process {pid} of {shard} addressed {to} twice in {r}")
                    }
                    None => panic!("correct process {pid} addressed {to} twice in {r}"),
                }
            }
            scratch.wires.push(ShardWire {
                from: pid,
                src,
                to,
                msg: Arc::clone(&msg),
                bits,
                tok: 0,
            });
        }
    }
}

/// The send phase of one pid chunk: runs [`Protocol::send_shared`] for
/// every process of the chunk (ascending pid order) into the chunk's
/// wire buffer.
pub fn send_chunk<P: Protocol>(
    chunk: &mut [(Pid, &mut P)],
    r: Round,
    assignment: &IdAssignment,
    measure: impl Fn(&P::Msg) -> u64,
    shard: Option<ShardId>,
    scratch: &mut SendScratch<P::Msg>,
) {
    scratch.wires.clear();
    for (pid, proc_) in chunk.iter_mut() {
        let out = proc_.send_shared(r);
        push_emissions(*pid, out, r, assignment, &measure, shard, scratch);
    }
}

/// The send phase of one pid chunk when the emissions were already
/// collected elsewhere (the threaded cluster's actors): expands each
/// process's pre-collected sends into the chunk's wire buffer.
pub fn expand_sends<M>(
    chunk: &mut [(Pid, Vec<(Recipients, Arc<M>)>)],
    r: Round,
    assignment: &IdAssignment,
    measure: impl Fn(&M) -> u64,
    shard: Option<ShardId>,
    scratch: &mut SendScratch<M>,
) {
    scratch.wires.clear();
    for (pid, out) in chunk.iter_mut() {
        push_emissions(
            *pid,
            std::mem::take(out),
            r,
            assignment,
            &measure,
            shard,
            scratch,
        );
    }
}

/// Appends the adversary's emissions to the wire list, enforcing the
/// emitting-from-Byzantine rule and (in the restricted model) the
/// one-message-per-`(from, to)` clamp via a reusable pair-indexed bitset.
///
/// Runs on the coordinating thread, after the send chunks merged — the
/// adversary is a single stateful strategy object, exactly like the
/// sequential engine's phase 2.
#[allow(clippy::too_many_arguments)]
pub fn adversary_wires<M>(
    emissions: Vec<Emission<M>>,
    byz: &BTreeSet<Pid>,
    assignment: &IdAssignment,
    byz_power: ByzPower,
    byz_sent: &mut IdBits,
    measure: impl Fn(&M) -> u64,
    shard: Option<ShardId>,
    wires: &mut Vec<ShardWire<M>>,
) {
    byz_sent.clear();
    let n = assignment.n();
    for emission in emissions {
        if !byz.contains(&emission.from) {
            match shard {
                Some(shard) => panic!(
                    "adversary of {shard} emitted from non-byzantine {}",
                    emission.from
                ),
                None => panic!("adversary emitted from non-byzantine {}", emission.from),
            }
        }
        let src = assignment.id_of(emission.from);
        let bits = measure(&emission.msg);
        for to in emission.to.expand(assignment) {
            if byz_power == ByzPower::Restricted
                && !byz_sent.insert(emission.from.index() * n + to.index())
            {
                continue; // the model forbids the second message
            }
            wires.push(ShardWire {
                from: emission.from,
                src,
                to,
                msg: Arc::clone(&emission.msg),
                bits,
                tok: 0,
            });
        }
    }
}

/// Stamps every wire's frame token from the plane's one interner, on the
/// coordinating thread (per-chunk interners would be unsound: a token is
/// only meaningful within the interner that issued it).
///
/// Consecutive wires of one emission share the same `Arc`, so the
/// common case is a pointer comparison, not an interner probe; and
/// because the wire list is already in the sequential engine's order,
/// first-seen token assignment is identical to the sequential sweep.
pub fn stamp_toks<M: Clone + Ord>(frames: &mut FrameInterner<M>, wires: &mut [ShardWire<M>]) {
    let mut last: Option<(*const M, Tok)> = None;
    for wire in wires {
        let ptr = Arc::as_ptr(&wire.msg);
        match last {
            Some((p, tok)) if std::ptr::eq(p, ptr) => wire.tok = tok,
            _ => {
                let tok = frames.tok_for(&wire.msg);
                wire.tok = tok;
                last = Some((ptr, tok));
            }
        }
    }
}

/// One route pass's counter deltas, reduced by the caller into its
/// engine's counters.
pub struct RouteTallies {
    /// Non-self messages handed to the network.
    pub sent: u64,
    /// Non-self messages delivered.
    pub delivered: u64,
    /// Non-self messages lost to the drop policy.
    pub dropped: u64,
    /// Exact wire bits of the sent messages (0 unless measured).
    pub bits: u64,
}

/// The route phase: walks the wire list **in order** on the coordinating
/// thread, applying topology, the (stateful) drop policy, and the set of
/// crashed (`down`) processes, and writes the per-wire delivery plan the
/// receive chunks will read concurrently. `record` is called for every
/// *attempted* delivery (topology-connected wire) in routing order — the
/// trace hook.
///
/// This pass is deliberately sequential: [`DropPolicy::drops`] may
/// consume one RNG draw per queried message, so query order is
/// observable and must match the sequential engine exactly. For the same
/// reason the policy is queried even for wires addressed to a crashed
/// process *before* the crash filter forces the drop — the policy's RNG
/// stream stays in lockstep with the uninterrupted run, which is what
/// makes zero-gap crash/recover byte-identical to it.
pub fn plan_routes<M>(
    wires: &[ShardWire<M>],
    r: Round,
    topology: &Topology,
    down: Option<&BTreeSet<Pid>>,
    drops: &mut dyn DropPolicy,
    plan: &mut Vec<bool>,
    mut record: impl FnMut(&ShardWire<M>, bool),
) -> RouteTallies {
    plan.clear();
    let mut tallies = RouteTallies {
        sent: 0,
        delivered: 0,
        dropped: 0,
        bits: 0,
    };
    for wire in wires {
        if !topology.connected(wire.from, wire.to) {
            plan.push(false);
            continue; // no channel: the message is never sent
        }
        let is_self = wire.from == wire.to;
        if !is_self {
            tallies.sent += 1;
            tallies.bits += wire.bits;
        }
        let downed = down.is_some_and(|d| d.contains(&wire.to) || d.contains(&wire.from));
        let dropped = !is_self && (drops.drops(r, wire.from, wire.to) || downed);
        record(wire, dropped);
        if dropped {
            tallies.dropped += 1;
            plan.push(false);
            continue;
        }
        if !is_self {
            tallies.delivered += 1;
        }
        plan.push(true);
    }
    tallies
}

/// The delivery half of one receive chunk: clears the chunk's slot range
/// and pushes every planned wire whose recipient falls in `range`
/// (local pid coordinates; `offset` maps to global plane slots). Wires
/// are scanned in list order, so each bucket's envelope order matches
/// the sequential push order exactly.
pub fn deliver_chunk<M: Message>(
    wires: &[ShardWire<M>],
    plan: &[bool],
    offset: usize,
    range: Range<usize>,
    slots: &mut DeliverySlots<'_, M>,
) {
    slots.clear();
    for (wire, &deliver) in wires.iter().zip(plan) {
        if deliver && range.contains(&wire.to.index()) {
            slots.push(
                Pid::new(offset + wire.to.index()),
                SharedEnvelope::framed(wire.src, Arc::clone(&wire.msg), wire.tok),
            );
        }
    }
}

/// The protocol half of one receive chunk: drains each process's inbox,
/// runs [`Protocol::receive`], and collects `(pid, decision, state_bits)`
/// in pid order for the coordinating thread to merge — decisions are
/// *recorded* there, in global pid order, so irrevocability panics keep
/// their sequential message and position.
pub fn receive_chunk<P: Protocol>(
    procs: &mut [(Pid, &mut P)],
    r: Round,
    offset: usize,
    counting: Counting,
    slots: &mut DeliverySlots<'_, P::Msg>,
    out: &mut Vec<(Pid, Option<P::Value>, u64)>,
) {
    out.clear();
    for (pid, proc_) in procs.iter_mut() {
        let inbox = slots.take_inbox(Pid::new(offset + pid.index()), counting);
        proc_.receive(r, &inbox);
        out.push((*pid, proc_.decision(), proc_.state_bits()));
    }
}
