//! Run-and-check harness: executes a protocol against a grid of scenarios
//! (input patterns × Byzantine placements × adversary strategies × drop
//! schedules) and aggregates the verdicts.
//!
//! The Table 1 experiments use this to give each configuration an
//! *empirical* verdict — "survived the whole suite" — to compare against
//! the paper's solvability predicate. A survived suite does not prove
//! solvability (no finite test can), but the suite includes the strongest
//! adversaries the paper's proofs construct, so failures are decisive and
//! survivals are meaningful.

use std::collections::BTreeSet;

use homonym_core::{
    ByzPower, Domain, IdAssignment, Pid, Protocol, ProtocolFactory, Round, Synchrony, SystemConfig,
    Value,
};

use crate::adversary::{
    Adversary, CloneSpammer, CrashAt, Equivocator, Flooder, Mimic, ReplayFuzzer, Silent,
    StaleReplayer,
};
use crate::drops::{DropPolicy, NoDrops, RandomUntilGst};
use crate::engine::{RunReport, Simulation};

/// One scenario: who is Byzantine, with which strategy, under which drop
/// schedule, with which inputs.
pub struct Scenario<P: Protocol> {
    /// Human-readable description, e.g. `"inputs=unanimous(0) byz=stack adversary=clone-spammer"`.
    pub name: String,
    /// Per-process proposals (Byzantine entries ignored).
    pub inputs: Vec<P::Value>,
    /// The Byzantine processes.
    pub byz: BTreeSet<Pid>,
    /// Their strategy.
    pub adversary: Box<dyn Adversary<P::Msg>>,
    /// The drop schedule.
    pub drops: Box<dyn DropPolicy>,
}

/// The outcome of one scenario.
#[derive(Clone, Debug)]
pub struct ScenarioResult<V> {
    /// The scenario's name.
    pub name: String,
    /// The execution report.
    pub report: RunReport<V>,
}

/// The outcome of a whole suite.
#[derive(Clone, Debug)]
pub struct SuiteResult<V> {
    /// All scenario results, in execution order.
    pub results: Vec<ScenarioResult<V>>,
}

impl<V: Value> SuiteResult<V> {
    /// Whether every scenario satisfied all three properties.
    pub fn all_hold(&self) -> bool {
        self.results.iter().all(|r| r.report.verdict.all_hold())
    }

    /// Whether every scenario satisfied the safety properties.
    pub fn all_safe(&self) -> bool {
        self.results.iter().all(|r| r.report.verdict.safe())
    }

    /// The scenarios that violated some property.
    pub fn failures(&self) -> Vec<&ScenarioResult<V>> {
        self.results
            .iter()
            .filter(|r| !r.report.verdict.all_hold())
            .collect()
    }

    /// The worst-case round by which all correct processes decided, over
    /// the scenarios where they all did.
    pub fn max_decision_round(&self) -> Option<Round> {
        self.results
            .iter()
            .filter_map(|r| r.report.all_decided_round)
            .max()
    }

    /// Total messages sent across the suite.
    pub fn total_messages(&self) -> u64 {
        self.results.iter().map(|r| r.report.messages_sent).sum()
    }
}

/// Parameters for [`run_standard_suite`].
#[derive(Clone, Debug)]
pub struct SuiteParams<'a, V> {
    /// The system configuration under test.
    pub cfg: SystemConfig,
    /// The identifier assignment.
    pub assignment: &'a IdAssignment,
    /// The value domain (drives input patterns and adversary personas).
    pub domain: &'a Domain<V>,
    /// Observation horizon in rounds.
    pub horizon: u64,
    /// Stabilization round for partially synchronous drop schedules.
    pub gst: u64,
    /// Seed for randomized drops and fuzzing.
    pub seed: u64,
}

/// Runs one scenario to its horizon.
pub fn run_scenario<P, F>(
    factory: &F,
    cfg: SystemConfig,
    assignment: &IdAssignment,
    scenario: Scenario<P>,
    horizon: u64,
) -> ScenarioResult<P::Value>
where
    P: Protocol + Send + 'static,
    P::Value: Send,
    F: ProtocolFactory<P = P>,
{
    struct BoxedAdversary<M>(Box<dyn Adversary<M>>);
    impl<M: homonym_core::Message> Adversary<M> for BoxedAdversary<M> {
        fn send(
            &mut self,
            ctx: &crate::adversary::AdvCtx<'_>,
        ) -> Vec<crate::adversary::Emission<M>> {
            self.0.send(ctx)
        }
        fn receive(
            &mut self,
            round: Round,
            inboxes: &std::collections::BTreeMap<Pid, homonym_core::Inbox<M>>,
        ) {
            self.0.receive(round, inboxes);
        }
        fn name(&self) -> &str {
            self.0.name()
        }
    }
    struct BoxedDrops(Box<dyn DropPolicy>);
    impl DropPolicy for BoxedDrops {
        fn drops(&mut self, round: Round, from: Pid, to: Pid) -> bool {
            self.0.drops(round, from, to)
        }
        fn gst(&self) -> Round {
            self.0.gst()
        }
    }

    let mut sim = Simulation::builder(cfg, assignment.clone(), scenario.inputs)
        .byzantine(scenario.byz, BoxedAdversary(scenario.adversary))
        .drops(BoxedDrops(scenario.drops))
        .build_with(factory);
    let report = sim.run(horizon);
    ScenarioResult {
        name: scenario.name,
        report,
    }
}

/// The Byzantine placements worth testing: inside the biggest homonym group
/// ("stack") and on sole identifiers ("soles"), which stress different
/// parts of the protocols.
pub fn byzantine_placements(assignment: &IdAssignment, t: usize) -> Vec<(String, BTreeSet<Pid>)> {
    if t == 0 {
        return vec![("none".to_string(), BTreeSet::new())];
    }
    let sizes = assignment.group_sizes();
    // Groups by descending size.
    let mut by_size: Vec<_> = sizes.iter().collect();
    by_size.sort_by_key(|&(id, &c)| (std::cmp::Reverse(c), *id));

    let mut stack: BTreeSet<Pid> = BTreeSet::new();
    for (&id, _) in &by_size {
        for pid in assignment.group(id) {
            if stack.len() < t {
                stack.insert(pid);
            }
        }
    }

    let mut soles: BTreeSet<Pid> = BTreeSet::new();
    for id in assignment.sole_identifiers() {
        if soles.len() < t {
            soles.extend(assignment.group(id));
        }
    }
    for pid in Pid::all(assignment.n()) {
        if soles.len() < t {
            soles.insert(pid);
        } else {
            break;
        }
    }

    let mut placements = vec![("stack".to_string(), stack.clone())];
    if soles != stack {
        placements.push(("soles".to_string(), soles));
    }
    placements
}

/// The input patterns worth testing: unanimous on each domain value
/// (exercising validity) and an alternating split (exercising agreement).
pub fn input_patterns<V: Value>(domain: &Domain<V>, n: usize) -> Vec<(String, Vec<V>)> {
    let mut patterns = Vec::new();
    for v in domain.values() {
        patterns.push((format!("unanimous({v:?})"), vec![v.clone(); n]));
    }
    if domain.len() >= 2 {
        let vals = domain.values();
        let split: Vec<V> = (0..n).map(|i| vals[i % vals.len()].clone()).collect();
        patterns.push(("split".to_string(), split));
    }
    patterns
}

/// Builds and runs the full standard suite:
/// `input patterns × Byzantine placements × strategies`, with drop
/// schedules appropriate to the configured synchrony.
///
/// Strategies: silent, crash (mid-run), mimic (adversarial inputs),
/// equivocator (two personas), clone-spammer (homonym-stack impersonation),
/// replay-fuzzer (seeded), stale-replayer (delayed echoes), flooder
/// (multiplicity attack). Under `ByzPower::Restricted` the engine clamps
/// multi-send automatically, so the same strategies probe the restricted
/// model's weaker adversary.
pub fn run_standard_suite<P, F>(
    factory: &F,
    params: &SuiteParams<'_, P::Value>,
) -> SuiteResult<P::Value>
where
    P: Protocol + Send + 'static,
    P::Value: Send,
    F: ProtocolFactory<P = P>,
{
    let cfg = params.cfg;
    let assignment = params.assignment;
    let domain = params.domain;
    let mut results = Vec::new();

    let make_drops = |salt: u64| -> Box<dyn DropPolicy> {
        match cfg.synchrony {
            Synchrony::Synchronous => Box::new(NoDrops),
            Synchrony::PartiallySynchronous => Box::new(RandomUntilGst::new(
                Round::new(params.gst),
                0.3,
                params.seed ^ salt,
            )),
        }
    };

    let mut salt = 0u64;
    for (input_name, inputs) in input_patterns(domain, cfg.n) {
        for (placement_name, byz) in byzantine_placements(assignment, cfg.t) {
            let byz_inputs: Vec<(Pid, P::Value)> = byz
                .iter()
                .enumerate()
                .map(|(k, &pid)| (pid, domain.values()[k % domain.len()].clone()))
                .collect();
            let opposite = domain.values().last().expect("non-empty domain").clone();
            let split_half: BTreeSet<Pid> =
                Pid::all(cfg.n).filter(|p| p.index() % 2 == 0).collect();

            let mut adversaries: Vec<(&str, Box<dyn Adversary<P::Msg>>)> = vec![
                ("silent", Box::new(Silent)),
                (
                    "crash",
                    Box::new(CrashAt::new(
                        Round::new(params.horizon / 2),
                        Mimic::new(factory, assignment, &byz_inputs),
                    )),
                ),
                (
                    "mimic",
                    Box::new(Mimic::new(factory, assignment, &byz_inputs)),
                ),
                (
                    "equivocator",
                    Box::new(Equivocator::new(
                        factory,
                        assignment,
                        &byz,
                        domain.default_value().clone(),
                        opposite.clone(),
                        split_half,
                    )),
                ),
                (
                    "clone-spammer",
                    Box::new(CloneSpammer::new(
                        factory,
                        assignment,
                        &byz,
                        domain.values(),
                    )),
                ),
                (
                    "replay-fuzzer",
                    Box::new(ReplayFuzzer::new(params.seed ^ 0x5eed ^ salt, 3)),
                ),
                ("stale-replayer", Box::new(StaleReplayer::new(2, 4))),
                ("flooder", Box::new(Flooder::new(4))),
            ];
            if cfg.t == 0 {
                // Without Byzantine processes only one strategy is
                // meaningful.
                adversaries.truncate(1);
            }

            for (adv_name, adversary) in adversaries {
                salt += 1;
                let scenario = Scenario {
                    name: format!("inputs={input_name} byz={placement_name} adversary={adv_name}"),
                    inputs: inputs.clone(),
                    byz: byz.clone(),
                    adversary,
                    drops: make_drops(salt),
                };
                results.push(run_scenario(
                    factory,
                    cfg,
                    assignment,
                    scenario,
                    params.horizon,
                ));
            }
        }
    }

    SuiteResult { results }
}

/// A conservative observation horizon for a configuration: `gst` plus
/// `slack` rounds for partially synchronous runs, `slack` alone for
/// synchronous ones.
pub fn horizon_for(cfg: &SystemConfig, gst: u64, slack: u64) -> u64 {
    match cfg.synchrony {
        Synchrony::Synchronous => slack,
        Synchrony::PartiallySynchronous => gst + slack,
    }
}

/// Whether the engine will clamp multi-send for this configuration
/// (convenience mirror of the config flag for report printing).
pub fn multisend_clamped(cfg: &SystemConfig) -> bool {
    cfg.byz_power == ByzPower::Restricted
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::Id;

    #[test]
    fn placements_cover_stack_and_soles() {
        let a = IdAssignment::stacked(4, 7).unwrap(); // group(1) = 4 procs
        let placements = byzantine_placements(&a, 2);
        assert_eq!(placements.len(), 2);
        let (_, stack) = &placements[0];
        // Both stack picks are inside group 1.
        for pid in stack {
            assert_eq!(a.id_of(*pid), Id::new(1));
        }
        let (_, soles) = &placements[1];
        for pid in soles {
            assert_ne!(a.id_of(*pid), Id::new(1));
        }
    }

    #[test]
    fn placements_empty_when_t_zero() {
        let a = IdAssignment::unique(4);
        let placements = byzantine_placements(&a, 0);
        assert_eq!(placements.len(), 1);
        assert!(placements[0].1.is_empty());
    }

    #[test]
    fn input_patterns_cover_domain_and_split() {
        let d = Domain::binary();
        let patterns = input_patterns(&d, 4);
        assert_eq!(patterns.len(), 3);
        assert_eq!(patterns[0].1, vec![false; 4]);
        assert_eq!(patterns[1].1, vec![true; 4]);
        assert_eq!(patterns[2].1, vec![false, true, false, true]);
    }

    #[test]
    fn horizon_accounts_for_gst() {
        let sync = SystemConfig::builder(4, 4, 1).build().unwrap();
        assert_eq!(horizon_for(&sync, 10, 20), 20);
        let psync = SystemConfig::builder(4, 4, 1)
            .synchrony(Synchrony::PartiallySynchronous)
            .build()
            .unwrap();
        assert_eq!(horizon_for(&psync, 10, 20), 30);
    }
}
