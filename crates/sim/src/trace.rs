//! Execution traces: every (attempted) delivery, queryable for replay.
//!
//! The Figure 4 partition construction needs to *replay* recorded
//! executions: the Byzantine process `Bᵢ` sends to each 0-input process
//! "the same messages as that process receives in α" from identifier `i`.
//! [`Trace::received_from_id`] is exactly that query.

use std::sync::Arc;

use homonym_core::{Id, Message, Pid, Round};

/// One attempted delivery.
///
/// The payload is an [`Arc`] handle shared with the delivery fabric:
/// recording a trace costs one reference-count bump per delivery, not a
/// deep copy. `Arc<M>` derefs to `M` and prints identically, so queries
/// and dumps read exactly as they did when traces stored owned payloads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery<M> {
    /// The round in which the message was sent.
    pub round: Round,
    /// The sending process (environment-level name).
    pub from: Pid,
    /// The sender's authenticated identifier as seen by the receiver.
    pub src_id: Id,
    /// The receiving process.
    pub to: Pid,
    /// The payload, shared with every other holder of this message.
    pub msg: Arc<M>,
    /// Whether the drop policy lost this message.
    pub dropped: bool,
}

/// A recorded execution: all attempted deliveries in order.
#[derive(Clone, Debug, Default)]
pub struct Trace<M> {
    deliveries: Vec<Delivery<M>>,
}

impl<M: Message> Trace<M> {
    /// An empty trace.
    pub fn new() -> Self {
        Trace {
            deliveries: Vec::new(),
        }
    }

    /// Records a delivery (used by the engine).
    pub fn record(&mut self, delivery: Delivery<M>) {
        self.deliveries.push(delivery);
    }

    /// All recorded deliveries, in recording order.
    pub fn deliveries(&self) -> &[Delivery<M>] {
        &self.deliveries
    }

    /// Number of recorded (attempted) deliveries.
    pub fn len(&self) -> usize {
        self.deliveries.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.deliveries.is_empty()
    }

    /// The messages actually delivered to `to` in `round`.
    pub fn received_by(&self, to: Pid, round: Round) -> impl Iterator<Item = &Delivery<M>> {
        self.deliveries
            .iter()
            .filter(move |d| d.to == to && d.round == round && !d.dropped)
    }

    /// The payloads delivered to `to` in `round` that carried identifier
    /// `src_id` — the Figure 4 replay query.
    pub fn received_from_id(&self, to: Pid, src_id: Id, round: Round) -> Vec<&M> {
        self.received_by(to, round)
            .filter(|d| d.src_id == src_id)
            .map(|d| &*d.msg)
            .collect()
    }

    /// The shared payload handles delivered to `to` in `round` from
    /// identifier `src_id` — the zero-copy form of
    /// [`received_from_id`](Trace::received_from_id) that replay
    /// adversaries re-emit without cloning.
    pub fn received_arcs_from_id(&self, to: Pid, src_id: Id, round: Round) -> Vec<Arc<M>> {
        self.received_by(to, round)
            .filter(|d| d.src_id == src_id)
            .map(|d| Arc::clone(&d.msg))
            .collect()
    }

    /// The messages `from` sent in `round` (dropped or not).
    pub fn sent_by(&self, from: Pid, round: Round) -> impl Iterator<Item = &Delivery<M>> {
        self.deliveries
            .iter()
            .filter(move |d| d.from == from && d.round == round)
    }

    /// The last round present in the trace, if any.
    pub fn last_round(&self) -> Option<Round> {
        self.deliveries.iter().map(|d| d.round).max()
    }

    /// Per-round traffic digests, ascending by round.
    pub fn round_digests(&self) -> Vec<RoundDigest> {
        let mut digests: std::collections::BTreeMap<Round, RoundDigest> =
            std::collections::BTreeMap::new();
        for d in &self.deliveries {
            let digest = digests.entry(d.round).or_insert_with(|| RoundDigest {
                round: d.round,
                sent: 0,
                dropped: 0,
                senders: std::collections::BTreeSet::new(),
            });
            digest.sent += 1;
            if d.dropped {
                digest.dropped += 1;
            }
            digest.senders.insert(d.src_id);
        }
        digests.into_values().collect()
    }

    /// Renders a per-round traffic timeline — a quick way to *see* where
    /// a drop schedule bit, which identifiers went quiet, and when the
    /// network stabilized.
    ///
    /// ```text
    /// round | sent dropped | identifiers heard
    ///    r0 |   12       4 | 1 2 3 4
    ///    r1 |   12       0 | 1 2 3 4
    /// ```
    pub fn render_timeline(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("round | sent dropped | identifiers heard\n");
        for digest in self.round_digests() {
            let ids: Vec<String> = digest.senders.iter().map(|i| i.get().to_string()).collect();
            let _ = writeln!(
                out,
                "{:>5} | {:>4} {:>7} | {}",
                digest.round.to_string(),
                digest.sent,
                digest.dropped,
                ids.join(" ")
            );
        }
        out
    }
}

/// One round's traffic summary (see [`Trace::round_digests`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundDigest {
    /// The round.
    pub round: Round,
    /// Attempted deliveries (including drops).
    pub sent: u64,
    /// Deliveries lost to the drop policy.
    pub dropped: u64,
    /// Identifiers that sent at least one message this round.
    pub senders: std::collections::BTreeSet<Id>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(
        round: u64,
        from: usize,
        src: u16,
        to: usize,
        msg: &str,
        dropped: bool,
    ) -> Delivery<String> {
        Delivery {
            round: Round::new(round),
            from: Pid::new(from),
            src_id: Id::new(src),
            to: Pid::new(to),
            msg: Arc::new(msg.to_string()),
            dropped,
        }
    }

    #[test]
    fn queries() {
        let mut t = Trace::new();
        t.record(d(0, 0, 1, 1, "a", false));
        t.record(d(0, 2, 1, 1, "b", false));
        t.record(d(0, 3, 2, 1, "c", true));
        t.record(d(1, 0, 1, 1, "d", false));

        assert_eq!(t.len(), 4);
        assert_eq!(t.received_by(Pid::new(1), Round::new(0)).count(), 2);
        // Dropped messages are not "received".
        let from_id1 = t.received_from_id(Pid::new(1), Id::new(1), Round::new(0));
        assert_eq!(from_id1.len(), 2);
        assert!(t
            .received_from_id(Pid::new(1), Id::new(2), Round::new(0))
            .is_empty());
        assert_eq!(t.sent_by(Pid::new(3), Round::new(0)).count(), 1);
        assert_eq!(t.last_round(), Some(Round::new(1)));
    }

    #[test]
    fn empty_trace() {
        let t: Trace<String> = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.last_round(), None);
    }

    #[test]
    fn digests_aggregate_per_round() {
        let mut t = Trace::new();
        t.record(d(0, 0, 1, 1, "a", false));
        t.record(d(0, 2, 2, 1, "b", true));
        t.record(d(1, 0, 1, 2, "c", false));
        let digests = t.round_digests();
        assert_eq!(digests.len(), 2);
        assert_eq!(digests[0].sent, 2);
        assert_eq!(digests[0].dropped, 1);
        assert_eq!(digests[0].senders.len(), 2);
        assert_eq!(digests[1].sent, 1);
        assert_eq!(digests[1].dropped, 0);
    }

    #[test]
    fn timeline_renders_one_line_per_round() {
        let mut t = Trace::new();
        t.record(d(0, 0, 1, 1, "a", false));
        t.record(d(3, 0, 2, 1, "b", true));
        let rendered = t.render_timeline();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3, "{rendered}");
        assert!(lines[0].contains("round"));
        assert!(lines[1].contains("r0"));
        assert!(lines[2].contains("r3"));
        assert!(lines[2].contains('1'), "dropped count shown");
    }

    #[test]
    fn empty_timeline_is_just_the_header() {
        let t: Trace<String> = Trace::new();
        assert_eq!(t.render_timeline().lines().count(), 1);
    }
}
