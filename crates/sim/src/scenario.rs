//! Schedule replay: materializing scenario schedules against the engines.
//!
//! [`homonym_core::scenario`] defines the *data* — a [`Schedule`] of timed
//! disruptions, serializable to a one-line hex artifact. This module is
//! the *interpreter*: [`Scenario::draw`] generates a full scenario from a
//! seed (every component from its own [`sub_seed`] stream),
//! [`run_scenario`] replays it against the lock-step engine's mutation
//! hooks, [`shrink`] bisects a failing schedule to a minimal
//! counterexample (ddmin over events, then per-event set shrinking), and
//! [`scenario_dot`] renders the timeline as a DOT trace graph for
//! debugging.
//!
//! Mid-run invariant checking is first-class: a schedule may
//! *deliberately* push the Byzantine count past `t`; the engine rejects
//! the turn and the replay reports [`ScenarioVerdict::Breach`] — the
//! scenario tests assert that detection, shrink the schedule to the one
//! offending event, and replay it from its hex line to the identical
//! verdict.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use homonym_core::codec::{WireDecode, WireEncode};
use homonym_core::exec::{Executor, Sequential};
use homonym_core::scenario::{stream, sub_seed, DropSpec, Schedule, ScheduleEvent, StrategyKind};
use homonym_core::{
    Id, IdAssignment, Message, Pid, Protocol, ProtocolFactory, RecoveryMode, Round, Synchrony,
    SystemConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::adversary::{
    Adversary, CloneSpammer, Compose, CrashAt, Equivocator, Flooder, Mimic, ReplayFuzzer, Silent,
    StaleReplayer,
};
use crate::drops::{DropPolicy, IsolateUntil, NoDrops, PartitionUntil, RandomUntilGst};
use crate::engine::{RunReport, Simulation};
use crate::shards::{ChurnOp, ChurnPlan, ShardId, ShotSpec};
use crate::topology::Topology;
use crate::trace::Trace;

/// A complete replayable scenario: the static setup plus the schedule of
/// mid-run disruptions.
///
/// Everything is plain data (the strategy and drop policy are
/// *descriptions*, materialized at replay time), so a scenario is `Clone`
/// and the shrinker can carve candidate sub-scenarios freely.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The `(n, ℓ, t)` parameters and model axes.
    pub cfg: SystemConfig,
    /// Which process holds which identifier.
    pub assignment: IdAssignment,
    /// One input per process (Byzantine processes' entries are ignored).
    pub inputs: Vec<bool>,
    /// The processes Byzantine from round 0.
    pub init_byz: BTreeSet<Pid>,
    /// The coalition's strategy from round 0.
    pub init_strategy: StrategyKind,
    /// The drop policy from round 0.
    pub init_drops: DropSpec,
    /// The timed disruptions, plus the seed / GST / horizon they were
    /// drawn under.
    pub schedule: Schedule,
}

/// The outcome of replaying one scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioVerdict {
    /// All three agreement properties held.
    Pass,
    /// The schedule tried to break a model invariant (e.g. turning
    /// processes Byzantine past the `t` budget) and the engine caught it.
    Breach {
        /// The round the offending event fired at.
        round: Round,
        /// The engine's rejection, rendered.
        reason: String,
    },
    /// An agreement property was violated — a real finding.
    Violation {
        /// The failed verdict, rendered.
        desc: String,
    },
}

impl ScenarioVerdict {
    /// Whether the replay passed.
    pub fn is_pass(&self) -> bool {
        matches!(self, ScenarioVerdict::Pass)
    }
}

/// The full report of one scenario replay.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Pass / breach-detected / property-violated.
    pub verdict: ScenarioVerdict,
    /// The underlying engine report (partial if the run stopped at a
    /// breach).
    pub report: RunReport<bool>,
    /// FNV-1a digest of the canonical trace dump — byte-identical digests
    /// mean byte-identical executions.
    pub trace_digest: u64,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical byte-stable rendering of a trace, digested — one line per
/// attempted delivery, in recording order.
pub fn trace_digest<M: Message>(trace: &Trace<M>) -> u64 {
    let mut s = String::new();
    for d in trace.deliveries() {
        let _ = writeln!(
            s,
            "{}|{}|{}|{}|{:?}|{}",
            d.round, d.from, d.src_id, d.to, d.msg, d.dropped
        );
    }
    fnv1a(s.as_bytes())
}

/// Draws a random identifier assignment: stacked, round-robin, or random
/// surjective — the same three shapes the protocol grids exercise.
pub fn draw_assignment(rng: &mut StdRng, n: usize, ell: usize) -> IdAssignment {
    match rng.gen_range(0..3u8) {
        0 => IdAssignment::stacked(ell, n).expect("ℓ ≤ n"),
        1 => IdAssignment::round_robin(ell, n).expect("ℓ ≤ n"),
        _ => {
            // First ℓ processes cover every identifier; the rest land
            // anywhere.
            let mut ids: Vec<Id> = (1..=ell as u16).map(Id::new).collect();
            for _ in ell..n {
                ids.push(Id::new(rng.gen_range(1..=ell as u16)));
            }
            IdAssignment::new(ell, ids).expect("surjective by construction")
        }
    }
}

/// Draws a strategy description: one to three parts composed from the
/// eight-kind library. `horizon` bounds `CrashAt` rounds, so every drawn
/// crash actually fires within the run.
pub fn draw_strategy(
    rng: &mut StdRng,
    n: usize,
    byz: &BTreeSet<Pid>,
    horizon: u64,
) -> StrategyKind {
    let byz_inputs: Vec<(Pid, bool)> = byz.iter().map(|&p| (p, rng.gen())).collect();
    let split: BTreeSet<Pid> = Pid::all(n).filter(|_| rng.gen()).collect();
    let count = rng.gen_range(1..=3usize);
    let mut parts = Vec::with_capacity(count);
    for _ in 0..count {
        parts.push(match rng.gen_range(0..8u8) {
            0 => StrategyKind::Silent,
            1 => StrategyKind::CrashAt {
                at: Round::new(rng.gen_range(1..horizon.max(2))),
                inner: Box::new(StrategyKind::Mimic {
                    inputs: byz_inputs.clone(),
                }),
            },
            2 => StrategyKind::Mimic {
                inputs: byz_inputs.clone(),
            },
            3 => StrategyKind::Equivocator {
                split: split.clone(),
            },
            4 => StrategyKind::CloneSpammer {
                inputs: vec![false, true],
            },
            5 => StrategyKind::ReplayFuzzer {
                seed: rng.gen(),
                burst: rng.gen_range(1..4u32),
            },
            6 => StrategyKind::StaleReplayer {
                delay: rng.gen_range(1..4u64),
                cap: rng.gen_range(1..5u32),
            },
            _ => StrategyKind::Flooder {
                copies: rng.gen_range(2..6u32),
            },
        });
    }
    if parts.len() == 1 {
        parts.pop().expect("one part")
    } else {
        StrategyKind::Compose(parts)
    }
}

impl Scenario {
    /// Draws a full scenario for `cfg` from `seed`.
    ///
    /// Every component comes from its own [`sub_seed`] stream, so no two
    /// draws share RNG state. The horizon is `gst + slack` — the *actual*
    /// run length — and every drawn round (crash rounds, event rounds)
    /// is bounded by it, so drawn disruptions always fire. Disruptive
    /// drop phases (partitions, ramps) are bounded by `gst`, keeping the
    /// basic-model promise that drops are finite.
    pub fn draw(seed: u64, cfg: SystemConfig, slack: u64) -> Scenario {
        let mut a_rng = StdRng::seed_from_u64(sub_seed(seed, stream::ASSIGNMENT));
        let assignment = draw_assignment(&mut a_rng, cfg.n, cfg.ell);

        let mut i_rng = StdRng::seed_from_u64(sub_seed(seed, stream::INPUTS));
        let inputs: Vec<bool> = (0..cfg.n).map(|_| i_rng.gen()).collect();

        let mut b_rng = StdRng::seed_from_u64(sub_seed(seed, stream::BYZ));
        let init_k = if cfg.t == 0 {
            0
        } else {
            b_rng.gen_range(0..=cfg.t)
        };
        let mut pool: Vec<Pid> = Pid::all(cfg.n).collect();
        let mut init_byz = BTreeSet::new();
        for _ in 0..init_k {
            let k = b_rng.gen_range(0..pool.len());
            init_byz.insert(pool.swap_remove(k));
        }

        let mut e_rng = StdRng::seed_from_u64(sub_seed(seed, stream::EVENTS));
        let gst = match cfg.synchrony {
            Synchrony::Synchronous => 0,
            Synchrony::PartiallySynchronous => e_rng.gen_range(0..20u64),
        };
        let horizon = gst + slack;

        let mut s_rng = StdRng::seed_from_u64(sub_seed(seed, stream::STRATEGY));
        let init_strategy = draw_strategy(&mut s_rng, cfg.n, &init_byz, horizon);

        let init_drops = match cfg.synchrony {
            Synchrony::Synchronous => DropSpec::None,
            Synchrony::PartiallySynchronous => DropSpec::Random {
                p_permille: 300,
                until: Round::new(gst),
                stream: stream::DROPS,
            },
        };

        let mut schedule = Schedule::new(seed, Round::new(gst), Round::new(horizon));
        let mut budget = cfg.t.saturating_sub(init_byz.len());
        let n_events = e_rng.gen_range(0..=2usize);
        for _ in 0..n_events {
            match e_rng.gen_range(0..3u8) {
                // A correct process defects mid-run (within budget).
                0 if budget > 0 && !pool.is_empty() => {
                    let k = e_rng.gen_range(0..pool.len());
                    let pid = pool.swap_remove(k);
                    budget -= 1;
                    schedule.push(
                        Round::new(e_rng.gen_range(1..horizon.max(2))),
                        ScheduleEvent::TurnByzantine {
                            pids: [pid].into_iter().collect(),
                        },
                    );
                }
                // The coalition switches strategy.
                1 => {
                    let strategy = draw_strategy(&mut s_rng, cfg.n, &init_byz, horizon);
                    schedule.push(
                        Round::new(e_rng.gen_range(1..horizon.max(2))),
                        ScheduleEvent::SwitchStrategy { strategy },
                    );
                }
                // A partition forms pre-GST and heals by GST (psync
                // only: the drop budget must stay finite).
                _ if gst >= 2 => {
                    let at = e_rng.gen_range(0..gst - 1);
                    let heal = e_rng.gen_range(at + 1..=gst);
                    let cut: BTreeSet<Pid> = Pid::all(cfg.n).filter(|_| e_rng.gen()).collect();
                    let rest: BTreeSet<Pid> =
                        Pid::all(cfg.n).filter(|p| !cut.contains(p)).collect();
                    if cut.is_empty() || rest.is_empty() {
                        continue;
                    }
                    schedule.push(
                        Round::new(at),
                        ScheduleEvent::SetDrops {
                            policy: DropSpec::Partition {
                                sides: vec![cut, rest],
                                heal: Round::new(heal),
                            },
                        },
                    );
                    // Restore the seeded random policy when the
                    // partition heals, so the pre-GST noise resumes.
                    if matches!(cfg.synchrony, Synchrony::PartiallySynchronous) && heal < gst {
                        schedule.push(
                            Round::new(heal),
                            ScheduleEvent::SetDrops {
                                policy: DropSpec::Random {
                                    p_permille: 300,
                                    until: Round::new(gst),
                                    stream: stream::DROPS,
                                },
                            },
                        );
                    }
                }
                _ => {}
            }
        }

        // Crash/recover pair, from its own sub-stream. Durable recovery
        // is free (journal replay); an amnesiac rejoin spends one unit of
        // the shared fault budget, so it is only drawn when budget
        // remains. The crash is pushed before the recovery, so a
        // zero-gap pair applies in crash-then-recover order at its round.
        let mut c_rng = StdRng::seed_from_u64(sub_seed(seed, stream::CRASHES));
        if horizon >= 4 && !pool.is_empty() && c_rng.gen_bool(0.5) {
            let k = c_rng.gen_range(0..pool.len());
            let pid = pool.swap_remove(k);
            let at = c_rng.gen_range(1..horizon - 2);
            let gap = c_rng.gen_range(0..=2u64);
            let mode = if budget > 0 && c_rng.gen_bool(0.25) {
                RecoveryMode::Amnesiac
            } else {
                RecoveryMode::Durable
            };
            schedule.push(Round::new(at), ScheduleEvent::Crash { pid });
            schedule.push(
                Round::new((at + gap).min(horizon - 1)),
                ScheduleEvent::Recover { pid, mode },
            );
        }
        schedule.normalize();

        Scenario {
            cfg,
            assignment,
            inputs,
            init_byz,
            init_strategy,
            init_drops,
            schedule,
        }
    }

    /// A one-line human summary for failure messages.
    pub fn summary(&self) -> String {
        format!(
            "n={} ell={} t={} byz={:?} strategy={} gst={} events={}",
            self.cfg.n,
            self.cfg.ell,
            self.cfg.t,
            self.init_byz,
            self.init_strategy.label(),
            self.schedule.gst,
            self.schedule.events.len(),
        )
    }
}

/// Materializes a strategy description into a live adversary for the
/// given coalition.
///
/// Strategies are rebuilt from their description whenever the coalition
/// changes (a `TurnByzantine` event) or a `SwitchStrategy` event fires —
/// a fresh coalition starts with fresh strategy state, which is exactly
/// the round-boundary semantics of the lock-step model.
pub fn build_adversary<P, F>(
    kind: &StrategyKind,
    factory: &F,
    assignment: &IdAssignment,
    byz: &BTreeSet<Pid>,
) -> Box<dyn Adversary<P::Msg>>
where
    P: Protocol<Value = bool> + 'static,
    F: ProtocolFactory<P = P>,
{
    match kind {
        StrategyKind::Silent => Box::new(Silent),
        StrategyKind::Mimic { inputs } => {
            // Cover the *current* coalition: described inputs where
            // given, `false` for processes that defected later.
            let ins: Vec<(Pid, bool)> = byz
                .iter()
                .map(|&p| {
                    let v = inputs
                        .iter()
                        .find(|&&(q, _)| q == p)
                        .map(|&(_, v)| v)
                        .unwrap_or(false);
                    (p, v)
                })
                .collect();
            Box::new(Mimic::new(factory, assignment, &ins))
        }
        StrategyKind::Equivocator { split } => Box::new(Equivocator::new(
            factory,
            assignment,
            byz,
            false,
            true,
            split.clone(),
        )),
        StrategyKind::CloneSpammer { inputs } => {
            Box::new(CloneSpammer::new(factory, assignment, byz, inputs))
        }
        StrategyKind::Flooder { copies } => Box::new(Flooder::new(*copies as usize)),
        StrategyKind::ReplayFuzzer { seed, burst } => {
            Box::new(ReplayFuzzer::new(*seed, *burst as usize))
        }
        StrategyKind::StaleReplayer { delay, cap } => {
            Box::new(StaleReplayer::new(*delay, *cap as usize))
        }
        StrategyKind::CrashAt { at, inner } => Box::new(CrashAt::new(
            *at,
            build_adversary::<P, F>(inner, factory, assignment, byz),
        )),
        StrategyKind::Compose(parts) => Box::new(Compose::new(
            parts
                .iter()
                .map(|k| build_adversary::<P, F>(k, factory, assignment, byz))
                .collect(),
        )),
    }
}

/// Materializes a drop-policy description.
///
/// The random policy's decision stream is seeded with
/// `sub_seed(scenario_seed, spec.stream)` — **never** the scenario seed
/// itself — so drop decisions are independent of every other drawn
/// component (the seed-reuse bug the schedule subsystem retires).
pub fn materialize_drops(spec: &DropSpec, scenario_seed: u64) -> Box<dyn DropPolicy + Send> {
    match spec {
        DropSpec::None => Box::new(NoDrops),
        DropSpec::Random {
            p_permille,
            until,
            stream,
        } => Box::new(RandomUntilGst::new(
            *until,
            f64::from(*p_permille) / 1000.0,
            sub_seed(scenario_seed, *stream),
        )),
        DropSpec::Partition { sides, heal } => Box::new(PartitionUntil::new(sides.clone(), *heal)),
        DropSpec::Isolate { pids, heal } => Box::new(IsolateUntil::new(pids.clone(), *heal)),
    }
}

/// The complete graph on `n` minus the given undirected edges.
fn topology_minus(n: usize, cut: &BTreeSet<(Pid, Pid)>) -> Topology {
    if cut.is_empty() {
        return Topology::complete(n);
    }
    let mut edges = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            let e = (Pid::new(a), Pid::new(b));
            let rev = (Pid::new(b), Pid::new(a));
            if !cut.contains(&e) && !cut.contains(&rev) {
                edges.push(e);
            }
        }
    }
    Topology::with_edges(n, edges)
}

/// Replays a scenario against the lock-step engine.
///
/// Events fire at the *start* of their round, in schedule order. Shard
/// events are no-ops here (they target the sharded engines — see
/// [`schedule_churn_plan`]). A rejected invariant-breaking event stops
/// the run immediately with [`ScenarioVerdict::Breach`].
pub fn run_scenario<P, F>(scenario: &Scenario, factory: &F) -> ScenarioReport
where
    P: Protocol<Value = bool> + Send + 'static,
    P::Msg: WireEncode + WireDecode,
    F: ProtocolFactory<P = P>,
{
    run_scenario_with(scenario, factory, Sequential)
}

/// [`run_scenario`], with the engine's ticks fanned across the given
/// executor — churned schedules (mid-run strategy switches, drop and
/// topology mutations, Byzantine growth) replay to the **identical**
/// trace digest and verdict at any worker count, because the engine's
/// chunked tick is byte-identical to the sequential sweep.
pub fn run_scenario_with<P, F, E>(scenario: &Scenario, factory: &F, exec: E) -> ScenarioReport
where
    P: Protocol<Value = bool> + Send + 'static,
    P::Msg: WireEncode + WireDecode,
    F: ProtocolFactory<P = P>,
    E: Executor,
{
    let seed = scenario.schedule.seed;
    let mut current_strategy = scenario.init_strategy.clone();
    let adversary = build_adversary::<P, F>(
        &current_strategy,
        factory,
        &scenario.assignment,
        &scenario.init_byz,
    );
    // Journaling is only paid for when the schedule can actually crash
    // someone (durable recovery needs the journals).
    let has_crash = scenario
        .schedule
        .events
        .iter()
        .any(|te| matches!(te.event, ScheduleEvent::Crash { .. }));
    let mut builder = Simulation::builder(
        scenario.cfg,
        scenario.assignment.clone(),
        scenario.inputs.clone(),
    )
    .byzantine(scenario.init_byz.clone(), adversary)
    .drops(materialize_drops(&scenario.init_drops, seed))
    .record_trace(true)
    .executor(exec);
    if has_crash {
        builder = builder.durable(0);
    }
    let mut sim = builder.build_with(factory);

    let horizon = scenario.schedule.horizon.index();
    let mut breach: Option<(Round, String)> = None;
    'run: while sim.round().index() < horizon && !sim.all_decided() {
        let r = sim.round();
        for ev in scenario.schedule.events_at(r) {
            match ev {
                ScheduleEvent::TurnByzantine { pids } => {
                    if let Err(e) = sim.try_turn_byzantine(pids) {
                        breach = Some((r, e.to_string()));
                        break 'run;
                    }
                    // The grown coalition restarts the current strategy.
                    let byz = sim.byz().clone();
                    sim.set_adversary(build_adversary::<P, F>(
                        &current_strategy,
                        factory,
                        &scenario.assignment,
                        &byz,
                    ));
                }
                ScheduleEvent::SwitchStrategy { strategy } => {
                    current_strategy = strategy.clone();
                    let byz = sim.byz().clone();
                    sim.set_adversary(build_adversary::<P, F>(
                        &current_strategy,
                        factory,
                        &scenario.assignment,
                        &byz,
                    ));
                }
                ScheduleEvent::SetDrops { policy } => {
                    sim.set_drops(materialize_drops(policy, seed));
                }
                ScheduleEvent::SetTopology { cut } => {
                    sim.set_topology(topology_minus(scenario.cfg.n, cut));
                }
                ScheduleEvent::Crash { pid } => {
                    if let Err(e) = sim.crash(*pid) {
                        breach = Some((r, e.to_string()));
                        break 'run;
                    }
                }
                ScheduleEvent::Recover { pid, mode } => {
                    if let Err(e) = sim.recover_with(factory, *pid, *mode) {
                        breach = Some((r, e.to_string()));
                        break 'run;
                    }
                }
                ScheduleEvent::ShardAbort { .. } | ScheduleEvent::ShardEnqueue { .. } => {}
            }
        }
        sim.step();
    }

    let report = sim.report();
    let verdict = match breach {
        Some((round, reason)) => ScenarioVerdict::Breach { round, reason },
        None if report.verdict.all_hold() => ScenarioVerdict::Pass,
        None => ScenarioVerdict::Violation {
            desc: report.verdict.to_string(),
        },
    };
    let digest = sim.trace().map(trace_digest).unwrap_or(0);
    ScenarioReport {
        verdict,
        report,
        trace_digest: digest,
    }
}

/// Shrinks a failing scenario's schedule to a minimal counterexample.
///
/// ddmin over the event list — remove chunks, halving the chunk size
/// until single events — keeping a candidate iff its replay verdict
/// equals `target` exactly; then per-event shrinking (a `TurnByzantine`
/// pid set loses members one at a time under the same criterion). The
/// result replays to the identical verdict by construction.
///
/// Call this only with a non-`Pass` target: shrinking towards `Pass`
/// degenerates to the empty schedule.
pub fn shrink<P, F>(scenario: &Scenario, factory: &F, target: &ScenarioVerdict) -> Scenario
where
    P: Protocol<Value = bool> + Send + 'static,
    P::Msg: WireEncode + WireDecode,
    F: ProtocolFactory<P = P>,
{
    let matches = |cand: &Scenario| run_scenario::<P, F>(cand, factory).verdict == *target;
    let mut best = scenario.clone();

    // Phase 1: ddmin over events.
    let mut chunk = best.schedule.events.len().max(1);
    while chunk >= 1 {
        let mut i = 0;
        while i < best.schedule.events.len() {
            let mut cand = best.clone();
            let end = (i + chunk).min(cand.schedule.events.len());
            cand.schedule.events.drain(i..end);
            if matches(&cand) {
                best = cand; // keep i: the list shifted under us
            } else {
                i += 1;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // Phase 2: shrink event payloads (TurnByzantine pid sets).
    loop {
        let mut improved = false;
        for idx in 0..best.schedule.events.len() {
            let pids = match &best.schedule.events[idx].event {
                ScheduleEvent::TurnByzantine { pids } if pids.len() > 1 => pids.clone(),
                _ => continue,
            };
            for p in pids {
                let mut cand = best.clone();
                if let ScheduleEvent::TurnByzantine { pids } = &mut cand.schedule.events[idx].event
                {
                    pids.remove(&p);
                    if pids.is_empty() {
                        continue;
                    }
                }
                if matches(&cand) {
                    best = cand;
                    improved = true;
                    break; // pid set changed; re-enumerate
                }
            }
        }
        if !improved {
            break;
        }
    }
    best
}

/// Renders a scenario replay as a DOT trace graph: the event timeline as
/// a chain from setup to verdict, breach/violation highlighted.
pub fn scenario_dot(scenario: &Scenario, report: &ScenarioReport) -> String {
    let mut g = String::new();
    let _ = writeln!(g, "digraph scenario {{");
    let _ = writeln!(g, "  rankdir=LR;");
    let _ = writeln!(g, "  node [shape=box, fontname=\"monospace\"];");
    let _ = writeln!(
        g,
        "  setup [label=\"seed={:#x}\\n{}\\ndrops={:?}\"];",
        scenario.schedule.seed,
        scenario.summary().replace('"', "'"),
        scenario.init_drops.gst(),
    );
    let mut prev = "setup".to_string();
    let breach_round = match &report.verdict {
        ScenarioVerdict::Breach { round, .. } => Some(*round),
        _ => None,
    };
    for (i, te) in scenario.schedule.events.iter().enumerate() {
        let name = format!("ev{i}");
        let hit = breach_round == Some(te.at);
        let color = if hit { ", color=red, penwidth=2" } else { "" };
        let _ = writeln!(
            g,
            "  {name} [label=\"r{}: {}\"{color}];",
            te.at.index(),
            te.event.label().replace('"', "'"),
        );
        let _ = writeln!(g, "  {prev} -> {name};");
        prev = name;
    }
    let (verdict_label, verdict_color) = match &report.verdict {
        ScenarioVerdict::Pass => ("pass".to_string(), "green"),
        ScenarioVerdict::Breach { round, reason } => {
            (format!("breach@r{}: {reason}", round.index()), "red")
        }
        ScenarioVerdict::Violation { desc } => (format!("violation: {desc}"), "red"),
    };
    let _ = writeln!(
        g,
        "  verdict [label=\"{}\\nrounds={} digest={:#018x}\", color={verdict_color}, penwidth=2];",
        verdict_label.replace('"', "'"),
        report.report.rounds,
        report.trace_digest,
    );
    let _ = writeln!(g, "  {prev} -> verdict;");
    let _ = writeln!(g, "}}");
    g
}

/// Compiles a schedule's shard events into a [`ChurnPlan`] for the
/// sharded engines, one churn op per event at the event's round (global
/// tick). `make_shot` builds the enqueued shots from the event's shard
/// index and inputs.
pub fn schedule_churn_plan<P, F>(schedule: &Schedule, mut make_shot: F) -> ChurnPlan<P>
where
    P: Protocol,
    F: FnMut(u32, &[bool]) -> ShotSpec<P>,
{
    let mut plan = ChurnPlan::new();
    for te in &schedule.events {
        match &te.event {
            ScheduleEvent::ShardAbort { shard } => {
                plan.at(te.at.index(), ChurnOp::Abort(ShardId::new(*shard as usize)));
            }
            ScheduleEvent::ShardEnqueue { shard, inputs } => {
                plan.at(
                    te.at.index(),
                    ChurnOp::Enqueue(ShardId::new(*shard as usize), make_shot(*shard, inputs)),
                );
            }
            _ => {}
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_classic::{Eig, UniqueRunner};
    use homonym_core::{Domain, FnFactory};

    fn cfg(n: usize, t: usize) -> SystemConfig {
        SystemConfig::builder(n, n, t).build().expect("valid cfg")
    }

    fn eig_factory(n: usize, t: usize) -> impl ProtocolFactory<P = UniqueRunner<Eig<bool>>> {
        let domain = Domain::binary();
        FnFactory::new(move |id, input| {
            UniqueRunner::new(Eig::new(n, t, domain.clone()), id, input)
        })
    }

    #[test]
    fn draw_is_deterministic_and_streams_are_independent() {
        let c = cfg(4, 1);
        let a = Scenario::draw(99, c, 10);
        let b = Scenario::draw(99, c, 10);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.init_byz, b.init_byz);
        assert_eq!(a.init_strategy, b.init_strategy);
        assert_eq!(a.schedule, b.schedule);
        // A different seed re-rolls the components.
        let d = Scenario::draw(100, c, 10);
        assert_ne!(
            (a.inputs.clone(), a.init_strategy.clone(), a.schedule.seed),
            (d.inputs.clone(), d.init_strategy.clone(), d.schedule.seed),
        );
    }

    #[test]
    fn every_strategy_kind_materializes() {
        let c = cfg(4, 1);
        let factory = eig_factory(4, 1);
        let assignment = IdAssignment::unique(4);
        let byz: BTreeSet<Pid> = [Pid::new(3)].into_iter().collect();
        let kinds = vec![
            StrategyKind::Silent,
            StrategyKind::Mimic {
                inputs: vec![(Pid::new(3), true)],
            },
            StrategyKind::Equivocator {
                split: [Pid::new(0)].into_iter().collect(),
            },
            StrategyKind::CloneSpammer {
                inputs: vec![false, true],
            },
            StrategyKind::Flooder { copies: 2 },
            StrategyKind::ReplayFuzzer { seed: 1, burst: 2 },
            StrategyKind::StaleReplayer { delay: 1, cap: 2 },
            StrategyKind::CrashAt {
                at: Round::new(2),
                inner: Box::new(StrategyKind::Silent),
            },
            StrategyKind::Compose(vec![
                StrategyKind::Silent,
                StrategyKind::Flooder { copies: 2 },
            ]),
        ];
        for kind in kinds {
            let scenario = Scenario {
                cfg: c,
                assignment: assignment.clone(),
                inputs: vec![true, false, true, false],
                init_byz: byz.clone(),
                init_strategy: kind.clone(),
                init_drops: DropSpec::None,
                schedule: Schedule::new(7, Round::ZERO, Round::new(12)),
            };
            let rep = run_scenario(&scenario, &factory);
            assert!(
                rep.verdict.is_pass(),
                "strategy {} violated agreement: {:?}",
                kind.label(),
                rep.verdict
            );
        }
    }

    #[test]
    fn budget_breach_is_detected_and_stops_the_run() {
        let c = cfg(4, 1);
        let factory = eig_factory(4, 1);
        let mut schedule = Schedule::new(3, Round::ZERO, Round::new(12));
        schedule.push(
            Round::new(1),
            ScheduleEvent::TurnByzantine {
                pids: [Pid::new(0)].into_iter().collect(),
            },
        );
        let scenario = Scenario {
            cfg: c,
            assignment: IdAssignment::unique(4),
            inputs: vec![true; 4],
            init_byz: [Pid::new(3)].into_iter().collect(),
            init_strategy: StrategyKind::Silent,
            init_drops: DropSpec::None,
            schedule,
        };
        let rep = run_scenario(&scenario, &factory);
        match &rep.verdict {
            ScenarioVerdict::Breach { round, reason } => {
                assert_eq!(*round, Round::new(1));
                assert!(reason.contains("budget"), "reason: {reason}");
            }
            other => panic!("expected breach, got {other:?}"),
        }
    }

    #[test]
    fn legal_mid_run_defection_keeps_agreement() {
        // t = 2, one initial Byzantine, one more defects at round 1 —
        // within budget, so the run must still satisfy the spec.
        let c = cfg(7, 2);
        let factory = eig_factory(7, 2);
        let mut schedule = Schedule::new(11, Round::ZERO, Round::new(16));
        schedule.push(
            Round::new(1),
            ScheduleEvent::TurnByzantine {
                pids: [Pid::new(1)].into_iter().collect(),
            },
        );
        let scenario = Scenario {
            cfg: c,
            assignment: IdAssignment::unique(7),
            inputs: vec![true, false, true, false, true, false, true],
            init_byz: [Pid::new(6)].into_iter().collect(),
            init_strategy: StrategyKind::Silent,
            init_drops: DropSpec::None,
            schedule,
        };
        let rep = run_scenario(&scenario, &factory);
        assert!(rep.verdict.is_pass(), "got {:?}", rep.verdict);
        // The defector's input and decision no longer count.
        assert!(!rep.report.outcome.inputs.contains_key(&Pid::new(1)));
    }

    #[test]
    fn replay_is_deterministic() {
        let c = cfg(4, 1);
        let factory = eig_factory(4, 1);
        for seed in [1u64, 2, 3, 4, 5] {
            let scenario = Scenario::draw(seed, c, 12);
            let a = run_scenario(&scenario, &factory);
            let b = run_scenario(&scenario, &factory);
            assert_eq!(a.trace_digest, b.trace_digest, "seed {seed}");
            assert_eq!(a.verdict, b.verdict, "seed {seed}");
        }
    }

    #[test]
    fn shrinker_reduces_to_the_offending_event() {
        let c = cfg(4, 1);
        let factory = eig_factory(4, 1);
        let mut schedule = Schedule::new(5, Round::ZERO, Round::new(12));
        // Noise events around one fatal over-budget turn.
        schedule.push(
            Round::new(1),
            ScheduleEvent::SwitchStrategy {
                strategy: StrategyKind::Flooder { copies: 2 },
            },
        );
        schedule.push(
            Round::new(1),
            ScheduleEvent::TurnByzantine {
                pids: [Pid::new(0)].into_iter().collect(),
            },
        );
        schedule.push(
            Round::new(3),
            ScheduleEvent::SwitchStrategy {
                strategy: StrategyKind::Silent,
            },
        );
        let scenario = Scenario {
            cfg: c,
            assignment: IdAssignment::unique(4),
            inputs: vec![true; 4],
            init_byz: [Pid::new(3)].into_iter().collect(),
            init_strategy: StrategyKind::Silent,
            init_drops: DropSpec::None,
            schedule,
        };
        let rep = run_scenario(&scenario, &factory);
        assert!(matches!(rep.verdict, ScenarioVerdict::Breach { .. }));
        let minimal = shrink(&scenario, &factory, &rep.verdict);
        assert_eq!(minimal.schedule.events.len(), 1, "one offending event");
        assert!(matches!(
            minimal.schedule.events[0].event,
            ScheduleEvent::TurnByzantine { .. }
        ));
        // The minimal schedule replays to the identical verdict.
        let re = run_scenario(&minimal, &factory);
        assert_eq!(re.verdict, rep.verdict);
    }

    #[test]
    fn dot_artifact_marks_the_breach() {
        let c = cfg(4, 1);
        let factory = eig_factory(4, 1);
        let mut schedule = Schedule::new(5, Round::ZERO, Round::new(12));
        schedule.push(
            Round::new(1),
            ScheduleEvent::TurnByzantine {
                pids: [Pid::new(0)].into_iter().collect(),
            },
        );
        let scenario = Scenario {
            cfg: c,
            assignment: IdAssignment::unique(4),
            inputs: vec![true; 4],
            init_byz: [Pid::new(3)].into_iter().collect(),
            init_strategy: StrategyKind::Silent,
            init_drops: DropSpec::None,
            schedule,
        };
        let rep = run_scenario(&scenario, &factory);
        let dot = scenario_dot(&scenario, &rep);
        assert!(dot.starts_with("digraph scenario {"));
        assert!(dot.contains("color=red"), "breach must be highlighted");
        assert!(dot.contains("turn_byz"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn topology_events_apply_and_restore() {
        let c = cfg(4, 1);
        let factory = eig_factory(4, 1);
        let mut schedule = Schedule::new(8, Round::ZERO, Round::new(12));
        // Cut one edge at round 0 and restore it at round 1; EIG with
        // n = ℓ = 4, t = 1 still decides within the horizon.
        schedule.push(
            Round::ZERO,
            ScheduleEvent::SetTopology {
                cut: [(Pid::new(0), Pid::new(2))].into_iter().collect(),
            },
        );
        schedule.push(
            Round::new(1),
            ScheduleEvent::SetTopology {
                cut: BTreeSet::new(),
            },
        );
        let scenario = Scenario {
            cfg: c,
            assignment: IdAssignment::unique(4),
            inputs: vec![true, true, false, false],
            init_byz: BTreeSet::new(),
            init_strategy: StrategyKind::Silent,
            init_drops: DropSpec::None,
            schedule,
        };
        let rep = run_scenario(&scenario, &factory);
        assert!(rep.verdict.is_pass(), "got {:?}", rep.verdict);
    }
}
