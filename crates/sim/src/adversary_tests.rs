//! Unit tests for the adversary strategy library, exercised through the
//! engine against a transparent probe protocol.

use std::collections::BTreeSet;

use homonym_core::{
    Counting, Id, IdAssignment, Inbox, Pid, Protocol, ProtocolFactory, Recipients, Round,
    SystemConfig,
};

use crate::adversary::{Adversary, ByzTarget, Emission};
use crate::adversary::{
    CloneSpammer, Compose, CrashAt, Equivocator, Mimic, ReplayFuzzer, Scripted, Silent,
};
use crate::engine::Simulation;
use crate::trace::Trace;

/// A probe protocol: broadcasts `(id, input, round)` every round and
/// remembers everything it hears. Never decides.
#[derive(Clone, Debug)]
struct Probe {
    id: Id,
    input: u32,
    heard: Vec<(Round, Id, (u16, u32, u64), u64)>,
}

impl Protocol for Probe {
    type Msg = (u16, u32, u64);
    type Value = u32;

    fn id(&self) -> Id {
        self.id
    }

    fn send(&mut self, round: Round) -> Vec<(Recipients, Self::Msg)> {
        vec![(Recipients::All, (self.id.get(), self.input, round.index()))]
    }

    fn receive(&mut self, round: Round, inbox: &Inbox<Self::Msg>) {
        for (id, msg, count) in inbox.iter() {
            self.heard.push((round, id, *msg, count));
        }
    }

    fn decision(&self) -> Option<u32> {
        None
    }
}

fn probe_factory() -> impl ProtocolFactory<P = Probe> {
    homonym_core::FnFactory::new(|id, input| Probe {
        id,
        input,
        heard: Vec::new(),
    })
}

fn run_with<A: Adversary<(u16, u32, u64)> + 'static>(
    adversary: A,
    rounds: u64,
) -> Trace<(u16, u32, u64)> {
    let cfg = SystemConfig::builder(4, 4, 1)
        .counting(Counting::Numerate)
        .build()
        .unwrap();
    let factory = probe_factory();
    let mut sim = Simulation::builder(cfg, IdAssignment::unique(4), vec![10, 20, 30, 40])
        .byzantine([Pid::new(3)], adversary)
        .record_trace(true)
        .build_with(&factory);
    sim.run_exact(rounds);
    sim.into_trace().expect("trace enabled")
}

fn byz_deliveries(trace: &Trace<(u16, u32, u64)>) -> Vec<&crate::trace::Delivery<(u16, u32, u64)>> {
    trace
        .deliveries()
        .iter()
        .filter(|d| d.from == Pid::new(3) && d.to != Pid::new(3))
        .collect()
}

#[test]
fn silent_sends_nothing() {
    let trace = run_with(Silent, 3);
    assert!(byz_deliveries(&trace).is_empty());
}

#[test]
fn mimic_is_indistinguishable_from_a_correct_process() {
    let factory = probe_factory();
    let assignment = IdAssignment::unique(4);
    let mimic = Mimic::new(&factory, &assignment, &[(Pid::new(3), 99u32)]);
    let trace = run_with(mimic, 3);
    let sent = byz_deliveries(&trace);
    // One broadcast to each of the three correct processes per round.
    assert_eq!(sent.len(), 9);
    for d in &sent {
        let (id, input, round) = *d.msg;
        assert_eq!(id, 4);
        assert_eq!(input, 99);
        assert_eq!(round, d.round.index());
    }
}

#[test]
fn crash_at_goes_silent_at_the_given_round() {
    let factory = probe_factory();
    let assignment = IdAssignment::unique(4);
    let inner = Mimic::new(&factory, &assignment, &[(Pid::new(3), 99u32)]);
    let trace = run_with(CrashAt::new(Round::new(2), inner), 4);
    let sent = byz_deliveries(&trace);
    assert!(sent.iter().all(|d| d.round < Round::new(2)));
    assert_eq!(sent.len(), 6); // two live rounds × three recipients
}

#[test]
fn equivocator_shows_each_half_a_different_persona() {
    let factory = probe_factory();
    let assignment = IdAssignment::unique(4);
    let byz: BTreeSet<Pid> = [Pid::new(3)].into();
    let split: BTreeSet<Pid> = [Pid::new(0)].into();
    let trace = run_with(
        Equivocator::new(&factory, &assignment, &byz, 7u32, 8u32, split),
        2,
    );
    for d in byz_deliveries(&trace) {
        let (_, input, _) = *d.msg;
        if d.to == Pid::new(0) {
            assert_eq!(input, 7, "persona A for the split set");
        } else {
            assert_eq!(input, 8, "persona B for everyone else");
        }
    }
}

#[test]
fn clone_spammer_multiplies_under_unrestricted_power() {
    let factory = probe_factory();
    let assignment = IdAssignment::unique(4);
    let byz: BTreeSet<Pid> = [Pid::new(3)].into();
    let trace = run_with(
        CloneSpammer::new(&factory, &assignment, &byz, &[1u32, 2, 3]),
        1,
    );
    let sent = byz_deliveries(&trace);
    // Three personas × three recipients in one round.
    assert_eq!(sent.len(), 9);
    let inputs: BTreeSet<u32> = sent.iter().map(|d| d.msg.1).collect();
    assert_eq!(inputs, BTreeSet::from([1, 2, 3]));
}

#[test]
fn clone_spammer_clamped_under_restriction() {
    let cfg = SystemConfig::builder(4, 4, 1)
        .counting(Counting::Numerate)
        .byz_power(homonym_core::ByzPower::Restricted)
        .build()
        .unwrap();
    let factory = probe_factory();
    let assignment = IdAssignment::unique(4);
    let byz: BTreeSet<Pid> = [Pid::new(3)].into();
    let spammer = CloneSpammer::new(&factory, &assignment, &byz, &[1u32, 2, 3]);
    let mut sim = Simulation::builder(cfg, assignment.clone(), vec![10, 20, 30, 40])
        .byzantine([Pid::new(3)], spammer)
        .record_trace(true)
        .build_with(&factory);
    sim.run_exact(1);
    let trace = sim.into_trace().unwrap();
    let sent = byz_deliveries(&trace);
    // The engine clamps to one message per recipient per round.
    assert_eq!(sent.len(), 3);
}

#[test]
fn replay_fuzzer_only_replays_observed_messages() {
    let trace = run_with(ReplayFuzzer::new(42, 4), 5);
    let correct_msgs: BTreeSet<(u16, u32, u64)> = trace
        .deliveries()
        .iter()
        .filter(|d| d.from != Pid::new(3))
        .map(|d| *d.msg)
        .collect();
    let byz = byz_deliveries(&trace);
    assert!(
        !byz.is_empty(),
        "the fuzzer should fire once its pool fills"
    );
    for d in byz {
        assert!(
            correct_msgs.contains(&*d.msg),
            "fuzzer invented a message: {:?}",
            d.msg
        );
    }
}

#[test]
fn scripted_emits_exactly_the_script() {
    let script = Scripted::new([
        (
            Round::new(1),
            Emission::new(
                Pid::new(3),
                ByzTarget::One(Pid::new(0)),
                (4u16, 999u32, 1u64),
            ),
        ),
        (
            Round::new(1),
            Emission::new(
                Pid::new(3),
                ByzTarget::Group(Id::new(2)),
                (4u16, 998u32, 1u64),
            ),
        ),
    ]);
    let trace = run_with(script, 3);
    let sent = byz_deliveries(&trace);
    assert_eq!(sent.len(), 2);
    assert!(sent.iter().any(|d| d.to == Pid::new(0) && d.msg.1 == 999));
    assert!(sent.iter().any(|d| d.to == Pid::new(1) && d.msg.1 == 998)); // group(2) = pid 1
}

#[test]
fn compose_concatenates_strategies() {
    let factory = probe_factory();
    let assignment = IdAssignment::unique(4);
    let mimic = Mimic::new(&factory, &assignment, &[(Pid::new(3), 99u32)]);
    let script = Scripted::new([(
        Round::new(0),
        Emission::new(Pid::new(3), ByzTarget::All, (4u16, 1000u32, 0u64)),
    )]);
    let composed: Compose<(u16, u32, u64)> = Compose::new(vec![Box::new(mimic), Box::new(script)]);
    let trace = run_with(composed, 1);
    let sent = byz_deliveries(&trace);
    // Mimic: 3 recipients; script: 3 non-self recipients.
    assert_eq!(sent.len(), 6);
    let inputs: BTreeSet<u32> = sent.iter().map(|d| d.msg.1).collect();
    assert_eq!(inputs, BTreeSet::from([99, 1000]));
}

#[test]
fn stale_replayer_echoes_with_the_configured_delay() {
    use crate::adversary::StaleReplayer;
    let trace = run_with(StaleReplayer::new(2, 8), 5);
    let byz = byz_deliveries(&trace);
    assert!(!byz.is_empty());
    for d in byz {
        let (_, _, tagged_round) = *d.msg;
        assert_eq!(
            tagged_round + 2,
            d.round.index(),
            "every replayed message is exactly two rounds stale"
        );
    }
}

#[test]
fn flooder_duplicates_are_counted_by_numerate_receivers() {
    use crate::adversary::Flooder;
    let trace = run_with(Flooder::new(5), 3);
    let byz = byz_deliveries(&trace);
    // From round 1 on, 5 copies × 3 recipients per round.
    assert_eq!(byz.len(), 2 * 5 * 3);
}

#[test]
fn flooder_clamped_under_restriction() {
    use crate::adversary::Flooder;
    let cfg = SystemConfig::builder(4, 4, 1)
        .counting(Counting::Numerate)
        .byz_power(homonym_core::ByzPower::Restricted)
        .build()
        .unwrap();
    let factory = probe_factory();
    let mut sim = Simulation::builder(cfg, IdAssignment::unique(4), vec![10, 20, 30, 40])
        .byzantine([Pid::new(3)], Flooder::new(5))
        .record_trace(true)
        .build_with(&factory);
    sim.run_exact(3);
    let trace = sim.into_trace().unwrap();
    let byz = byz_deliveries(&trace);
    assert_eq!(byz.len(), 2 * 3, "one copy per recipient per active round");
}

#[test]
fn per_round_sent_grows_with_flooding() {
    use crate::adversary::Flooder;
    let cfg = SystemConfig::builder(4, 4, 1)
        .counting(Counting::Numerate)
        .build()
        .unwrap();
    let factory = probe_factory();
    let mut sim = Simulation::builder(cfg, IdAssignment::unique(4), vec![10, 20, 30, 40])
        .byzantine([Pid::new(3)], Flooder::new(5))
        .build_with(&factory);
    sim.run_exact(3);
    let per_round = sim.per_round_sent().to_vec();
    assert_eq!(per_round.len(), 3);
    // Round 0: only the 3 correct broadcasts (9 non-self deliveries);
    // later rounds add the flood.
    assert_eq!(per_round[0], 9);
    assert_eq!(per_round[1], 9 + 15);
}

#[test]
fn adversary_names_are_stable() {
    // Report output keys off these names.
    assert_eq!(Adversary::<(u16, u32, u64)>::name(&Silent), "silent");
    let fuzzer: ReplayFuzzer<(u16, u32, u64)> = ReplayFuzzer::new(1, 1);
    assert_eq!(fuzzer.name(), "replay-fuzzer");
}
