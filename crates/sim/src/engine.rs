//! The lock-step round execution engine.
//!
//! The hot path rides the delivery fabric
//! ([`homonym_core::fabric`]): each emission's payload is wrapped in an
//! [`Arc`] exactly once, fan-out to recipients / the trace / the drop
//! policy moves pointer clones, and per-round routing buffers are kept
//! across rounds and `clear()`ed instead of reallocated. Payload `clone()`
//! count per round is O(emissions), not O(n²) deliveries (pinned by the
//! `fabric_clone_count` tests).
//!
//! The engine is generic over an [`Executor`]: under the default
//! [`Sequential`] a round runs exactly the historical single-threaded
//! sweep, while [`Pool`](homonym_core::exec::Pool) fans the send and
//! receive phases of **one instance's** round across worker threads —
//! contiguous pid chunks, merged back in chunk order, so traces,
//! decisions, and every counter are byte-identical at any worker count
//! (see the `crate::par` helpers for the full determinism argument).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use homonym_core::exec::{self, Executor, Sequential};
use homonym_core::intern::IdBits;
use homonym_core::journal::{self, Journal, MemJournal};
use homonym_core::spec::{self, Outcome, Verdict};
use homonym_core::{
    Deliveries, FrameInterner, Id, IdAssignment, Inbox, Pid, Protocol, ProtocolFactory,
    RecoveryMode, Round, SystemConfig, WireDecode, WireEncode,
};

use crate::adversary::{AdvCtx, Adversary, Silent};
use crate::drops::{DropPolicy, NoDrops};
use crate::par::{self, SendScratch};
use crate::shards::ShardWire;
use crate::topology::Topology;
use crate::trace::{Delivery, Trace};

/// Why a mid-run churn event was rejected by the engine.
///
/// Rejection is a *detection*, not a crash: the engine's state is
/// unchanged, and scenario harnesses surface the rejection as a model
/// breach in their reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChurnError {
    /// The event would push the ever-faulty count — Byzantine processes
    /// plus amnesiac-recovered crashers, who share one budget — past `t`.
    BudgetExceeded {
        /// The ever-faulty count the event would have produced.
        would_be: usize,
        /// The configured fault budget.
        t: usize,
    },
    /// The named process does not exist in this system.
    UnknownPid(Pid),
    /// The named process is already Byzantine.
    AlreadyByzantine(Pid),
    /// The named process is already crashed.
    AlreadyCrashed(Pid),
    /// A recovery was requested for a process that is not crashed.
    NotCrashed(Pid),
    /// A durable recovery could not restore the process (no journal, a
    /// corrupt journal, or an undecodable snapshot). The engine's state
    /// is unchanged; the caller may fall back to an amnesiac rejoin,
    /// which consumes fault budget.
    RecoveryFailed(String),
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::BudgetExceeded { would_be, t } => {
                write!(f, "fault budget exceeded: {would_be} > t = {t}")
            }
            ChurnError::UnknownPid(pid) => write!(f, "unknown process {pid:?}"),
            ChurnError::AlreadyByzantine(pid) => write!(f, "{pid:?} is already byzantine"),
            ChurnError::AlreadyCrashed(pid) => write!(f, "{pid:?} is already crashed"),
            ChurnError::NotCrashed(pid) => write!(f, "{pid:?} is not crashed"),
            ChurnError::RecoveryFailed(why) => write!(f, "recovery failed: {why}"),
        }
    }
}

impl std::error::Error for ChurnError {}

/// The report of one simulated execution.
#[derive(Clone, Debug)]
pub struct RunReport<V> {
    /// Inputs and decisions of the correct processes, for the checker.
    pub outcome: Outcome<V>,
    /// The three-property verdict.
    pub verdict: Verdict<V>,
    /// Rounds actually executed.
    pub rounds: u64,
    /// The round by which every correct process had decided, if all did.
    pub all_decided_round: Option<Round>,
    /// Non-self messages handed to the network.
    pub messages_sent: u64,
    /// Non-self messages delivered.
    pub messages_delivered: u64,
    /// Non-self messages lost to the drop policy.
    pub messages_dropped: u64,
    /// Sum of [`Protocol::state_bits`] across the correct processes after
    /// the last executed round (0 when the protocol is not instrumented).
    pub state_bits: u64,
    /// The largest per-round [`RunReport::state_bits`] sample seen over
    /// the run — flat for bounded-state protocols, growing for the
    /// faithful O(history) ones.
    pub peak_state_bits: u64,
}

/// Encodes one round's delivered envelopes as a journal record — a
/// monomorphized function pointer captured by
/// [`SimulationBuilder::durable`], which is where the `Msg: WireEncode`
/// bound is checked (the hot `step` path itself carries no codec bounds).
type DeliveriesEncoder<P> = fn(Round, &[(Id, Arc<<P as Protocol>::Msg>)]) -> Vec<u8>;

/// Per-process durability state: one journal per correct process, a
/// snapshot cadence, and the codec hook.
struct Durability<P: Protocol> {
    journals: BTreeMap<Pid, Box<dyn Journal + Send>>,
    snapshot_every: u64,
    encode: DeliveriesEncoder<P>,
    /// Per-recipient envelope buffers, reused across rounds.
    scratch: Vec<Vec<(Id, Arc<P::Msg>)>>,
}

/// Builder for [`Simulation`]; see [`Simulation::builder`].
pub struct SimulationBuilder<P: Protocol, E: Executor = Sequential> {
    cfg: SystemConfig,
    assignment: IdAssignment,
    inputs: Vec<P::Value>,
    byz: BTreeSet<Pid>,
    adversary: Box<dyn Adversary<P::Msg>>,
    drops: Box<dyn DropPolicy>,
    topology: Topology,
    record_trace: bool,
    durable: Option<(u64, DeliveriesEncoder<P>)>,
    exec: E,
}

impl<P: Protocol, E: Executor> SimulationBuilder<P, E> {
    /// Installs the executor the simulation's rounds run on (default:
    /// [`Sequential`]) — e.g. `.executor(Pool::new(4))` fans each round's
    /// send and receive phases across four worker threads, with traces,
    /// decisions, and counters byte-identical to the sequential run.
    pub fn executor<E2: Executor>(self, exec: E2) -> SimulationBuilder<P, E2> {
        SimulationBuilder {
            cfg: self.cfg,
            assignment: self.assignment,
            inputs: self.inputs,
            byz: self.byz,
            adversary: self.adversary,
            drops: self.drops,
            topology: self.topology,
            record_trace: self.record_trace,
            durable: self.durable,
            exec,
        }
    }

    /// Enables durable journaling: every correct process journals its
    /// per-round deliveries (in-memory by default — see
    /// [`Simulation::install_journal`] for a file-backed WAL) and, when
    /// `snapshot_every > 0` and the protocol supports snapshots, a state
    /// snapshot every `snapshot_every` rounds. A crashed process can then
    /// rejoin bit-exact via
    /// [`recover_with`](Simulation::recover_with)
    /// ([`RecoveryMode::Durable`]). Without this, crashed processes can
    /// only rejoin amnesiac (consuming fault budget).
    pub fn durable(mut self, snapshot_every: u64) -> Self
    where
        P::Msg: WireEncode,
    {
        self.durable = Some((
            snapshot_every,
            journal::encode_deliveries_entry::<P::Msg> as DeliveriesEncoder<P>,
        ));
        self
    }
    /// Declares the Byzantine processes and the strategy controlling them.
    ///
    /// # Panics
    ///
    /// Panics if more than `t` processes are declared Byzantine or any is
    /// out of range.
    pub fn byzantine(
        mut self,
        byz: impl IntoIterator<Item = Pid>,
        adversary: impl Adversary<P::Msg> + 'static,
    ) -> Self {
        self.byz = byz.into_iter().collect();
        assert!(
            self.byz.len() <= self.cfg.t,
            "{} byzantine processes exceed t = {}",
            self.byz.len(),
            self.cfg.t
        );
        assert!(
            self.byz.iter().all(|p| p.index() < self.cfg.n),
            "byzantine pid out of range"
        );
        self.adversary = Box::new(adversary);
        self
    }

    /// Installs a drop policy (default: no drops — the synchronous model).
    pub fn drops(mut self, drops: impl DropPolicy + 'static) -> Self {
        self.drops = Box::new(drops);
        self
    }

    /// Installs a topology (default: complete).
    ///
    /// # Panics
    ///
    /// Panics if the topology's size differs from `n`.
    pub fn topology(mut self, topology: Topology) -> Self {
        assert_eq!(topology.n(), self.cfg.n, "topology size must equal n");
        self.topology = topology;
        self
    }

    /// Records a full delivery trace (off by default; required for the
    /// replay adversaries).
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Spawns the correct processes from `factory` and finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if the configuration, assignment and inputs disagree on `n`
    /// or `ℓ`.
    pub fn build_with<F>(self, factory: &F) -> Simulation<P, E>
    where
        F: ProtocolFactory<P = P>,
    {
        self.cfg.validate().expect("invalid system configuration");
        assert_eq!(
            self.assignment.n(),
            self.cfg.n,
            "assignment covers n processes"
        );
        assert_eq!(
            self.assignment.ell(),
            self.cfg.ell,
            "assignment uses ell identifiers"
        );
        assert_eq!(self.inputs.len(), self.cfg.n, "one input per process");

        let procs: BTreeMap<Pid, P> = self
            .assignment
            .iter()
            .filter(|(pid, _)| !self.byz.contains(pid))
            .map(|(pid, id)| (pid, factory.spawn(id, self.inputs[pid.index()].clone())))
            .collect();
        let inputs = self
            .assignment
            .iter()
            .filter(|(pid, _)| !self.byz.contains(pid))
            .map(|(pid, _)| (pid, self.inputs[pid.index()].clone()))
            .collect();
        let durability = self.durable.map(|(snapshot_every, encode)| Durability {
            journals: procs
                .keys()
                .map(|&pid| (pid, Box::new(MemJournal::new()) as Box<dyn Journal + Send>))
                .collect(),
            snapshot_every,
            encode,
            scratch: Vec::new(),
        });
        let n = self.cfg.n;
        Simulation {
            cfg: self.cfg,
            assignment: self.assignment,
            spawn_inputs: self.inputs,
            inputs,
            procs,
            crashed: BTreeSet::new(),
            amnesiac: BTreeSet::new(),
            durability,
            byz: self.byz,
            adversary: self.adversary,
            drops: self.drops,
            topology: self.topology,
            round: Round::ZERO,
            decisions: BTreeMap::new(),
            trace: self.record_trace.then(Trace::new),
            messages_sent: 0,
            messages_delivered: 0,
            messages_dropped: 0,
            state_bits: 0,
            peak_state_bits: 0,
            per_round_sent: Vec::new(),
            wires: Vec::new(),
            deliveries: Deliveries::new(n),
            frames: FrameInterner::new(),
            exec: self.exec,
            send_scratch: Vec::new(),
            route_plan: Vec::new(),
            byz_sent: IdBits::new(),
            recv_out: Vec::new(),
        }
    }
}

/// A deterministic lock-step execution of one system.
///
/// # Example
///
/// ```
/// use homonym_classic::{Eig, UniqueRunner};
/// use homonym_core::{Domain, FnFactory, IdAssignment, SystemConfig};
/// use homonym_sim::Simulation;
///
/// // Classical system: 4 processes, unique identifiers, no faults present.
/// let cfg = SystemConfig::builder(4, 4, 1).build().unwrap();
/// let domain = Domain::binary();
/// let factory = FnFactory::new(move |id, input| {
///     UniqueRunner::new(Eig::new(4, 1, domain.clone()), id, input)
/// });
/// let mut sim = Simulation::builder(cfg, IdAssignment::unique(4), vec![true; 4])
///     .build_with(&factory);
/// let report = sim.run(10);
/// assert!(report.verdict.all_hold());
/// ```
pub struct Simulation<P: Protocol, E: Executor = Sequential> {
    cfg: SystemConfig,
    assignment: IdAssignment,
    /// The full input vector, kept pristine for crash-recovery respawns
    /// (the `inputs` map below is the spec checker's view and shrinks as
    /// processes turn faulty).
    spawn_inputs: Vec<P::Value>,
    inputs: BTreeMap<Pid, P::Value>,
    procs: BTreeMap<Pid, P>,
    /// Processes currently down: not sending, inbound messages dropped.
    /// Still *correct* (their inputs and decisions keep counting) — they
    /// are expected to recover.
    crashed: BTreeSet<Pid>,
    /// Processes that rejoined amnesiac: running a correct automaton but
    /// observably faulty, sharing the `t` budget with `byz`. Their
    /// decisions are not recorded.
    amnesiac: BTreeSet<Pid>,
    durability: Option<Durability<P>>,
    byz: BTreeSet<Pid>,
    adversary: Box<dyn Adversary<P::Msg>>,
    drops: Box<dyn DropPolicy>,
    topology: Topology,
    round: Round,
    decisions: BTreeMap<Pid, (P::Value, Round)>,
    trace: Option<Trace<P::Msg>>,
    messages_sent: u64,
    messages_delivered: u64,
    messages_dropped: u64,
    state_bits: u64,
    peak_state_bits: u64,
    per_round_sent: Vec<u64>,
    // Per-round fabric buffers, reused across rounds (`clear()`, never
    // realloc): the wire list and the dense per-recipient buckets.
    wires: Vec<ShardWire<P::Msg>>,
    deliveries: Deliveries<P::Msg>,
    /// One token per distinct emitted payload, persistent for the run —
    /// the token-framed dedup seam of [`Inbox::collect_shared`].
    frames: FrameInterner<P::Msg>,
    /// The executor the round phases scatter on ([`Sequential`] unless
    /// the builder installed a pool).
    exec: E,
    // Parallel-tick scratch, reused across rounds: per-chunk send
    // buffers, the per-wire route plan, the adversary's restricted-clamp
    // bitset, and the per-chunk receive results.
    send_scratch: Vec<SendScratch<P::Msg>>,
    route_plan: Vec<bool>,
    byz_sent: IdBits,
    recv_out: Vec<Vec<(Pid, Option<P::Value>, u64)>>,
}

impl<P: Protocol> Simulation<P> {
    /// Starts building a simulation of `cfg` under `assignment`, where
    /// process `i` proposes `inputs[i]` (inputs of Byzantine processes are
    /// ignored). Defaults: no Byzantine processes, no drops, complete
    /// topology, no trace, [`Sequential`] execution.
    pub fn builder(
        cfg: SystemConfig,
        assignment: IdAssignment,
        inputs: Vec<P::Value>,
    ) -> SimulationBuilder<P> {
        SimulationBuilder {
            cfg,
            assignment,
            inputs,
            byz: BTreeSet::new(),
            adversary: Box::new(Silent),
            drops: Box::new(NoDrops),
            topology: Topology::complete(cfg.n),
            record_trace: false,
            durable: None,
            exec: Sequential,
        }
    }
}

impl<P: Protocol, E: Executor> Simulation<P, E> {
    /// The current round (the next one to execute).
    pub fn round(&self) -> Round {
        self.round
    }

    /// The system configuration.
    pub fn cfg(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The stabilization round of the installed drop policy.
    pub fn gst(&self) -> Round {
        self.drops.gst()
    }

    /// Whether every correct process has decided. Crashed processes are
    /// still correct (they are expected to recover), so an undecided
    /// crashed process keeps the run going; amnesiac rejoiners are
    /// faulty and do not count.
    pub fn all_decided(&self) -> bool {
        self.procs
            .keys()
            .filter(|p| !self.amnesiac.contains(p))
            .chain(self.crashed.iter())
            .all(|p| self.decisions.contains_key(p))
    }

    /// The decisions recorded so far.
    pub fn decisions(&self) -> &BTreeMap<Pid, (P::Value, Round)> {
        &self.decisions
    }

    /// The correct processes' automata, ascending by [`Pid`] — for
    /// inspecting protocol state between [`step`](Simulation::step)s (the
    /// lemma-invariant tests check lock coherence this way).
    pub fn processes(&self) -> impl Iterator<Item = (Pid, &P)> {
        self.procs.iter().map(|(&pid, p)| (pid, p))
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace<P::Msg>> {
        self.trace.as_ref()
    }

    /// Consumes the simulation, returning the trace (if recorded).
    pub fn into_trace(self) -> Option<Trace<P::Msg>> {
        self.trace
    }

    /// Non-self messages handed to the network in each executed round.
    ///
    /// Protocols that retransmit forever (the echo broadcast's relay
    /// property) show their growth here; the E7 experiment plots it.
    pub fn per_round_sent(&self) -> &[u64] {
        &self.per_round_sent
    }

    /// The current Byzantine set.
    pub fn byz(&self) -> &BTreeSet<Pid> {
        &self.byz
    }

    /// The currently crashed processes.
    pub fn crashed(&self) -> &BTreeSet<Pid> {
        &self.crashed
    }

    /// The processes that rejoined amnesiac (ever — the set never
    /// shrinks; it is the crash half of the shared fault budget).
    pub fn amnesiac(&self) -> &BTreeSet<Pid> {
        &self.amnesiac
    }

    /// The durable journal of `pid`, if durability is enabled and the
    /// process had one (for inspecting journal sizes and injecting
    /// faults in tests).
    pub fn journal(&self, pid: Pid) -> Option<&(dyn Journal + Send)> {
        self.durability
            .as_ref()
            .and_then(|d| d.journals.get(&pid))
            .map(|j| j.as_ref())
    }

    /// Replaces `pid`'s journal backend (e.g. with a file-backed
    /// [`homonym_core::journal::FileWal`]). The new journal should be
    /// empty — it records from the current round on.
    ///
    /// # Panics
    ///
    /// Panics if durability is not enabled or `pid` has no journal slot.
    pub fn install_journal(&mut self, pid: Pid, journal: Box<dyn Journal + Send>) {
        let dur = self
            .durability
            .as_mut()
            .expect("durability not enabled (SimulationBuilder::durable)");
        let slot = dur
            .journals
            .get_mut(&pid)
            .unwrap_or_else(|| panic!("no journal slot for {pid}"));
        *slot = journal;
    }

    /// Replaces the drop policy mid-run (a partition forms, a ramp
    /// starts, or the network heals).
    ///
    /// The basic partially synchronous model only requires the *total*
    /// number of drops to be finite, so swapping policies is sound as long
    /// as the schedule eventually installs a policy whose
    /// [`gst`](DropPolicy::gst) has passed.
    pub fn set_drops(&mut self, drops: Box<dyn DropPolicy>) {
        self.drops = drops;
    }

    /// Replaces the topology mid-run (links fail or are repaired).
    ///
    /// # Panics
    ///
    /// Panics if the new topology is sized for a different `n`.
    pub fn set_topology(&mut self, topology: Topology) {
        assert_eq!(topology.n(), self.cfg.n, "topology n mismatch");
        self.topology = topology;
    }

    /// Replaces the Byzantine coalition's strategy mid-run.
    ///
    /// The new adversary starts with no captured state — exactly the
    /// semantics of a coalition switching behaviour at a round boundary.
    pub fn set_adversary(&mut self, adversary: Box<dyn Adversary<P::Msg>>) {
        self.adversary = adversary;
    }

    /// Turns the given correct processes Byzantine at the next round
    /// boundary, validating the model's fault budget.
    ///
    /// The paper's bounds count processes that are *ever* faulty, so a
    /// process behaving correctly for a prefix and then joining the
    /// coalition is a legal `t`-bounded execution — but only while the
    /// ever-Byzantine count stays at most `t`. A schedule that pushes past
    /// the budget is **rejected** (nothing changes) and the breach is
    /// reported to the caller, which is how deliberate-violation schedules
    /// assert detection.
    ///
    /// On success the turned processes leave the correct set: their
    /// automata are dropped and their inputs and decisions no longer count
    /// for the spec checker.
    ///
    /// The budget is *joint*: ever-Byzantine processes and amnesiac
    /// crash-recoveries draw from the same `|faulty| ≤ t` pool (the
    /// paper's bounds count processes that are ever faulty, whatever the
    /// failure mode).
    pub fn try_turn_byzantine(&mut self, pids: &BTreeSet<Pid>) -> Result<(), ChurnError> {
        for &pid in pids {
            if pid.index() >= self.cfg.n {
                return Err(ChurnError::UnknownPid(pid));
            }
            if self.byz.contains(&pid) {
                return Err(ChurnError::AlreadyByzantine(pid));
            }
        }
        self.check_fault_budget(pids.iter().copied())?;
        for &pid in pids {
            self.byz.insert(pid);
            self.procs.remove(&pid);
            self.inputs.remove(&pid);
            self.decisions.remove(&pid);
            self.crashed.remove(&pid);
        }
        Ok(())
    }

    /// The joint fault-budget check shared by Byzantine churn and
    /// amnesiac recovery: ever-faulty = `byz ∪ amnesiac ∪ extra`.
    fn check_fault_budget(&self, extra: impl IntoIterator<Item = Pid>) -> Result<(), ChurnError> {
        let mut ever: BTreeSet<Pid> = self.byz.union(&self.amnesiac).copied().collect();
        ever.extend(extra);
        if ever.len() > self.cfg.t {
            return Err(ChurnError::BudgetExceeded {
                would_be: ever.len(),
                t: self.cfg.t,
            });
        }
        Ok(())
    }

    /// Crashes `pid` at the current round boundary: its automaton leaves
    /// the run (the journal, if any, is the only surviving state), it
    /// stops sending, and every message addressed to it drops until it
    /// recovers. The process is still *correct* — its input and any
    /// recorded decision keep counting for the spec checker, on the
    /// expectation that it recovers.
    pub fn crash(&mut self, pid: Pid) -> Result<(), ChurnError> {
        if pid.index() >= self.cfg.n {
            return Err(ChurnError::UnknownPid(pid));
        }
        if self.byz.contains(&pid) {
            return Err(ChurnError::AlreadyByzantine(pid));
        }
        if self.crashed.contains(&pid) {
            return Err(ChurnError::AlreadyCrashed(pid));
        }
        self.procs.remove(&pid);
        self.crashed.insert(pid);
        Ok(())
    }

    /// Recovers crashed process `pid` at the current round boundary.
    ///
    /// [`RecoveryMode::Durable`] rebuilds the automaton from its durable
    /// journal: a fresh spawn restores the latest snapshot (if any) and
    /// replays the journaled rounds after it — determinism makes the
    /// result byte-identical to the pre-crash state, so the process
    /// rejoins *correct*, at zero fault-budget cost. A missing, corrupt,
    /// or undecodable journal yields a typed
    /// [`ChurnError::RecoveryFailed`] and changes nothing.
    ///
    /// [`RecoveryMode::Amnesiac`] respawns from the original input with
    /// no memory. The rejoin is observably faulty (the process may
    /// equivocate against its own pre-crash decisions), so it consumes
    /// one unit of the joint `|faulty| ≤ t` budget — over budget, the
    /// event is rejected with [`ChurnError::BudgetExceeded`] and nothing
    /// changes. On success the pid's journal resets (pre-crash history
    /// must not replay into the fresh automaton) and its input and
    /// decisions leave the spec checker's view.
    pub fn recover_with<F>(
        &mut self,
        factory: &F,
        pid: Pid,
        mode: RecoveryMode,
    ) -> Result<(), ChurnError>
    where
        F: ProtocolFactory<P = P>,
        P::Msg: WireDecode,
    {
        if !self.crashed.contains(&pid) {
            return Err(ChurnError::NotCrashed(pid));
        }
        let id = self.assignment.id_of(pid);
        let input = self.spawn_inputs[pid.index()].clone();
        match mode {
            RecoveryMode::Amnesiac => {
                self.check_fault_budget([pid])?;
                if let Some(dur) = &mut self.durability {
                    if let Some(j) = dur.journals.get_mut(&pid) {
                        j.reset()
                            .map_err(|e| ChurnError::RecoveryFailed(e.to_string()))?;
                    }
                }
                self.amnesiac.insert(pid);
                self.inputs.remove(&pid);
                self.decisions.remove(&pid);
                self.crashed.remove(&pid);
                self.procs.insert(pid, factory.spawn(id, input));
                Ok(())
            }
            RecoveryMode::Durable => {
                let dur = self.durability.as_ref().ok_or_else(|| {
                    ChurnError::RecoveryFailed(
                        "durability not enabled (SimulationBuilder::durable)".into(),
                    )
                })?;
                let journal = dur
                    .journals
                    .get(&pid)
                    .ok_or_else(|| ChurnError::RecoveryFailed(format!("no journal for {pid}")))?;
                let recovered = journal.recover();
                if let Some(damage) = recovered.damage {
                    return Err(ChurnError::RecoveryFailed(damage.to_string()));
                }
                let entries = journal::decode_entries::<P::Msg>(&recovered.records)
                    .map_err(|e| ChurnError::RecoveryFailed(e.to_string()))?;
                let mut automaton = factory.spawn(id, input);
                journal::replay(&mut automaton, entries, self.cfg.counting)
                    .map_err(|e| ChurnError::RecoveryFailed(e.to_string()))?;
                self.crashed.remove(&pid);
                self.procs.insert(pid, automaton);
                Ok(())
            }
        }
    }

    /// Executes one round: correct sends, adversary sends, topology /
    /// restriction / drops, delivery, decision recording.
    ///
    /// Each emitted payload is wrapped in an [`Arc`] exactly once; every
    /// recipient, the trace, and the inboxes share that handle. The wire
    /// list and delivery buckets persist across rounds, so a steady-state
    /// round allocates nothing but the payload wraps themselves.
    ///
    /// Under a pool executor the send phase fans out over contiguous pid
    /// chunks (buffers concatenated in chunk order) and the receive phase
    /// over contiguous recipient ranges of the delivery plane; the
    /// adversary, the frame interner, and the stateful drop policy run on
    /// the calling thread in sequential order. See `crate::par`.
    ///
    /// # Panics
    ///
    /// Panics if a correct process addresses the same recipient twice in
    /// one round (a protocol bug), if the adversary emits from a
    /// non-Byzantine process (a scenario bug), or if a decision changes
    /// (a protocol bug).
    pub fn step(&mut self)
    where
        P: Send,
        P::Value: Send,
    {
        let r = self.round;
        let workers = self.exec.workers();
        self.wires.clear();

        // 1. Correct processes send; enforce one message per recipient.
        //    Contiguous pid chunks fill per-chunk wire buffers, appended
        //    in chunk order — the same wire list the sequential pid-order
        //    sweep builds.
        {
            let mut procs: Vec<(Pid, &mut P)> =
                self.procs.iter_mut().map(|(&pid, p)| (pid, p)).collect();
            let ranges = exec::chunk_ranges(procs.len(), workers);
            if self.send_scratch.len() < ranges.len() {
                self.send_scratch
                    .resize_with(ranges.len(), Default::default);
            }
            let assignment = &self.assignment;
            let mut proc_slice = procs.as_mut_slice();
            let mut scratch_slice = self.send_scratch.as_mut_slice();
            let mut tasks = Vec::with_capacity(ranges.len());
            for range in &ranges {
                let (chunk, rest) = std::mem::take(&mut proc_slice).split_at_mut(range.len());
                proc_slice = rest;
                let (scratch, rest) = std::mem::take(&mut scratch_slice).split_at_mut(1);
                scratch_slice = rest;
                let scratch = &mut scratch[0];
                tasks.push(move || par::send_chunk(chunk, r, assignment, |_| 0, None, scratch));
            }
            self.exec.scatter(tasks);
            for scratch in self.send_scratch.iter_mut().take(ranges.len()) {
                self.wires.append(&mut scratch.wires);
            }
        }

        // 2. Adversary sends (one stateful strategy object — calling
        //    thread); clamp to one per recipient if restricted. Then
        //    stamp every wire's frame token from the run's one interner,
        //    in sequential first-seen order.
        let ctx = AdvCtx {
            round: r,
            cfg: &self.cfg,
            assignment: &self.assignment,
            byz: &self.byz,
        };
        let emissions = self.adversary.send(&ctx);
        par::adversary_wires(
            emissions,
            &self.byz,
            &self.assignment,
            self.cfg.byz_power,
            &mut self.byz_sent,
            |_| 0,
            None,
            &mut self.wires,
        );
        par::stamp_toks(&mut self.frames, &mut self.wires);

        // 3. Topology and drops, planned in exact wire order on the
        //    calling thread (the drop policy is stateful: query order is
        //    observable); the delivery itself happens in the chunked
        //    phase 4, reading the plan concurrently.
        let trace = &mut self.trace;
        let down = (!self.crashed.is_empty()).then_some(&self.crashed);
        let tallies = par::plan_routes(
            &self.wires,
            r,
            &self.topology,
            down,
            self.drops.as_mut(),
            &mut self.route_plan,
            |wire, dropped| {
                if let Some(trace) = trace.as_mut() {
                    trace.record(Delivery {
                        round: r,
                        from: wire.from,
                        src_id: wire.src,
                        to: wire.to,
                        msg: Arc::clone(&wire.msg),
                        dropped,
                    });
                }
            },
        );
        self.messages_sent += tallies.sent;
        self.messages_delivered += tallies.delivered;
        self.messages_dropped += tallies.dropped;

        // 4. Deliver to correct processes; record decisions. Each chunk
        //    owns a disjoint recipient range of the plane: it delivers
        //    the planned wires landing there, then drains its inboxes and
        //    runs `receive` — results merged and recorded in pid order.
        let ranges = exec::chunk_ranges(self.cfg.n, workers);
        {
            if self.recv_out.len() < ranges.len() {
                self.recv_out.resize_with(ranges.len(), Vec::new);
            }
            let mut procs: Vec<(Pid, &mut P)> =
                self.procs.iter_mut().map(|(&pid, p)| (pid, p)).collect();
            let views = self
                .deliveries
                .as_slots()
                .split_widths(ranges.iter().map(|rg| rg.len()));
            let counting = self.cfg.counting;
            let wires = &self.wires;
            let plan = &self.route_plan;
            let mut proc_slice = procs.as_mut_slice();
            let mut out_slice = self.recv_out.as_mut_slice();
            let mut tasks = Vec::with_capacity(ranges.len());
            for (range, mut view) in ranges.iter().cloned().zip(views) {
                let split = proc_slice
                    .iter()
                    .take_while(|(pid, _)| pid.index() < range.end)
                    .count();
                let (chunk, rest) = std::mem::take(&mut proc_slice).split_at_mut(split);
                proc_slice = rest;
                let (out, rest) = std::mem::take(&mut out_slice).split_at_mut(1);
                out_slice = rest;
                let out = &mut out[0];
                tasks.push(move || {
                    par::deliver_chunk(wires, plan, 0, range, &mut view);
                    par::receive_chunk(chunk, r, 0, counting, &mut view, out);
                });
            }
            self.exec.scatter(tasks);
        }
        let mut total_bits = 0u64;
        for out in self.recv_out.iter_mut().take(ranges.len()) {
            for (pid, decision, bits) in out.drain(..) {
                total_bits += bits;
                if self.amnesiac.contains(&pid) {
                    // An amnesiac rejoiner is faulty: it runs a correct
                    // automaton but its decisions don't count (and may
                    // contradict its own pre-crash decision).
                    continue;
                }
                if let Some(v) = decision {
                    match self.decisions.get(&pid) {
                        None => {
                            self.decisions.insert(pid, (v, r));
                        }
                        Some((prev, _)) => {
                            assert!(
                                *prev == v,
                                "decision of {pid} changed from {prev:?} to {v:?}"
                            );
                        }
                    }
                }
            }
        }

        self.per_round_sent.push(tallies.sent);

        // Sample protocol state after delivery: the bounded protocols
        // prove their O(1) steady-state memory through this counter.
        self.state_bits = total_bits;
        self.peak_state_bits = self.peak_state_bits.max(self.state_bits);

        // Journal this round's deliveries (and, at the snapshot cadence,
        // each process's post-receive state) and make them durable. One
        // entry per live process per round — `send` mutates state, so
        // recovery replay must re-run even empty-inbox rounds.
        if let Some(dur) = &mut self.durability {
            if dur.scratch.len() < self.cfg.n {
                dur.scratch.resize_with(self.cfg.n, Vec::new);
            }
            for buf in &mut dur.scratch {
                buf.clear();
            }
            for (wire, &ok) in self.wires.iter().zip(&self.route_plan) {
                if ok {
                    dur.scratch[wire.to.index()].push((wire.src, Arc::clone(&wire.msg)));
                }
            }
            let boundary = dur.snapshot_every > 0 && (r.index() + 1) % dur.snapshot_every == 0;
            for (&pid, journal) in dur.journals.iter_mut() {
                let Some(proc_) = self.procs.get(&pid) else {
                    continue; // crashed or turned: journal idles
                };
                let record = (dur.encode)(r, &dur.scratch[pid.index()]);
                journal.append(&record).expect("journal append failed");
                if boundary {
                    if let Some(bytes) = proc_.snapshot() {
                        journal
                            .append(&journal::encode_snapshot_entry(r.next(), &bytes))
                            .expect("journal append failed");
                    }
                }
                journal.sync().expect("journal sync failed");
            }
        }

        // 5. Tell the adversary what its processes received.
        let byz_inboxes: BTreeMap<Pid, Inbox<P::Msg>> = self
            .byz
            .iter()
            .map(|&pid| (pid, self.deliveries.take_inbox(pid, self.cfg.counting)))
            .collect();
        self.adversary.receive(r, &byz_inboxes);

        self.round = r.next();
    }

    /// Runs until every correct process has decided or `max_rounds` rounds
    /// have executed, then reports.
    pub fn run(&mut self, max_rounds: u64) -> RunReport<P::Value>
    where
        P: Send,
        P::Value: Send,
    {
        while self.round.index() < max_rounds && !self.all_decided() {
            self.step();
        }
        self.report()
    }

    /// Runs exactly `max_rounds` rounds (decided processes keep
    /// participating, as the paper's algorithms prescribe), then reports.
    pub fn run_exact(&mut self, max_rounds: u64) -> RunReport<P::Value>
    where
        P: Send,
        P::Value: Send,
    {
        while self.round.index() < max_rounds {
            self.step();
        }
        self.report()
    }

    /// The report for the execution so far.
    pub fn report(&self) -> RunReport<P::Value> {
        let outcome = Outcome {
            inputs: self.inputs.clone(),
            decisions: self.decisions.clone(),
            horizon: self.round,
        };
        let verdict = spec::check(&outcome);
        RunReport {
            all_decided_round: self
                .all_decided()
                .then(|| self.decisions.values().map(|&(_, r)| r).max())
                .flatten(),
            outcome,
            verdict,
            rounds: self.round.index(),
            messages_sent: self.messages_sent,
            messages_delivered: self.messages_delivered,
            messages_dropped: self.messages_dropped,
            state_bits: self.state_bits,
            peak_state_bits: self.peak_state_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::{ByzPower, Id};
    use homonym_core::{FnFactory, Recipients};

    /// A toy protocol: broadcast the input every round; decide on the
    /// smallest value heard from at least `quorum` distinct identifiers
    /// after round 0.
    #[derive(Clone, Debug)]
    struct Gossip {
        id: Id,
        input: u32,
        heard: BTreeMap<u32, BTreeSet<Id>>,
        quorum: usize,
        decision: Option<u32>,
    }

    impl Protocol for Gossip {
        type Msg = u32;
        type Value = u32;

        fn id(&self) -> Id {
            self.id
        }

        fn send(&mut self, _round: Round) -> Vec<(Recipients, u32)> {
            vec![(Recipients::All, self.input)]
        }

        fn receive(&mut self, _round: Round, inbox: &Inbox<u32>) {
            for (id, &msg, _count) in inbox.iter() {
                self.heard.entry(msg).or_default().insert(id);
            }
            if self.decision.is_none() {
                self.decision = self
                    .heard
                    .iter()
                    .find(|(_, ids)| ids.len() >= self.quorum)
                    .map(|(&v, _)| v);
            }
        }

        fn decision(&self) -> Option<u32> {
            self.decision
        }
    }

    fn gossip_factory(quorum: usize) -> impl ProtocolFactory<P = Gossip> {
        FnFactory::new(move |id, input| Gossip {
            id,
            input,
            heard: BTreeMap::new(),
            quorum,
            decision: None,
        })
    }

    fn cfg(n: usize, ell: usize, t: usize) -> SystemConfig {
        SystemConfig::builder(n, ell, t).build().unwrap()
    }

    #[test]
    fn decides_and_reports() {
        let factory = gossip_factory(3);
        let mut sim = Simulation::builder(cfg(3, 3, 0), IdAssignment::unique(3), vec![7, 7, 7])
            .build_with(&factory);
        let report = sim.run(5);
        assert!(report.verdict.all_hold());
        assert_eq!(report.all_decided_round, Some(Round::ZERO));
        // 3 processes broadcast to 2 peers each, for 1 round.
        assert_eq!(report.messages_sent, 6);
        assert_eq!(report.messages_delivered, 6);
    }

    #[test]
    fn innumerate_collapses_homonym_copies() {
        // Two homonyms (id 1) with the same input look like one sender to an
        // innumerate receiver: quorum 3 needs a third distinct identifier.
        let factory = gossip_factory(3);
        let assignment = IdAssignment::new(2, vec![Id::new(1), Id::new(1), Id::new(2)]).unwrap();
        let mut sim =
            Simulation::builder(cfg(3, 2, 0), assignment, vec![5, 5, 5]).build_with(&factory);
        let report = sim.run(4);
        // Only 2 distinct identifiers exist; quorum 3 unreachable.
        assert!(!report.verdict.termination.holds());
    }

    #[test]
    fn byzantine_inputs_are_excluded_from_validity() {
        let factory = gossip_factory(2);
        let mut sim = Simulation::builder(cfg(3, 3, 1), IdAssignment::unique(3), vec![7, 7, 9])
            .byzantine([Pid::new(2)], Silent)
            .build_with(&factory);
        let report = sim.run(5);
        // The Byzantine process's "input" 9 does not make validity vacuous.
        assert!(report.verdict.validity.holds());
        assert_eq!(report.outcome.inputs.len(), 2);
    }

    #[test]
    fn drops_lose_messages() {
        use crate::drops::ScriptedDrops;
        let factory = gossip_factory(3);
        let mut sim = Simulation::builder(cfg(3, 3, 0), IdAssignment::unique(3), vec![1, 1, 1])
            .drops(ScriptedDrops::new([
                (Round::ZERO, Pid::new(0), Pid::new(1)),
                (Round::ZERO, Pid::new(0), Pid::new(2)),
            ]))
            .build_with(&factory);
        let report = sim.run(3);
        assert_eq!(report.messages_dropped, 2);
        // Still decides in a later round once drops cease.
        assert!(report.verdict.all_hold());
        assert!(report.all_decided_round > Some(Round::ZERO));
    }

    #[test]
    fn restricted_clamps_byzantine_multisend() {
        use crate::adversary::{ByzTarget, Emission, Scripted};
        // The Byzantine process tries to send three copies to one recipient.
        let spam = Scripted::new((0..3).map(|_| {
            (
                Round::ZERO,
                Emission::new(Pid::new(2), ByzTarget::One(Pid::new(0)), 9u32),
            )
        }));
        let run = |byz_power| {
            let factory = gossip_factory(2);
            let mut config = cfg(3, 3, 1);
            config.byz_power = byz_power;
            config.counting = homonym_core::Counting::Numerate;
            let mut sim = Simulation::builder(config, IdAssignment::unique(3), vec![1, 1, 0])
                .byzantine([Pid::new(2)], spam.clone())
                .record_trace(true)
                .build_with(&factory);
            sim.run(1);
            sim.into_trace().unwrap().len()
        };
        // Unrestricted: 3 spam + 6 correct broadcasts land in the trace
        // (self-deliveries included: 2 correct senders × 3 targets).
        assert_eq!(run(ByzPower::Unrestricted), 9);
        // Restricted: the clamp keeps only the first spam copy.
        assert_eq!(run(ByzPower::Restricted), 7);
    }

    #[test]
    fn topology_restricts_channels() {
        // A line topology 0-1-2: process 0 and 2 cannot hear each other.
        let factory = gossip_factory(3);
        let topo =
            Topology::with_edges(3, [(Pid::new(0), Pid::new(1)), (Pid::new(1), Pid::new(2))]);
        let mut sim = Simulation::builder(cfg(3, 3, 0), IdAssignment::unique(3), vec![1, 2, 3])
            .topology(topo)
            .record_trace(true)
            .build_with(&factory);
        sim.run_exact(1);
        let trace = sim.trace().unwrap();
        assert!(trace
            .received_from_id(Pid::new(2), Id::new(1), Round::ZERO)
            .is_empty());
        assert!(!trace
            .received_from_id(Pid::new(1), Id::new(1), Round::ZERO)
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "byzantine processes exceed t")]
    fn too_many_byzantine_rejected() {
        let factory = gossip_factory(2);
        let _ = Simulation::builder(cfg(3, 3, 0), IdAssignment::unique(3), vec![1, 1, 1])
            .byzantine([Pid::new(0)], Silent)
            .build_with(&factory);
    }

    #[test]
    fn run_exact_continues_after_decision() {
        let factory = gossip_factory(3);
        let mut sim = Simulation::builder(cfg(3, 3, 0), IdAssignment::unique(3), vec![2, 2, 2])
            .build_with(&factory);
        let report = sim.run_exact(6);
        assert_eq!(report.rounds, 6);
        assert!(report.verdict.all_hold());
        // Messages kept flowing after the decision round.
        assert_eq!(report.messages_sent, 6 * 6);
    }

    /// A payload whose `Clone` impl counts invocations — the probe for the
    /// fabric's headline guarantee.
    mod clone_counting {
        use super::*;
        use std::sync::atomic::{AtomicU64, Ordering};

        static CLONES: AtomicU64 = AtomicU64::new(0);

        #[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
        struct Counted(u32);

        impl Clone for Counted {
            fn clone(&self) -> Self {
                CLONES.fetch_add(1, Ordering::Relaxed);
                Counted(self.0)
            }
        }

        /// Broadcasts a fresh payload every round; never reads its inbox,
        /// so every observed clone is the engine's.
        #[derive(Clone, Debug)]
        struct Broadcaster {
            id: Id,
        }

        impl Protocol for Broadcaster {
            type Msg = Counted;
            type Value = u32;

            fn id(&self) -> Id {
                self.id
            }

            fn send(&mut self, round: Round) -> Vec<(Recipients, Counted)> {
                vec![(Recipients::All, Counted(round.index() as u32))]
            }

            fn receive(&mut self, _round: Round, _inbox: &Inbox<Counted>) {}

            fn decision(&self) -> Option<u32> {
                None
            }
        }

        /// The fabric's acceptance criterion: payload clones per round are
        /// O(emissions), not O(n²) deliveries. With n = 32 broadcasters
        /// over 4 rounds the engine routes 32² × 4 = 4096 deliveries (and
        /// records them all in the trace) — yet the engine clones nothing:
        /// each emission is wrapped in an `Arc` once and every recipient,
        /// trace entry, and inbox shares the handle.
        #[test]
        fn step_clones_are_o_emissions_not_o_deliveries() {
            let n = 32;
            let rounds = 4u64;
            let factory = FnFactory::new(|id, _input: u32| Broadcaster { id });
            let mut sim = Simulation::builder(
                SystemConfig::builder(n, n, 0).build().unwrap(),
                IdAssignment::unique(n),
                vec![0u32; n],
            )
            .record_trace(true)
            .build_with(&factory);

            let before = CLONES.load(Ordering::Relaxed);
            sim.run_exact(rounds);
            let clones = CLONES.load(Ordering::Relaxed) - before;

            let emissions = n as u64 * rounds;
            let deliveries = (n * n) as u64 * rounds;
            assert_eq!(sim.trace().unwrap().len() as u64, deliveries);
            assert!(
                clones <= emissions,
                "engine cloned {clones} payloads for {emissions} emissions \
                 ({deliveries} deliveries)"
            );
            assert_eq!(clones, 0, "the fabric engine clones no payloads at all");
        }
    }

    #[test]
    fn deterministic_replay() {
        let run_once = || {
            let factory = gossip_factory(2);
            let mut sim =
                Simulation::builder(cfg(4, 4, 1), IdAssignment::unique(4), vec![3, 1, 2, 0])
                    .byzantine([Pid::new(3)], crate::adversary::ReplayFuzzer::new(11, 2))
                    .record_trace(true)
                    .build_with(&factory);
            sim.run_exact(5);
            let decisions: Vec<_> = sim.decisions().iter().map(|(&p, &d)| (p, d)).collect();
            let n = sim.trace().unwrap().len();
            (decisions, n)
        };
        assert_eq!(run_once(), run_once());
    }
}
