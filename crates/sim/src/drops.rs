//! Message-drop policies: the basic partially synchronous model.
//!
//! Dwork, Lynch and Stockmeyer's *basic* partially synchronous model (which
//! the paper adopts verbatim) is the synchronous round model where, in each
//! execution, a finite but unbounded number of messages may fail to be
//! delivered. Operationally every policy here has a *global stabilization
//! round* ([`DropPolicy::gst`]) at and after which it drops nothing, making
//! the total number of drops finite.
//!
//! Self-delivery is never subject to drops: the engine does not consult the
//! policy when a process sends to itself.

use std::collections::BTreeSet;

use homonym_core::{Pid, Round};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Decides which messages are lost.
///
/// Implementations must be deterministic given their construction
/// parameters (seeded randomness included) so executions are replayable.
pub trait DropPolicy {
    /// Whether the message sent in `round` from `from` to `to` is lost.
    ///
    /// Must return `false` for every round at or after [`gst`](Self::gst).
    fn drops(&mut self, round: Round, from: Pid, to: Pid) -> bool;

    /// The global stabilization round: no drops at or after it. Harnesses
    /// use this to size observation horizons.
    fn gst(&self) -> Round;
}

impl DropPolicy for Box<dyn DropPolicy> {
    fn drops(&mut self, round: Round, from: Pid, to: Pid) -> bool {
        (**self).drops(round, from, to)
    }

    fn gst(&self) -> Round {
        (**self).gst()
    }
}

impl DropPolicy for Box<dyn DropPolicy + Send> {
    fn drops(&mut self, round: Round, from: Pid, to: Pid) -> bool {
        (**self).drops(round, from, to)
    }

    fn gst(&self) -> Round {
        (**self).gst()
    }
}

/// The fully synchronous model: nothing is ever dropped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoDrops;

impl DropPolicy for NoDrops {
    fn drops(&mut self, _round: Round, _from: Pid, _to: Pid) -> bool {
        false
    }

    fn gst(&self) -> Round {
        Round::ZERO
    }
}

/// Drops each non-self message independently with probability `p` before
/// the stabilization round, nothing afterwards.
#[derive(Clone, Debug)]
pub struct RandomUntilGst {
    gst: Round,
    p: f64,
    rng: StdRng,
}

impl RandomUntilGst {
    /// Creates a policy dropping with probability `p` until `gst`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    pub fn new(gst: Round, p: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability must be in [0, 1]"
        );
        RandomUntilGst {
            gst,
            p,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl DropPolicy for RandomUntilGst {
    fn drops(&mut self, round: Round, _from: Pid, _to: Pid) -> bool {
        // Consume one random draw per queried message pre-GST so the
        // decision sequence does not depend on short-circuiting callers.
        if round < self.gst {
            self.rng.gen_bool(self.p)
        } else {
            false
        }
    }

    fn gst(&self) -> Round {
        self.gst
    }
}

/// Partitions the processes into sides and drops everything crossing
/// between different sides until the heal round (exclusive). Processes not
/// listed on any side communicate freely.
///
/// This is the drop schedule of the Figure 4 lower-bound construction: the
/// input-0 half and the input-1 half cannot hear each other until both have
/// decided.
#[derive(Clone, Debug)]
pub struct PartitionUntil {
    sides: Vec<BTreeSet<Pid>>,
    heal: Round,
}

impl PartitionUntil {
    /// Creates a partition of the given sides, healing at `heal`.
    pub fn new(sides: Vec<BTreeSet<Pid>>, heal: Round) -> Self {
        PartitionUntil { sides, heal }
    }

    fn side_of(&self, p: Pid) -> Option<usize> {
        self.sides.iter().position(|s| s.contains(&p))
    }
}

impl DropPolicy for PartitionUntil {
    fn drops(&mut self, round: Round, from: Pid, to: Pid) -> bool {
        if round >= self.heal {
            return false;
        }
        match (self.side_of(from), self.side_of(to)) {
            (Some(a), Some(b)) => a != b,
            _ => false,
        }
    }

    fn gst(&self) -> Round {
        self.heal
    }
}

/// Isolates a set of processes — everything to or from them is dropped —
/// until the heal round (exclusive). Used to pad lower-bound constructions
/// with processes that must stay invisible while the contradiction forms.
#[derive(Clone, Debug)]
pub struct IsolateUntil {
    isolated: BTreeSet<Pid>,
    heal: Round,
}

impl IsolateUntil {
    /// Creates the policy isolating `isolated` until `heal`.
    pub fn new(isolated: BTreeSet<Pid>, heal: Round) -> Self {
        IsolateUntil { isolated, heal }
    }
}

impl DropPolicy for IsolateUntil {
    fn drops(&mut self, round: Round, from: Pid, to: Pid) -> bool {
        round < self.heal && (self.isolated.contains(&from) || self.isolated.contains(&to))
    }

    fn gst(&self) -> Round {
        self.heal
    }
}

/// Drops an explicit list of `(round, from, to)` triples; everything else
/// is delivered. The stabilization round is one past the last scripted
/// drop.
#[derive(Clone, Debug, Default)]
pub struct ScriptedDrops {
    drops: BTreeSet<(Round, Pid, Pid)>,
}

impl ScriptedDrops {
    /// Creates the policy from explicit drop triples.
    pub fn new(drops: impl IntoIterator<Item = (Round, Pid, Pid)>) -> Self {
        ScriptedDrops {
            drops: drops.into_iter().collect(),
        }
    }
}

impl DropPolicy for ScriptedDrops {
    fn drops(&mut self, round: Round, from: Pid, to: Pid) -> bool {
        self.drops.contains(&(round, from, to))
    }

    fn gst(&self) -> Round {
        self.drops
            .iter()
            .next_back()
            .map(|&(r, _, _)| r.next())
            .unwrap_or(Round::ZERO)
    }
}

/// Combines two policies: a message is dropped if either policy drops it.
/// The stabilization round is the later of the two.
#[derive(Clone, Debug)]
pub struct Both<A, B>(pub A, pub B);

impl<A: DropPolicy, B: DropPolicy> DropPolicy for Both<A, B> {
    fn drops(&mut self, round: Round, from: Pid, to: Pid) -> bool {
        // Evaluate both so stateful policies consume their randomness
        // deterministically.
        let a = self.0.drops(round, from, to);
        let b = self.1.drops(round, from, to);
        a || b
    }

    fn gst(&self) -> Round {
        self.0.gst().max(self.1.gst())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> Pid {
        Pid::new(i)
    }

    #[test]
    fn no_drops_never_drops() {
        let mut d = NoDrops;
        assert!(!d.drops(Round::new(0), p(0), p(1)));
        assert_eq!(d.gst(), Round::ZERO);
    }

    #[test]
    fn random_stops_at_gst() {
        let mut d = RandomUntilGst::new(Round::new(10), 1.0, 42);
        assert!(d.drops(Round::new(9), p(0), p(1)));
        assert!(!d.drops(Round::new(10), p(0), p(1)));
        assert!(!d.drops(Round::new(11), p(0), p(1)));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let collect = |seed| {
            let mut d = RandomUntilGst::new(Round::new(50), 0.5, seed);
            (0..50)
                .map(|r| d.drops(Round::new(r), p(0), p(1)))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8), "different seeds should differ");
    }

    #[test]
    fn partition_blocks_cross_side_only() {
        let mut d = PartitionUntil::new(vec![[p(0), p(1)].into(), [p(2)].into()], Round::new(5));
        assert!(d.drops(Round::new(0), p(0), p(2)));
        assert!(d.drops(Round::new(4), p(2), p(1)));
        assert!(!d.drops(Round::new(0), p(0), p(1)));
        // Unlisted processes communicate freely.
        assert!(!d.drops(Round::new(0), p(3), p(2)));
        // Healed.
        assert!(!d.drops(Round::new(5), p(0), p(2)));
        assert_eq!(d.gst(), Round::new(5));
    }

    #[test]
    fn isolate_blocks_both_directions() {
        let mut d = IsolateUntil::new([p(3)].into(), Round::new(2));
        assert!(d.drops(Round::new(1), p(3), p(0)));
        assert!(d.drops(Round::new(1), p(0), p(3)));
        assert!(!d.drops(Round::new(1), p(0), p(1)));
        assert!(!d.drops(Round::new(2), p(3), p(0)));
    }

    #[test]
    fn scripted_drops_exactly_the_listed_triples() {
        let mut d = ScriptedDrops::new([(Round::new(1), p(0), p(1)), (Round::new(3), p(2), p(0))]);
        assert!(d.drops(Round::new(1), p(0), p(1)));
        assert!(!d.drops(Round::new(1), p(1), p(0)));
        assert!(!d.drops(Round::new(2), p(0), p(1)));
        assert_eq!(d.gst(), Round::new(4));
    }

    /// Exhaustively queries every (round, from, to) at and after the
    /// policy's claimed `gst()`, asserting the contract: nothing drops
    /// from the stabilization round on.
    fn assert_gst_contract(name: &str, mut policy: impl DropPolicy, n: usize, probe_rounds: u64) {
        let gst = policy.gst();
        for dr in 0..probe_rounds {
            let round = Round::new(gst.index() + dr);
            for from in 0..n {
                for to in 0..n {
                    if from == to {
                        continue;
                    }
                    assert!(
                        !policy.drops(round, p(from), p(to)),
                        "{name}: dropped {from}->{to} at {:?} >= gst {:?}",
                        round,
                        gst
                    );
                }
            }
        }
    }

    #[test]
    fn every_policy_honors_the_gst_contract() {
        assert_gst_contract("no_drops", NoDrops, 4, 3);
        assert_gst_contract("random", RandomUntilGst::new(Round::new(6), 1.0, 9), 4, 3);
        assert_gst_contract(
            "partition",
            PartitionUntil::new(vec![[p(0)].into(), [p(1), p(2)].into()], Round::new(4)),
            4,
            3,
        );
        assert_gst_contract(
            "isolate",
            IsolateUntil::new([p(2)].into(), Round::new(5)),
            4,
            3,
        );
        assert_gst_contract(
            "scripted",
            ScriptedDrops::new([(Round::new(2), p(0), p(1))]),
            4,
            3,
        );
        assert_gst_contract(
            "both",
            Both(
                RandomUntilGst::new(Round::new(3), 1.0, 1),
                IsolateUntil::new([p(1)].into(), Round::new(7)),
            ),
            4,
            3,
        );
    }

    #[test]
    fn empty_script_stabilizes_immediately() {
        let d = ScriptedDrops::new([]);
        assert_eq!(d.gst(), Round::ZERO);
        let d = ScriptedDrops::default();
        assert_eq!(d.gst(), Round::ZERO);
    }

    #[test]
    fn both_gst_is_the_max_in_either_order() {
        let early = || ScriptedDrops::new([(Round::new(1), p(0), p(1))]);
        let late = || IsolateUntil::new([p(0)].into(), Round::new(9));
        assert_eq!(Both(early(), late()).gst(), Round::new(9));
        assert_eq!(Both(late(), early()).gst(), Round::new(9));
        // Degenerate: both sides empty → Round::ZERO, not a panic.
        assert_eq!(Both(NoDrops, ScriptedDrops::default()).gst(), Round::ZERO);
    }

    #[test]
    fn random_consumes_one_draw_per_query_under_short_circuiting() {
        // A short-circuiting caller (e.g. `Both` with a trigger-happy
        // first policy, or an engine that skips already-dropped wires)
        // must not perturb the decision stream: the k-th pre-GST query
        // answers the same regardless of interleaved post-GST queries.
        let gst = Round::new(40);
        let baseline: Vec<bool> = {
            let mut d = RandomUntilGst::new(gst, 0.5, 1234);
            (0..40)
                .map(|r| d.drops(Round::new(r), p(0), p(1)))
                .collect()
        };
        let interleaved: Vec<bool> = {
            let mut d = RandomUntilGst::new(gst, 0.5, 1234);
            (0..40)
                .map(|r| {
                    // Post-GST queries in between must consume nothing.
                    assert!(!d.drops(Round::new(41), p(0), p(1)));
                    assert!(!d.drops(Round::new(99), p(1), p(0)));
                    d.drops(Round::new(r), p(0), p(1))
                })
                .collect()
        };
        assert_eq!(baseline, interleaved);
        // And within `Both`, the random stream advances one draw per
        // query even when the partner policy already decided to drop:
        // after 40 queries through `Both`, the inner policy sits at
        // exactly draw 40 of its stream.
        let mut both = Both(
            IsolateUntil::new([p(0)].into(), Round::new(40)),
            RandomUntilGst::new(gst, 0.5, 1234),
        );
        for r in 0..40 {
            // Isolated pre-GST, so the union always drops …
            assert!(both.drops(Round::new(r), p(1), p(0)));
        }
        // … but the inner stream still consumed one draw per query.
        let mut fresh = RandomUntilGst::new(gst, 0.5, 1234);
        for r in 0..40 {
            fresh.drops(Round::new(r), p(0), p(1));
        }
        let continue_both: Vec<bool> = (0..10)
            .map(|_| both.1.drops(Round::new(39), p(0), p(1)))
            .collect();
        let continue_fresh: Vec<bool> = (0..10)
            .map(|_| fresh.drops(Round::new(39), p(0), p(1)))
            .collect();
        assert_eq!(continue_both, continue_fresh);
    }

    #[test]
    fn both_is_a_union() {
        let mut d = Both(
            ScriptedDrops::new([(Round::new(0), p(0), p(1))]),
            ScriptedDrops::new([(Round::new(1), p(1), p(0))]),
        );
        assert!(d.drops(Round::new(0), p(0), p(1)));
        assert!(d.drops(Round::new(1), p(1), p(0)));
        assert!(!d.drops(Round::new(2), p(0), p(1)));
        assert_eq!(d.gst(), Round::new(2));
    }
}
