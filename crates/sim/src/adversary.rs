//! Byzantine adversary interface and strategy library.
//!
//! A Byzantine process "may choose to send arbitrary messages (or no
//! message) to each other process" — in particular it may target individual
//! processes (unlike correct processes, which can only address identifier
//! groups), and in the unrestricted model it may send many messages to the
//! same recipient in one round. The [`Adversary`] trait exposes exactly
//! that power; the engine clamps emissions to one per recipient when the
//! system is configured with restricted Byzantine processes, so the *model*
//! enforces the restriction rather than trusting strategy code.
//!
//! Strategies included:
//!
//! * [`Silent`] — sends nothing (the adversary of the paper's α and β
//!   executions);
//! * [`Mimic`] — runs the real protocol with chosen inputs (tests that
//!   merely-wrong inputs cannot break anything);
//! * [`CrashAt`] — behaves like an inner strategy, then goes silent;
//! * [`Equivocator`] — runs two protocol instances with different inputs
//!   and shows each half of the system a different persona;
//! * [`CloneSpammer`] — runs several instances and sends *all* their
//!   messages to everyone, impersonating a whole stack of homonyms
//!   (the multi-send power behind the Figure 1 and Figure 4 bounds);
//! * [`ReplayFuzzer`] — replays mutilated copies of previously received
//!   messages at random targets (seeded);
//! * [`Scripted`] — an explicit per-round emission list;
//! * [`TraceReplayer`] — replays a recorded execution's per-identifier
//!   deliveries (the Figure 4 construction).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use homonym_core::{
    Id, IdAssignment, Inbox, Message, Pid, Protocol, ProtocolFactory, Recipients, Round,
    SystemConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::trace::Trace;

/// Whom a Byzantine emission is addressed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ByzTarget {
    /// A single process — Byzantine senders are not bound by
    /// identifier-only addressing.
    One(Pid),
    /// Every process.
    All,
    /// Every holder of an identifier.
    Group(Id),
}

impl ByzTarget {
    /// The processes addressed under `assignment`, in ascending process
    /// order, without allocating.
    pub fn expand(self, assignment: &IdAssignment) -> impl Iterator<Item = Pid> + '_ {
        let (one, all, group) = match self {
            ByzTarget::One(p) => (Some(p), None, None),
            ByzTarget::All => (None, Some(Pid::all(assignment.n())), None),
            ByzTarget::Group(id) => (None, None, Some(assignment.group_iter(id))),
        };
        one.into_iter()
            .chain(all.into_iter().flatten())
            .chain(group.into_iter().flatten())
    }
}

/// One Byzantine message: sent by `from` (authenticated with `from`'s
/// identifier — forging is impossible in the model) to `to`.
///
/// The payload rides the delivery fabric: it is wrapped in an [`Arc`]
/// exactly once (at construction) and shared from there — by every
/// recipient the target expands to, by the trace, and by whichever replay
/// pool the strategy drew it from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Emission<M> {
    /// The Byzantine process sending.
    pub from: Pid,
    /// The target.
    pub to: ByzTarget,
    /// The shared payload.
    pub msg: Arc<M>,
}

impl<M> Emission<M> {
    /// An emission carrying an owned payload (wrapped once, never cloned).
    pub fn new(from: Pid, to: ByzTarget, msg: M) -> Self {
        Emission {
            from,
            to,
            msg: Arc::new(msg),
        }
    }

    /// An emission sharing an already-wrapped payload.
    pub fn shared(from: Pid, to: ByzTarget, msg: Arc<M>) -> Self {
        Emission { from, to, msg }
    }
}

/// Static per-round context handed to adversaries.
#[derive(Clone, Copy, Debug)]
pub struct AdvCtx<'a> {
    /// The round about to execute.
    pub round: Round,
    /// System parameters.
    pub cfg: &'a SystemConfig,
    /// The identifier assignment (the adversary knows everything).
    pub assignment: &'a IdAssignment,
    /// The Byzantine processes this adversary controls.
    pub byz: &'a BTreeSet<Pid>,
}

/// A Byzantine strategy controlling all faulty processes of a run.
///
/// Per round the engine first calls [`send`](Adversary::send) (while
/// collecting correct processes' messages), then — after delivery — calls
/// [`receive`](Adversary::receive) with what each Byzantine process
/// received, enabling adaptive strategies. Strategies must be deterministic
/// given their construction parameters (seed included).
pub trait Adversary<M: Message> {
    /// The messages the Byzantine processes send this round.
    fn send(&mut self, ctx: &AdvCtx<'_>) -> Vec<Emission<M>>;

    /// What each Byzantine process received this round.
    fn receive(&mut self, round: Round, inboxes: &BTreeMap<Pid, Inbox<M>>) {
        let _ = (round, inboxes);
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &str {
        "adversary"
    }
}

impl<M: Message> Adversary<M> for Box<dyn Adversary<M>> {
    fn send(&mut self, ctx: &AdvCtx<'_>) -> Vec<Emission<M>> {
        (**self).send(ctx)
    }

    fn receive(&mut self, round: Round, inboxes: &BTreeMap<Pid, Inbox<M>>) {
        (**self).receive(round, inboxes);
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<M: Message> Adversary<M> for Box<dyn Adversary<M> + Send> {
    fn send(&mut self, ctx: &AdvCtx<'_>) -> Vec<Emission<M>> {
        (**self).send(ctx)
    }

    fn receive(&mut self, round: Round, inboxes: &BTreeMap<Pid, Inbox<M>>) {
        (**self).receive(round, inboxes);
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Sends nothing, ever.
#[derive(Clone, Copy, Debug, Default)]
pub struct Silent;

impl<M: Message> Adversary<M> for Silent {
    fn send(&mut self, _ctx: &AdvCtx<'_>) -> Vec<Emission<M>> {
        Vec::new()
    }

    fn name(&self) -> &str {
        "silent"
    }
}

fn protocol_emissions<M: Message>(from: Pid, out: Vec<(Recipients, M)>) -> Vec<Emission<M>> {
    out.into_iter()
        .map(|(r, msg)| {
            Emission::new(
                from,
                match r {
                    Recipients::All => ByzTarget::All,
                    Recipients::Group(i) => ByzTarget::Group(i),
                },
                msg,
            )
        })
        .collect()
}

/// Runs the real protocol with chosen inputs on each Byzantine process.
///
/// A `Mimic` adversary is indistinguishable from extra correct processes
/// with adversarial *inputs* — the weakest Byzantine behaviour, and a
/// useful sanity floor for the harness.
#[derive(Debug)]
pub struct Mimic<P: Protocol> {
    instances: BTreeMap<Pid, P>,
}

impl<P: Protocol> Mimic<P> {
    /// Creates instances for each Byzantine process with the given inputs.
    pub fn new<F>(factory: &F, assignment: &IdAssignment, inputs: &[(Pid, P::Value)]) -> Self
    where
        F: ProtocolFactory<P = P>,
    {
        Mimic {
            instances: inputs
                .iter()
                .map(|(pid, v)| (*pid, factory.spawn(assignment.id_of(*pid), v.clone())))
                .collect(),
        }
    }
}

impl<P: Protocol> Adversary<P::Msg> for Mimic<P> {
    fn send(&mut self, ctx: &AdvCtx<'_>) -> Vec<Emission<P::Msg>> {
        self.instances
            .iter_mut()
            .flat_map(|(&pid, p)| protocol_emissions(pid, p.send(ctx.round)))
            .collect()
    }

    fn receive(&mut self, round: Round, inboxes: &BTreeMap<Pid, Inbox<P::Msg>>) {
        for (pid, p) in &mut self.instances {
            if let Some(inbox) = inboxes.get(pid) {
                p.receive(round, inbox);
            }
        }
    }

    fn name(&self) -> &str {
        "mimic"
    }
}

/// Behaves like `inner` until the crash round, then goes silent forever.
#[derive(Debug)]
pub struct CrashAt<A> {
    at: Round,
    inner: A,
}

impl<A> CrashAt<A> {
    /// Crashes (silences) the inner strategy from round `at` onward.
    pub fn new(at: Round, inner: A) -> Self {
        CrashAt { at, inner }
    }
}

impl<M: Message, A: Adversary<M>> Adversary<M> for CrashAt<A> {
    fn send(&mut self, ctx: &AdvCtx<'_>) -> Vec<Emission<M>> {
        if ctx.round >= self.at {
            Vec::new()
        } else {
            self.inner.send(ctx)
        }
    }

    fn receive(&mut self, round: Round, inboxes: &BTreeMap<Pid, Inbox<M>>) {
        if round < self.at {
            self.inner.receive(round, inboxes);
        }
    }

    fn name(&self) -> &str {
        "crash"
    }
}

/// Runs two protocol personas per Byzantine process — with inputs `a` and
/// `b` — and shows persona `a` to the processes in `split` and persona `b`
/// to everyone else.
///
/// Against homonym protocols this simulates the confusing situation the
/// paper highlights: two *correct-looking* behaviours behind one
/// identifier.
#[derive(Debug)]
pub struct Equivocator<P: Protocol> {
    personas: BTreeMap<Pid, (P, P)>,
    split: BTreeSet<Pid>,
    n: usize,
}

impl<P: Protocol> Equivocator<P> {
    /// Creates two personas per Byzantine process with inputs `input_a` and
    /// `input_b`; processes in `split` see persona A.
    pub fn new<F>(
        factory: &F,
        assignment: &IdAssignment,
        byz: &BTreeSet<Pid>,
        input_a: P::Value,
        input_b: P::Value,
        split: BTreeSet<Pid>,
    ) -> Self
    where
        F: ProtocolFactory<P = P>,
    {
        Equivocator {
            personas: byz
                .iter()
                .map(|&pid| {
                    let id = assignment.id_of(pid);
                    (
                        pid,
                        (
                            factory.spawn(id, input_a.clone()),
                            factory.spawn(id, input_b.clone()),
                        ),
                    )
                })
                .collect(),
            split,
            n: assignment.n(),
        }
    }

    fn expand(
        &self,
        assignment: &IdAssignment,
        from: Pid,
        out: Vec<(Recipients, P::Msg)>,
        to_split: bool,
    ) -> Vec<Emission<P::Msg>> {
        let mut emissions = Vec::new();
        for (recipients, msg) in out {
            let msg = Arc::new(msg);
            for to in Pid::all(self.n) {
                let addressed = match recipients {
                    Recipients::All => true,
                    Recipients::Group(i) => assignment.id_of(to) == i,
                };
                if addressed && self.split.contains(&to) == to_split {
                    emissions.push(Emission::shared(from, ByzTarget::One(to), Arc::clone(&msg)));
                }
            }
        }
        emissions
    }
}

impl<P: Protocol> Adversary<P::Msg> for Equivocator<P> {
    fn send(&mut self, ctx: &AdvCtx<'_>) -> Vec<Emission<P::Msg>> {
        let mut emissions = Vec::new();
        let pids: Vec<Pid> = self.personas.keys().copied().collect();
        for pid in pids {
            let (a, b) = self.personas.get_mut(&pid).expect("persona exists");
            let out_a = a.send(ctx.round);
            let out_b = b.send(ctx.round);
            emissions.extend(self.expand(ctx.assignment, pid, out_a, true));
            emissions.extend(self.expand(ctx.assignment, pid, out_b, false));
        }
        emissions
    }

    fn receive(&mut self, round: Round, inboxes: &BTreeMap<Pid, Inbox<P::Msg>>) {
        for (pid, (a, b)) in &mut self.personas {
            if let Some(inbox) = inboxes.get(pid) {
                a.receive(round, inbox);
                b.receive(round, inbox);
            }
        }
    }

    fn name(&self) -> &str {
        "equivocator"
    }
}

/// Runs several protocol personas per Byzantine process and sends **all**
/// their messages to **everyone** — one faulty process impersonating an
/// entire stack of homonyms.
///
/// This is exactly the multi-send power the paper's lower bounds exploit
/// ("a Byzantine process can send multiple messages to the same recipient
/// in a round"); under `ByzPower::Restricted` the engine clamps it back to
/// one message per recipient, which is what makes the `ℓ > t` algorithms
/// possible.
#[derive(Debug)]
pub struct CloneSpammer<P: Protocol> {
    clones: BTreeMap<Pid, Vec<P>>,
}

impl<P: Protocol> CloneSpammer<P> {
    /// Creates one persona per input in `inputs` for each Byzantine
    /// process.
    pub fn new<F>(
        factory: &F,
        assignment: &IdAssignment,
        byz: &BTreeSet<Pid>,
        inputs: &[P::Value],
    ) -> Self
    where
        F: ProtocolFactory<P = P>,
    {
        CloneSpammer {
            clones: byz
                .iter()
                .map(|&pid| {
                    let id = assignment.id_of(pid);
                    (
                        pid,
                        inputs
                            .iter()
                            .map(|v| factory.spawn(id, v.clone()))
                            .collect(),
                    )
                })
                .collect(),
        }
    }
}

impl<P: Protocol> Adversary<P::Msg> for CloneSpammer<P> {
    fn send(&mut self, ctx: &AdvCtx<'_>) -> Vec<Emission<P::Msg>> {
        let mut emissions = Vec::new();
        for (&pid, clones) in &mut self.clones {
            for clone in clones {
                emissions.extend(protocol_emissions(pid, clone.send(ctx.round)));
            }
        }
        emissions
    }

    fn receive(&mut self, round: Round, inboxes: &BTreeMap<Pid, Inbox<P::Msg>>) {
        for (pid, clones) in &mut self.clones {
            if let Some(inbox) = inboxes.get(pid) {
                for clone in clones {
                    clone.receive(round, inbox);
                }
            }
        }
    }

    fn name(&self) -> &str {
        "clone-spammer"
    }
}

/// Replays previously received messages at random targets — a generic,
/// protocol-agnostic fuzzer. Messages land with stale rounds and wrong
/// contexts, probing every handler's tolerance for out-of-protocol traffic.
#[derive(Debug)]
pub struct ReplayFuzzer<M> {
    pool: Vec<Arc<M>>,
    rng: StdRng,
    burst: usize,
    pool_cap: usize,
}

impl<M: Message> ReplayFuzzer<M> {
    /// Creates a fuzzer sending up to `burst` replayed messages per
    /// Byzantine process per round, with the given seed.
    pub fn new(seed: u64, burst: usize) -> Self {
        ReplayFuzzer {
            pool: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            burst,
            pool_cap: 4096,
        }
    }
}

impl<M: Message> Adversary<M> for ReplayFuzzer<M> {
    fn send(&mut self, ctx: &AdvCtx<'_>) -> Vec<Emission<M>> {
        if self.pool.is_empty() {
            return Vec::new();
        }
        let mut emissions = Vec::new();
        for &from in ctx.byz {
            for _ in 0..self.burst {
                let msg = Arc::clone(&self.pool[self.rng.gen_range(0..self.pool.len())]);
                let to = Pid::new(self.rng.gen_range(0..ctx.assignment.n()));
                emissions.push(Emission::shared(from, ByzTarget::One(to), msg));
            }
        }
        emissions
    }

    fn receive(&mut self, _round: Round, inboxes: &BTreeMap<Pid, Inbox<M>>) {
        for inbox in inboxes.values() {
            for (_, msg, _) in inbox.iter_shared() {
                if self.pool.len() < self.pool_cap {
                    self.pool.push(Arc::clone(msg));
                }
            }
        }
    }

    fn name(&self) -> &str {
        "replay-fuzzer"
    }
}

/// Emits an explicit per-round script. Rounds without entries are silent.
#[derive(Clone, Debug, Default)]
pub struct Scripted<M> {
    by_round: BTreeMap<Round, Vec<Emission<M>>>,
}

impl<M: Message> Scripted<M> {
    /// Creates a scripted adversary from `(round, emission)` pairs.
    pub fn new(entries: impl IntoIterator<Item = (Round, Emission<M>)>) -> Self {
        let mut by_round: BTreeMap<Round, Vec<Emission<M>>> = BTreeMap::new();
        for (r, e) in entries {
            by_round.entry(r).or_default().push(e);
        }
        Scripted { by_round }
    }
}

impl<M: Message> Adversary<M> for Scripted<M> {
    fn send(&mut self, ctx: &AdvCtx<'_>) -> Vec<Emission<M>> {
        self.by_round.get(&ctx.round).cloned().unwrap_or_default()
    }

    fn name(&self) -> &str {
        "scripted"
    }
}

/// Replays a recorded execution: each Byzantine process `b` sends to each
/// mapped target `to` exactly the messages that `map[to]` received from
/// `b`'s identifier in the reference trace, round for round.
///
/// This is the engine of the Figure 4 partition construction: `Bᵢ` sends
/// "to each correct process with input 0 the same messages as that process
/// receives in α". Replaying a whole homonym *stack* through one process
/// requires multi-send — under `ByzPower::Restricted` the engine clamp
/// will truncate it, which is precisely why the bound changes there.
#[derive(Clone, Debug)]
pub struct TraceReplayer<M> {
    trace: Trace<M>,
    /// Target process in this run → process whose reception is replayed
    /// from the reference trace.
    map: BTreeMap<Pid, Pid>,
}

impl<M: Message> TraceReplayer<M> {
    /// Creates a replayer over `trace` with the given target mapping.
    pub fn new(trace: Trace<M>, map: BTreeMap<Pid, Pid>) -> Self {
        TraceReplayer { trace, map }
    }
}

impl<M: Message> Adversary<M> for TraceReplayer<M> {
    fn send(&mut self, ctx: &AdvCtx<'_>) -> Vec<Emission<M>> {
        let mut emissions = Vec::new();
        for &from in ctx.byz {
            let id = ctx.assignment.id_of(from);
            for (&to, &ref_pid) in &self.map {
                for msg in self.trace.received_arcs_from_id(ref_pid, id, ctx.round) {
                    emissions.push(Emission::shared(from, ByzTarget::One(to), msg));
                }
            }
        }
        emissions
    }

    fn name(&self) -> &str {
        "trace-replayer"
    }
}

/// Replays every message its Byzantine processes receive, `delay` rounds
/// later, back at every process. Stale round-tagged messages probe each
/// handler's freshness checks (the Figure 6 validity filter, the phase
/// tags of Figures 5/7, the level structure of EIG).
#[derive(Clone, Debug)]
pub struct StaleReplayer<M> {
    delay: u64,
    heard: BTreeMap<Round, Vec<Arc<M>>>,
    cap_per_round: usize,
}

impl<M: Message> StaleReplayer<M> {
    /// Creates a replayer echoing received messages `delay ≥ 1` rounds
    /// late, at most `cap_per_round` per Byzantine process per round.
    ///
    /// # Panics
    ///
    /// Panics if `delay == 0` (same-round replay would be rushing).
    pub fn new(delay: u64, cap_per_round: usize) -> Self {
        assert!(delay >= 1, "same-round replay would require rushing");
        StaleReplayer {
            delay,
            heard: BTreeMap::new(),
            cap_per_round,
        }
    }
}

impl<M: Message> Adversary<M> for StaleReplayer<M> {
    fn send(&mut self, ctx: &AdvCtx<'_>) -> Vec<Emission<M>> {
        let Some(source_round) = ctx.round.index().checked_sub(self.delay) else {
            return Vec::new();
        };
        let msgs = self
            .heard
            .remove(&Round::new(source_round))
            .unwrap_or_default();
        let mut emissions = Vec::new();
        for &from in ctx.byz {
            for msg in msgs.iter().take(self.cap_per_round) {
                // Target only non-Byzantine processes so the replayer does
                // not feed on its own echoes.
                for to in Pid::all(ctx.assignment.n()).filter(|p| !ctx.byz.contains(p)) {
                    emissions.push(Emission::shared(from, ByzTarget::One(to), Arc::clone(msg)));
                }
            }
        }
        emissions
    }

    fn receive(&mut self, round: Round, inboxes: &BTreeMap<Pid, Inbox<M>>) {
        let bucket = self.heard.entry(round).or_default();
        for inbox in inboxes.values() {
            for (_, msg, _) in inbox.iter_shared() {
                bucket.push(Arc::clone(msg));
            }
        }
    }

    fn name(&self) -> &str {
        "stale-replayer"
    }
}

/// Floods each recipient with `copies` duplicates of the last message the
/// Byzantine process received — a pure multiplicity attack. Against
/// innumerate processes the copies collapse; against numerate ones the
/// unforgeability margins (`α ≤ correct + fᵢ`) must absorb them; under
/// `ByzPower::Restricted` the engine clamps all but one.
#[derive(Clone, Debug)]
pub struct Flooder<M> {
    copies: usize,
    last: Option<Arc<M>>,
}

impl<M: Message> Flooder<M> {
    /// Creates a flooder sending `copies` duplicates per recipient per
    /// round.
    pub fn new(copies: usize) -> Self {
        Flooder { copies, last: None }
    }
}

impl<M: Message> Adversary<M> for Flooder<M> {
    fn send(&mut self, ctx: &AdvCtx<'_>) -> Vec<Emission<M>> {
        let Some(msg) = &self.last else {
            return Vec::new();
        };
        let mut emissions = Vec::new();
        for &from in ctx.byz {
            for _ in 0..self.copies {
                emissions.push(Emission::shared(from, ByzTarget::All, Arc::clone(msg)));
            }
        }
        emissions
    }

    fn receive(&mut self, _round: Round, inboxes: &BTreeMap<Pid, Inbox<M>>) {
        for inbox in inboxes.values() {
            if let Some((_, msg, _)) = inbox.iter_shared().last() {
                self.last = Some(Arc::clone(msg));
            }
        }
    }

    fn name(&self) -> &str {
        "flooder"
    }
}

/// Runs several strategies at once, concatenating their emissions.
#[derive(Default)]
pub struct Compose<M> {
    parts: Vec<Box<dyn Adversary<M>>>,
}

impl<M: Message> Compose<M> {
    /// Creates a composite of the given strategies.
    pub fn new(parts: Vec<Box<dyn Adversary<M>>>) -> Self {
        Compose { parts }
    }
}

impl<M: Message> Adversary<M> for Compose<M> {
    fn send(&mut self, ctx: &AdvCtx<'_>) -> Vec<Emission<M>> {
        self.parts.iter_mut().flat_map(|p| p.send(ctx)).collect()
    }

    fn receive(&mut self, round: Round, inboxes: &BTreeMap<Pid, Inbox<M>>) {
        for p in &mut self.parts {
            p.receive(round, inboxes);
        }
    }

    fn name(&self) -> &str {
        "composite"
    }
}

impl<M> std::fmt::Debug for Compose<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Compose({} parts)", self.parts.len())
    }
}
