//! Communication topologies.
//!
//! The paper's model is a complete network — every process can send to every
//! process. The Figure 1 lower-bound construction, however, wires up a
//! larger "Frankenstein" system in which only some pairs communicate (each
//! pair that co-appears in one of the projected views). [`Topology`] lets
//! the engine express both.

use std::collections::BTreeSet;

use homonym_core::Pid;

/// Which ordered pairs of processes have a channel.
///
/// Self-channels always exist. The default, [`Topology::complete`], is the
/// paper's model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    n: usize,
    /// `None` means complete; otherwise `adj[from]` is the set of receivers.
    adj: Option<Vec<BTreeSet<usize>>>,
}

impl Topology {
    /// The complete network on `n` processes (the paper's model).
    pub fn complete(n: usize) -> Self {
        Topology { n, adj: None }
    }

    /// A network with exactly the given undirected edges (plus all
    /// self-channels).
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range.
    pub fn with_edges(n: usize, edges: impl IntoIterator<Item = (Pid, Pid)>) -> Self {
        let mut adj = vec![BTreeSet::new(); n];
        for (a, b) in edges {
            assert!(a.index() < n && b.index() < n, "edge endpoint out of range");
            adj[a.index()].insert(b.index());
            adj[b.index()].insert(a.index());
        }
        Topology { n, adj: Some(adj) }
    }

    /// The number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether `from` can deliver to `to`.
    pub fn connected(&self, from: Pid, to: Pid) -> bool {
        if from == to {
            return true;
        }
        match &self.adj {
            None => from.index() < self.n && to.index() < self.n,
            Some(adj) => adj
                .get(from.index())
                .is_some_and(|s| s.contains(&to.index())),
        }
    }

    /// The receivers reachable from `from`, in ascending order (including
    /// `from` itself).
    pub fn receivers(&self, from: Pid) -> Vec<Pid> {
        match &self.adj {
            None => Pid::all(self.n).collect(),
            Some(adj) => {
                let mut out: Vec<Pid> = adj[from.index()].iter().map(|&i| Pid::new(i)).collect();
                if !out.contains(&from) {
                    out.push(from);
                    out.sort();
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_connects_everything() {
        let t = Topology::complete(3);
        for a in Pid::all(3) {
            for b in Pid::all(3) {
                assert!(t.connected(a, b));
            }
        }
        assert_eq!(t.receivers(Pid::new(1)).len(), 3);
    }

    #[test]
    fn sparse_edges_are_symmetric() {
        let t = Topology::with_edges(4, [(Pid::new(0), Pid::new(1))]);
        assert!(t.connected(Pid::new(0), Pid::new(1)));
        assert!(t.connected(Pid::new(1), Pid::new(0)));
        assert!(!t.connected(Pid::new(0), Pid::new(2)));
    }

    #[test]
    fn self_channels_always_exist() {
        let t = Topology::with_edges(2, []);
        assert!(t.connected(Pid::new(0), Pid::new(0)));
        assert_eq!(t.receivers(Pid::new(0)), vec![Pid::new(0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        let _ = Topology::with_edges(2, [(Pid::new(0), Pid::new(5))]);
    }
}
