//! Regenerates every table and figure of the paper in one run.
//!
//! Usage: `cargo run --release -p homonym-bench --bin paper_report`
//!
//! Sections:
//!   1. Table 1 — the solvability grid, predicted vs. empirical
//!   2. Figure 1 — the synchronous ring counterexample (`ℓ = 3t`)
//!   3. Figure 4 — the partially synchronous partition counterexample
//!   4. Figures 2/3 — T(A) simulation overhead (E6)
//!   5. Proposition 6 — authenticated broadcast latency (E7)
//!   6. Figure 5 — decision latency vs. stabilization time (E8)
//!   7. Figures 6/7 — identifier budget: restricted vs. unrestricted (E9)
//!   8. Lemma 21 — adversary-controlled outcomes at ℓ ≤ t (E10)
//!   9. Section 2 — delay-model equivalence (E14)
//!  10. Price of homonymy — ℓ sweep against the DLS baseline (E15)
//!  11. Section 5 — the multi-send restriction is load-bearing (E17)
//!  12. Shard throughput — K instances over one delivery plane (E19),
//!      the same `measure_sharded` series `BENCH_shards.json` records
//!  13. Bundle path — Figure 5 hot-path throughput with per-round timing
//!      (E20), the same psync_fig5 series `BENCH_fabric.json` records
//!  14. Exact vs. estimated wire bits — the codec's exact frame sizes
//!      against the retired `WireSize` structural estimate on the
//!      Figure 5 workload, auditing the `bits_sent` series the
//!      arXiv:2311.08060 quadratic-cost reproduction rests on
//!  15. Bounded-state broadcast — faithful vs. bounded Figure 5 stacks:
//!      identical decisions, flat vs. growing bits/round and state, the
//!      same series `BENCH_bounded.json` records
//!
//! EXPERIMENTS.md archives this output next to the paper's claims.

use homonym_bench::json::{write_bench_json, Value};
use homonym_bench::{
    cell_line, decided_round_value, fig5_bounded_wire_profile, fig5_factory, fig5_wire_bundles,
    fig5_wire_profile, fig7_factory, measure_sharded, psync_cfg, restricted_cfg, run_fig5,
    run_fig5_known_bound, run_fig5_unknown_bound, run_fig7, run_sharded_fig5, run_sharded_t_eig,
    run_t_eig_clean, suite_fig5, suite_fig7, suite_t_eig, sync_cfg,
};
use homonym_core::codec;
#[allow(deprecated)]
use homonym_core::WireSize;
use homonym_core::{
    bounds, ByzPower, Counting, Domain, IdAssignment, Pid, Synchrony, SystemConfig,
};

use homonym_lowerbounds::{clones, fig1, fig4, search};
use homonym_psync::RestrictedFactory;
use homonym_sync::TransformedFactory;

fn section(title: &str) {
    println!("\n=== {title} ===");
}

fn empirical_suite(result: &homonym_sim::harness::SuiteResult<bool>) -> String {
    if result.all_hold() {
        format!(
            "all {} scenarios hold (worst decision {:?})",
            result.results.len(),
            result.max_decision_round()
        )
    } else {
        let failure = &result.failures()[0];
        format!(
            "VIOLATION in '{}': {}",
            failure.name, failure.report.verdict
        )
    }
}

fn table1() -> Value {
    section("Table 1 — solvability characterization (predicted vs. empirical)");
    let mut cells: Vec<Value> = Vec::new();
    let mut record = |cfg: &SystemConfig, model: &str, empirical: &str| {
        cells.push(Value::obj([
            ("n", Value::Int(cfg.n as i64)),
            ("ell", Value::Int(cfg.ell as i64)),
            ("t", Value::Int(cfg.t as i64)),
            ("model", Value::str(model)),
            ("predicted_solvable", Value::Bool(bounds::solvable(cfg))),
            ("empirical", Value::str(empirical)),
        ]));
    };

    println!("-- synchronous, unrestricted (bound: ell > 3t) --");
    for (n, ell, t) in [
        (4usize, 3usize, 1usize),
        (4, 4, 1),
        (7, 4, 1),
        (8, 6, 2),
        (8, 7, 2),
    ] {
        let cfg = sync_cfg(n, ell, t);
        let empirical = if bounds::solvable(&cfg) {
            empirical_suite(&suite_t_eig(n, ell, t, 2026))
        } else {
            // Drive the matching lower-bound construction.
            let algo = homonym_classic::Eig::new_unchecked(ell, t, Domain::binary());
            let factory = TransformedFactory::new(algo, t);
            if ell == 3 * t {
                let sys = fig1::build(n, t);
                let report = fig1::run(&factory, &sys, factory.round_bound() + 9);
                match report.failing_view() {
                    Some((name, verdict)) => {
                        format!("Figure 1 ring: view {name} {verdict}")
                    }
                    None => "Figure 1 ring: no violation (unexpected)".to_string(),
                }
            } else {
                "unsolvable (subsumed by the ell = 3t ring)".to_string()
            }
        };
        record(&cfg, "sync_unrestricted", &empirical);
        println!("{}", cell_line(&cfg, &empirical));
    }

    println!("-- partially synchronous, unrestricted (bound: 2*ell > n + 3t) --");
    for (n, ell, t) in [
        (4usize, 4usize, 1usize),
        (5, 4, 1),
        (5, 5, 1),
        (7, 5, 1),
        (7, 6, 1),
    ] {
        let cfg = psync_cfg(n, ell, t);
        let empirical = if bounds::solvable(&cfg) {
            empirical_suite(&suite_fig5(n, ell, t, 10, 77))
        } else {
            let factory = fig5_factory(n, ell, t);
            let outcome = fig4::run(&factory, cfg, 8 * 14);
            if outcome.split_brain() {
                "Figure 4 partition: split-brain (0-side -> 0, 1-side -> 1)".to_string()
            } else if outcome.violation_exhibited() {
                "Figure 4 partition: violation exhibited".to_string()
            } else {
                "no violation (unexpected)".to_string()
            }
        };
        record(&cfg, "psync_unrestricted", &empirical);
        println!("{}", cell_line(&cfg, &empirical));
    }

    println!("-- restricted Byzantine, numerate (bound: ell > t) --");
    for (n, ell, t) in [(4usize, 1usize, 1usize), (4, 2, 1), (7, 3, 2), (10, 2, 1)] {
        let cfg = restricted_cfg(n, ell, t);
        let empirical = if bounds::solvable(&cfg) {
            empirical_suite(&suite_fig7(n, ell, t, 8, 31))
        } else {
            let factory = fig7_factory(n, ell, t);
            let assignment = IdAssignment::anonymous(n);
            // A mixed configuration one flip away from unanimity — the
            // knife-edge where Lemma 21 finds multivalence.
            let mut inputs = vec![true; n];
            inputs[0] = false;
            let report = search::multivalence_demo(
                &factory,
                &assignment,
                &inputs,
                Pid::new(n - 1),
                &[false, true],
                8 * 5,
            );
            format!(
                "Lemma 21: adversary persona controls outcome (multivalent = {})",
                report.multivalent()
            )
        };
        record(&cfg, "restricted_numerate", &empirical);
        println!("{}", cell_line(&cfg, &empirical));
    }

    println!("-- restricted Byzantine, innumerate (restriction does not help) --");
    let starvation = clones::innumerate_starvation(4, 2, 1, 8 * 6);
    println!(
        "n=4  ell=2  t=1 | predicted unsolvable | empirical: numerate decides = {}, innumerate decides = {}",
        starvation.numerate_decides, starvation.innumerate_decides
    );
    Value::Arr(cells)
}

fn figure1() {
    section("Figure 1 — the ell = 3t ring (Proposition 1)");
    for (n, t) in [(4usize, 1usize), (5, 1), (7, 2)] {
        let algo = homonym_classic::Eig::new_unchecked(3 * t, t, Domain::binary());
        let factory = TransformedFactory::new(algo, t);
        let sys = fig1::build(n, t);
        let report = fig1::run(&factory, &sys, factory.round_bound() + 9);
        println!(
            "n={n} t={t}: big system of {} processes, views legal = {}",
            sys.assignment.n(),
            report.views_legal
        );
        for (view, verdict) in sys.views.iter().zip(&report.verdicts) {
            println!(
                "  view {:<3} ({} members, byz ids {:?}): {}",
                view.name,
                view.members.len(),
                view.byz_ids.iter().map(|i| i.get()).collect::<Vec<_>>(),
                verdict
            );
        }
    }
}

fn figure4() {
    section("Figure 4 — the partition construction (Proposition 4)");
    for (n, ell, t) in [(5usize, 4usize, 1usize), (7, 5, 1), (8, 5, 1)] {
        let cfg = psync_cfg(n, ell, t);
        let factory = fig5_factory(n, ell, t);
        match fig4::run(&factory, cfg, 8 * 14) {
            fig4::Fig4Outcome::Partitioned {
                zero_side,
                one_side,
                healed_at,
                replay_faithful,
            } => {
                println!(
                    "n={n} ell={ell} t={t}: replay faithful = {replay_faithful}, heal at round {healed_at}"
                );
                println!(
                    "  0-side decisions: {:?}",
                    zero_side.values().collect::<Vec<_>>()
                );
                println!(
                    "  1-side decisions: {:?}",
                    one_side.values().collect::<Vec<_>>()
                );
            }
            fig4::Fig4Outcome::ReferenceStalled { which, horizon } => {
                println!("n={n} ell={ell} t={t}: reference {which} stalled within {horizon}");
            }
        }
    }
}

fn transformer_overhead() {
    section("Figures 2/3 — T(A) simulation overhead (E6)");
    println!("raw EIG decides in t + 1 rounds; T(EIG) in 3 rounds per simulated round");
    for (ell, t) in [(4usize, 1usize), (7, 2)] {
        for n in [ell, ell + 3, ell + 6] {
            let report = run_t_eig_clean(n, ell, t);
            let decided = report
                .all_decided_round
                .map(|r| (r.index() + 1).to_string())
                .unwrap_or_else(|| "-".into());
            println!(
                "n={n:<2} ell={ell} t={t}: rounds to all-decided = {decided:>2} (raw EIG: {}), messages = {}",
                t + 1,
                report.messages_sent
            );
        }
    }
}

fn broadcast_latency() {
    section("Proposition 6 — authenticated broadcast (E7)");
    println!("correctness: accept within the broadcast superround (2 rounds) post-stabilization");
    for (ell, t) in [(4usize, 1usize), (7, 2), (10, 3)] {
        println!(
            "ell={ell:<2} t={t}: echo-join threshold = {}, accept threshold = {}",
            ell - 2 * t,
            ell - t
        );
    }
    // The relay property requires echo retransmission forever; measure the
    // per-round traffic growth it causes in a Figure 5 run.
    let factory = fig5_factory(4, 4, 1);
    let mut sim = homonym_sim::Simulation::builder(
        psync_cfg(4, 4, 1),
        IdAssignment::unique(4),
        vec![false, true, false, true],
    )
    .build_with(&factory);
    sim.run_exact(24);
    let per_round = sim.per_round_sent();
    println!(
        "echo-forever growth (Figure 5, n=4): wire messages per round stay flat at {:?}…",
        &per_round[..4.min(per_round.len())]
    );
    println!(
        "…but bundles grow: rounds 0..24 carried {} total non-self messages",
        per_round.iter().sum::<u64>()
    );
}

fn fig5_latency() -> Value {
    section("Figure 5 — decision latency vs. stabilization time (E8)");
    let mut points = Vec::new();
    for gst in [0u64, 8, 16, 24] {
        let report = run_fig5(4, 4, 1, gst, 3);
        println!(
            "gst={gst:>2}: all decided by round {:?} ({} messages, {} dropped)",
            report.all_decided_round.map(|r| r.index()),
            report.messages_sent,
            report.messages_dropped
        );
        points.push(Value::obj([
            ("gst", Value::Int(gst as i64)),
            ("decided_round", decided_round_value(&report)),
            ("messages_sent", Value::Int(report.messages_sent as i64)),
            (
                "messages_dropped",
                Value::Int(report.messages_dropped as i64),
            ),
        ]));
    }
    Value::Arr(points)
}

fn restricted_vs_unrestricted() {
    section("Figures 6/7 — identifier budgets, restricted vs. unrestricted (E9)");
    for (n, t) in [(4usize, 1usize), (7, 2)] {
        let ell5 = (n + 3 * t) / 2 + 1;
        let ell7 = t + 1;
        let r5 = run_fig5(n, ell5, t, 8, 9);
        let r7 = run_fig7(n, ell7, t, 8, 9);
        println!(
            "n={n} t={t}: Figure 5 needs ell = {ell5} (decided {:?}); Figure 7 needs ell = {ell7} (decided {:?})",
            r5.all_decided_round.map(|r| r.index()),
            r7.all_decided_round.map(|r| r.index()),
        );
    }
}

fn lemma21() {
    section("Lemma 21 — multivalent initial configurations at ell <= t (E10)");
    let factory = fig7_factory(4, 1, 1);
    let assignment = IdAssignment::anonymous(4);
    let report = search::multivalence_demo(
        &factory,
        &assignment,
        &[false, true, true, false],
        Pid::new(3),
        &[false, true],
        8 * 5,
    );
    for (persona, outcome) in &report.outcomes {
        println!("byzantine persona input {persona}: correct processes decide {outcome:?}");
    }
    println!(
        "multivalent (adversary controls the outcome): {}",
        report.multivalent()
    );

    let result = search::exhaustive_search(
        &fig7_factory(4, 2, 1),
        &IdAssignment::round_robin(2, 4).expect("valid"),
        &[false, true, false, true],
        Pid::new(3),
        10,
        2_000,
    );
    println!("bounded strategy sweep on the solvable (4, 2, 1) cell: {result:?}");
}

fn ablations() {
    section("Ablations — what the design novelties buy (E13)");
    // T(A) deciding rounds: poisoned-state injection against a homonym
    // group-mate (see tests/ablations.rs for the full construction).
    println!(
        "T(A) deciding rounds: removing them lets a Byzantine homonym poison its \
group-mate's state"
    );
    println!("  (validity violation demonstrated in tests/ablations.rs)");
    // Vote superround: message cost comparison on clean runs.
    use homonym_core::IdAssignment;
    use homonym_psync::AgreementFactory;
    use homonym_sim::Simulation;
    for (name, factory) in [
        (
            "with votes   ",
            AgreementFactory::new(4, 4, 1, Domain::binary()),
        ),
        (
            "without votes",
            AgreementFactory::ablated_without_votes(4, 4, 1, Domain::binary()),
        ),
    ] {
        let mut sim =
            Simulation::builder(psync_cfg(4, 4, 1), IdAssignment::unique(4), vec![true; 4])
                .build_with(&factory);
        let report = sim.run(factory.round_bound() + 24);
        println!(
            "  Figure 5 {name}: decided {:?}, {} messages (clean run; the ablated variant \
breaks Lemma 8 under divergent leader locks)",
            report.all_decided_round.map(|r| r.index()),
            report.messages_sent
        );
    }
}

fn model_equivalence() {
    section("Section 2 — delay-model equivalence (E14)");
    let basic = run_fig5(4, 4, 1, 8, 3);
    println!(
        "basic rounds (gst 8):        decided {:?}, {} dropped",
        basic.all_decided_round.map(|r| r.index()),
        basic.messages_dropped
    );
    let known = run_fig5_known_bound(4, 4, 1, 2, 32, 3);
    println!(
        "known Δ = 2, calm tick 32:   decided {:?}, {} simulated drops, loss-free from {}",
        known.outcome.last_decision_round().map(|r| r.index()),
        known.dropped(),
        known
            .clean_from()
            .map_or("never".to_string(), |r| r.to_string())
    );
    let unknown = run_fig5_unknown_bound(4, 4, 1, 6, 3);
    println!(
        "unknown Δ = 6, doubling:     decided {:?}, {} simulated drops, loss-free from {}",
        unknown.outcome.last_decision_round().map(|r| r.index()),
        unknown.dropped(),
        unknown
            .clean_from()
            .map_or("never".to_string(), |r| r.to_string())
    );
    assert!(basic.verdict.all_hold() && known.verdict.all_hold() && unknown.verdict.all_hold());
    println!("same protocol, three timing models, agreement every time");
}

fn price_of_homonymy() -> Value {
    section("Price of homonymy — ℓ sweep at n = 8, t = 1 (E15)");
    println!("ℓ = n is the classical DLS baseline; the wall is 2ℓ > n + 3t (ℓ ≥ 6)");
    let mut points = Vec::new();
    for ell in [8usize, 7, 6] {
        let report = run_fig5(8, ell, 1, 8, 3);
        println!(
            "ell = {ell}: decided by round {:?}, {} messages",
            report.all_decided_round.map(|r| r.index()),
            report.messages_sent
        );
        assert!(report.verdict.all_hold());
        points.push(Value::obj([
            ("ell", Value::Int(ell as i64)),
            ("decided_round", decided_round_value(&report)),
            ("messages_sent", Value::Int(report.messages_sent as i64)),
        ]));
    }
    Value::Arr(points)
}

fn restriction_boundary() {
    section("Section 5 — the multi-send restriction is load-bearing (E17)");
    // Restricted, ℓ = 3t: the Figure 7 protocol holds.
    let r = run_fig7(4, 3, 1, 8, 7);
    println!(
        "restricted,   n=4 ell=3 t=1: decided {:?} ({})",
        r.all_decided_round.map(|x| x.index()),
        r.verdict
    );
    // Unrestricted, same protocol, the ring forces a violation.
    let sys = fig1::build(4, 1);
    let factory = RestrictedFactory::new(4, 3, 1, Domain::binary());
    let ring = fig1::run(&factory, &sys, 8 * 8);
    println!(
        "unrestricted, n=4 ell=3 t=1: Figure 1 ring -> {}",
        ring.failing_view()
            .map(|(name, v)| format!("view {name} {v}"))
            .unwrap_or_else(|| "no violation (unexpected)".into())
    );
    // Unrestricted partial synchrony: the partition forces split-brain.
    let cfg = SystemConfig::builder(5, 4, 1)
        .synchrony(Synchrony::PartiallySynchronous)
        .counting(Counting::Numerate)
        .byz_power(ByzPower::Unrestricted)
        .build()
        .expect("valid parameters");
    let outcome = fig4::run(
        &RestrictedFactory::new(5, 4, 1, Domain::binary()),
        cfg,
        8 * 16,
    );
    println!(
        "unrestricted, n=5 ell=4 t=1: Figure 4 partition -> violation exhibited = {}",
        outcome.violation_exhibited()
    );
}

fn complexity_study() -> Value {
    section("Complexity study — rounds & messages across the families (E18)");
    let mut points = Vec::new();
    let mut record = |protocol: &str, n: usize, report: &homonym_sim::RunReport<bool>| {
        points.push(Value::obj([
            ("protocol", Value::str(protocol)),
            ("n", Value::Int(n as i64)),
            ("decided_round", decided_round_value(report)),
            ("messages_sent", Value::Int(report.messages_sent as i64)),
        ]));
    };
    println!("(the paper's conclusion: \"complexity is yet to be explored\")");
    println!("\nscaling in n, fixed (ell, t) — messages grow ~ n², rounds stay flat:");
    println!(
        "{:>14} | {:>6} | {:>16} | {:>9}",
        "protocol", "n", "rounds-to-decide", "messages"
    );
    for n in [4usize, 6, 8, 10] {
        let r = run_t_eig_clean(n, 4, 1);
        record("t_eig_l4", n, &r);
        println!(
            "{:>14} | {:>6} | {:>16} | {:>9}",
            "T(EIG) l=4",
            n,
            r.all_decided_round
                .map_or("-".into(), |x| x.index().to_string()),
            r.messages_sent
        );
    }
    for n in [4usize, 5] {
        let ell = 2 * n - 4; // keep 2ℓ > n + 3 comfortably
        let r = run_fig5(n, ell.min(n), 1, 0, 3);
        record("fig5", n, &r);
        println!(
            "{:>14} | {:>6} | {:>16} | {:>9}",
            format!("Fig5 l={}", ell.min(n)),
            n,
            r.all_decided_round
                .map_or("-".into(), |x| x.index().to_string()),
            r.messages_sent
        );
    }
    for n in [4usize, 7, 10] {
        let r = run_fig7(n, 2, 1, 0, 3);
        record("fig7_l2", n, &r);
        println!(
            "{:>14} | {:>6} | {:>16} | {:>9}",
            "Fig7 l=2",
            n,
            r.all_decided_round
                .map_or("-".into(), |x| x.index().to_string()),
            r.messages_sent
        );
    }
    println!("\nscaling in t at minimal budgets — rounds grow with the leader rotation:");
    for t in [1usize, 2, 3] {
        let ell = 3 * t + 1;
        let n = ell;
        let sync = run_t_eig_clean(n, ell, t);
        let n7 = 3 * t + 1;
        let restricted = run_fig7(n7, t + 1, t, 0, 3);
        println!(
            "t={t}: T(EIG) at (n={n}, l={ell}) decided {:?}; Fig7 at (n={n7}, l={}) decided {:?}",
            sync.all_decided_round.map(|x| x.index()),
            t + 1,
            restricted.all_decided_round.map(|x| x.index()),
        );
    }
    Value::Arr(points)
}

fn shard_throughput() -> Value {
    section("Shard throughput — K instances over one delivery plane (E19)");
    println!("(same `measure_sharded` code path as BENCH_shards.json, so the two artifacts cannot drift)");
    println!(
        "{:>12} | {:>4} | {:>4} | {:>14} | {:>9} | {:>14}",
        "protocol", "k", "n", "decisions/sec", "messages", "msgs/decision"
    );
    let mut series = Vec::new();
    let mut record = |entry: Value| {
        let rate = entry
            .get("decisions_per_sec")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        let msgs = entry
            .get("messages_sent")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        let per = entry
            .get("messages_per_decision")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        let (protocol, k, n) = (
            match entry.get("protocol") {
                Some(Value::Str(s)) => s.clone(),
                _ => "?".into(),
            },
            entry.get("k").and_then(Value::as_f64).unwrap_or(0.0),
            entry.get("n").and_then(Value::as_f64).unwrap_or(0.0),
        );
        println!("{protocol:>12} | {k:>4} | {n:>4} | {rate:>14.0} | {msgs:>9} | {per:>14.1}");
        series.push(entry);
    };
    for k in [1usize, 4, 16] {
        record(measure_sharded("sync_t_eig", k, 8, 4, 1, 4, || {
            run_sharded_t_eig(k, 8, 4, 1, 4, true)
        }));
    }
    for k in [1usize, 4] {
        record(measure_sharded("psync_fig5", k, 16, 10, 1, 2, || {
            run_sharded_fig5(k, 16, 10, 1, 2, true)
        }));
    }
    Value::Arr(series)
}

fn bundle_path() -> Value {
    section("Bundle path — Figure 5 hot-path throughput (E20)");
    println!("(same psync_fig5 series as BENCH_fabric.json; the per-round number is what the interned/incremental bundle path moves)");
    println!(
        "{:>10} | {:>4} | {:>4} | {:>12} | {:>14} | {:>12}",
        "protocol", "n", "ell", "time_ms", "msgs/sec", "ms/round"
    );
    let mut series = Vec::new();
    for n in [32usize, 64] {
        let ell = n / 2 + 2;
        let start = std::time::Instant::now();
        let report = run_fig5(n, ell, 1, 0, 3);
        let time_ns = start.elapsed().as_nanos() as i64;
        assert!(report.verdict.all_hold(), "psync_fig5 n={n} must decide");
        let rate = report.messages_sent as f64 / (time_ns as f64 / 1e9);
        let per_round = time_ns as f64 / report.rounds.max(1) as f64;
        println!(
            "{:>10} | {n:>4} | {ell:>4} | {:>12.2} | {rate:>14.0} | {:>12.3}",
            "psync_fig5",
            time_ns as f64 / 1e6,
            per_round / 1e6,
        );
        series.push(Value::obj([
            ("protocol", Value::str("psync_fig5")),
            ("n", Value::Int(n as i64)),
            ("ell", Value::Int(ell as i64)),
            ("t", Value::Int(1)),
            ("time_ns", Value::Int(time_ns)),
            ("rounds", Value::Int(report.rounds as i64)),
            ("ns_per_round", Value::Num(per_round)),
            ("decided_round", decided_round_value(&report)),
            ("messages_sent", Value::Int(report.messages_sent as i64)),
            ("messages_per_sec", Value::Num(rate)),
        ]));
    }
    Value::Arr(series)
}

fn exact_vs_estimate() -> Value {
    section("Exact vs. estimated wire bits — Figure 5 workload (§14)");
    println!(
        "(every bundle of a clean Figure 5 run; exact frame bits from the codec vs. the \
         retired WireSize structural estimate — the bits_sent series behind the \
         arXiv:2311.08060 quadratic-cost reproduction is now the exact column)"
    );
    println!(
        "{:>4} | {:>4} | {:>8} | {:>14} | {:>14} | {:>14}",
        "n", "ell", "bundles", "exact_bits", "estimate_bits", "estimate/exact"
    );
    let mut series = Vec::new();
    for n in [32usize, 64] {
        let ell = n / 2 + 2;
        let bundles = fig5_wire_bundles(n);
        let exact: u64 = bundles.iter().map(|b| codec::frame_bits(&**b)).sum();
        #[allow(deprecated)]
        let estimate: u64 = bundles.iter().map(|b| b.wire_bits()).sum();
        let ratio = estimate as f64 / exact as f64;
        println!(
            "{n:>4} | {ell:>4} | {:>8} | {exact:>14} | {estimate:>14} | {ratio:>14.3}",
            bundles.len()
        );
        series.push(Value::obj([
            ("n", Value::Int(n as i64)),
            ("ell", Value::Int(ell as i64)),
            ("t", Value::Int(1)),
            ("bundles", Value::Int(bundles.len() as i64)),
            ("exact_bits", Value::Int(exact as i64)),
            ("estimate_bits", Value::Int(estimate as i64)),
            ("estimate_over_exact", Value::Num(ratio)),
            (
                "exact_bits_per_bundle",
                Value::Num(exact as f64 / bundles.len().max(1) as f64),
            ),
        ]));
    }
    Value::Arr(series)
}

fn bounded_vs_faithful() -> Value {
    section("Bounded-state broadcast — faithful vs. bounded Figure 5 (§15)");
    println!(
        "(split-input full-delivery runs driven to decision + a 64-round steady-state tail; \
         the faithful stack rebroadcasts its whole echo history every round, the bounded \
         stack only its watermark window — same decisions, flat bits/round and state)"
    );
    println!(
        "{:>20} | {:>4} | {:>7} | {:>12} | {:>11} | {:>11} | {:>12}",
        "protocol", "n", "decided", "bits_sent", "b/rnd mid", "b/rnd end", "state_bits"
    );
    let tail = 64u64;
    let mut series = Vec::new();
    for n in [32usize, 64] {
        let mut decided = Vec::new();
        for (protocol, profile) in [
            ("psync_fig5", fig5_wire_profile(n, tail)),
            ("psync_fig5_bounded", fig5_bounded_wire_profile(n, tail)),
        ] {
            let mid = profile.per_round_bits[(profile.decided_round + tail / 2) as usize];
            let end = *profile.per_round_bits.last().expect("profiled rounds");
            println!(
                "{protocol:>20} | {n:>4} | {:>7} | {:>12} | {mid:>11} | {end:>11} | {:>12}",
                profile.decided_round, profile.total_bits, profile.state_bits
            );
            decided.push(profile.decided_round);
            series.push(Value::obj([
                ("protocol", Value::str(protocol)),
                ("n", Value::Int(n as i64)),
                ("ell", Value::Int((n / 2 + 2) as i64)),
                ("t", Value::Int(1)),
                ("decided_round", Value::Int(profile.decided_round as i64)),
                ("tail_rounds", Value::Int(tail as i64)),
                ("bits_sent", Value::Int(profile.total_bits as i64)),
                ("bits_per_round_mid", Value::Int(mid as i64)),
                ("bits_per_round_end", Value::Int(end as i64)),
                ("state_bits", Value::Int(profile.state_bits as i64)),
                (
                    "peak_state_bits",
                    Value::Int(profile.peak_state_bits as i64),
                ),
            ]));
        }
        assert_eq!(
            decided[0], decided[1],
            "bounded n={n} must decide in the same round as faithful"
        );
    }
    Value::Arr(series)
}

fn headline() {
    section("Headline — more correct processes can break agreement");
    let four = psync_cfg(4, 4, 1);
    let five = psync_cfg(5, 4, 1);
    println!("{}", cell_line(&four, "see Table 1 section"));
    println!("{}", cell_line(&five, "see Figure 4 section"));
    let check = |cfg: &SystemConfig| bounds::solvable(cfg);
    assert!(check(&four) && !check(&five));
}

fn main() {
    println!("Byzantine Agreement with Homonyms — paper reproduction report");
    let table1_cells = table1();
    figure1();
    figure4();
    transformer_overhead();
    broadcast_latency();
    let fig5_points = fig5_latency();
    restricted_vs_unrestricted();
    lemma21();
    ablations();
    model_equivalence();
    let homonymy_price = price_of_homonymy();
    restriction_boundary();
    let complexity = complexity_study();
    let shard_series = shard_throughput();
    let bundle_series = bundle_path();
    let wire_audit = exact_vs_estimate();
    let bounded_series = bounded_vs_faithful();
    headline();

    let doc = Value::obj([
        ("report", Value::str("paper_report")),
        ("table1", table1_cells),
        ("fig5_latency", fig5_points),
        ("price_of_homonymy", homonymy_price),
        ("complexity_study", complexity),
        ("shard_throughput", shard_series),
        ("bundle_path", bundle_series),
        ("exact_vs_estimate", wire_audit),
        ("bounded_vs_faithful", bounded_series),
    ]);
    match write_bench_json("paper_report", &doc) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_paper_report.json: {e}"),
    }
    println!("report complete");
}
