//! Randomized failure-injection campaign across the protocol families.
//!
//! Where the standard suite enumerates a fixed grid, this binary *draws*
//! configurations: random solvable `(n, ℓ, t)` cells, random identifier
//! assignments, random inputs, random Byzantine placements, random
//! **compositions** of adversary strategies, random stabilization times —
//! everything derived from one per-iteration seed, so any failure line
//! can be replayed exactly.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p homonym-bench --bin fuzz_campaign [iters] [base_seed]
//! ```
//!
//! Defaults: 150 iterations per protocol family, base seed 1.

use std::collections::BTreeSet;

use homonym_bench::{
    fig5_factory, fig7_factory, psync_cfg, restricted_cfg, sync_cfg, t_eig_factory,
};
use homonym_core::{Domain, IdAssignment, Pid, ProtocolFactory, Round, SystemConfig};
use homonym_sim::adversary::{
    Adversary, CloneSpammer, Compose, CrashAt, Equivocator, Flooder, Mimic, ReplayFuzzer, Silent,
    StaleReplayer,
};
use homonym_sim::{RandomUntilGst, Simulation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One drawn scenario, fully determined by its seed.
struct Draw {
    assignment: IdAssignment,
    inputs: Vec<bool>,
    byz: BTreeSet<Pid>,
    gst: u64,
    strategy_names: Vec<&'static str>,
}

fn draw_assignment(rng: &mut StdRng, n: usize, ell: usize) -> IdAssignment {
    match rng.gen_range(0..3u8) {
        0 => IdAssignment::stacked(ell, n).expect("ℓ ≤ n"),
        1 => IdAssignment::round_robin(ell, n).expect("ℓ ≤ n"),
        _ => {
            // Random surjective assignment: first ℓ processes cover every
            // identifier, the rest land anywhere.
            let mut ids: Vec<homonym_core::Id> =
                (1..=ell as u16).map(homonym_core::Id::new).collect();
            for _ in ell..n {
                ids.push(homonym_core::Id::new(rng.gen_range(1..=ell as u16)));
            }
            IdAssignment::new(ell, ids).expect("surjective by construction")
        }
    }
}

fn draw_strategies<P, F>(
    rng: &mut StdRng,
    factory: &F,
    assignment: &IdAssignment,
    byz: &BTreeSet<Pid>,
    horizon: u64,
) -> (Vec<&'static str>, Compose<P::Msg>)
where
    P: homonym_core::Protocol<Value = bool> + 'static,
    F: ProtocolFactory<P = P>,
{
    let n = assignment.n();
    let byz_inputs: Vec<(Pid, bool)> = byz.iter().map(|&p| (p, rng.gen())).collect();
    let split: BTreeSet<Pid> = Pid::all(n).filter(|_| rng.gen()).collect();

    let mut names = Vec::new();
    let mut parts: Vec<Box<dyn Adversary<P::Msg>>> = Vec::new();
    let count = rng.gen_range(1..=3usize);
    for _ in 0..count {
        let (name, part): (&'static str, Box<dyn Adversary<P::Msg>>) = match rng.gen_range(0..8u8) {
            0 => ("silent", Box::new(Silent)),
            1 => (
                "crash(mimic)",
                Box::new(CrashAt::new(
                    Round::new(rng.gen_range(1..horizon.max(2))),
                    Mimic::new(factory, assignment, &byz_inputs),
                )),
            ),
            2 => (
                "mimic",
                Box::new(Mimic::new(factory, assignment, &byz_inputs)),
            ),
            3 => (
                "equivocator",
                Box::new(Equivocator::new(
                    factory,
                    assignment,
                    byz,
                    false,
                    true,
                    split.clone(),
                )),
            ),
            4 => (
                "clone-spammer",
                Box::new(CloneSpammer::new(factory, assignment, byz, &[false, true])),
            ),
            5 => (
                "replay-fuzzer",
                Box::new(ReplayFuzzer::new(rng.gen(), rng.gen_range(1..4))),
            ),
            6 => (
                "stale-replayer",
                Box::new(StaleReplayer::new(rng.gen_range(1..4), rng.gen_range(1..5))),
            ),
            _ => ("flooder", Box::new(Flooder::new(rng.gen_range(2..6)))),
        };
        names.push(name);
        parts.push(part);
    }
    (names, Compose::new(parts))
}

fn draw_scenario<P, F>(
    seed: u64,
    cfg: &SystemConfig,
    factory: &F,
    horizon: u64,
) -> (Draw, Compose<P::Msg>)
where
    P: homonym_core::Protocol<Value = bool> + 'static,
    F: ProtocolFactory<P = P>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let assignment = draw_assignment(&mut rng, cfg.n, cfg.ell);
    let inputs: Vec<bool> = (0..cfg.n).map(|_| rng.gen()).collect();
    let mut pids: Vec<Pid> = Pid::all(cfg.n).collect();
    let mut byz = BTreeSet::new();
    for _ in 0..cfg.t {
        let k = rng.gen_range(0..pids.len());
        byz.insert(pids.swap_remove(k));
    }
    let gst = rng.gen_range(0..20u64);
    let (strategy_names, adversary) =
        draw_strategies::<P, F>(&mut rng, factory, &assignment, &byz, horizon);
    (
        Draw {
            assignment,
            inputs,
            byz,
            gst,
            strategy_names,
        },
        adversary,
    )
}

/// Runs one drawn scenario; returns `(decision round, message count)`.
/// Panics with a replay line on any property violation.
fn run_draw<P, F>(
    family: &str,
    seed: u64,
    cfg: SystemConfig,
    factory: &F,
    slack: u64,
) -> (Option<u64>, u64)
where
    P: homonym_core::Protocol<Value = bool> + 'static,
    F: ProtocolFactory<P = P>,
{
    let horizon = 20 + slack; // gst is drawn below 20
    let (draw, adversary) = draw_scenario::<P, F>(seed, &cfg, factory, horizon);
    // A zero drop probability turns the policy into NoDrops for the
    // synchronous family, keeping one concrete policy type.
    let drop_p = match cfg.synchrony {
        homonym_core::Synchrony::Synchronous => 0.0,
        homonym_core::Synchrony::PartiallySynchronous => 0.3,
    };
    let mut sim = Simulation::builder(cfg, draw.assignment, draw.inputs)
        .byzantine(draw.byz.clone(), adversary)
        .drops(RandomUntilGst::new(Round::new(draw.gst), drop_p, seed))
        .build_with(factory);
    let report = sim.run(draw.gst + slack);
    assert!(
        report.verdict.all_hold(),
        "VIOLATION family={family} seed={seed} strategies={:?} gst={} byz={:?}: {}",
        draw.strategy_names,
        draw.gst,
        draw.byz,
        report.verdict
    );
    (
        report.all_decided_round.map(|r| r.index()),
        report.messages_sent,
    )
}

/// Runs `iters` draws for each protocol family starting at `base_seed`.
/// Returns (runs, worst decision round, total messages).
pub fn campaign(iters: u64, base_seed: u64, verbose: bool) -> (u64, u64, u64) {
    let mut runs = 0u64;
    let mut worst = 0u64;
    let mut messages = 0u64;

    for k in 0..iters {
        let seed = base_seed.wrapping_add(k).wrapping_mul(0x9e37_79b9);

        // Family 1: T(EIG), synchronous, random solvable cell (ℓ > 3t).
        {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xA);
            let t = rng.gen_range(1..=2usize);
            let ell = 3 * t + rng.gen_range(1..=2usize);
            let n = ell + rng.gen_range(0..=3usize);
            let factory = t_eig_factory(ell, t);
            let slack = factory.round_bound() + 9;
            let (decided, msgs) = run_draw(
                "sync/T(EIG)",
                seed ^ 0xA,
                sync_cfg(n, ell, t),
                &factory,
                slack,
            );
            runs += 1;
            worst = worst.max(decided.unwrap_or(0));
            messages += msgs;
            if verbose {
                println!(
                    "sync    seed={:016x} n={n} ell={ell} t={t} decided={decided:?}",
                    seed ^ 0xA
                );
            }
        }

        // Family 2: Figure 5, partially synchronous (2ℓ > n + 3t).
        {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xB);
            let t = 1usize;
            let ell = rng.gen_range(4..=6usize);
            let n_hi = 2 * ell - 3 * t - 1;
            let n = rng.gen_range(ell..=n_hi);
            let factory = fig5_factory(n, ell, t);
            let slack = factory.round_bound() + 24;
            let (decided, msgs) = run_draw(
                "psync/Fig5",
                seed ^ 0xB,
                psync_cfg(n, ell, t),
                &factory,
                slack,
            );
            runs += 1;
            worst = worst.max(decided.unwrap_or(0));
            messages += msgs;
            if verbose {
                println!(
                    "psync   seed={:016x} n={n} ell={ell} t={t} decided={decided:?}",
                    seed ^ 0xB
                );
            }
        }

        // Family 3: Figure 7, restricted + numerate (ℓ > t, n > 3t).
        {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC);
            let t = rng.gen_range(1..=2usize);
            let ell = t + rng.gen_range(1..=2usize);
            let n = 3 * t + 1 + rng.gen_range(0..=3usize);
            let factory = fig7_factory(n, ell.min(n), t);
            let slack = factory.round_bound() + 24;
            let (decided, msgs) = run_draw(
                "restricted/Fig7",
                seed ^ 0xC,
                restricted_cfg(n, ell.min(n), t),
                &factory,
                slack,
            );
            runs += 1;
            worst = worst.max(decided.unwrap_or(0));
            messages += msgs;
            if verbose {
                println!(
                    "restr   seed={:016x} n={n} ell={ell} t={t} decided={decided:?}",
                    seed ^ 0xC
                );
            }
        }
    }
    (runs, worst, messages)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let iters: u64 = args
        .next()
        .map(|s| s.parse().expect("iters must be a number"))
        .unwrap_or(150);
    let base_seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be a number"))
        .unwrap_or(1);

    println!(
        "fuzz campaign: {iters} iterations × 3 families, base seed {base_seed} \
         (all draws replayable from the seed)"
    );
    let (runs, worst, messages) = campaign(iters, base_seed, false);
    println!(
        "{runs} adversarial runs, 0 violations; worst decision round {worst}; \
         {messages} total messages"
    );

    // A quick domain check: the binary-domain assumption above is not
    // load-bearing; re-run a few draws on a 4-value domain via Fig. 5.
    let domain = Domain::new(vec![0u8, 1, 2, 3]);
    let factory = homonym_psync::AgreementFactory::new(5, 5, 1, domain);
    let mut sim = Simulation::builder(
        psync_cfg(5, 5, 1),
        IdAssignment::unique(5),
        vec![3u8, 0, 2, 0, 1],
    )
    .byzantine([Pid::new(4)], ReplayFuzzer::new(base_seed, 2))
    .drops(RandomUntilGst::new(Round::new(8), 0.3, base_seed))
    .build_with(&factory);
    let report = sim.run(8 + factory.round_bound() + 24);
    assert!(report.verdict.all_hold());
    println!("multi-valued domain check: {}", report.verdict);
}

#[cfg(test)]
mod tests {
    use super::campaign;

    #[test]
    fn short_campaign_is_clean() {
        let (runs, _, messages) = campaign(2, 42, false);
        assert_eq!(runs, 6);
        assert!(messages > 0);
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        assert_eq!(campaign(2, 7, false), campaign(2, 7, false));
    }
}
