//! The CI hot-path guardrail: compares a freshly generated bench JSON
//! (`BENCH_fabric.json`, `BENCH_codec.json`, `BENCH_bounded.json`, …)
//! against the committed snapshot and **fails** (exit 1) if any gated
//! series point regressed in the gated metric by more than the allowed
//! fraction.
//!
//! Usage:
//!
//! ```text
//! bench_gate --baseline <committed bench json> \
//!            --current  <fresh bench json> \
//!            [--protocol psync_fig5[,sync_t_eig,...] | --protocol '*'] \
//!            [--metric messages_per_sec] \
//!            [--direction higher|lower] \
//!            [--max-regression 0.30] \
//!            [--reference sync_t_eig]
//! ```
//!
//! `--protocol` takes a comma-separated list; every listed series is
//! gated independently and any regression fails the run. `--protocol '*'`
//! gates a file whose series carry no `protocol` tag at all (the codec
//! bench): every `n` point in the file belongs to the one unnamed series.
//!
//! `--metric` picks the gated field (default `messages_per_sec`), and
//! `--direction` says which way is better (default `higher`; pass
//! `lower` for size- or bit-shaped metrics such as `bytes_per_bundle` or
//! `bits_per_decision`).
//!
//! Only `n` values present in **both** files are compared (the committed
//! snapshot is full-mode, CI runs quick mode). Because the committed
//! snapshot and the CI runner are different machines, the budget is
//! applied to **machine-normalized** rates: the reference series
//! (`sync_t_eig`, whose delivery-bound cost shape is stable) is measured
//! in the same two files, and the baseline is scaled by the median
//! current/baseline reference ratio before the floor is applied — so the
//! gate trips on the *algorithm* getting slower relative to the same
//! machine's delivery fabric, not on runner hardware. Pass
//! `--reference none` for absolute comparison (the right choice for
//! machine-independent metrics like exact wire bits). The parser is a
//! small scanner over the workspace's own `json` writer output — the
//! schema is ours, so a full JSON parser is not needed; unknown lines are
//! skipped.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// The `(n → metric)` points of one protocol's series, scraped from a
/// bench-JSON-shaped file. `protocol == "*"` matches every series,
/// including files whose series carry no `protocol` tag.
fn series_points(path: &str, protocol: &str, metric: &str) -> BTreeMap<i64, f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_gate: cannot read {path}: {e}"));
    let mut points = BTreeMap::new();
    let wildcard = protocol == "*";
    let mut in_series = wildcard;
    let mut n: Option<i64> = None;
    let field = |line: &str, key: &str| -> Option<String> {
        let rest = line.trim().strip_prefix(&format!("\"{key}\": "))?;
        Some(rest.trim_end_matches(',').trim_matches('"').to_string())
    };
    for line in text.lines() {
        if let Some(value) = field(line, "protocol") {
            in_series = wildcard || value == protocol;
            n = None;
        }
        if !in_series {
            continue;
        }
        if let Some(value) = field(line, "n") {
            n = value.parse().ok();
        }
        if let Some(value) = field(line, metric) {
            if let (Some(n), Ok(rate)) = (n, value.parse::<f64>()) {
                points.insert(n, rate);
            }
        }
    }
    points
}

/// A top-level integer field (e.g. `available_parallelism`) scraped from
/// a bench-JSON-shaped file, if present.
fn top_level_int(path: &str, key: &str) -> Option<i64> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines().find_map(|line| {
        let rest = line.trim().strip_prefix(&format!("\"{key}\": "))?;
        rest.trim_end_matches(',').parse().ok()
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let arg_after = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let baseline_path = arg_after("--baseline").expect("--baseline <file> required");
    let current_path = arg_after("--current").expect("--current <file> required");
    let protocols: Vec<&str> = arg_after("--protocol")
        .unwrap_or("psync_fig5")
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .collect();
    assert!(
        !protocols.is_empty(),
        "--protocol lists at least one series"
    );
    let metric = arg_after("--metric").unwrap_or("messages_per_sec");
    let direction = arg_after("--direction").unwrap_or("higher");
    let higher_is_better = match direction {
        "higher" => true,
        "lower" => false,
        other => panic!("--direction is 'higher' or 'lower', got {other}"),
    };
    let reference = arg_after("--reference").unwrap_or("sync_t_eig");
    let max_regression: f64 = arg_after("--max-regression")
        .unwrap_or("0.30")
        .parse()
        .expect("--max-regression is a fraction");

    // Worker-scaling metrics only mean something with real cores to fan
    // across: if the current run's host reports a single hardware
    // thread, every pool serializes onto one CPU and the speedup curve
    // is flat by construction. Skip the comparison with the reason on
    // record rather than failing on a curve the machine cannot produce.
    if metric.contains("speedup") {
        if let Some(cores) = top_level_int(current_path, "available_parallelism") {
            if cores <= 1 {
                println!(
                    "bench_gate: SKIPPED {metric} comparison — current host reports \
                     available_parallelism = {cores}; worker-scaling comparisons \
                     require a multi-core runner"
                );
                return ExitCode::SUCCESS;
            }
        }
    }

    // Machine-speed normalization: median current/baseline ratio of the
    // reference series over the n values both files carry. The reference
    // metric is always throughput-shaped (higher = faster machine).
    let scale = if reference == "none" {
        1.0
    } else {
        let ref_base = series_points(baseline_path, reference, "messages_per_sec");
        let ref_cur = series_points(current_path, reference, "messages_per_sec");
        let mut ratios: Vec<f64> = ref_base
            .iter()
            .filter_map(|(n, &b)| ref_cur.get(n).map(|&c| c / b))
            .filter(|r| r.is_finite() && *r > 0.0)
            .collect();
        if ratios.is_empty() {
            eprintln!("bench_gate: no shared '{reference}' points; comparing absolute rates");
            1.0
        } else {
            ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
            let mid = ratios[ratios.len() / 2];
            println!(
                "machine scale (median {reference} current/baseline over {} point(s)): {mid:.3}",
                ratios.len()
            );
            mid
        }
    };

    let mut total_compared = 0;
    let mut failed_protocols: Vec<&str> = Vec::new();
    for protocol in &protocols {
        let baseline = series_points(baseline_path, protocol, metric);
        let current = series_points(current_path, protocol, metric);
        if baseline.is_empty() || current.is_empty() {
            eprintln!(
                "bench_gate: no '{protocol}' {metric} points found (baseline: {}, current: {})",
                baseline.len(),
                current.len()
            );
            return ExitCode::FAILURE;
        }

        let mut compared = 0;
        let mut failed = false;
        for (n, &base_rate) in &baseline {
            let Some(&cur_rate) = current.get(n) else {
                continue; // quick mode trims the series; compare the overlap
            };
            compared += 1;
            // Higher-is-better metrics scale with machine speed; lower-is
            // -better (time- or size-shaped) metrics scale inversely.
            let (bound, regressed, shape) = if higher_is_better {
                let floor = base_rate * scale * (1.0 - max_regression);
                (floor, cur_rate < floor, "floor")
            } else {
                let ceiling = base_rate / scale * (1.0 + max_regression);
                (ceiling, cur_rate > ceiling, "ceiling")
            };
            let verdict = if regressed {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "{protocol} n={n}: baseline {metric} {base_rate:.2}, current {cur_rate:.2} \
                 (machine-normalized {shape} {bound:.2}) — {verdict}"
            );
        }
        if compared == 0 {
            eprintln!("bench_gate: baseline and current share no '{protocol}' points");
            return ExitCode::FAILURE;
        }
        total_compared += compared;
        if failed {
            failed_protocols.push(protocol);
        }
    }
    if !failed_protocols.is_empty() {
        eprintln!(
            "bench_gate: {} regressed more than {:.0}% in {metric} — the gated \
             path got worse; see the comparison above",
            failed_protocols.join(", "),
            max_regression * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("bench_gate: {total_compared} {metric} point(s) within budget");
    ExitCode::SUCCESS
}
