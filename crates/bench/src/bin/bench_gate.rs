//! The CI hot-path guardrail: compares a freshly generated
//! `BENCH_fabric.json` against the committed snapshot and **fails**
//! (exit 1) if any gated series point regressed in `messages_per_sec`
//! by more than the allowed fraction.
//!
//! Usage:
//!
//! ```text
//! bench_gate --baseline <committed BENCH_fabric.json> \
//!            --current  <fresh BENCH_fabric.json> \
//!            [--protocol psync_fig5[,sync_t_eig,...]] \
//!            [--max-regression 0.30] \
//!            [--reference sync_t_eig]
//! ```
//!
//! `--protocol` takes a comma-separated list; every listed series is
//! gated independently and any regression fails the run.
//!
//! Only `n` values present in **both** files are compared (the committed
//! snapshot is full-mode, CI runs quick mode). Because the committed
//! snapshot and the CI runner are different machines, the budget is
//! applied to **machine-normalized** rates: the reference series
//! (`sync_t_eig`, whose delivery-bound cost shape is stable) is measured
//! in the same two files, and the baseline is scaled by the median
//! current/baseline reference ratio before the floor is applied — so the
//! gate trips on the *algorithm* getting slower relative to the same
//! machine's delivery fabric, not on runner hardware. Pass
//! `--reference none` for absolute comparison. The parser is a small
//! scanner over the workspace's own `json` writer output — the schema is
//! ours, so a full JSON parser is not needed; unknown lines are skipped.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// The `(n → messages_per_sec)` points of one protocol's series, scraped
/// from a `BENCH_fabric.json`-shaped file.
fn series_points(path: &str, protocol: &str) -> BTreeMap<i64, f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_gate: cannot read {path}: {e}"));
    let mut points = BTreeMap::new();
    let mut in_series = false;
    let mut n: Option<i64> = None;
    let field = |line: &str, key: &str| -> Option<String> {
        let rest = line.trim().strip_prefix(&format!("\"{key}\": "))?;
        Some(rest.trim_end_matches(',').trim_matches('"').to_string())
    };
    for line in text.lines() {
        if let Some(value) = field(line, "protocol") {
            in_series = value == protocol;
            n = None;
        }
        if !in_series {
            continue;
        }
        if let Some(value) = field(line, "n") {
            n = value.parse().ok();
        }
        if let Some(value) = field(line, "messages_per_sec") {
            if let (Some(n), Ok(rate)) = (n, value.parse::<f64>()) {
                points.insert(n, rate);
            }
        }
    }
    points
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let arg_after = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let baseline_path = arg_after("--baseline").expect("--baseline <file> required");
    let current_path = arg_after("--current").expect("--current <file> required");
    let protocols: Vec<&str> = arg_after("--protocol")
        .unwrap_or("psync_fig5")
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .collect();
    assert!(
        !protocols.is_empty(),
        "--protocol lists at least one series"
    );
    let reference = arg_after("--reference").unwrap_or("sync_t_eig");
    let max_regression: f64 = arg_after("--max-regression")
        .unwrap_or("0.30")
        .parse()
        .expect("--max-regression is a fraction");

    // Machine-speed normalization: median current/baseline ratio of the
    // reference series over the n values both files carry.
    let scale = if reference == "none" {
        1.0
    } else {
        let ref_base = series_points(baseline_path, reference);
        let ref_cur = series_points(current_path, reference);
        let mut ratios: Vec<f64> = ref_base
            .iter()
            .filter_map(|(n, &b)| ref_cur.get(n).map(|&c| c / b))
            .filter(|r| r.is_finite() && *r > 0.0)
            .collect();
        if ratios.is_empty() {
            eprintln!("bench_gate: no shared '{reference}' points; comparing absolute rates");
            1.0
        } else {
            ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
            let mid = ratios[ratios.len() / 2];
            println!(
                "machine scale (median {reference} current/baseline over {} point(s)): {mid:.3}",
                ratios.len()
            );
            mid
        }
    };

    let mut total_compared = 0;
    let mut failed_protocols: Vec<&str> = Vec::new();
    for protocol in &protocols {
        let baseline = series_points(baseline_path, protocol);
        let current = series_points(current_path, protocol);
        if baseline.is_empty() || current.is_empty() {
            eprintln!(
                "bench_gate: no '{protocol}' points found (baseline: {}, current: {})",
                baseline.len(),
                current.len()
            );
            return ExitCode::FAILURE;
        }

        let mut compared = 0;
        let mut failed = false;
        for (n, &base_rate) in &baseline {
            let Some(&cur_rate) = current.get(n) else {
                continue; // quick mode trims the series; compare the overlap
            };
            compared += 1;
            let floor = base_rate * scale * (1.0 - max_regression);
            let verdict = if cur_rate < floor {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "{protocol} n={n}: baseline {base_rate:.0} msgs/s, current {cur_rate:.0} msgs/s \
                 (machine-normalized floor {floor:.0}) — {verdict}"
            );
        }
        if compared == 0 {
            eprintln!("bench_gate: baseline and current share no '{protocol}' points");
            return ExitCode::FAILURE;
        }
        total_compared += compared;
        if failed {
            failed_protocols.push(protocol);
        }
    }
    if !failed_protocols.is_empty() {
        eprintln!(
            "bench_gate: {} regressed more than {:.0}% — the gated path \
             got slower; see the comparison above",
            failed_protocols.join(", "),
            max_regression * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("bench_gate: {total_compared} point(s) within budget");
    ExitCode::SUCCESS
}
