//! Minimal JSON emission for machine-readable bench results.
//!
//! The container has no crates.io access (see `compat/README.md`), so
//! this is a hand-rolled serializer covering exactly what the bench
//! outputs need: objects, arrays, strings, integers, floats, booleans.
//! Results land in `BENCH_<name>.json` files (in `BENCH_OUT_DIR` if set,
//! else the current directory), which CI uploads as artifacts so the
//! perf trajectory of the delivery fabric is recorded per PR.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A JSON value.
#[derive(Clone, Debug)]
pub enum Value {
    /// The null value (e.g. an absent decision round).
    Null,
    /// A string.
    Str(String),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float (serialized with `{:?}`, round-trippable).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// An ordered array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience constructor for an object.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a float ([`Num`](Value::Num) or
    /// [`Int`](Value::Int)).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            Value::Int(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// This object with extra key/value pairs appended (replacing any
    /// existing pairs under the same keys, so annotations are
    /// idempotent).
    ///
    /// # Panics
    ///
    /// Panics if this is not an object.
    pub fn with(self, pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        let Value::Obj(mut existing) = self else {
            panic!("Value::with requires an object");
        };
        for (k, v) in pairs {
            existing.retain(|(key, _)| key != k);
            existing.push((k.to_string(), v));
        }
        Value::Obj(existing)
    }

    /// Serializes with two-space indentation (diff-friendly artifacts).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close_pad = "  ".repeat(indent);
        match self {
            Value::Null => out.push_str("null"),
            Value::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (k, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    if k + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            Value::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (k, (key, item)) in pairs.iter().enumerate() {
                    out.push_str(&pad);
                    Value::Str(key.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    item.write(out, indent + 1);
                    if k + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

/// Where `BENCH_<name>.json` files go: `$BENCH_OUT_DIR` if set, else the
/// current directory (the workspace root under `cargo bench`/`cargo run`).
pub fn out_dir() -> PathBuf {
    std::env::var_os("BENCH_OUT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Writes `value` to `BENCH_<name>.json` and returns the path.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_bench_json(name: &str, value: &Value) -> std::io::Result<PathBuf> {
    let path = out_dir().join(format!("BENCH_{name}.json"));
    std::fs::write(&path, value.render())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = Value::obj([
            ("name", Value::str("fabric")),
            (
                "series",
                Value::Arr(vec![Value::obj([
                    ("n", Value::Int(32)),
                    ("time_ns", Value::Num(992032.0)),
                    ("ok", Value::Bool(true)),
                ])]),
            ),
        ]);
        let s = v.render();
        assert!(s.contains("\"name\": \"fabric\""));
        assert!(s.contains("\"n\": 32"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = Value::str("a\"b\\c\nd").render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Value::Arr(vec![]).render(), "[]\n");
        assert_eq!(Value::Obj(vec![]).render(), "{}\n");
    }

    #[test]
    fn null_renders_bare() {
        assert_eq!(Value::Null.render(), "null\n");
        assert_eq!(Value::Num(f64::NAN).render(), "null\n");
    }
}
